//! The five determinism-hygiene rules, plus the allow-comment meta rules.
//!
//! Each rule carries a default level (deny/warn) and a crate scope. The
//! catalog, the allow-comment grammar, and the baseline-file format are
//! documented in DESIGN.md §13.

use crate::baseline::Baseline;
use crate::scanner::{Line, SourceFile};
use std::collections::BTreeSet;

/// Finding severity. `--deny-all` promotes every warn to deny.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Report only; does not fail the run by default.
    Warn,
    /// Fails the run.
    Deny,
}

impl Level {
    /// Lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Level::Warn => "warn",
            Level::Deny => "deny",
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule name (kebab-case).
    pub rule: &'static str,
    /// Severity after any `--deny-all` promotion.
    pub level: Level,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

/// Crates on the deterministic path: everything that feeds byte-identity
/// invariants (CLAUDE.md). `HashMap`/`HashSet` iteration order must never
/// escape from these.
pub const DETERMINISTIC_CRATES: &[&str] =
    &["core", "topk", "index", "geometry", "solver", "storage"];

/// Crates where raw float comparisons are policed (the deterministic set
/// plus `expr`, whose generic-function linearization feeds scoring).
pub const SCORE_CRATES: &[&str] = &[
    "core", "topk", "index", "geometry", "solver", "storage", "expr",
];

/// Crates allowed to read the wall clock (serving deadlines, benchmarks).
pub const WALLCLOCK_CRATES: &[&str] = &["server", "bench"];

/// Files with a frozen panic budget (server/storage write paths).
pub const HOT_PATH_FILES: &[&str] = &[
    "crates/server/src/engine.rs",
    "crates/server/src/protocol.rs",
    "crates/storage/src/wal.rs",
];

/// All rule names, for allow-comment validation.
pub const RULE_NAMES: &[&str] = &[
    "hash-iter-order",
    "raw-score-cmp",
    "undocumented-unsafe",
    "wallclock-in-core",
    "panic-in-hot-path",
];

/// Default level of a rule.
pub fn default_level(rule: &str) -> Level {
    match rule {
        // Pacing/telemetry reads are advisory by default (CI promotes them).
        "wallclock-in-core" => Level::Warn,
        "unused-allow" => Level::Warn,
        "stale-baseline" => Level::Warn,
        _ => Level::Deny,
    }
}

const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

const PANIC_TOKENS: &[&str] = &[".unwrap()", ".expect(", "panic!(", "unreachable!("];

/// Lints one scanned file against every applicable rule, applying allow
/// comments and the panic-budget baseline. `deny_all` promotes warns.
pub fn lint_file(file: &SourceFile, baseline: &Baseline, deny_all: bool) -> Vec<Finding> {
    let mut raw: Vec<Finding> = Vec::new();

    if DETERMINISTIC_CRATES.contains(&file.crate_name.as_str()) {
        hash_iter_order(file, &mut raw);
    }
    if SCORE_CRATES.contains(&file.crate_name.as_str()) {
        raw_score_cmp(file, &mut raw);
    }
    undocumented_unsafe(file, &mut raw);
    if !WALLCLOCK_CRATES.contains(&file.crate_name.as_str()) {
        wallclock_in_core(file, &mut raw);
    }
    let hot_path = HOT_PATH_FILES.contains(&file.rel_path.as_str());
    if hot_path {
        panic_in_hot_path(file, &mut raw);
    }

    apply_allows(file, baseline, raw, hot_path, deny_all)
}

/// Suppression pass: allow comments knock out same-line findings of their
/// rule; panic findings are folded into a per-file budget vs the baseline.
fn apply_allows(
    file: &SourceFile,
    baseline: &Baseline,
    raw: Vec<Finding>,
    hot_path: bool,
    deny_all: bool,
) -> Vec<Finding> {
    let mut used: Vec<bool> = vec![false; file.allows.len()];
    let mut out: Vec<Finding> = Vec::new();
    let mut panic_sites: Vec<usize> = Vec::new();

    for f in raw {
        let allow = file
            .allows
            .iter()
            .position(|a| a.rule == f.rule && a.target == f.line);
        if let Some(i) = allow {
            used[i] = true;
            continue;
        }
        if f.rule == "panic-in-hot-path" {
            panic_sites.push(f.line);
            continue;
        }
        out.push(f);
    }

    if hot_path {
        let budget = baseline.budget("panic-in-hot-path", &file.rel_path);
        let count = panic_sites.len();
        match budget {
            Some(allowed) if count > allowed => out.push(Finding {
                rule: "panic-in-hot-path",
                level: Level::Deny,
                path: file.rel_path.clone(),
                line: panic_sites.get(allowed).copied().unwrap_or(1),
                message: format!(
                    "{count} panic sites (unwrap/expect/panic!) exceed the frozen \
                     baseline of {allowed}; handle the error or move the budget in \
                     crates/analysis/lint-baseline.txt with a reviewed reason"
                ),
            }),
            Some(allowed) if count < allowed => out.push(Finding {
                rule: "stale-baseline",
                level: default_level("stale-baseline"),
                path: file.rel_path.clone(),
                line: 1,
                message: format!(
                    "panic budget is stale ({count} sites < baseline {allowed}); \
                     tighten crates/analysis/lint-baseline.txt (iq-lint --write-baseline)"
                ),
            }),
            Some(_) => {}
            None => {
                if count > 0 {
                    out.push(Finding {
                        rule: "panic-in-hot-path",
                        level: Level::Deny,
                        path: file.rel_path.clone(),
                        line: panic_sites[0],
                        message: format!(
                            "{count} panic sites but no baseline entry for this file; \
                             add one to crates/analysis/lint-baseline.txt"
                        ),
                    });
                }
            }
        }
    }

    // Allow-comment hygiene: every allow needs a reason and must suppress
    // something; unknown rule names are typos.
    for (i, a) in file.allows.iter().enumerate() {
        if !RULE_NAMES.contains(&a.rule.as_str()) {
            out.push(Finding {
                rule: "unused-allow",
                level: Level::Deny,
                path: file.rel_path.clone(),
                line: a.line,
                message: format!("allow names unknown rule `{}`", a.rule),
            });
            continue;
        }
        if a.reason.is_none() {
            out.push(Finding {
                rule: "allow-missing-reason",
                level: Level::Deny,
                path: file.rel_path.clone(),
                line: a.line,
                message: format!(
                    "iq-lint: allow({}) requires a reason: \
                     `iq-lint: allow({}, reason = \"...\")`",
                    a.rule, a.rule
                ),
            });
        }
        if !used[i] {
            out.push(Finding {
                rule: "unused-allow",
                level: default_level("unused-allow"),
                path: file.rel_path.clone(),
                line: a.line,
                message: format!("allow({}) suppresses nothing on line {}", a.rule, a.target),
            });
        }
    }

    if deny_all {
        for f in &mut out {
            f.level = Level::Deny;
        }
    }
    out.sort_by(|a, b| a.line.cmp(&b.line).then(a.rule.cmp(b.rule)));
    out
}

// ---------------------------------------------------------------------------
// Rule 1: hash-iter-order
// ---------------------------------------------------------------------------

/// No `HashMap`/`HashSet` iteration in deterministic-path crates: iteration
/// order is seeded per-instance, so any order that escapes (collected vecs,
/// visit callbacks, drains) breaks byte-identity. Use `BTreeMap`/`BTreeSet`
/// or sort before draining. Keyed lookups (`get`/`insert`/`contains`) are
/// fine and are not flagged.
fn hash_iter_order(file: &SourceFile, out: &mut Vec<Finding>) {
    // Pass 1: identifiers declared with a hash-collection type.
    let mut hash_idents: BTreeSet<String> = BTreeSet::new();
    for line in &file.lines {
        collect_hash_idents(&line.code, &mut hash_idents);
    }
    // Pass 2: iteration over those identifiers (or any inline hash expr).
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for ident in &hash_idents {
            for pos in token_positions(&line.code, ident) {
                let rest = &line.code[pos + ident.len()..];
                if let Some(m) = leading_method(rest) {
                    if HASH_ITER_METHODS.contains(&m) {
                        out.push(finding(
                            "hash-iter-order",
                            file,
                            idx,
                            format!(
                                "iteration over hash collection `{ident}` (`.{m}`): order is \
                                 per-instance random; use BTreeMap/BTreeSet or sort first"
                            ),
                        ));
                    }
                }
            }
            if for_loop_over(&line.code, ident) {
                out.push(finding(
                    "hash-iter-order",
                    file,
                    idx,
                    format!(
                        "`for … in` over hash collection `{ident}`: order is per-instance \
                         random; use BTreeMap/BTreeSet or sort first"
                    ),
                ));
            }
        }
    }
}

/// Declared-as-hash identifiers: `name: HashMap<…>` (fields, params, lets
/// with annotations) and `let [mut] name = HashMap::…` / `HashSet::…`.
fn collect_hash_idents(code: &str, out: &mut BTreeSet<String>) {
    for ty in ["HashMap", "HashSet"] {
        for pos in token_positions(code, ty) {
            // `name : [std::collections::] Hash…`
            let before = &code[..pos];
            let before = before.trim_end();
            let before = before
                .strip_suffix("std::collections::")
                .or_else(|| before.strip_suffix("collections::"))
                .unwrap_or(before)
                .trim_end();
            // Reference annotations: `name: &Hash…`, `name: &mut Hash…`.
            let before = before.strip_suffix("mut").unwrap_or(before).trim_end();
            let before = before.strip_suffix('&').unwrap_or(before).trim_end();
            if let Some(prefix) = before.strip_suffix(':') {
                // Reject `::` paths — that's not a type annotation.
                if !prefix.ends_with(':') {
                    if let Some(name) = trailing_ident(prefix) {
                        out.insert(name);
                    }
                    continue;
                }
            }
            // `let [mut] name … = Hash…::` (binding without annotation).
            if code[pos..].starts_with(&format!("{ty}::")) {
                if let Some(eq) = before.strip_suffix('=') {
                    if let Some(name) = trailing_ident(eq.trim_end()) {
                        out.insert(name);
                    }
                }
            }
        }
    }
}

/// `for … in [&][mut ][self.]ident` detection.
fn for_loop_over(code: &str, ident: &str) -> bool {
    for pos in token_positions(code, "in") {
        let before = &code[..pos];
        if token_positions(before, "for").is_empty() {
            continue;
        }
        let mut expr = code[pos + 2..].trim_start();
        for prefix in ["&mut ", "&", "mut ", "self."] {
            expr = expr.strip_prefix(prefix).unwrap_or(expr).trim_start();
        }
        if let Some(rest) = expr.strip_prefix(ident) {
            let boundary = rest
                .chars()
                .next()
                .is_none_or(|c| !c.is_alphanumeric() && c != '_');
            // `map.keys()` after `in` is caught by the method check; here we
            // only flag direct iteration (`&map`, `map`).
            if boundary && !rest.trim_start().starts_with('.') {
                return true;
            }
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Rule 2: raw-score-cmp
// ---------------------------------------------------------------------------

/// No raw float comparisons that bypass `iq_topk::naive::rank_cmp`: float
/// `==`/`!=` against float literals, and `partial_cmp(…).unwrap()` (panics
/// on NaN and invites non-total orders). `rank_cmp` itself and the
/// tolerance-widened `*_tol` slab paths are exempt.
fn raw_score_cmp(file: &SourceFile, out: &mut Vec<Finding>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || fn_exempt(line) {
            continue;
        }
        // partial_cmp(..).unwrap(), possibly chained onto the next line.
        for pos in token_positions(&line.code, "partial_cmp") {
            let mut window = line.code[pos..].to_string();
            for next in file.lines.iter().skip(idx + 1).take(2) {
                let t = next.code.trim_start();
                if t.starts_with('.') {
                    window.push_str(t);
                } else {
                    break;
                }
            }
            if window.contains(".unwrap()") {
                out.push(finding(
                    "raw-score-cmp",
                    file,
                    idx,
                    "`partial_cmp(..).unwrap()` is not a total order (panics on NaN); \
                     use `f64::total_cmp` or route through `iq_topk::naive::rank_cmp`"
                        .to_string(),
                ));
            }
        }
        // Float-literal equality.
        for op in ["==", "!="] {
            let mut from = 0;
            while let Some(rel) = line.code[from..].find(op) {
                let pos = from + rel;
                from = pos + op.len();
                let before = line.code[..pos].trim_end();
                let after = line.code[pos + op.len()..].trim_start();
                // Skip `<=`, `>=`, `=>`, `===`-ish neighbours.
                if before.ends_with(['<', '>', '=', '!']) || after.starts_with('=') {
                    continue;
                }
                if is_float_literal(trailing_token(before))
                    || is_float_literal(leading_token(after))
                {
                    out.push(finding(
                        "raw-score-cmp",
                        file,
                        idx,
                        format!(
                            "float `{op}` comparison: exact float equality bypasses the \
                             ranking convention; compare through `rank_cmp`, a `*_tol` \
                             path, or annotate the exact-zero degeneracy test"
                        ),
                    ));
                }
            }
        }
    }
}

/// Exempt contexts for raw-score-cmp: `rank_cmp` and the tolerance-widened
/// slab paths (`*_tol`).
fn fn_exempt(line: &Line) -> bool {
    line.fn_name
        .as_deref()
        .is_some_and(|f| f == "rank_cmp" || f.ends_with("_tol"))
}

fn is_float_literal(tok: &str) -> bool {
    let tok = tok
        .strip_suffix("f64")
        .or_else(|| tok.strip_suffix("f32"))
        .unwrap_or(tok);
    let tok = tok.strip_prefix('-').unwrap_or(tok);
    if tok.is_empty() || !tok.starts_with(|c: char| c.is_ascii_digit()) {
        return false;
    }
    let has_marker = tok.contains('.') || tok.contains('e') || tok.contains('E');
    has_marker
        && tok
            .chars()
            .all(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-' | '_'))
}

// ---------------------------------------------------------------------------
// Rule 3: undocumented-unsafe
// ---------------------------------------------------------------------------

/// Every `unsafe` block/fn/impl must carry a `// SAFETY:` comment on the
/// same line or within the three lines above it.
fn undocumented_unsafe(file: &SourceFile, out: &mut Vec<Finding>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if token_positions(&line.code, "unsafe").is_empty() {
            continue;
        }
        let documented = file.lines[idx.saturating_sub(3)..=idx]
            .iter()
            .any(|l| l.comment.contains("SAFETY:"));
        if !documented {
            out.push(finding(
                "undocumented-unsafe",
                file,
                idx,
                "`unsafe` without a `// SAFETY:` comment explaining why the \
                 invariants hold"
                    .to_string(),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 4: wallclock-in-core
// ---------------------------------------------------------------------------

/// No wall-clock reads outside `server`/`bench`: `Instant::now` /
/// `SystemTime` in algorithmic crates couples results or control flow to
/// timing, the classic way determinism dies. I/O pacing exceptions (WAL
/// fsync deadlines) carry allow comments.
fn wallclock_in_core(file: &SourceFile, out: &mut Vec<Finding>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for pat in ["Instant::now", "SystemTime"] {
            if !token_positions(&line.code, pat.split("::").next().unwrap()).is_empty()
                && line.code.contains(pat)
            {
                out.push(finding(
                    "wallclock-in-core",
                    file,
                    idx,
                    format!(
                        "wall-clock read (`{pat}`) outside server/bench; results must \
                         not depend on time"
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 5: panic-in-hot-path
// ---------------------------------------------------------------------------

/// Counts `unwrap`/`expect`/`panic!`/`unreachable!` sites in the serving
/// and WAL write paths. Existing debt is frozen in the committed baseline;
/// the budget check happens in [`apply_allows`].
fn panic_in_hot_path(file: &SourceFile, out: &mut Vec<Finding>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for tok in PANIC_TOKENS {
            for _ in 0..line.code.matches(tok).count() {
                out.push(finding(
                    "panic-in-hot-path",
                    file,
                    idx,
                    format!("panic site `{tok}` in a frozen-budget write path"),
                ));
            }
        }
    }
}

/// Panic sites in `file` that survive allow comments — the number a
/// baseline entry must budget for (`--write-baseline`).
pub fn count_panic_sites(file: &SourceFile, _baseline: &Baseline) -> usize {
    let mut raw = Vec::new();
    panic_in_hot_path(file, &mut raw);
    raw.iter()
        .filter(|f| {
            !file
                .allows
                .iter()
                .any(|a| a.rule == f.rule && a.target == f.line)
        })
        .count()
}

// ---------------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------------

fn finding(rule: &'static str, file: &SourceFile, idx: usize, message: String) -> Finding {
    Finding {
        rule,
        level: default_level(rule),
        path: file.rel_path.clone(),
        line: idx + 1,
        message,
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Byte positions of `tok` in `code` with identifier word boundaries.
fn token_positions(code: &str, tok: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = code[from..].find(tok) {
        let pos = from + rel;
        from = pos + tok.len();
        let before_ok = !code[..pos].chars().next_back().is_some_and(is_ident_char);
        let after_ok = !code[pos + tok.len()..]
            .chars()
            .next()
            .is_some_and(is_ident_char);
        if before_ok && after_ok {
            out.push(pos);
        }
    }
    out
}

/// If `rest` starts with `.method(`, returns `method`.
fn leading_method(rest: &str) -> Option<&str> {
    let rest = rest.strip_prefix('.')?;
    let end = rest.find(|c: char| !is_ident_char(c))?;
    rest[end..].starts_with('(').then_some(&rest[..end])
}

/// The identifier ending `s`, if any.
fn trailing_ident(s: &str) -> Option<String> {
    let end = s.len();
    let start = s
        .char_indices()
        .rev()
        .take_while(|&(_, c)| is_ident_char(c))
        .last()
        .map(|(i, _)| i)?;
    let ident = &s[start..end];
    ident
        .starts_with(|c: char| c.is_alphabetic() || c == '_')
        .then(|| ident.to_string())
}

/// The literal-ish token ending `s` (for float-literal tests).
fn trailing_token(s: &str) -> &str {
    let start = s
        .char_indices()
        .rev()
        .take_while(|&(_, c)| is_ident_char(c) || c == '.')
        .last()
        .map(|(i, _)| i)
        .unwrap_or(s.len());
    &s[start..]
}

/// The literal-ish token starting `s`.
fn leading_token(s: &str) -> &str {
    let end = s
        .find(|c: char| !is_ident_char(c) && c != '.')
        .unwrap_or(s.len());
    &s[..end]
}
