//! Report rendering: human text and a hand-rolled JSON mode for CI
//! (std-only crate, so no serde — the escaper below covers the rule
//! messages we emit).

use crate::rules::{Finding, Level};

/// Summary of a lint run.
#[derive(Debug)]
pub struct Report {
    /// All findings, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Builds a report with deterministic ordering.
    pub fn new(mut findings: Vec<Finding>, files_scanned: usize) -> Report {
        findings.sort_by(|a, b| {
            a.path
                .cmp(&b.path)
                .then(a.line.cmp(&b.line))
                .then(a.rule.cmp(b.rule))
        });
        Report {
            findings,
            files_scanned,
        }
    }

    /// True if any finding denies (exit code 1).
    pub fn has_denials(&self) -> bool {
        self.findings.iter().any(|f| f.level == Level::Deny)
    }

    /// Human-readable text report.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}: [{}] {}:{}: {}\n",
                f.level.name(),
                f.rule,
                f.path,
                f.line,
                f.message
            ));
        }
        let denies = self
            .findings
            .iter()
            .filter(|f| f.level == Level::Deny)
            .count();
        let warns = self.findings.len() - denies;
        out.push_str(&format!(
            "iq-lint: {} files scanned, {denies} denied, {warns} warned\n",
            self.files_scanned
        ));
        out
    }

    /// JSON report for CI: `{"files_scanned":N,"denies":N,"warns":N,"findings":[…]}`.
    pub fn json(&self) -> String {
        let denies = self
            .findings
            .iter()
            .filter(|f| f.level == Level::Deny)
            .count();
        let mut out = format!(
            "{{\"files_scanned\":{},\"denies\":{},\"warns\":{},\"findings\":[",
            self.files_scanned,
            denies,
            self.findings.len() - denies
        );
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":{},\"level\":{},\"path\":{},\"line\":{},\"message\":{}}}",
                json_str(f.rule),
                json_str(f.level.name()),
                json_str(&f.path),
                f.line,
                json_str(&f.message)
            ));
        }
        out.push_str("]}\n");
        out
    }
}

/// Minimal JSON string escaper (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(path: &str, line: usize, level: Level) -> Finding {
        Finding {
            rule: "hash-iter-order",
            level,
            path: path.to_string(),
            line,
            message: "msg with \"quotes\"\nand newline".to_string(),
        }
    }

    #[test]
    fn ordering_and_exit_state() {
        let r = Report::new(
            vec![
                finding("b.rs", 1, Level::Warn),
                finding("a.rs", 9, Level::Deny),
            ],
            4,
        );
        assert_eq!(r.findings[0].path, "a.rs");
        assert!(r.has_denials());
        assert!(r.text().contains("4 files scanned, 1 denied, 1 warned"));
    }

    #[test]
    fn json_escapes() {
        let r = Report::new(vec![finding("a.rs", 1, Level::Deny)], 1);
        let j = r.json();
        assert!(j.contains("\\\"quotes\\\""));
        assert!(j.contains("\\n"));
        assert!(j.contains("\"denies\":1"));
    }
}
