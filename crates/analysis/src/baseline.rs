//! Committed panic-budget baseline (`crates/analysis/lint-baseline.txt`).
//!
//! Format: one entry per line, `<rule> <workspace-relative-path> <count>`,
//! `#` comments and blank lines ignored. The counts freeze existing debt:
//! a file exceeding its budget is a deny finding, a file under budget is a
//! warn asking for the baseline to be tightened (`--write-baseline`).

use std::collections::BTreeMap;

/// Parsed baseline: `(rule, path) -> allowed count`.
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    entries: BTreeMap<(String, String), usize>,
}

impl Baseline {
    /// Parses the baseline file text. Returns an error message naming the
    /// offending line on malformed input.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = BTreeMap::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (rule, path, count) = match (parts.next(), parts.next(), parts.next(), parts.next())
            {
                (Some(r), Some(p), Some(c), None) => (r, p, c),
                _ => {
                    return Err(format!(
                        "baseline line {}: expected `<rule> <path> <count>`",
                        i + 1
                    ))
                }
            };
            let count: usize = count
                .parse()
                .map_err(|_| format!("baseline line {}: bad count `{count}`", i + 1))?;
            entries.insert((rule.to_string(), path.to_string()), count);
        }
        Ok(Baseline { entries })
    }

    /// Budget for a (rule, path), if the file has a baseline entry.
    pub fn budget(&self, rule: &str, path: &str) -> Option<usize> {
        self.entries
            .get(&(rule.to_string(), path.to_string()))
            .copied()
    }

    /// Renders a baseline from measured counts, in deterministic order.
    pub fn format(counts: &BTreeMap<(String, String), usize>) -> String {
        let mut out = String::from(
            "# iq-lint panic budgets: frozen debt per hot-path file.\n\
             # Regenerate with `cargo run -p iq-analysis --bin iq-lint -- --write-baseline`\n\
             # only after reviewing why the count moved (DESIGN.md §13).\n",
        );
        for ((rule, path), count) in counts {
            out.push_str(&format!("{rule} {path} {count}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let text = "# comment\n\npanic-in-hot-path crates/server/src/engine.rs 12\n";
        let b = Baseline::parse(text).unwrap();
        assert_eq!(
            b.budget("panic-in-hot-path", "crates/server/src/engine.rs"),
            Some(12)
        );
        assert_eq!(
            b.budget("panic-in-hot-path", "crates/server/src/protocol.rs"),
            None
        );
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(Baseline::parse("panic-in-hot-path only-two-fields\n").is_err());
        assert!(Baseline::parse("panic-in-hot-path a.rs twelve\n").is_err());
    }

    #[test]
    fn format_is_sorted() {
        let mut counts = BTreeMap::new();
        counts.insert(("r".to_string(), "b.rs".to_string()), 2);
        counts.insert(("r".to_string(), "a.rs".to_string()), 1);
        let text = Baseline::format(&counts);
        let a = text.find("r a.rs 1").unwrap();
        let b = text.find("r b.rs 2").unwrap();
        assert!(a < b);
    }
}
