//! Line/token-level Rust source scanner.
//!
//! Deliberately *not* a parser: the offline-build constraint (no external
//! crates, see `crates/compat`) rules out `syn`, and the rules in
//! [`crate::rules`] only need four things a full AST would give us:
//!
//! 1. code with comments removed and string/char-literal contents blanked
//!    (so rule patterns never fire inside literals or docs),
//! 2. which lines sit inside a `#[cfg(test)]` item,
//! 3. the innermost enclosing `fn` name (for per-function exemptions like
//!    `rank_cmp` and the `*_tol` slab paths),
//! 4. the `// iq-lint: allow(<rule>, reason = "...")` escape-hatch comments.
//!
//! The lexer is a small state machine over characters that survives
//! multi-line strings, raw strings, nested block comments, lifetimes vs.
//! char literals, and byte literals. It is heuristic by design; the
//! fixture suite in `tests/` pins the behaviours the rules depend on.

/// One scanned source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// Code with comments removed and literal contents blanked. Character
    /// positions are *not* guaranteed to align with the raw line (blanked
    /// regions collapse to spaces), but token order is preserved.
    pub code: String,
    /// Text of any comment on the line (line and block comments joined).
    pub comment: String,
    /// Whether the line is inside a `#[cfg(test)]` item.
    pub in_test: bool,
    /// Innermost enclosing function name, if any.
    pub fn_name: Option<String>,
}

/// A parsed `iq-lint: allow(<rule>, reason = "...")` comment.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The rule being allowed.
    pub rule: String,
    /// The mandatory reason string; `None` when the comment omitted it
    /// (which is itself a finding — see `allow-missing-reason`).
    pub reason: Option<String>,
    /// 1-based line the comment appears on.
    pub line: usize,
    /// 1-based line the allow applies to: the comment's own line when that
    /// line has code, otherwise the next line with code.
    pub target: usize,
}

/// A fully scanned source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// Owning crate directory name (`core`, `topk`, …) or `root` for the
    /// facade crate's own `src/`.
    pub crate_name: String,
    /// Scanned lines, index 0 = line 1.
    pub lines: Vec<Line>,
    /// All allow comments, resolved to their target lines.
    pub allows: Vec<Allow>,
}

impl SourceFile {
    /// Scans `source` into lines + allows.
    pub fn scan(rel_path: &str, crate_name: &str, source: &str) -> SourceFile {
        let stripped = strip(source);
        let lines = annotate(&stripped);
        let allows = collect_allows(&lines);
        SourceFile {
            rel_path: rel_path.to_string(),
            crate_name: crate_name.to_string(),
            lines,
            allows,
        }
    }
}

/// The crate directory name owning a workspace-relative path.
pub fn crate_of(rel_path: &str) -> &str {
    let mut parts = rel_path.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or("root"),
        _ => "root",
    }
}

// Lexer state that survives line breaks.
enum Mode {
    Code,
    /// Inside a normal (escaped) string literal.
    Str,
    /// Inside a raw string literal with `n` closing hashes.
    RawStr(usize),
    /// Inside a block comment at the given nesting depth.
    Block(usize),
}

/// First pass: split every line into blanked code + comment text.
fn strip(source: &str) -> Vec<(String, String)> {
    let mut mode = Mode::Code;
    let mut out = Vec::new();
    for raw in source.lines() {
        let chars: Vec<char> = raw.chars().collect();
        let mut code = String::with_capacity(chars.len());
        let mut comment = String::new();
        let mut i = 0;
        while i < chars.len() {
            match mode {
                Mode::Block(depth) => {
                    if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        i += 2;
                        if depth == 1 {
                            mode = Mode::Code;
                        } else {
                            mode = Mode::Block(depth - 1);
                        }
                    } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        i += 2;
                        mode = Mode::Block(depth + 1);
                    } else {
                        comment.push(chars[i]);
                        i += 1;
                    }
                    code.push(' ');
                }
                Mode::Str => {
                    if chars[i] == '\\' {
                        i += 2; // skip the escaped char (may run past EOL)
                        code.push(' ');
                    } else if chars[i] == '"' {
                        code.push('"');
                        i += 1;
                        mode = Mode::Code;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                Mode::RawStr(hashes) => {
                    if chars[i] == '"' && closes_raw(&chars, i + 1, hashes) {
                        code.push('"');
                        i += 1 + hashes;
                        mode = Mode::Code;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                Mode::Code => {
                    let c = chars[i];
                    if c == '/' && chars.get(i + 1) == Some(&'/') {
                        comment.push_str(&chars[i + 2..].iter().collect::<String>());
                        break;
                    } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                        mode = Mode::Block(1);
                    } else if c == '"' {
                        code.push('"');
                        i += 1;
                        mode = Mode::Str;
                    } else if (c == 'r' || c == 'b')
                        && !prev_is_ident(&chars, i)
                        && raw_prefix(&chars, i).is_some()
                    {
                        let (hashes, skip) = raw_prefix(&chars, i).unwrap();
                        for _ in 0..skip {
                            code.push(' ');
                        }
                        code.push('"');
                        i += skip + 1;
                        mode = Mode::RawStr(hashes);
                    } else if c == 'b'
                        && !prev_is_ident(&chars, i)
                        && chars.get(i + 1) == Some(&'"')
                    {
                        code.push(' ');
                        code.push('"');
                        i += 2;
                        mode = Mode::Str;
                    } else if c == '\'' || (c == 'b' && chars.get(i + 1) == Some(&'\'')) {
                        let q = if c == 'b' { i + 1 } else { i };
                        if let Some(end) = char_literal_end(&chars, q) {
                            for _ in i..=end {
                                code.push(' ');
                            }
                            i = end + 1;
                        } else {
                            // A lifetime: keep the tick, the ident follows.
                            code.push(c);
                            i += 1;
                        }
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
            }
        }
        out.push((code, comment));
    }
    out
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// `r"`, `r#"`, `br##"`, … starting at `i`: returns `(hashes, chars before
/// the opening quote)`.
fn raw_prefix(chars: &[char], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some((hashes, j - i))
}

fn closes_raw(chars: &[char], from: usize, hashes: usize) -> bool {
    (0..hashes).all(|k| chars.get(from + k) == Some(&'#'))
}

/// If a char literal starts at the `'` at `q`, returns the index of its
/// closing quote; `None` means lifetime.
fn char_literal_end(chars: &[char], q: usize) -> Option<usize> {
    if chars.get(q) != Some(&'\'') {
        return None;
    }
    if chars.get(q + 1) == Some(&'\\') {
        // Escaped literal: scan ahead for the closing quote.
        let mut j = q + 2;
        while j < chars.len() && j < q + 12 {
            if chars[j] == '\'' {
                return Some(j);
            }
            j += 1;
        }
        return None;
    }
    // `'x'` — exactly one char then a quote; anything else is a lifetime.
    (chars.get(q + 2) == Some(&'\'')).then_some(q + 2)
}

/// Second pass: brace-depth tracking for `#[cfg(test)]` regions and
/// enclosing-fn names.
fn annotate(stripped: &[(String, String)]) -> Vec<Line> {
    let mut lines = Vec::with_capacity(stripped.len());
    let mut depth: i32 = 0;
    let mut fn_stack: Vec<(String, i32)> = Vec::new();
    let mut pending_fn: Option<String> = None;
    let mut pending_test = false;
    let mut test_depth: Option<i32> = None;

    for (code, comment) in stripped {
        let in_test_at_start = test_depth.is_some();
        let fn_at_start = fn_stack.last().map(|(n, _)| n.clone());
        let mut pushed_this_line: Option<String> = None;

        if code.contains("cfg(test)") || code.contains("cfg(all(test") {
            pending_test = true;
        }

        let chars: Vec<char> = code.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_alphabetic() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                if word == "fn" {
                    // Capture the following identifier as the fn name.
                    let mut j = i;
                    while j < chars.len() && chars[j].is_whitespace() {
                        j += 1;
                    }
                    let name_start = j;
                    while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                        j += 1;
                    }
                    if j > name_start {
                        pending_fn = Some(chars[name_start..j].iter().collect());
                    }
                    i = j;
                }
                continue;
            }
            match c {
                '{' => {
                    if pending_test {
                        test_depth = Some(depth);
                        pending_test = false;
                    }
                    if let Some(name) = pending_fn.take() {
                        pushed_this_line = Some(name.clone());
                        fn_stack.push((name, depth));
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    while fn_stack.last().is_some_and(|&(_, d)| d == depth) {
                        fn_stack.pop();
                    }
                    if test_depth == Some(depth) {
                        test_depth = None;
                    }
                }
                ';' => {
                    pending_fn = None;
                    pending_test = false;
                }
                _ => {}
            }
            i += 1;
        }

        lines.push(Line {
            code: code.clone(),
            comment: comment.clone(),
            in_test: in_test_at_start || test_depth.is_some(),
            fn_name: pushed_this_line.or(fn_at_start),
        });
    }
    lines
}

/// Extracts `iq-lint: allow(...)` comments and resolves their targets.
fn collect_allows(lines: &[Line]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let Some(parsed) = parse_allow(&line.comment) else {
            continue;
        };
        let target = if line.code.trim().is_empty() {
            // Standalone comment: applies to the next line with code.
            lines[idx + 1..]
                .iter()
                .position(|l| !l.code.trim().is_empty())
                .map(|off| idx + 1 + off + 1)
                .unwrap_or(idx + 1)
        } else {
            idx + 1
        };
        allows.push(Allow {
            rule: parsed.0,
            reason: parsed.1,
            line: idx + 1,
            target,
        });
    }
    allows
}

/// Parses `iq-lint: allow(<rule>[, reason = "..."])` out of a comment.
fn parse_allow(comment: &str) -> Option<(String, Option<String>)> {
    let rest = comment.split("iq-lint:").nth(1)?.trim_start();
    let body = rest.strip_prefix("allow(")?;
    let close = body.rfind(')')?;
    let body = &body[..close];
    let (rule, reason_part) = match body.find(',') {
        Some(comma) => (&body[..comma], Some(&body[comma + 1..])),
        None => (body, None),
    };
    let rule = rule.trim().to_string();
    // Kebab-case rule names only: prose describing the grammar (`<rule>`,
    // `...`) must not parse as a directive, while real typos still do so
    // the unknown-rule check can flag them.
    if rule.is_empty()
        || !rule
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
    {
        return None;
    }
    let reason = reason_part.and_then(|p| {
        let p = p
            .trim()
            .strip_prefix("reason")?
            .trim_start()
            .strip_prefix('=')?;
        let p = p.trim();
        let p = p.strip_prefix('"')?.strip_suffix('"')?;
        (!p.trim().is_empty()).then(|| p.to_string())
    });
    Some((rule, reason))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let f = SourceFile::scan(
            "crates/core/src/x.rs",
            "core",
            "let x = \"HashMap.iter()\"; // HashMap.iter()\nlet y = 1;\n",
        );
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(f.lines[0].comment.contains("HashMap"));
        assert_eq!(f.lines[1].code.trim(), "let y = 1;");
    }

    #[test]
    fn raw_strings_and_block_comments_span_lines() {
        let src = "let s = r#\"a\nHashMap b\"#;\n/* multi\nline HashMap */ let z = 2;\n";
        let f = SourceFile::scan("crates/core/src/x.rs", "core", src);
        assert!(!f.lines.iter().any(|l| l.code.contains("HashMap")));
        assert!(f.lines[3].code.contains("let z = 2;"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = SourceFile::scan(
            "crates/core/src/x.rs",
            "core",
            "fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = 'x'; let e = '\\n'; let u = unsafe_marker;\n",
        );
        assert!(f.lines[0].code.contains("&'a str"));
        assert!(!f.lines[1].code.contains('x'));
        assert!(f.lines[1].code.contains("unsafe_marker"));
    }

    #[test]
    fn cfg_test_region_is_tracked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn live2() {}\n";
        let f = SourceFile::scan("crates/core/src/x.rs", "core", src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[3].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn fn_names_are_tracked() {
        let src = "fn outer() {\n    let a = 1;\n}\nfn rank_cmp() {\n    let b = 2;\n}\n";
        let f = SourceFile::scan("crates/core/src/x.rs", "core", src);
        assert_eq!(f.lines[1].fn_name.as_deref(), Some("outer"));
        assert_eq!(f.lines[4].fn_name.as_deref(), Some("rank_cmp"));
    }

    #[test]
    fn allow_comment_round_trip() {
        let src = "// iq-lint: allow(hash-iter-order, reason = \"sorted before drain\")\nfor k in map.keys() {}\nmap.iter(); // iq-lint: allow(hash-iter-order)\n";
        let f = SourceFile::scan("crates/core/src/x.rs", "core", src);
        assert_eq!(f.allows.len(), 2);
        assert_eq!(f.allows[0].rule, "hash-iter-order");
        assert_eq!(f.allows[0].reason.as_deref(), Some("sorted before drain"));
        assert_eq!(f.allows[0].target, 2);
        assert_eq!(f.allows[1].target, 3);
        assert!(f.allows[1].reason.is_none());
    }

    #[test]
    fn crate_names_resolve() {
        assert_eq!(crate_of("crates/core/src/ese.rs"), "core");
        assert_eq!(crate_of("src/lib.rs"), "root");
    }
}
