//! `iq-lint` CLI. Exit code 0 = clean, 1 = deny findings, 2 = usage or
//! I/O error. See DESIGN.md §13 for the rule catalog.

use iq_analysis::baseline::Baseline;
use iq_analysis::{lint_workspace, measure_baseline, Options};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
iq-lint: determinism-hygiene analyzer for the IQ workspace

USAGE:
    iq-lint [--root DIR] [--baseline FILE] [--deny-all] [--json]
    iq-lint [--root DIR] --write-baseline

OPTIONS:
    --root DIR         Workspace root (default: auto-detect from cwd)
    --baseline FILE    Panic-budget file (default: crates/analysis/lint-baseline.txt)
    --deny-all         Promote every warn to deny (CI mode)
    --json             Machine-readable report on stdout
    --write-baseline   Re-measure panic budgets and rewrite the baseline file
    --help             Show this help
";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut deny_all = false;
    let mut json = false;
    let mut write_baseline = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--baseline" => baseline_path = args.next().map(PathBuf::from),
            "--deny-all" => deny_all = true,
            "--json" => json = true,
            "--write-baseline" => write_baseline = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("iq-lint: unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(find_root) {
        Some(r) => r,
        None => {
            eprintln!(
                "iq-lint: cannot find workspace root (no Cargo.toml with [workspace]); pass --root"
            );
            return ExitCode::from(2);
        }
    };
    let baseline_path =
        baseline_path.unwrap_or_else(|| root.join("crates/analysis/lint-baseline.txt"));

    if write_baseline {
        let counts = measure_baseline(&root);
        let text = Baseline::format(&counts);
        if let Err(e) = std::fs::write(&baseline_path, &text) {
            eprintln!("iq-lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        print!("{text}");
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("iq-lint: {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        },
        Err(e) => {
            eprintln!("iq-lint: cannot read {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
    };

    let report = lint_workspace(&root, &baseline, &Options { deny_all });
    if json {
        print!("{}", report.json());
    } else {
        print!("{}", report.text());
    }
    if report.has_denials() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Walks up from the cwd to the first directory whose Cargo.toml declares a
/// `[workspace]`.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
