//! `iq-lint`: a std-only determinism-hygiene analyzer for this workspace.
//!
//! The engine's correctness story is a set of *byte-identity* invariants
//! (CLAUDE.md): identical results under any thread count, identical serving
//! answers, identical recovery states. Those invariants are easy to break
//! silently — one `HashMap` iteration whose order escapes, one
//! `partial_cmp().unwrap()` that bypasses `rank_cmp`, one wall-clock read in
//! an algorithmic crate. `iq-lint` scans the workspace sources for exactly
//! those patterns. Rule catalog, allow-comment grammar, and the baseline
//! file format are documented in DESIGN.md §13.
//!
//! The crate is deliberately dependency-free (the offline `crates/compat`
//! constraint rules out syn/clippy plugins): [`scanner`] is a line/token
//! lexer that strips comments and blanks string/char literal contents while
//! tracking `#[cfg(test)]` regions and enclosing fn names, and [`rules`]
//! pattern-matches on the stripped code.

pub mod baseline;
pub mod report;
pub mod rules;
pub mod scanner;

use baseline::Baseline;
use report::Report;
use rules::{lint_file, Finding, Level};
use scanner::{crate_of, SourceFile};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// Lint configuration.
#[derive(Debug, Default, Clone)]
pub struct Options {
    /// Promote every warn finding to deny.
    pub deny_all: bool,
}

/// Lints every workspace source file under `root`. Walks `crates/*/src`
/// (skipping the offline `compat` vendor tree and the analyzer's own lint
/// fixtures) plus a root-level `src/` if present; integration `tests/`,
/// `benches/`, and `examples/` trees are out of scope by construction.
pub fn lint_workspace(root: &Path, baseline: &Baseline, options: &Options) -> Report {
    let mut findings: Vec<Finding> = Vec::new();
    let files = workspace_sources(root);
    for path in &files {
        let rel = rel_path(root, path);
        match fs::read_to_string(path) {
            Ok(text) => {
                let file = SourceFile::scan(&rel, crate_of(&rel), &text);
                findings.extend(lint_file(&file, baseline, options.deny_all));
            }
            Err(e) => findings.push(Finding {
                rule: "unused-allow",
                level: Level::Deny,
                path: rel,
                line: 0,
                message: format!("unreadable source file: {e}"),
            }),
        }
    }
    Report::new(findings, files.len())
}

/// Measures current panic-site counts per hot-path file, for
/// `--write-baseline`. Counts ignore `#[cfg(test)]` regions and honor
/// allow comments, mirroring the budget check.
pub fn measure_baseline(root: &Path) -> BTreeMap<(String, String), usize> {
    let empty = Baseline::default();
    let mut counts = BTreeMap::new();
    for rel in rules::HOT_PATH_FILES {
        let path = root.join(rel);
        let Ok(text) = fs::read_to_string(&path) else {
            continue;
        };
        let file = SourceFile::scan(rel, crate_of(rel), &text);
        let count = rules::count_panic_sites(&file, &empty);
        counts.insert(("panic-in-hot-path".to_string(), rel.to_string()), count);
    }
    counts
}

/// All lintable `.rs` files, sorted for deterministic reports.
fn workspace_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates_dir) {
        let mut dirs: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            if dir.file_name().is_some_and(|n| n == "compat") {
                continue;
            }
            collect_rs(&dir.join("src"), &mut out);
        }
    }
    collect_rs(&root.join("src"), &mut out);
    out.retain(|p| !p.components().any(|c| c.as_os_str() == "fixtures"));
    out.sort();
    out
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.filter_map(|e| e.ok()) {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}
