//! Fixture-driven tests: for each rule one fixture that must trip, one
//! that must pass, and one allow-comment round-trip — plus the
//! workspace-clean self-test that enforces the repo-wide acceptance
//! criterion inside `cargo test`.
//!
//! Fixture sources live under `tests/fixtures/<rule>/`; they are data, not
//! compile targets (cargo only builds top-level `tests/*.rs`), and the
//! workspace walker skips any path containing a `fixtures` component so
//! the lint never scans them in situ.

use iq_analysis::baseline::Baseline;
use iq_analysis::rules::{lint_file, Finding, Level};
use iq_analysis::scanner::SourceFile;
use iq_analysis::{lint_workspace, Options};
use std::path::Path;

/// Lints one fixture as if it lived at `rel_path`, with a baseline parsed
/// from `baseline` text.
fn lint_fixture(rule_dir: &str, fixture: &str, rel_path: &str, baseline: &str) -> Vec<Finding> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rule_dir)
        .join(fixture);
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {}: {e}", path.display()));
    let crate_name = rel_path
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap();
    let file = SourceFile::scan(rel_path, crate_name, &source);
    lint_file(&file, &Baseline::parse(baseline).unwrap(), false)
}

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

// --- hash-iter-order ------------------------------------------------------

#[test]
fn hash_iter_order_trips() {
    let f = lint_fixture("hash-iter-order", "trip.rs", "crates/core/src/x.rs", "");
    let rules = rules_of(&f);
    assert_eq!(
        rules.iter().filter(|r| **r == "hash-iter-order").count(),
        3,
        "{f:?}"
    );
}

#[test]
fn hash_iter_order_passes() {
    let f = lint_fixture("hash-iter-order", "pass.rs", "crates/core/src/x.rs", "");
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn hash_iter_order_is_scoped_to_deterministic_crates() {
    // The same tripping source is fine in the server crate.
    let f = lint_fixture("hash-iter-order", "trip.rs", "crates/server/src/x.rs", "");
    assert!(!rules_of(&f).contains(&"hash-iter-order"), "{f:?}");
}

#[test]
fn hash_iter_order_allow_roundtrip() {
    let f = lint_fixture("hash-iter-order", "allowed.rs", "crates/core/src/x.rs", "");
    assert!(f.is_empty(), "reasoned allow must suppress cleanly: {f:?}");
}

// --- raw-score-cmp --------------------------------------------------------

#[test]
fn raw_score_cmp_trips() {
    let f = lint_fixture("raw-score-cmp", "trip.rs", "crates/core/src/x.rs", "");
    // Two partial_cmp().unwrap() sites (one chained across lines) and one
    // float equality.
    assert_eq!(
        rules_of(&f)
            .iter()
            .filter(|r| **r == "raw-score-cmp")
            .count(),
        3,
        "{f:?}"
    );
}

#[test]
fn raw_score_cmp_passes_and_exempts() {
    // total_cmp, unwrap_or, the rank_cmp fn, a `*_tol` fn, and integer
    // equality are all clean.
    let f = lint_fixture("raw-score-cmp", "pass.rs", "crates/core/src/x.rs", "");
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn raw_score_cmp_allow_roundtrip() {
    let f = lint_fixture("raw-score-cmp", "allowed.rs", "crates/core/src/x.rs", "");
    assert!(f.is_empty(), "{f:?}");
}

// --- undocumented-unsafe --------------------------------------------------

#[test]
fn undocumented_unsafe_trips() {
    let f = lint_fixture(
        "undocumented-unsafe",
        "trip.rs",
        "crates/geometry/src/x.rs",
        "",
    );
    assert_eq!(rules_of(&f), vec!["undocumented-unsafe"], "{f:?}");
}

#[test]
fn undocumented_unsafe_passes_with_safety_comment() {
    // Also checks word boundaries: an identifier *named* `unsafe_box` is
    // not the `unsafe` keyword.
    let f = lint_fixture(
        "undocumented-unsafe",
        "pass.rs",
        "crates/geometry/src/x.rs",
        "",
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn undocumented_unsafe_allow_roundtrip() {
    let f = lint_fixture(
        "undocumented-unsafe",
        "allowed.rs",
        "crates/geometry/src/x.rs",
        "",
    );
    assert!(f.is_empty(), "{f:?}");
}

// --- wallclock-in-core ----------------------------------------------------

#[test]
fn wallclock_trips_in_core() {
    let f = lint_fixture(
        "wallclock-in-core",
        "trip.rs",
        "crates/storage/src/x.rs",
        "",
    );
    // Three mentions: Instant::now(), the SystemTime return type, and
    // SystemTime::now() — the rule flags the type too (ISSUE wording: no
    // `SystemTime` outside server/bench), since holding a wall-clock value
    // in a core crate is already a determinism smell.
    assert_eq!(rules_of(&f), vec!["wallclock-in-core"; 3], "{f:?}");
    assert!(
        f.iter().all(|x| x.level == Level::Warn),
        "default level is warn"
    );
}

#[test]
fn wallclock_is_fine_in_server_and_bench() {
    for c in ["server", "bench"] {
        let rel = format!("crates/{c}/src/x.rs");
        let f = lint_fixture("wallclock-in-core", "trip.rs", &rel, "");
        assert!(f.is_empty(), "{c}: {f:?}");
    }
}

#[test]
fn wallclock_passes_without_clock_reads() {
    let f = lint_fixture(
        "wallclock-in-core",
        "pass.rs",
        "crates/storage/src/x.rs",
        "",
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn wallclock_allow_roundtrip() {
    let f = lint_fixture(
        "wallclock-in-core",
        "allowed.rs",
        "crates/storage/src/x.rs",
        "",
    );
    assert!(f.is_empty(), "{f:?}");
}

// --- panic-in-hot-path ----------------------------------------------------

const ENGINE: &str = "crates/server/src/engine.rs";

#[test]
fn panic_budget_rejects_new_debt() {
    // trip.rs has 3 panic sites; a baseline of 2 means one is new debt.
    let baseline = format!("panic-in-hot-path {ENGINE} 2\n");
    let f = lint_fixture("panic-in-hot-path", "trip.rs", ENGINE, &baseline);
    assert_eq!(rules_of(&f), vec!["panic-in-hot-path"], "{f:?}");
    assert_eq!(f[0].level, Level::Deny);
}

#[test]
fn panic_budget_accepts_frozen_debt() {
    let baseline = format!("panic-in-hot-path {ENGINE} 3\n");
    let f = lint_fixture("panic-in-hot-path", "trip.rs", ENGINE, &baseline);
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn panic_budget_requires_a_baseline_entry() {
    let f = lint_fixture("panic-in-hot-path", "trip.rs", ENGINE, "");
    assert_eq!(rules_of(&f), vec!["panic-in-hot-path"], "{f:?}");
}

#[test]
fn panic_budget_warns_when_stale() {
    // pass.rs has 0 non-test panic sites; a baseline of 2 is stale.
    let baseline = format!("panic-in-hot-path {ENGINE} 2\n");
    let f = lint_fixture("panic-in-hot-path", "pass.rs", ENGINE, &baseline);
    assert_eq!(rules_of(&f), vec!["stale-baseline"], "{f:?}");
    assert_eq!(f[0].level, Level::Warn);
}

#[test]
fn panic_budget_ignores_cfg_test_and_other_files() {
    let baseline = format!("panic-in-hot-path {ENGINE} 0\n");
    let f = lint_fixture("panic-in-hot-path", "pass.rs", ENGINE, &baseline);
    assert!(
        f.is_empty(),
        "unwraps inside #[cfg(test)] must not count: {f:?}"
    );
    // The rule only applies to the three hot-path files.
    let f = lint_fixture(
        "panic-in-hot-path",
        "trip.rs",
        "crates/server/src/other.rs",
        "",
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn panic_budget_allow_roundtrip() {
    let baseline = format!("panic-in-hot-path {ENGINE} 0\n");
    let f = lint_fixture("panic-in-hot-path", "allowed.rs", ENGINE, &baseline);
    assert!(
        f.is_empty(),
        "allowed site must not count against the budget: {f:?}"
    );
}

// --- allow-comment hygiene ------------------------------------------------

#[test]
fn allow_without_reason_is_denied() {
    let src = "pub fn f(a: f64) -> bool {\n    a == 0.0 // iq-lint: allow(raw-score-cmp)\n}\n";
    let file = SourceFile::scan("crates/core/src/x.rs", "core", src);
    let f = lint_file(&file, &Baseline::default(), false);
    assert!(rules_of(&f).contains(&"allow-missing-reason"), "{f:?}");
}

#[test]
fn unused_allow_warns_and_unknown_rule_denies() {
    let src = "// iq-lint: allow(raw-score-cmp, reason = \"nothing here\")\npub fn f() {}\n\
               // iq-lint: allow(no-such-rule, reason = \"typo\")\npub fn g() {}\n";
    let file = SourceFile::scan("crates/core/src/x.rs", "core", src);
    let f = lint_file(&file, &Baseline::default(), false);
    let unused: Vec<_> = f.iter().filter(|x| x.rule == "unused-allow").collect();
    assert_eq!(unused.len(), 2, "{f:?}");
    assert!(unused
        .iter()
        .any(|x| x.level == Level::Warn && x.message.contains("suppresses nothing")));
    assert!(unused
        .iter()
        .any(|x| x.level == Level::Deny && x.message.contains("no-such-rule")));
}

#[test]
fn deny_all_promotes_warns() {
    let f = {
        let path =
            Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/wallclock-in-core/trip.rs");
        let src = std::fs::read_to_string(path).unwrap();
        let file = SourceFile::scan("crates/storage/src/x.rs", "storage", &src);
        lint_file(&file, &Baseline::default(), true)
    };
    assert!(!f.is_empty());
    assert!(f.iter().all(|x| x.level == Level::Deny), "{f:?}");
}

// --- the workspace itself -------------------------------------------------

/// The repo-wide acceptance criterion, enforced in `cargo test`: the
/// workspace is iq-lint clean under `--deny-all`, with every allow
/// carrying a reason.
#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let baseline_text =
        std::fs::read_to_string(root.join("crates/analysis/lint-baseline.txt")).unwrap();
    let baseline = Baseline::parse(&baseline_text).unwrap();
    let report = lint_workspace(&root, &baseline, &Options { deny_all: true });
    assert!(report.files_scanned > 50, "walker found too few files");
    assert!(
        report.findings.is_empty(),
        "workspace must be iq-lint clean:\n{}",
        report.text()
    );
}
