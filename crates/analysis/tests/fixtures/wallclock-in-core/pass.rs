use std::time::Duration;

pub fn fixed_interval() -> Duration {
    Duration::from_millis(5)
}
