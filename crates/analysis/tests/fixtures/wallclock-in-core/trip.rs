use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}

pub fn epoch() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
