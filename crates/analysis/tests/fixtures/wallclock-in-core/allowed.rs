use std::time::Instant;

pub fn pacing() -> Instant {
    Instant::now() // iq-lint: allow(wallclock-in-core, reason = "I/O pacing only, never data")
}
