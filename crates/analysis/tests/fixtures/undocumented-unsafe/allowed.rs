pub fn read(p: *const u8) -> u8 {
    // iq-lint: allow(undocumented-unsafe, reason = "safety argued in the module docs")
    unsafe { *p }
}
