pub fn read(p: *const u8) -> u8 {
    // SAFETY: the caller guarantees `p` points at a live, initialized byte.
    unsafe { *p }
}

pub fn unsafe_sounding_name_is_fine(unsafe_box: u8) -> u8 {
    unsafe_box
}
