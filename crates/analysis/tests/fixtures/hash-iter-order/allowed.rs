use std::collections::HashMap;

pub fn sorted_before_escape(m: &HashMap<u32, u32>) -> Vec<u32> {
    // iq-lint: allow(hash-iter-order, reason = "keys are sorted before the order escapes")
    let mut out: Vec<u32> = m.keys().copied().collect();
    out.sort_unstable();
    out
}
