use std::collections::{BTreeMap, HashMap};

pub fn lookups_are_fine(m: &HashMap<u32, u32>) -> Option<u32> {
    m.get(&1).copied()
}

pub fn btree_iteration_is_fine(bt: &BTreeMap<u32, u32>) -> Vec<u32> {
    bt.keys().copied().collect()
}

pub fn insert_remove(m: &mut HashMap<u32, u32>) {
    m.insert(1, 2);
    m.remove(&1);
}
