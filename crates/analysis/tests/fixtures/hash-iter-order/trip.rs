use std::collections::HashMap;

pub fn escape_order(m: &HashMap<u32, u32>) -> Vec<u32> {
    let mut out = Vec::new();
    for (k, _) in m {
        out.push(*k);
    }
    out.extend(m.keys());
    out
}

pub fn drain_order() {
    let mut s = HashMap::new();
    s.insert(1u32, 2u32);
    for x in s.drain() {
        let _ = x;
    }
}
