pub fn handled(v: Option<u32>, w: Option<u32>) -> Result<u32, String> {
    let a = v.ok_or("v missing")?;
    let b = w.ok_or("w missing")?;
    Ok(a + b)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_free() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
