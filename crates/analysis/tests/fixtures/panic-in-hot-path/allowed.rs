pub fn poisoned_lock_is_fatal(v: Option<u32>) -> u32 {
    v.unwrap() // iq-lint: allow(panic-in-hot-path, reason = "poisoned state must not serve reads")
}
