pub fn three_sites(v: Option<u32>, w: Option<u32>) -> u32 {
    let a = v.unwrap();
    let b = w.expect("w must be set");
    if a + b == 0 {
        panic!("impossible");
    }
    a + b
}
