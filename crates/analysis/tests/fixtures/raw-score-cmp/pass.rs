pub fn total(a: f64, b: f64) -> std::cmp::Ordering {
    a.total_cmp(&b)
}

pub fn tolerant(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal)
}

pub fn rank_cmp(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).unwrap()
}

pub fn search_tol(a: f64) -> bool {
    a == 0.0
}

pub fn int_eq(a: u32) -> bool {
    a == 0
}
