pub fn degenerate(denom: f64) -> bool {
    denom == 0.0 // iq-lint: allow(raw-score-cmp, reason = "exact-zero degeneracy test")
}
