pub fn compare(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).unwrap()
}

pub fn chained(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b)
        .unwrap()
}

pub fn exact(a: f64) -> bool {
    a == 0.0
}
