//! Maximum rank query (Mouratidis, Zhang & Pang, VLDB 2015) — the §2
//! related-work query the paper contrasts improvement queries against:
//! *"the maximum rank is not achieved by adjusting attributes of the object
//! itself, but by exploring different utility functions"*.
//!
//! Given a target object, find the best (smallest) rank it can reach under
//! **any** linear utility function. For two attributes the answer is exact:
//! with normalized weights `q = (t, 1 − t)`, every object is a line over
//! `t ∈ [0, 1]`, the target's rank only changes where its line crosses
//! another object's (discovered with the plane-sweep substrate), so
//! scanning the crossing parameters in order yields the true minimum. For
//! higher dimensions a deterministic grid-plus-jitter sampler gives an
//! upper bound on the best rank.

use crate::naive::rank_of;
use iq_geometry::sweep::line_intersections_1d;

/// Result of a maximum rank query.
#[derive(Debug, Clone, PartialEq)]
pub struct MaxRankResult {
    /// The best (1-based) rank achievable.
    pub rank: usize,
    /// A weight vector achieving it.
    pub weights: Vec<f64>,
}

/// Exact maximum rank for 2-attribute datasets over the normalized weight
/// family `q = (t, 1 − t)`, `t ∈ [0, 1]`.
///
/// # Panics
/// Panics unless all objects are 2-dimensional.
pub fn max_rank_2d(objects: &[Vec<f64>], target: usize) -> MaxRankResult {
    assert!(
        objects.iter().all(|o| o.len() == 2),
        "max_rank_2d requires 2-dimensional objects"
    );
    // Each object is the line f(t) = (a − b)·t + b over t ∈ [0, 1].
    let funcs: Vec<(f64, f64)> = objects.iter().map(|o| (o[0] - o[1], o[1])).collect();

    // The target's rank is piecewise constant between crossings of its own
    // line with the others; evaluate one point per piece.
    let mut cuts: Vec<f64> = line_intersections_1d(&funcs, 0.0, 1.0)
        .into_iter()
        .filter(|&(i, j, _)| i == target || j == target)
        .map(|(_, _, t)| t)
        .collect();
    cuts.push(0.0);
    cuts.push(1.0);
    cuts.sort_by(|a, b| a.total_cmp(b));
    cuts.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

    let mut best = MaxRankResult {
        rank: usize::MAX,
        weights: vec![0.0, 1.0],
    };
    let mut consider = |t: f64| {
        let w = vec![t, 1.0 - t];
        let r = rank_of(objects, &w, target);
        if r < best.rank {
            best = MaxRankResult {
                rank: r,
                weights: w,
            };
        }
    };
    // Piece midpoints plus the boundary parameters (ties live there).
    for pair in cuts.windows(2) {
        consider(0.5 * (pair[0] + pair[1]));
    }
    for &t in &cuts {
        consider(t.clamp(0.0, 1.0));
    }
    best
}

/// Sampled maximum rank for arbitrary dimensionality: a deterministic
/// lattice of normalized weight vectors. Returns an upper bound on the
/// optimum (tight as `resolution` grows; exact in the 1-piece-per-cell
/// regime).
pub fn max_rank_sampled(objects: &[Vec<f64>], target: usize, resolution: usize) -> MaxRankResult {
    let d = objects.first().map_or(0, |o| o.len());
    assert!(d >= 1, "empty objects");
    let mut best = MaxRankResult {
        rank: usize::MAX,
        weights: vec![1.0 / d as f64; d],
    };
    let mut stack = vec![Vec::with_capacity(d)];
    // Enumerate compositions of `resolution` into d parts (simplex grid).
    while let Some(prefix) = stack.pop() {
        if prefix.len() == d - 1 {
            let used: usize = prefix.iter().sum();
            if used <= resolution {
                let mut w: Vec<f64> = prefix
                    .iter()
                    .map(|&k: &usize| k as f64 / resolution as f64)
                    .collect();
                w.push((resolution - used) as f64 / resolution as f64);
                let r = rank_of(objects, &w, target);
                if r < best.rank {
                    best = MaxRankResult {
                        rank: r,
                        weights: w,
                    };
                }
            }
            continue;
        }
        let used: usize = prefix.iter().sum();
        for k in 0..=(resolution - used) {
            let mut next = prefix.clone();
            next.push(k);
            stack.push(next);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        }
    }

    #[test]
    fn skyline_object_can_reach_rank_one() {
        // Each skyline object wins for some weight: the extremes at the
        // interval ends, the (strictly inside the hull's lower boundary)
        // balanced object in the middle.
        let objects = vec![vec![0.9, 0.1], vec![0.1, 0.9], vec![0.45, 0.45]];
        let r = max_rank_2d(&objects, 0);
        assert_eq!(r.rank, 1);
        let r = max_rank_2d(&objects, 1);
        assert_eq!(r.rank, 1);
        let r = max_rank_2d(&objects, 2);
        assert_eq!(r.rank, 1);
    }

    #[test]
    fn dominated_object_never_first() {
        // Object 2 is dominated by object 0: its best possible rank is 2.
        let objects = vec![vec![0.2, 0.2], vec![0.9, 0.05], vec![0.4, 0.4]];
        let r = max_rank_2d(&objects, 2);
        // Dominated by object 0 forever; beats object 1 once t > 0.41.
        assert_eq!(r.rank, 2);
        // Sanity: the returned weights actually realize the rank.
        assert_eq!(rank_of(&objects, &r.weights, 2), r.rank);
    }

    #[test]
    fn exact_beats_or_matches_dense_sampling() {
        let mut rnd = lcg(17);
        for trial in 0..10 {
            let n = 10 + trial;
            let objects: Vec<Vec<f64>> = (0..n).map(|_| vec![rnd(), rnd()]).collect();
            for target in [0usize, n / 2, n - 1] {
                let exact = max_rank_2d(&objects, target);
                assert_eq!(
                    rank_of(&objects, &exact.weights, target),
                    exact.rank,
                    "witness weights inconsistent"
                );
                let sampled = max_rank_sampled(&objects, target, 400);
                assert!(
                    exact.rank <= sampled.rank,
                    "trial {trial}, target {target}: exact {} worse than sampled {}",
                    exact.rank,
                    sampled.rank
                );
                // A dense 1-D grid should usually find the same optimum.
                assert!(
                    sampled.rank <= exact.rank + 1,
                    "sampling unexpectedly far off: {} vs {}",
                    sampled.rank,
                    exact.rank
                );
            }
        }
    }

    #[test]
    fn sampled_works_in_higher_dimensions() {
        let mut rnd = lcg(23);
        let objects: Vec<Vec<f64>> = (0..30).map(|_| vec![rnd(), rnd(), rnd()]).collect();
        for target in [0usize, 15, 29] {
            let r = max_rank_sampled(&objects, target, 12);
            assert!(r.rank >= 1 && r.rank <= 30);
            assert_eq!(rank_of(&objects, &r.weights, target), r.rank);
            let sum: f64 = r.weights.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn single_object_is_always_first() {
        let objects = vec![vec![0.3, 0.7]];
        assert_eq!(max_rank_2d(&objects, 0).rank, 1);
        assert_eq!(max_rank_sampled(&objects, 0, 4).rank, 1);
    }
}
