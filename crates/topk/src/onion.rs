//! The Onion top-k index (Chang et al., SIGMOD 2000) for two-dimensional
//! data — the layer-based related-work technique of §2: data points are
//! peeled into convex layers, and because the optimum of a linear utility
//! over any point set lies on its convex hull, the `i`-th ranked object is
//! guaranteed to appear within the first `i` layers. A top-k query
//! therefore evaluates only the objects of the outermost `k` layers.

use crate::naive::rank_cmp;
use iq_geometry::hull::onion_layers;

/// Convex-layer index over a 2-D dataset.
#[derive(Debug, Clone)]
pub struct OnionIndex {
    layers: Vec<Vec<usize>>,
    num_objects: usize,
}

impl OnionIndex {
    /// Builds the index.
    ///
    /// # Panics
    /// Panics unless every object is 2-dimensional (the onion construction
    /// here relies on the planar convex hull; higher dimensions fall back to
    /// the other schemes in this crate).
    pub fn build(objects: &[Vec<f64>]) -> Self {
        assert!(
            objects.iter().all(|o| o.len() == 2),
            "OnionIndex supports 2-dimensional objects only"
        );
        let pts: Vec<(f64, f64)> = objects.iter().map(|o| (o[0], o[1])).collect();
        OnionIndex {
            layers: onion_layers(&pts),
            num_objects: objects.len(),
        }
    }

    /// Number of convex layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.num_objects
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.num_objects == 0
    }

    /// Rough in-memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.num_objects * 8 + self.layers.len() * 24
    }

    /// Evaluates a top-k query by scoring only the first `k` layers.
    pub fn top_k(&self, objects: &[Vec<f64>], weights: &[f64], k: usize) -> Vec<usize> {
        let k = k.min(self.num_objects);
        if k == 0 {
            return Vec::new();
        }
        let mut candidates: Vec<(f64, usize)> = Vec::new();
        for layer in self.layers.iter().take(k) {
            for &i in layer {
                candidates.push((iq_geometry::vector::dot(&objects[i], weights), i));
            }
        }
        candidates.sort_by(|a, b| rank_cmp(a.0, a.1, b.0, b.1));
        candidates.truncate(k);
        candidates.into_iter().map(|(_, i)| i).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        }
    }

    #[test]
    fn matches_naive_on_random_data() {
        let mut rnd = lcg(11);
        let objects: Vec<Vec<f64>> = (0..300).map(|_| vec![rnd(), rnd()]).collect();
        let idx = OnionIndex::build(&objects);
        assert!(idx.num_layers() > 1);
        for trial in 0..20 {
            // Weights may be negative: the hull bound holds for any linear
            // utility, not just positive quadrant ones.
            let w = vec![rnd() * 2.0 - 1.0, rnd() * 2.0 - 1.0];
            for k in [1usize, 2, 5, 10] {
                assert_eq!(
                    idx.top_k(&objects, &w, k),
                    naive::top_k(&objects, &w, k),
                    "trial {trial} k={k}"
                );
            }
        }
    }

    #[test]
    fn evaluates_fewer_objects_than_naive() {
        let mut rnd = lcg(3);
        let objects: Vec<Vec<f64>> = (0..500).map(|_| vec![rnd(), rnd()]).collect();
        let idx = OnionIndex::build(&objects);
        let scanned: usize = idx.layers.iter().take(3).map(Vec::len).sum();
        assert!(
            scanned < objects.len() / 3,
            "top-3 should touch a fraction of the data, touched {scanned}"
        );
    }

    #[test]
    fn k_exceeds_layers() {
        let objects = vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0]];
        let idx = OnionIndex::build(&objects);
        assert_eq!(idx.top_k(&objects, &[1.0, 1.0], 10).len(), 3);
    }

    #[test]
    fn empty_dataset() {
        let idx = OnionIndex::build(&[]);
        assert!(idx.is_empty());
        assert!(idx.top_k(&[], &[1.0, 1.0], 5).is_empty());
    }

    #[test]
    #[should_panic]
    fn non_planar_rejected() {
        let _ = OnionIndex::build(&[vec![1.0, 2.0, 3.0]]);
    }
}
