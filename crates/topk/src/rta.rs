//! The Reverse top-k Threshold Algorithm (RTA) of Vlachou et al. (TKDE
//! 2011) — the evaluation comparator the paper builds its `RTA-IQ` baseline
//! from (§6.1).
//!
//! A (bichromatic) reverse top-k query asks: *which of the given top-k
//! queries contain object `p` in their result?* RTA's insight is that
//! similar weight vectors have similar top-k results, so queries are
//! processed in sorted order while keeping the previous query's result as a
//! candidate buffer. For the current query, if `k` buffered objects already
//! score better than `p`, then `p` certainly misses the result and the full
//! `O(n)` evaluation is skipped; otherwise the query is evaluated exactly
//! and the buffer refreshed. The skip test is one-sided, so the algorithm
//! is exact — the buffer only saves work, never changes answers.

use crate::naive::{rank_cmp, top_k_flat, TopKQuery};
use iq_geometry::matrix::FlatMatrix;

/// Result of a reverse top-k evaluation, with work accounting.
#[derive(Debug, Clone)]
pub struct RtaResult {
    /// Indices of queries whose top-k contains the target.
    pub hits: Vec<usize>,
    /// Number of queries that required a full dataset evaluation.
    pub full_evaluations: usize,
}

/// Runs RTA: returns the queries hit by `target` plus work statistics.
///
/// Thin wrapper over [`reverse_top_k_flat`]: materialises the nested rows
/// into a [`FlatMatrix`] once (`O(n·d)`, dwarfed by even a single full
/// evaluation) and evaluates through the batched kernels. Callers that
/// keep a flat copy alive across calls should use the `_flat` entry point
/// directly.
pub fn reverse_top_k(objects: &[Vec<f64>], queries: &[TopKQuery], target: usize) -> RtaResult {
    let dim = objects.first().map_or(0, |o| o.len());
    let flat = FlatMatrix::from_rows(dim, objects);
    reverse_top_k_flat(&flat, queries, target)
}

/// Runs RTA over a flat object matrix; the hot path of the `RTA-IQ`
/// comparator. Full evaluations score through
/// [`crate::naive::top_k_flat`] with one scratch buffer reused across all
/// queries, so the steady state allocates only the candidate buffers.
pub fn reverse_top_k_flat(objects: &FlatMatrix, queries: &[TopKQuery], target: usize) -> RtaResult {
    // Process queries in lexicographic weight order so neighbours are
    // similar; remember the original index to report hits.
    let mut order: Vec<usize> = (0..queries.len()).collect();
    // Lexicographic Vec<f64> ordering; weights are finite by construction
    // and the order only affects visit sequence, never the hit set
    // (clippy.toml disallowed-methods).
    #[allow(clippy::disallowed_methods)]
    order.sort_by(|&a, &b| {
        queries[a]
            .weights
            .partial_cmp(&queries[b].weights)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut buffer: Vec<usize> = Vec::new();
    let mut hits = Vec::new();
    let mut full_evaluations = 0usize;
    let mut scratch: Vec<f64> = Vec::new();

    for &qi in &order {
        let q = &queries[qi];
        let t_score = objects.dot_row(target, &q.weights);

        // Threshold test against the buffered candidates.
        let better = buffer
            .iter()
            .filter(|&&b| {
                b != target
                    && rank_cmp(objects.dot_row(b, &q.weights), b, t_score, target)
                        == std::cmp::Ordering::Less
            })
            .count();
        if better >= q.k {
            continue; // certainly not in the top-k; skip full evaluation
        }

        full_evaluations += 1;
        // One pass computes both the result and the refreshed buffer: the
        // buffer keeps one extra entry so near-misses of the next query can
        // still disqualify.
        buffer = top_k_flat(objects, &q.weights, q.k + 1, &mut scratch);
        if buffer[..q.k.min(buffer.len())].contains(&target) {
            hits.push(qi);
        }
    }
    hits.sort_unstable();
    RtaResult {
        hits,
        full_evaluations,
    }
}

/// Convenience: just the hit count `H(target)`.
pub fn hit_count(objects: &[Vec<f64>], queries: &[TopKQuery], target: usize) -> usize {
    reverse_top_k(objects, queries, target).hits.len()
}

/// [`hit_count`] over a flat object matrix.
pub fn hit_count_flat(objects: &FlatMatrix, queries: &[TopKQuery], target: usize) -> usize {
    reverse_top_k_flat(objects, queries, target).hits.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reverse::reverse_top_k_naive;

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        }
    }

    #[test]
    fn matches_naive_small() {
        let objects = vec![
            vec![1.0, 5.0],
            vec![2.0, 2.0],
            vec![5.0, 1.0],
            vec![3.0, 3.0],
        ];
        let queries = vec![
            TopKQuery::new(vec![1.0, 0.0], 2),
            TopKQuery::new(vec![0.0, 1.0], 2),
            TopKQuery::new(vec![0.5, 0.5], 1),
            TopKQuery::new(vec![0.7, 0.3], 3),
        ];
        for target in 0..objects.len() {
            let got = reverse_top_k(&objects, &queries, target).hits;
            let want = reverse_top_k_naive(&objects, &queries, target);
            assert_eq!(got, want, "target {target}");
        }
    }

    #[test]
    fn matches_naive_random() {
        let mut rnd = lcg(77);
        let objects: Vec<Vec<f64>> = (0..150).map(|_| vec![rnd(), rnd(), rnd()]).collect();
        let queries: Vec<TopKQuery> = (0..200)
            .map(|_| TopKQuery::new(vec![rnd(), rnd(), rnd()], 1 + (rnd() * 10.0) as usize))
            .collect();
        for target in [0usize, 17, 63] {
            let got = reverse_top_k(&objects, &queries, target);
            let want = reverse_top_k_naive(&objects, &queries, target);
            assert_eq!(got.hits, want, "target {target}");
        }
    }

    #[test]
    fn buffer_actually_skips_work() {
        // Clustered queries + an uncompetitive target: most queries should
        // be pruned by the threshold test.
        let mut rnd = lcg(5);
        let mut objects: Vec<Vec<f64>> = (0..100).map(|_| vec![rnd() * 0.5, rnd() * 0.5]).collect();
        objects.push(vec![0.99, 0.99]); // hopeless target, id 100
        let queries: Vec<TopKQuery> = (0..100)
            .map(|i| {
                let t = 0.4 + 0.2 * (i as f64 / 100.0);
                TopKQuery::new(vec![t, 1.0 - t], 5)
            })
            .collect();
        let res = reverse_top_k(&objects, &queries, 100);
        assert!(res.hits.is_empty());
        assert!(
            res.full_evaluations < queries.len() / 2,
            "expected pruning, got {} full evaluations out of {}",
            res.full_evaluations,
            queries.len()
        );
    }

    #[test]
    fn popular_target_hits_everything() {
        let objects = vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![2.0, 2.0]];
        let queries: Vec<TopKQuery> = (1..5)
            .map(|i| TopKQuery::new(vec![i as f64 * 0.1, 0.3], 1))
            .collect();
        let res = reverse_top_k(&objects, &queries, 0);
        assert_eq!(res.hits.len(), queries.len());
    }

    #[test]
    fn empty_queries() {
        let objects = vec![vec![1.0]];
        let res = reverse_top_k(&objects, &[], 0);
        assert!(res.hits.is_empty());
        assert_eq!(res.full_evaluations, 0);
    }
}
