//! Naive top-k evaluation — the correctness oracle every other scheme in
//! this crate (and the ESE machinery in `iq-core`) is tested against.
//!
//! Ranking convention (fixed across the whole workspace, from Eq. 6 of the
//! paper): **lower score is better**, ties broken by smaller object id, so
//! every ranking is a total order.
//!
//! Two evaluation layouts are supported with bit-identical results: the
//! nested `&[Vec<f64>]` functions ([`top_k`], [`full_ranking`],
//! [`rank_of`]) and `_flat` variants over
//! [`iq_geometry::matrix::FlatMatrix`] that score through the batched
//! kernels into a caller-held scratch buffer. Both funnel into the same
//! selection routines ([`top_k_from_scores`],
//! [`full_ranking_from_scores`]), so the choice of layout can never change
//! a ranking.

use iq_geometry::matrix::FlatMatrix;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A top-k query: a weight vector and a result size.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKQuery {
    /// Per-attribute weights (the query point in function-domain space).
    pub weights: Vec<f64>,
    /// Number of objects to return.
    pub k: usize,
}

impl TopKQuery {
    /// Creates a query.
    pub fn new(weights: Vec<f64>, k: usize) -> Self {
        assert!(k > 0, "top-k query requires k ≥ 1");
        TopKQuery { weights, k }
    }
}

/// The linear score of an object under a weight vector.
#[inline]
pub fn score(object: &[f64], weights: &[f64]) -> f64 {
    iq_geometry::vector::dot(object, weights)
}

/// Compares two objects under a query: score ascending, id ascending.
// The one blessed partial_cmp: NaN scores collapse to Equal (id breaks the
// tie) instead of total_cmp's sign-dependent NaN ordering, and every ranking
// in the workspace routes through here (clippy.toml disallowed-methods).
#[allow(clippy::disallowed_methods)]
#[inline]
pub fn rank_cmp(a_score: f64, a_id: usize, b_score: f64, b_id: usize) -> std::cmp::Ordering {
    a_score
        .partial_cmp(&b_score)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then(a_id.cmp(&b_id))
}

// Max-heap entry ordered by `rank_cmp`, shared by every bounded-selection
// path in this module so the k-best logic exists exactly once.
#[derive(PartialEq)]
struct Worst(f64, usize);
impl Eq for Worst {}
impl PartialOrd for Worst {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Worst {
    fn cmp(&self, other: &Self) -> Ordering {
        rank_cmp(self.0, self.1, other.0, other.1)
    }
}

// Bounded max-heap selection of the `k` rank-smallest scores, best first.
// `k` must already be clamped to the stream length. The only allocations
// are the heap (once, `k + 1` slots) and the returned id vector:
// `into_sorted_vec` sorts the heap's own buffer in place instead of
// collecting into an intermediate `(score, id)` vector.
fn smallest_k(scores: impl Iterator<Item = f64>, k: usize) -> Vec<usize> {
    if k == 0 {
        return Vec::new();
    }
    let mut heap: BinaryHeap<Worst> = BinaryHeap::with_capacity(k + 1);
    for (i, s) in scores.enumerate() {
        if heap.len() < k {
            heap.push(Worst(s, i));
        } else if let Some(top) = heap.peek() {
            if rank_cmp(s, i, top.0, top.1) == Ordering::Less {
                heap.pop();
                heap.push(Worst(s, i));
            }
        }
    }
    heap.into_sorted_vec().into_iter().map(|w| w.1).collect()
}

/// The ids of the `k` best objects for the query, best first.
///
/// Runs one pass with a bounded max-heap: `O(n log k)`.
pub fn top_k(objects: &[Vec<f64>], weights: &[f64], k: usize) -> Vec<usize> {
    let k = k.min(objects.len());
    smallest_k(objects.iter().map(|o| score(o, weights)), k)
}

/// [`top_k`] over a flat matrix: scores every row through the batched
/// kernel into `scratch`, then selects. Bit-identical to
/// `top_k(&nested, weights, k)` for the same rows.
pub fn top_k_flat(
    objects: &FlatMatrix,
    weights: &[f64],
    k: usize,
    scratch: &mut Vec<f64>,
) -> Vec<usize> {
    objects.scores_into(weights, scratch);
    top_k_from_scores(scratch, k)
}

/// Selects the ids of the `k` rank-smallest entries of a score slice,
/// best first (`scores[i]` is object `i`'s score).
pub fn top_k_from_scores(scores: &[f64], k: usize) -> Vec<usize> {
    let k = k.min(scores.len());
    smallest_k(scores.iter().copied(), k)
}

/// The full ranking of all objects for the query (best first).
pub fn full_ranking(objects: &[Vec<f64>], weights: &[f64]) -> Vec<usize> {
    let scores: Vec<f64> = objects.iter().map(|o| score(o, weights)).collect();
    full_ranking_from_scores(&scores)
}

/// [`full_ranking`] over a flat matrix with a reusable scratch buffer.
pub fn full_ranking_flat(
    objects: &FlatMatrix,
    weights: &[f64],
    scratch: &mut Vec<f64>,
) -> Vec<usize> {
    objects.scores_into(weights, scratch);
    full_ranking_from_scores(scratch)
}

/// Ranks every id of a score slice, best first.
pub fn full_ranking_from_scores(scores: &[f64]) -> Vec<usize> {
    let mut ids: Vec<usize> = (0..scores.len()).collect();
    ids.sort_by(|&a, &b| rank_cmp(scores[a], a, scores[b], b));
    ids
}

/// The 1-based rank of `target` under the query.
pub fn rank_of(objects: &[Vec<f64>], weights: &[f64], target: usize) -> usize {
    let ts = score(&objects[target], weights);
    1 + objects
        .iter()
        .enumerate()
        .filter(|&(i, o)| {
            i != target && rank_cmp(score(o, weights), i, ts, target) == std::cmp::Ordering::Less
        })
        .count()
}

/// [`rank_of`] over a flat matrix.
pub fn rank_of_flat(objects: &FlatMatrix, weights: &[f64], target: usize) -> usize {
    let ts = objects.dot_row(target, weights);
    1 + (0..objects.rows())
        .filter(|&i| {
            i != target
                && rank_cmp(objects.dot_row(i, weights), i, ts, target) == std::cmp::Ordering::Less
        })
        .count()
}

/// Whether `target` is in the query's top-k.
pub fn hits(objects: &[Vec<f64>], query: &TopKQuery, target: usize) -> bool {
    rank_of(objects, &query.weights, target) <= query.k
}

/// The score of the `k`-th best object **excluding** `exclude` — the
/// admission threshold an improved target must beat (cf. Eq. 6). Returns
/// `(object id, score)`, or `None` when fewer than `k` other objects exist.
pub fn kth_best_excluding(
    objects: &[Vec<f64>],
    weights: &[f64],
    k: usize,
    exclude: usize,
) -> Option<(usize, f64)> {
    let excluded = if exclude < objects.len() { 1 } else { 0 };
    if objects.len() < k + excluded {
        return None;
    }
    kth_of_stream(
        objects
            .iter()
            .enumerate()
            .map(|(i, o)| (i, score(o, weights))),
        k,
        exclude,
    )
}

/// [`kth_best_excluding`] over a flat matrix.
pub fn kth_best_excluding_flat(
    objects: &FlatMatrix,
    weights: &[f64],
    k: usize,
    exclude: usize,
) -> Option<(usize, f64)> {
    let n = objects.rows();
    let excluded = if exclude < n { 1 } else { 0 };
    if n < k + excluded {
        return None;
    }
    kth_of_stream((0..n).map(|i| (i, objects.dot_row(i, weights))), k, exclude)
}

// Bounded max-heap of the k best (skipping `exclude`): O(n log k), no full
// sort. The heap root is the k-th best of the stream.
fn kth_of_stream(
    scored: impl Iterator<Item = (usize, f64)>,
    k: usize,
    exclude: usize,
) -> Option<(usize, f64)> {
    let mut heap: BinaryHeap<Worst> = BinaryHeap::with_capacity(k + 1);
    for (i, s) in scored {
        if i == exclude {
            continue;
        }
        if heap.len() < k {
            heap.push(Worst(s, i));
        } else if let Some(top) = heap.peek() {
            if rank_cmp(s, i, top.0, top.1) == Ordering::Less {
                heap.pop();
                heap.push(Worst(s, i));
            }
        }
    }
    heap.peek().map(|w| (w.1, w.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn objs() -> Vec<Vec<f64>> {
        vec![
            vec![1.0, 5.0], // id 0
            vec![2.0, 2.0], // id 1
            vec![5.0, 1.0], // id 2
            vec![3.0, 3.0], // id 3
        ]
    }

    #[test]
    fn top_k_basic() {
        // weights (1, 0): scores 1, 2, 5, 3 → top-2 = [0, 1].
        assert_eq!(top_k(&objs(), &[1.0, 0.0], 2), vec![0, 1]);
        // weights (0, 1): scores 5, 2, 1, 3 → top-2 = [2, 1].
        assert_eq!(top_k(&objs(), &[0.0, 1.0], 2), vec![2, 1]);
    }

    #[test]
    fn top_k_matches_full_ranking() {
        let o = objs();
        for w in [[0.3, 0.7], [0.9, 0.1], [0.5, 0.5]] {
            let full = full_ranking(&o, &w);
            for k in 1..=o.len() {
                assert_eq!(top_k(&o, &w, k), full[..k].to_vec());
            }
        }
    }

    #[test]
    fn top_k_matches_full_ranking_truncation_on_ties() {
        // Heavily tied instance: four score-1.0 objects straddling the k
        // boundary, plus duplicates of the best score. The heap selection
        // must agree with full-sort truncation at every k — in particular
        // the id tie-breaks at the cut.
        let o = vec![
            vec![1.0], // id 0, tied middle
            vec![0.5], // id 1, tied best
            vec![1.0], // id 2
            vec![0.5], // id 3
            vec![1.0], // id 4
            vec![2.0], // id 5, worst
            vec![1.0], // id 6
        ];
        let w = [1.0];
        let full = full_ranking(&o, &w);
        assert_eq!(full, vec![1, 3, 0, 2, 4, 6, 5]);
        for k in 0..=o.len() + 2 {
            assert_eq!(top_k(&o, &w, k), full[..k.min(o.len())].to_vec(), "k = {k}");
        }
    }

    #[test]
    fn flat_variants_bit_identical_to_nested() {
        let o = objs();
        let m = FlatMatrix::from_rows(2, &o);
        let mut scratch = Vec::new();
        for w in [[0.3, 0.7], [1.0, 0.0], [0.5, 0.5]] {
            assert_eq!(
                full_ranking_flat(&m, &w, &mut scratch),
                full_ranking(&o, &w)
            );
            for k in 0..=o.len() {
                assert_eq!(top_k_flat(&m, &w, k, &mut scratch), top_k(&o, &w, k));
            }
            for t in 0..o.len() {
                assert_eq!(rank_of_flat(&m, &w, t), rank_of(&o, &w, t));
                for k in 1..=o.len() {
                    assert_eq!(
                        kth_best_excluding_flat(&m, &w, k, t),
                        kth_best_excluding(&o, &w, k, t)
                    );
                }
            }
        }
    }

    #[test]
    fn k_larger_than_n() {
        assert_eq!(top_k(&objs(), &[1.0, 1.0], 10).len(), 4);
    }

    #[test]
    fn tie_broken_by_id() {
        let o = vec![vec![1.0], vec![1.0], vec![0.5]];
        assert_eq!(top_k(&o, &[1.0], 3), vec![2, 0, 1]);
        assert_eq!(rank_of(&o, &[1.0], 1), 3);
        assert_eq!(rank_of(&o, &[1.0], 0), 2);
    }

    #[test]
    fn rank_and_hits() {
        let o = objs();
        let w = [1.0, 0.0];
        assert_eq!(rank_of(&o, &w, 0), 1);
        assert_eq!(rank_of(&o, &w, 2), 4);
        assert!(hits(&o, &TopKQuery::new(w.to_vec(), 1), 0));
        assert!(!hits(&o, &TopKQuery::new(w.to_vec(), 3), 2));
    }

    #[test]
    fn kth_best_excluding_target() {
        let o = objs();
        let w = [1.0, 0.0];
        // Excluding object 0: scores 2, 5, 3 → 1st best is id 1 (score 2).
        assert_eq!(kth_best_excluding(&o, &w, 1, 0), Some((1, 2.0)));
        // 3rd best excluding 0 is id 2 (score 5).
        assert_eq!(kth_best_excluding(&o, &w, 3, 0), Some((2, 5.0)));
        // k = 4 excluding one object: only 3 remain.
        assert_eq!(kth_best_excluding(&o, &w, 4, 0), None);
    }

    #[test]
    #[should_panic]
    fn zero_k_query_rejected() {
        let _ = TopKQuery::new(vec![1.0], 0);
    }
}
