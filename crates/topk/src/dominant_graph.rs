//! The Dominant Graph top-k index (Zou & Chen, ICDE 2008) — the
//! state-of-the-art linear-utility comparator the paper benchmarks its
//! indexing cost against (Figs. 4 and 6).
//!
//! Under the workspace's ranking convention (ascending linear scores with
//! non-negative weights), object `a` **dominates** `b` when `a ≤ b` in every
//! attribute and `a ≠ b`: no non-negative weight vector can then rank `b`
//! above `a`, so `b` cannot enter a top-k result until `a` has. The index
//! materializes the transitive reduction of that partial order; a top-k
//! query runs best-first search seeded with the *source set* (the skyline),
//! releasing an object's children only once all of the object's parents
//! have been reported — exactly the traversal of the original paper.

use crate::naive::{rank_cmp, score};
use std::collections::BinaryHeap;

/// The dominance-graph index.
#[derive(Debug, Clone)]
pub struct DominantGraph {
    /// Children (objects directly dominated), per object.
    children: Vec<Vec<u32>>,
    /// Number of direct dominators, per object.
    parent_count: Vec<u32>,
    /// The source set: objects with no dominators (the skyline).
    sources: Vec<u32>,
    num_objects: usize,
}

/// Returns true when `a` dominates `b` (component-wise ≤, at least one <).
#[inline]
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    let mut strict = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strict = true;
        }
    }
    strict
}

impl DominantGraph {
    /// Builds the index over the dataset.
    ///
    /// Construction sorts by coordinate sum (a necessary condition for
    /// dominance: the dominator's sum is strictly smaller) so each object is
    /// compared only against candidates that could possibly dominate it, and
    /// keeps only *direct* dominators (the transitive reduction).
    pub fn build(objects: &[Vec<f64>]) -> Self {
        let n = objects.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        let sums: Vec<f64> = objects.iter().map(|o| o.iter().sum()).collect();
        order.sort_by(|&a, &b| {
            sums[a as usize]
                .total_cmp(&sums[b as usize])
                .then(a.cmp(&b))
        });

        let mut dominators: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (pos, &bi) in order.iter().enumerate() {
            let b = &objects[bi as usize];
            // Candidates: everything earlier in sum order.
            let mut direct: Vec<u32> = Vec::new();
            for &ai in order[..pos].iter() {
                if dominates(&objects[ai as usize], b) {
                    direct.push(ai);
                }
            }
            // Transitive reduction: drop any dominator that is itself
            // dominated by another dominator of b.
            let reduced: Vec<u32> = direct
                .iter()
                .copied()
                .filter(|&a| {
                    !direct
                        .iter()
                        .any(|&c| c != a && dominates(&objects[c as usize], &objects[a as usize]))
                })
                .collect();
            dominators[bi as usize] = reduced;
        }

        let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut parent_count = vec![0u32; n];
        let mut sources = Vec::new();
        for (b, doms) in dominators.iter().enumerate() {
            parent_count[b] = doms.len() as u32;
            if doms.is_empty() {
                sources.push(b as u32);
            }
            for &a in doms {
                children[a as usize].push(b as u32);
            }
        }
        DominantGraph {
            children,
            parent_count,
            sources,
            num_objects: n,
        }
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.num_objects
    }

    /// True when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.num_objects == 0
    }

    /// Size of the source set (skyline objects).
    pub fn num_sources(&self) -> usize {
        self.sources.len()
    }

    /// Total number of edges in the reduced graph.
    pub fn num_edges(&self) -> usize {
        self.children.iter().map(Vec::len).sum()
    }

    /// Rough in-memory footprint in bytes, for the index-size experiments.
    pub fn size_bytes(&self) -> usize {
        self.num_edges() * 4 + self.num_objects * (4 + 24) + self.sources.len() * 4
    }

    /// Evaluates a top-k query via dominance-guided best-first traversal.
    ///
    /// Only objects whose dominators have all been reported are score-
    /// evaluated, so the number of score computations is `O(k + frontier)`
    /// rather than `O(n)`.
    pub fn top_k(&self, objects: &[Vec<f64>], weights: &[f64], k: usize) -> Vec<usize> {
        #[derive(PartialEq)]
        struct Cand(f64, u32);
        impl Eq for Cand {}
        impl PartialOrd for Cand {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Cand {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                // Min-heap: reverse of the ranking order.
                rank_cmp(other.0, other.1 as usize, self.0, self.1 as usize)
            }
        }

        let k = k.min(self.num_objects);
        let mut remaining_parents = self.parent_count.clone();
        let mut heap: BinaryHeap<Cand> = BinaryHeap::new();
        for &s in &self.sources {
            heap.push(Cand(score(&objects[s as usize], weights), s));
        }
        let mut out = Vec::with_capacity(k);
        while out.len() < k {
            let Some(Cand(_, id)) = heap.pop() else {
                break;
            };
            out.push(id as usize);
            for &c in &self.children[id as usize] {
                remaining_parents[c as usize] -= 1;
                if remaining_parents[c as usize] == 0 {
                    heap.push(Cand(score(&objects[c as usize], weights), c));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        }
    }

    #[test]
    fn dominance_predicate() {
        assert!(dominates(&[1.0, 2.0], &[2.0, 2.0]));
        assert!(dominates(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0]));
        assert!(!dominates(&[1.0, 2.0], &[1.0, 2.0])); // equal: no strict
    }

    #[test]
    fn chain_graph() {
        // Total order by dominance: 0 ≺ 1 ≺ 2.
        let objs = vec![vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]];
        let dg = DominantGraph::build(&objs);
        assert_eq!(dg.num_sources(), 1);
        // Transitive reduction: exactly 2 edges (0→1, 1→2), not 3.
        assert_eq!(dg.num_edges(), 2);
        assert_eq!(dg.top_k(&objs, &[0.5, 0.5], 2), vec![0, 1]);
    }

    #[test]
    fn antichain_graph() {
        // Anti-correlated points: nobody dominates anybody.
        let objs = vec![
            vec![1.0, 4.0],
            vec![2.0, 3.0],
            vec![3.0, 2.0],
            vec![4.0, 1.0],
        ];
        let dg = DominantGraph::build(&objs);
        assert_eq!(dg.num_sources(), 4);
        assert_eq!(dg.num_edges(), 0);
        assert_eq!(dg.top_k(&objs, &[1.0, 0.0], 1), vec![0]);
        assert_eq!(dg.top_k(&objs, &[0.0, 1.0], 1), vec![3]);
    }

    #[test]
    fn matches_naive_on_random_data() {
        let mut rnd = lcg(2024);
        for trial in 0..5 {
            let n = 80 + trial * 30;
            let d = 2 + trial % 3;
            let objs: Vec<Vec<f64>> = (0..n).map(|_| (0..d).map(|_| rnd()).collect()).collect();
            let dg = DominantGraph::build(&objs);
            for _ in 0..10 {
                let w: Vec<f64> = (0..d).map(|_| rnd()).collect();
                for k in [1usize, 3, 10] {
                    assert_eq!(
                        dg.top_k(&objs, &w, k),
                        naive::top_k(&objs, &w, k),
                        "trial {trial} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn correlated_data_compresses_graph() {
        // Correlated data has long dominance chains → small source set.
        let mut rnd = lcg(7);
        let objs: Vec<Vec<f64>> = (0..200)
            .map(|_| {
                let base = rnd();
                vec![base + rnd() * 0.05, base + rnd() * 0.05]
            })
            .collect();
        let dg = DominantGraph::build(&objs);
        assert!(
            dg.num_sources() < 40,
            "correlated data should have a small skyline, got {}",
            dg.num_sources()
        );
    }

    #[test]
    fn empty_and_k_zero() {
        let dg = DominantGraph::build(&[]);
        assert!(dg.is_empty());
        assert!(dg.top_k(&[], &[1.0], 3).is_empty());
        let objs = vec![vec![1.0]];
        let dg = DominantGraph::build(&objs);
        assert!(dg.top_k(&objs, &[1.0], 0).is_empty());
    }

    #[test]
    fn duplicate_objects_do_not_dominate_each_other() {
        let objs = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        let dg = DominantGraph::build(&objs);
        assert_eq!(dg.num_sources(), 2);
        assert_eq!(dg.top_k(&objs, &[1.0, 1.0], 2), vec![0, 1]);
    }
}
