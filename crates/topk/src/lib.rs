//! # iq-topk
//!
//! Rank-aware query substrate: the top-k machinery the improvement-query
//! layer builds on, plus every comparator scheme the paper evaluates
//! against.
//!
//! * [`naive`] — exhaustive top-k / ranking, the correctness oracle;
//! * [`dominant_graph`] — the Dominant Graph index (Zou & Chen, ICDE 2008),
//!   the indexing comparator of Figs. 4 and 6;
//! * [`rta`] — the reverse top-k Threshold Algorithm (Vlachou et al., TKDE
//!   2011) behind the `RTA-IQ` baseline;
//! * [`onion`] — the convex-layer Onion index (Chang et al., SIGMOD 2000);
//! * [`reverse`] — naive reverse top-k and reverse k-ranks reference
//!   queries.
//!
//! Ranking convention everywhere: **ascending score** (Eq. 6 of the paper),
//! ties broken by object id.

#![warn(missing_docs)]

pub mod dominant_graph;
pub mod max_rank;
pub mod naive;
pub mod onion;
pub mod reverse;
pub mod rta;

pub use dominant_graph::DominantGraph;
pub use max_rank::{max_rank_2d, max_rank_sampled, MaxRankResult};
pub use naive::{score, top_k, TopKQuery};
pub use onion::OnionIndex;
pub use rta::RtaResult;
