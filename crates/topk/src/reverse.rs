//! Naive rank-aware reference queries: reverse top-k and reverse k-ranks
//! (§2 of the paper's related work). These are the oracles for RTA and for
//! the hit-counting machinery in `iq-core`.

use crate::naive::{rank_of, top_k, TopKQuery};

/// Reverse top-k by exhaustive evaluation: the indices of all queries whose
/// top-k result contains `target`, ascending.
pub fn reverse_top_k_naive(
    objects: &[Vec<f64>],
    queries: &[TopKQuery],
    target: usize,
) -> Vec<usize> {
    queries
        .iter()
        .enumerate()
        .filter(|(_, q)| top_k(objects, &q.weights, q.k).contains(&target))
        .map(|(i, _)| i)
        .collect()
}

/// Reverse k-ranks (Zhang et al., VLDB 2014): the `k` queries under which
/// `target` ranks best, best rank first (ties by query index). Useful for
/// unpopular objects that hit no top-k at all.
pub fn reverse_k_ranks(
    objects: &[Vec<f64>],
    queries: &[TopKQuery],
    target: usize,
    k: usize,
) -> Vec<(usize, usize)> {
    let mut ranked: Vec<(usize, usize)> = queries
        .iter()
        .enumerate()
        .map(|(i, q)| (i, rank_of(objects, &q.weights, target)))
        .collect();
    ranked.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
    ranked.truncate(k);
    ranked
}

/// The hit count `H(target)`: how many queries' top-k contain the target —
/// the quantity every improvement query optimizes (§3.1).
pub fn hit_count_naive(objects: &[Vec<f64>], queries: &[TopKQuery], target: usize) -> usize {
    reverse_top_k_naive(objects, queries, target).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Vec<Vec<f64>>, Vec<TopKQuery>) {
        let objects = vec![
            vec![1.0, 5.0], // 0: best in dim 0
            vec![2.0, 2.0], // 1: balanced
            vec![5.0, 1.0], // 2: best in dim 1
        ];
        let queries = vec![
            TopKQuery::new(vec![1.0, 0.0], 1), // winner: 0
            TopKQuery::new(vec![0.0, 1.0], 1), // winner: 2
            TopKQuery::new(vec![0.5, 0.5], 1), // winner: 1 (score 2)
            TopKQuery::new(vec![0.5, 0.5], 2), // winners: 1, then 0/2 tie → 0
        ];
        (objects, queries)
    }

    #[test]
    fn reverse_topk_basic() {
        let (objects, queries) = setup();
        assert_eq!(reverse_top_k_naive(&objects, &queries, 0), vec![0, 3]);
        assert_eq!(reverse_top_k_naive(&objects, &queries, 1), vec![2, 3]);
        assert_eq!(reverse_top_k_naive(&objects, &queries, 2), vec![1]);
    }

    #[test]
    fn hit_counts() {
        let (objects, queries) = setup();
        assert_eq!(hit_count_naive(&objects, &queries, 0), 2);
        assert_eq!(hit_count_naive(&objects, &queries, 2), 1);
    }

    #[test]
    fn reverse_k_ranks_orders_by_rank() {
        let (objects, queries) = setup();
        // Object 2 ranks: q0 → 3rd, q1 → 1st, q2 → 2nd (tie w/ 0 broken by
        // id: 0 before 2 → rank 3? scores under (.5,.5): o0=3, o1=2, o2=3;
        // o2 ties o0, id 0 < 2 so o2 is rank 3), q3 same weights → rank 3.
        let got = reverse_k_ranks(&objects, &queries, 2, 2);
        assert_eq!(got[0], (1, 1));
        assert_eq!(got[1].1, 3);
    }

    #[test]
    fn reverse_k_ranks_k_larger_than_queries() {
        let (objects, queries) = setup();
        let got = reverse_k_ranks(&objects, &queries, 0, 10);
        assert_eq!(got.len(), queries.len());
        // Sorted by rank ascending.
        for w in got.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn unpopular_object_has_empty_reverse_topk_but_ranks() {
        let objects = vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![9.0, 9.0]];
        let queries = vec![
            TopKQuery::new(vec![0.3, 0.7], 2),
            TopKQuery::new(vec![0.6, 0.4], 2),
        ];
        assert!(reverse_top_k_naive(&objects, &queries, 2).is_empty());
        let rr = reverse_k_ranks(&objects, &queries, 2, 1);
        assert_eq!(rr.len(), 1);
        assert_eq!(rr[0].1, 3);
    }
}
