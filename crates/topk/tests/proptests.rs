//! Property-based tests: every top-k scheme must agree with the naive
//! oracle on arbitrary data.

use iq_topk::{dominant_graph::DominantGraph, naive, onion::OnionIndex, reverse, rta, TopKQuery};
use proptest::prelude::*;

fn objects(d: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.0f64..1.0, d), 1..60)
}

fn weights(d: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1.0, d)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dominant_graph_equals_naive(objs in objects(3), w in weights(3), k in 1usize..8) {
        let dg = DominantGraph::build(&objs);
        prop_assert_eq!(dg.top_k(&objs, &w, k), naive::top_k(&objs, &w, k));
    }

    #[test]
    fn onion_equals_naive(objs in objects(2), w in weights(2), k in 1usize..8) {
        let idx = OnionIndex::build(&objs);
        prop_assert_eq!(idx.top_k(&objs, &w, k), naive::top_k(&objs, &w, k));
    }

    #[test]
    fn rta_equals_naive(
        objs in objects(2),
        qs in prop::collection::vec((weights(2), 1usize..6), 1..30),
        target_seed in any::<usize>(),
    ) {
        let queries: Vec<TopKQuery> = qs
            .into_iter()
            .map(|(w, k)| TopKQuery::new(w, k))
            .collect();
        let target = target_seed % objs.len();
        let got = rta::reverse_top_k(&objs, &queries, target).hits;
        let want = reverse::reverse_top_k_naive(&objs, &queries, target);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn topk_is_prefix_of_full_ranking(objs in objects(3), w in weights(3)) {
        let full = naive::full_ranking(&objs, &w);
        for k in 1..=objs.len().min(10) {
            prop_assert_eq!(naive::top_k(&objs, &w, k), full[..k].to_vec());
        }
        // Ranks are consistent with the full ranking.
        for (pos, &id) in full.iter().enumerate() {
            prop_assert_eq!(naive::rank_of(&objs, &w, id), pos + 1);
        }
    }

    #[test]
    fn kth_best_excluding_is_the_admission_threshold(
        objs in objects(2), w in weights(2), k in 1usize..5, target_seed in any::<usize>(),
    ) {
        prop_assume!(objs.len() > k);
        let target = target_seed % objs.len();
        let (thresh_id, thresh) = naive::kth_best_excluding(&objs, &w, k, target).unwrap();
        prop_assert!(thresh_id != target);
        // The target hits the query iff it beats the threshold object under
        // the workspace tie-breaking rule.
        let ts = naive::score(&objs[target], &w);
        let beats = naive::rank_cmp(ts, target, thresh, thresh_id) == std::cmp::Ordering::Less;
        let hit = naive::hits(&objs, &TopKQuery::new(w.clone(), k), target);
        prop_assert_eq!(beats, hit);
    }

    #[test]
    fn reverse_k_ranks_sorted_and_bounded(
        objs in objects(2),
        qs in prop::collection::vec((weights(2), 1usize..4), 1..15),
        target_seed in any::<usize>(),
        k in 1usize..6,
    ) {
        let queries: Vec<TopKQuery> = qs
            .into_iter()
            .map(|(w, kk)| TopKQuery::new(w, kk))
            .collect();
        let target = target_seed % objs.len();
        let rr = reverse::reverse_k_ranks(&objs, &queries, target, k);
        prop_assert!(rr.len() <= k.min(queries.len()));
        for w in rr.windows(2) {
            prop_assert!(w[0].1 <= w[1].1);
        }
        for (qi, r) in rr {
            prop_assert_eq!(naive::rank_of(&objs, &queries[qi].weights, target), r);
        }
    }
}
