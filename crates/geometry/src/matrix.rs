//! Flat row-major matrices and batched dot-product kernels.
//!
//! The hot loops of the pipeline — subdomain signatures (Alg. 1), ESE's
//! affected-slab re-ranking (Alg. 2), and greedy candidate scoring
//! (Algs. 3–4) — all bottom out in `f_i(q) = p_i · q` over a fixed set of
//! rows. Storing those rows as `Vec<Vec<f64>>` costs one heap allocation
//! and one pointer chase per row; [`FlatMatrix`] keeps them in a single
//! contiguous row-major buffer with a `dim` stride so batch evaluation
//! streams through memory linearly.
//!
//! ## Kernel contract (byte-identical scores)
//!
//! Every kernel in this module accumulates each row's dot product in the
//! **same floating-point order** as the scalar path
//! ([`crate::vector::dot`]): a single accumulator per row, initialised to
//! `0.0`, adding `row[j] * q[j]` for `j = 0, 1, …, d-1`. The 4-way unroll
//! in [`FlatMatrix::scores_into`] runs **across rows** (four independent
//! accumulators, one per row), never within a row, so batched scores are
//! bit-for-bit equal to `dot(row, q)`. The workspace's byte-identical
//! invariants (fast ESE ≡ pairwise ≡ naive, thread-count independence)
//! depend on this; do not reassociate the inner sums.

use crate::vector::dot;

/// A dense row-major matrix over `f64` in one contiguous allocation.
///
/// Rows are fixed-width (`dim` stride); row `i` occupies
/// `data[i*dim .. (i+1)*dim]`. The buffer is a growable `Vec<f64>` so the
/// update paths (§4.3 of the paper: object/query insertion and deletion)
/// stay amortised `O(d)` per mutation, but it is always a single
/// contiguous block — no per-row allocation, no pointer chasing.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatMatrix {
    data: Vec<f64>,
    dim: usize,
}

impl FlatMatrix {
    /// Creates an empty matrix whose rows will have `dim` columns.
    pub fn new(dim: usize) -> Self {
        FlatMatrix {
            data: Vec::new(),
            dim,
        }
    }

    /// Materialises nested rows into one contiguous buffer.
    ///
    /// # Panics
    /// Panics if any row's length differs from `dim`.
    pub fn from_rows<R: AsRef<[f64]>>(dim: usize, rows: &[R]) -> Self {
        let mut data = Vec::with_capacity(rows.len() * dim);
        for r in rows {
            let r = r.as_ref();
            assert_eq!(r.len(), dim, "FlatMatrix row dimension mismatch");
            data.extend_from_slice(r);
        }
        FlatMatrix { data, dim }
    }

    /// Number of columns (the row stride).
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.data.len().checked_div(self.dim).unwrap_or(0)
    }

    /// True when the matrix has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Row `i` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// The whole buffer, row-major.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Iterates over rows in order.
    pub fn iter_rows(&self) -> std::slice::ChunksExact<'_, f64> {
        self.data.chunks_exact(self.dim.max(1))
    }

    /// Appends a row. Amortised `O(d)`.
    ///
    /// # Panics
    /// Panics if `row.len() != dim`.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.dim, "FlatMatrix row dimension mismatch");
        self.data.extend_from_slice(row);
    }

    /// Removes the last row. `O(d)`; no-op on an empty matrix.
    pub fn pop_row(&mut self) {
        let n = self.rows();
        if n > 0 {
            self.data.truncate((n - 1) * self.dim);
        }
    }

    /// Overwrites row `i`.
    pub fn set_row(&mut self, i: usize, row: &[f64]) {
        self.row_mut(i).copy_from_slice(row);
    }

    /// Adds `delta` component-wise into row `i` (the improvement-strategy
    /// application `p_t ← p_t + s`).
    pub fn add_to_row(&mut self, i: usize, delta: &[f64]) {
        for (x, d) in self.row_mut(i).iter_mut().zip(delta) {
            *x += d;
        }
    }

    /// Removes row `i`, shifting later rows up. `O(n·d)`.
    pub fn remove_row(&mut self, i: usize) {
        let d = self.dim;
        self.data.drain(i * d..(i + 1) * d);
    }

    /// Removes row `i` by moving the last row into its slot. `O(d)`.
    pub fn swap_remove_row(&mut self, i: usize) {
        let n = self.rows();
        assert!(i < n, "swap_remove_row: row {i} out of range ({n} rows)");
        if i + 1 < n {
            let d = self.dim;
            let (head, tail) = self.data.split_at_mut((n - 1) * d);
            head[i * d..(i + 1) * d].copy_from_slice(tail);
        }
        self.pop_row();
    }

    /// Dot product of row `i` with `q`, in the scalar summation order.
    #[inline]
    pub fn dot_row(&self, i: usize, q: &[f64]) -> f64 {
        dot(self.row(i), q)
    }

    /// Scores every row against `q` into `out` (cleared first), 4 rows at
    /// a time. `out[i]` is bit-identical to `dot(self.row(i), q)`; the
    /// buffer is reused across calls so steady-state evaluation performs
    /// no allocation.
    pub fn scores_into(&self, q: &[f64], out: &mut Vec<f64>) {
        debug_assert_eq!(q.len(), self.dim, "scores_into: dimension mismatch");
        let n = self.rows();
        out.clear();
        out.reserve(n);
        let d = self.dim;
        let mut i = 0;
        // 4-way unroll across rows: four independent accumulators, each
        // summing its own row left-to-right — the same order as `dot`.
        while i + 4 <= n {
            let base = i * d;
            let (mut a0, mut a1, mut a2, mut a3) = (0.0, 0.0, 0.0, 0.0);
            for (j, &w) in q.iter().enumerate() {
                a0 += self.data[base + j] * w;
                a1 += self.data[base + d + j] * w;
                a2 += self.data[base + 2 * d + j] * w;
                a3 += self.data[base + 3 * d + j] * w;
            }
            out.extend_from_slice(&[a0, a1, a2, a3]);
            i += 4;
        }
        while i < n {
            out.push(self.dot_row(i, q));
            i += 1;
        }
    }

    /// Scores the gathered subset `rows_idx` against `q` into `out`
    /// (cleared first): `out[j] = dot(self.row(rows_idx[j]), q)`.
    pub fn dot_batch(&self, q: &[f64], rows_idx: &[usize], out: &mut Vec<f64>) {
        debug_assert_eq!(q.len(), self.dim, "dot_batch: dimension mismatch");
        out.clear();
        out.reserve(rows_idx.len());
        let d = self.dim;
        let mut i = 0;
        while i + 4 <= rows_idx.len() {
            let (b0, b1, b2, b3) = (
                rows_idx[i] * d,
                rows_idx[i + 1] * d,
                rows_idx[i + 2] * d,
                rows_idx[i + 3] * d,
            );
            let (mut a0, mut a1, mut a2, mut a3) = (0.0, 0.0, 0.0, 0.0);
            for (j, &w) in q.iter().enumerate() {
                a0 += self.data[b0 + j] * w;
                a1 += self.data[b1 + j] * w;
                a2 += self.data[b2 + j] * w;
                a3 += self.data[b3 + j] * w;
            }
            out.extend_from_slice(&[a0, a1, a2, a3]);
            i += 4;
        }
        while i < rows_idx.len() {
            out.push(self.dot_row(rows_idx[i], q));
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Spread across magnitudes so summation order matters.
            let u = ((state >> 11) as f64) / ((1u64 << 53) as f64);
            (u - 0.5) * 1e3 + (state as i64 % 7) as f64 * 1e-6
        }
    }

    fn random_rows(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rnd = lcg(seed);
        (0..n).map(|_| (0..d).map(|_| rnd()).collect()).collect()
    }

    #[test]
    fn from_rows_round_trip() {
        let rows = random_rows(5, 3, 1);
        let m = FlatMatrix::from_rows(3, &rows);
        assert_eq!(m.rows(), 5);
        assert_eq!(m.dim(), 3);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(m.row(i), r.as_slice());
        }
        let collected: Vec<&[f64]> = m.iter_rows().collect();
        assert_eq!(collected.len(), 5);
    }

    #[test]
    fn scores_into_bit_identical_to_scalar_dot() {
        // The kernel contract: every batched score equals dot(row, q) to
        // the last bit, across remainder lengths 0..4.
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 33] {
            for d in [1usize, 2, 3, 5, 8] {
                let rows = random_rows(n, d, (n * 31 + d) as u64);
                let q: Vec<f64> = random_rows(1, d, 999)[0].clone();
                let m = FlatMatrix::from_rows(d, &rows);
                let mut out = Vec::new();
                m.scores_into(&q, &mut out);
                assert_eq!(out.len(), n);
                for (i, r) in rows.iter().enumerate() {
                    assert_eq!(
                        out[i].to_bits(),
                        dot(r, &q).to_bits(),
                        "row {i} n={n} d={d}"
                    );
                }
            }
        }
    }

    #[test]
    fn dot_batch_bit_identical_on_gathered_rows() {
        let rows = random_rows(20, 4, 7);
        let q: Vec<f64> = random_rows(1, 4, 8)[0].clone();
        let m = FlatMatrix::from_rows(4, &rows);
        let idx = [3usize, 19, 0, 7, 7, 11, 2];
        let mut out = Vec::new();
        m.dot_batch(&q, &idx, &mut out);
        assert_eq!(out.len(), idx.len());
        for (j, &i) in idx.iter().enumerate() {
            assert_eq!(out[j].to_bits(), dot(&rows[i], &q).to_bits());
        }
    }

    #[test]
    fn buffer_reuse_clears_previous_contents() {
        let m = FlatMatrix::from_rows(2, &[vec![1.0, 0.0], vec![0.0, 1.0]]);
        let mut out = vec![99.0; 10];
        m.scores_into(&[2.0, 3.0], &mut out);
        assert_eq!(out, vec![2.0, 3.0]);
        m.dot_batch(&[1.0, 1.0], &[1], &mut out);
        assert_eq!(out, vec![1.0]);
    }

    #[test]
    fn mutators_keep_rows_coherent() {
        let mut m = FlatMatrix::new(2);
        m.push_row(&[1.0, 2.0]);
        m.push_row(&[3.0, 4.0]);
        m.push_row(&[5.0, 6.0]);
        assert_eq!(m.rows(), 3);
        m.set_row(1, &[30.0, 40.0]);
        assert_eq!(m.row(1), &[30.0, 40.0]);
        m.add_to_row(0, &[0.5, -0.5]);
        assert_eq!(m.row(0), &[1.5, 1.5]);
        m.swap_remove_row(0);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.row(0), &[5.0, 6.0]);
        assert_eq!(m.row(1), &[30.0, 40.0]);
        m.remove_row(0);
        assert_eq!(m.rows(), 1);
        assert_eq!(m.row(0), &[30.0, 40.0]);
        m.pop_row();
        assert!(m.is_empty());
        m.pop_row(); // no-op on empty
        assert_eq!(m.rows(), 0);
    }

    #[test]
    fn swap_remove_last_row() {
        let mut m = FlatMatrix::from_rows(1, &[vec![1.0], vec![2.0]]);
        m.swap_remove_row(1);
        assert_eq!(m.rows(), 1);
        assert_eq!(m.row(0), &[1.0]);
    }

    #[test]
    #[should_panic]
    fn ragged_row_rejected() {
        let mut m = FlatMatrix::new(3);
        m.push_row(&[1.0, 2.0]);
    }
}
