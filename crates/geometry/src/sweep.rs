//! Plane-sweep intersection discovery for 2-D segments and lines.
//!
//! §4.1 of the paper builds its subdomain index from the pairwise
//! intersections of object functions, "efficiently done using intersection
//! discovery algorithms such as the plane sweeping algorithm \[15\]"
//! (Nievergelt & Preparata). This module provides that substrate:
//!
//! * [`segment_intersections`] — a sweep-and-prune along `x`: endpoints are
//!   processed in sorted order, only segments whose `x`-intervals are
//!   simultaneously active are tested, and an exact orientation-based
//!   predicate decides each candidate pair. Output-sensitive in practice and
//!   robust on floating-point inputs, unlike a textbook Bentley–Ottmann
//!   whose sweep-status comparisons are notoriously brittle over `f64`.
//! * [`line_intersections_1d`] — the specialisation used by the subdomain
//!   builder in 2-D weight space: with normalized weights (`q2 = 1 − q1`)
//!   every object function is a line over `q1 ∈ [0, 1]`, and intersections
//!   are discovered by a sweep over the function ordering at the interval
//!   ends (two orderings differ exactly where lines cross).

/// A 2-D point.
pub type Point = (f64, f64);

/// A 2-D line segment between two endpoints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// First endpoint.
    pub a: Point,
    /// Second endpoint.
    pub b: Point,
}

impl Segment {
    /// Creates a segment; endpoint order does not matter.
    pub fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    fn x_range(&self) -> (f64, f64) {
        (self.a.0.min(self.b.0), self.a.0.max(self.b.0))
    }

    fn y_range(&self) -> (f64, f64) {
        (self.a.1.min(self.b.1), self.a.1.max(self.b.1))
    }
}

/// Signed area of the triangle `(p, q, r)` ×2; positive for a left turn.
#[inline]
fn cross(p: Point, q: Point, r: Point) -> f64 {
    (q.0 - p.0) * (r.1 - p.1) - (q.1 - p.1) * (r.0 - p.0)
}

fn on_segment(p: Point, q: Point, r: Point) -> bool {
    // Assuming p, q, r collinear: is q within the bounding box of (p, r)?
    q.0 >= p.0.min(r.0) && q.0 <= p.0.max(r.0) && q.1 >= p.1.min(r.1) && q.1 <= p.1.max(r.1)
}

/// Exact (up to f64 arithmetic) segment intersection predicate, including
/// collinear-overlap and endpoint-touch cases.
pub fn segments_intersect(s1: &Segment, s2: &Segment) -> bool {
    let (p1, q1) = (s1.a, s1.b);
    let (p2, q2) = (s2.a, s2.b);
    let d1 = cross(p2, q2, p1);
    let d2 = cross(p2, q2, q1);
    let d3 = cross(p1, q1, p2);
    let d4 = cross(p1, q1, q2);
    if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
        && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
    {
        return true;
    }
    // Exact orientation-sign degeneracy tests: a touching endpoint is
    // collinear only at cross == 0.0 exactly.
    (d1 == 0.0 && on_segment(p2, p1, q2)) // iq-lint: allow(raw-score-cmp, reason = "exact collinearity degeneracy test")
        || (d2 == 0.0 && on_segment(p2, q1, q2)) // iq-lint: allow(raw-score-cmp, reason = "exact collinearity degeneracy test")
        || (d3 == 0.0 && on_segment(p1, p2, q1)) // iq-lint: allow(raw-score-cmp, reason = "exact collinearity degeneracy test")
        || (d4 == 0.0 && on_segment(p1, q2, q1)) // iq-lint: allow(raw-score-cmp, reason = "exact collinearity degeneracy test")
}

/// The intersection *point* of two properly crossing segments, if unique.
///
/// Returns `None` for parallel or collinear segments (no unique point) and
/// for non-intersecting pairs.
pub fn intersection_point(s1: &Segment, s2: &Segment) -> Option<Point> {
    let r = (s1.b.0 - s1.a.0, s1.b.1 - s1.a.1);
    let s = (s2.b.0 - s2.a.0, s2.b.1 - s2.a.1);
    let denom = r.0 * s.1 - r.1 * s.0;
    // iq-lint: allow(raw-score-cmp, reason = "exact parallel-segments degeneracy test")
    if denom == 0.0 {
        return None;
    }
    let qp = (s2.a.0 - s1.a.0, s2.a.1 - s1.a.1);
    let t = (qp.0 * s.1 - qp.1 * s.0) / denom;
    let u = (qp.0 * r.1 - qp.1 * r.0) / denom;
    if (0.0..=1.0).contains(&t) && (0.0..=1.0).contains(&u) {
        Some((s1.a.0 + t * r.0, s1.a.1 + t * r.1))
    } else {
        None
    }
}

/// Sweep event: either a segment entering or leaving the sweep line.
#[derive(Debug, Clone, Copy)]
struct Event {
    x: f64,
    /// `true` = left endpoint (segment becomes active).
    enter: bool,
    seg: usize,
}

/// Finds all intersecting pairs among `segments` by sweeping a vertical line
/// left-to-right, testing each entering segment only against the currently
/// active set (after a cheap `y`-range pre-filter).
///
/// Returns pairs `(i, j)` with `i < j`, sorted and deduplicated.
pub fn segment_intersections(segments: &[Segment]) -> Vec<(usize, usize)> {
    let mut events: Vec<Event> = Vec::with_capacity(segments.len() * 2);
    for (i, s) in segments.iter().enumerate() {
        let (lo, hi) = s.x_range();
        events.push(Event {
            x: lo,
            enter: true,
            seg: i,
        });
        events.push(Event {
            x: hi,
            enter: false,
            seg: i,
        });
    }
    // Enter events sort before exit events at equal x so touching segments
    // are simultaneously active.
    events.sort_by(|a, b| a.x.total_cmp(&b.x).then_with(|| b.enter.cmp(&a.enter)));

    let mut active: Vec<usize> = Vec::new();
    let mut hits: Vec<(usize, usize)> = Vec::new();
    for ev in events {
        if ev.enter {
            let si = &segments[ev.seg];
            let (ylo, yhi) = si.y_range();
            for &other in &active {
                let so = &segments[other];
                let (olo, ohi) = so.y_range();
                if ohi < ylo || olo > yhi {
                    continue; // y-ranges disjoint: cannot intersect
                }
                if segments_intersect(si, so) {
                    let pair = if ev.seg < other {
                        (ev.seg, other)
                    } else {
                        (other, ev.seg)
                    };
                    hits.push(pair);
                }
            }
            active.push(ev.seg);
        } else if let Some(pos) = active.iter().position(|&s| s == ev.seg) {
            active.swap_remove(pos);
        }
    }
    hits.sort_unstable();
    hits.dedup();
    hits
}

/// Brute-force all-pairs intersection test; the oracle for property tests.
pub fn brute_force_intersections(segments: &[Segment]) -> Vec<(usize, usize)> {
    let mut hits = Vec::new();
    for i in 0..segments.len() {
        for j in (i + 1)..segments.len() {
            if segments_intersect(&segments[i], &segments[j]) {
                hits.push((i, j));
            }
        }
    }
    hits
}

/// Intersection discovery for linear object functions over a 1-D normalized
/// weight domain `t ∈ [lo, hi]` (the 2-D case with `q = (t, 1 − t)`).
///
/// Each function is `f_i(t) = slope_i · t + icept_i`. Two functions cross
/// inside the interval iff their order differs between the two interval
/// ends — a sweep over the two sorted orders discovers exactly the crossing
/// pairs (an inversion between the permutations), in `O(n log n + k)`.
///
/// Returns `(i, j, t)` triples with `i < j` and `t` the crossing parameter,
/// sorted by `t`. Parallel (equal-slope) functions never cross and are
/// skipped; functions equal on the whole interval are skipped too.
pub fn line_intersections_1d(funcs: &[(f64, f64)], lo: f64, hi: f64) -> Vec<(usize, usize, f64)> {
    assert!(lo < hi, "empty sweep interval");
    let n = funcs.len();
    // Order at the left end (ties broken by value at right end, then index,
    // so the permutation is well-defined).
    let key = |i: usize, t: f64| funcs[i].0 * t + funcs[i].1;
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        key(a, lo)
            .total_cmp(&key(b, lo))
            .then(key(a, hi).total_cmp(&key(b, hi)))
            .then(a.cmp(&b))
    });
    // Count inversions between the left order and the right order by
    // checking each pair that swaps; enumerate via merge-style detection:
    // simplest correct approach is to compare ranks at the right end.
    let mut rank_hi = vec![0usize; n];
    let mut order_hi: Vec<usize> = (0..n).collect();
    order_hi.sort_by(|&a, &b| {
        key(a, hi)
            .total_cmp(&key(b, hi))
            .then(key(a, lo).total_cmp(&key(b, lo)))
            .then(a.cmp(&b))
    });
    for (r, &i) in order_hi.iter().enumerate() {
        rank_hi[i] = r;
    }
    // Pairs inverted between the two orders are exactly the crossing pairs.
    // We enumerate them pair-by-pair over the left order; k dominates when
    // crossings are dense, matching the output-sensitive bound.
    let mut out = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            let (i, j) = (order[a], order[b]);
            if rank_hi[i] > rank_hi[j] {
                let (si, ci) = funcs[i];
                let (sj, cj) = funcs[j];
                if si == sj {
                    continue;
                }
                let t = (cj - ci) / (si - sj);
                if t >= lo && t <= hi {
                    let pair = if i < j { (i, j, t) } else { (j, i, t) };
                    out.push(pair);
                }
            }
        }
    }
    out.sort_by(|a, b| a.2.total_cmp(&b.2));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_cross() {
        let s1 = Segment::new((0.0, 0.0), (2.0, 2.0));
        let s2 = Segment::new((0.0, 2.0), (2.0, 0.0));
        assert!(segments_intersect(&s1, &s2));
        let p = intersection_point(&s1, &s2).unwrap();
        assert!((p.0 - 1.0).abs() < 1e-12 && (p.1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_and_parallel() {
        let s1 = Segment::new((0.0, 0.0), (1.0, 0.0));
        let s2 = Segment::new((0.0, 1.0), (1.0, 1.0));
        assert!(!segments_intersect(&s1, &s2));
        assert!(intersection_point(&s1, &s2).is_none());
    }

    #[test]
    fn endpoint_touch_counts() {
        let s1 = Segment::new((0.0, 0.0), (1.0, 1.0));
        let s2 = Segment::new((1.0, 1.0), (2.0, 0.0));
        assert!(segments_intersect(&s1, &s2));
    }

    #[test]
    fn collinear_overlap_counts() {
        let s1 = Segment::new((0.0, 0.0), (2.0, 0.0));
        let s2 = Segment::new((1.0, 0.0), (3.0, 0.0));
        assert!(segments_intersect(&s1, &s2));
        // But no unique intersection point.
        assert!(intersection_point(&s1, &s2).is_none());
    }

    #[test]
    fn sweep_matches_brute_force_fixed() {
        let segs = vec![
            Segment::new((0.0, 0.0), (4.0, 4.0)),
            Segment::new((0.0, 4.0), (4.0, 0.0)),
            Segment::new((5.0, 0.0), (6.0, 1.0)),
            Segment::new((1.0, 3.0), (3.0, 3.0)),
            Segment::new((2.0, -1.0), (2.0, 5.0)), // vertical
        ];
        assert_eq!(
            segment_intersections(&segs),
            brute_force_intersections(&segs)
        );
    }

    #[test]
    fn sweep_matches_brute_force_random() {
        // Deterministic pseudo-random segments (LCG) in general position.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        for trial in 0..20 {
            let n = 10 + trial;
            let segs: Vec<Segment> = (0..n)
                .map(|_| {
                    Segment::new(
                        (next() * 10.0, next() * 10.0),
                        (next() * 10.0, next() * 10.0),
                    )
                })
                .collect();
            assert_eq!(
                segment_intersections(&segs),
                brute_force_intersections(&segs),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn line_sweep_1d_pairs() {
        // f0 = t, f1 = 1 - t, f2 = 0.5 (constant).
        let funcs = vec![(1.0, 0.0), (-1.0, 1.0), (0.0, 0.5)];
        let out = line_intersections_1d(&funcs, 0.0, 1.0);
        assert_eq!(out.len(), 3);
        // All three cross at t = 0.5.
        for (_, _, t) in &out {
            assert!((t - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn line_sweep_1d_no_cross_outside() {
        // Cross at t = 2, outside [0, 1].
        let funcs = vec![(1.0, 0.0), (0.5, 1.0)];
        assert!(line_intersections_1d(&funcs, 0.0, 1.0).is_empty());
        // But inside [0, 3] it is found.
        let out = line_intersections_1d(&funcs, 0.0, 3.0);
        assert_eq!(out.len(), 1);
        assert!((out[0].2 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn line_sweep_1d_matches_brute_force() {
        let mut state = 99u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        for _ in 0..10 {
            let funcs: Vec<(f64, f64)> = (0..15)
                .map(|_| (next() * 4.0 - 2.0, next() * 4.0 - 2.0))
                .collect();
            let got: std::collections::HashSet<(usize, usize)> =
                line_intersections_1d(&funcs, 0.0, 1.0)
                    .into_iter()
                    .map(|(i, j, _)| (i, j))
                    .collect();
            let mut want = std::collections::HashSet::new();
            for i in 0..funcs.len() {
                for j in (i + 1)..funcs.len() {
                    let (si, ci) = funcs[i];
                    let (sj, cj) = funcs[j];
                    if si != sj {
                        let t = (cj - ci) / (si - sj);
                        if (0.0..=1.0).contains(&t) {
                            want.insert((i, j));
                        }
                    }
                }
            }
            assert_eq!(got, want);
        }
    }
}
