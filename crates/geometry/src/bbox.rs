//! Axis-aligned bounding boxes in `R^d`, the workhorse of the R-tree.
//!
//! Besides the usual containment/overlap/enlargement operations, boxes know
//! how to bound a *linear form* over themselves ([`BoundingBox::form_range`]),
//! which is what lets the R-tree prune whole subtrees against hyperplane and
//! slab predicates without visiting the points inside.

use crate::hyperplane::{Hyperplane, Side, Slab};

/// An axis-aligned box `[lo[0], hi[0]] × … × [lo[d-1], hi[d-1]]`.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundingBox {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

/// Relation of a box to a hyperplane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoxSide {
    /// Every point of the box is on/above the plane.
    EntirelyAbove,
    /// Every point of the box is strictly below the plane.
    EntirelyBelow,
    /// The plane passes through the box.
    Straddles,
}

impl BoundingBox {
    /// A degenerate box containing exactly one point.
    pub fn point(p: &[f64]) -> Self {
        BoundingBox {
            lo: p.to_vec(),
            hi: p.to_vec(),
        }
    }

    /// A box from explicit corner coordinates.
    ///
    /// # Panics
    /// Panics if dimensions differ or any `lo[i] > hi[i]`.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "bounding box corner dimension mismatch");
        for i in 0..lo.len() {
            assert!(
                lo[i] <= hi[i],
                "bounding box inverted in dimension {i}: {} > {}",
                lo[i],
                hi[i]
            );
        }
        BoundingBox { lo, hi }
    }

    /// The "empty" box that enlarges to whatever is merged into it.
    pub fn empty(dim: usize) -> Self {
        BoundingBox {
            lo: vec![f64::INFINITY; dim],
            hi: vec![f64::NEG_INFINITY; dim],
        }
    }

    /// Whether this is the empty box (never merged with anything).
    pub fn is_empty(&self) -> bool {
        self.lo.iter().zip(&self.hi).any(|(l, h)| l > h)
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Lower corner.
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper corner.
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// Center point of the box.
    pub fn center(&self) -> Vec<f64> {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(l, h)| 0.5 * (l + h))
            .collect()
    }

    /// Whether the point lies inside (closed) the box.
    pub fn contains_point(&self, p: &[f64]) -> bool {
        debug_assert_eq!(p.len(), self.dim());
        p.iter()
            .enumerate()
            .all(|(i, &x)| x >= self.lo[i] && x <= self.hi[i])
    }

    /// Whether `other` is fully inside `self`.
    pub fn contains_box(&self, other: &BoundingBox) -> bool {
        if other.is_empty() {
            return true;
        }
        (0..self.dim()).all(|i| self.lo[i] <= other.lo[i] && self.hi[i] >= other.hi[i])
    }

    /// Whether the two boxes overlap (closed intersection non-empty).
    pub fn intersects(&self, other: &BoundingBox) -> bool {
        if self.is_empty() || other.is_empty() {
            return false;
        }
        (0..self.dim()).all(|i| self.lo[i] <= other.hi[i] && self.hi[i] >= other.lo[i])
    }

    /// Grows `self` to cover `other`.
    pub fn merge(&mut self, other: &BoundingBox) {
        debug_assert_eq!(self.dim(), other.dim());
        for i in 0..self.dim() {
            self.lo[i] = self.lo[i].min(other.lo[i]);
            self.hi[i] = self.hi[i].max(other.hi[i]);
        }
    }

    /// Grows `self` to cover the point `p`.
    pub fn merge_point(&mut self, p: &[f64]) {
        debug_assert_eq!(self.dim(), p.len());
        for (i, &pi) in p.iter().enumerate() {
            self.lo[i] = self.lo[i].min(pi);
            self.hi[i] = self.hi[i].max(pi);
        }
    }

    /// The merged box of `self` and `other`, non-destructively.
    pub fn merged(&self, other: &BoundingBox) -> BoundingBox {
        let mut b = self.clone();
        b.merge(other);
        b
    }

    /// Hyper-volume (product of side lengths). Zero for degenerate boxes.
    pub fn volume(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.lo.iter().zip(&self.hi).map(|(l, h)| h - l).product()
    }

    /// Sum of side lengths (the R*-tree "margin" heuristic).
    pub fn margin(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.lo.iter().zip(&self.hi).map(|(l, h)| h - l).sum()
    }

    /// How much the volume would grow if `other` were merged in.
    pub fn enlargement(&self, other: &BoundingBox) -> f64 {
        self.merged(other).volume() - self.volume()
    }

    /// Minimal squared Euclidean distance from `p` to any point of the box.
    /// Zero when `p` is inside. Used by kNN search.
    pub fn min_dist_sq(&self, p: &[f64]) -> f64 {
        debug_assert_eq!(p.len(), self.dim());
        let mut acc = 0.0;
        for (i, &pi) in p.iter().enumerate() {
            let d = if pi < self.lo[i] {
                self.lo[i] - pi
            } else if pi > self.hi[i] {
                pi - self.hi[i]
            } else {
                0.0
            };
            acc += d * d;
        }
        acc
    }

    /// Tight range `[min, max]` of the linear form `normal · q + offset`
    /// over the box, computed corner-free: the extreme of a linear function
    /// over a box is attained by picking, per coordinate, whichever corner
    /// matches the coefficient's sign.
    pub fn form_range(&self, normal: &[f64], offset: f64) -> (f64, f64) {
        debug_assert_eq!(normal.len(), self.dim());
        let mut min = offset;
        let mut max = offset;
        for (i, &ni) in normal.iter().enumerate() {
            let (a, b) = (ni * self.lo[i], ni * self.hi[i]);
            min += a.min(b);
            max += a.max(b);
        }
        (min, max)
    }

    /// Classifies the box against a hyperplane using [`Self::form_range`].
    ///
    /// `EntirelyAbove` / `EntirelyBelow` are conservative certainties; a
    /// `Straddles` answer only means pruning is not possible.
    pub fn side_of(&self, h: &Hyperplane) -> BoxSide {
        let (min, max) = self.form_range(h.normal().as_slice(), h.offset());
        if min >= 0.0 {
            BoxSide::EntirelyAbove
        } else if max < 0.0 {
            BoxSide::EntirelyBelow
        } else {
            BoxSide::Straddles
        }
    }

    /// True when the box *cannot* contain any point of the slab's affected
    /// subspace — i.e. the whole box is provably on the same side of both
    /// boundaries. Used for R-tree pruning; a `false` answer means the
    /// subtree must be descended, not that it certainly intersects.
    pub fn disjoint_from_slab(&self, slab: &Slab) -> bool {
        let b = self.side_of(slab.before());
        if b == BoxSide::Straddles {
            return false;
        }
        let a = self.side_of(slab.after());
        if a == BoxSide::Straddles {
            return false;
        }
        // Both certain: disjoint iff the sign pattern is identical for every
        // point, i.e. no point can flip.
        matches!(
            (b, a),
            (BoxSide::EntirelyAbove, BoxSide::EntirelyAbove)
                | (BoxSide::EntirelyBelow, BoxSide::EntirelyBelow)
        )
    }

    /// Tolerance-widened variant of [`Self::disjoint_from_slab`]: boxes
    /// within `tol` of either boundary are never pruned, so exact-tie query
    /// points (decided by id tie-breaks) always reach the leaf test.
    pub fn disjoint_from_slab_tol(&self, slab: &Slab, tol: f64) -> bool {
        let hb = slab.before();
        let (bmin, bmax) = self.form_range(hb.normal().as_slice(), hb.offset());
        if bmin <= tol && bmax >= -tol {
            return false; // straddles (or touches) the before-boundary
        }
        let ha = slab.after();
        let (amin, amax) = self.form_range(ha.normal().as_slice(), ha.offset());
        if amin <= tol && amax >= -tol {
            return false;
        }
        // Both certainly on one side: disjoint iff the sides agree.
        (bmin > tol) == (amin > tol)
    }

    /// Classify against a hyperplane, as a `Side` if certain.
    pub fn certain_side(&self, h: &Hyperplane) -> Option<Side> {
        match self.side_of(h) {
            BoxSide::EntirelyAbove => Some(Side::Above),
            BoxSide::EntirelyBelow => Some(Side::Below),
            BoxSide::Straddles => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::Vector;

    fn bb(lo: &[f64], hi: &[f64]) -> BoundingBox {
        BoundingBox::new(lo.to_vec(), hi.to_vec())
    }

    #[test]
    fn point_box_roundtrip() {
        let b = BoundingBox::point(&[1.0, 2.0]);
        assert!(b.contains_point(&[1.0, 2.0]));
        assert_eq!(b.volume(), 0.0);
        assert!(!b.is_empty());
    }

    #[test]
    #[should_panic]
    fn inverted_box_rejected() {
        let _ = bb(&[1.0], &[0.0]);
    }

    #[test]
    fn empty_box_semantics() {
        let mut e = BoundingBox::empty(2);
        assert!(e.is_empty());
        assert_eq!(e.volume(), 0.0);
        assert!(!e.intersects(&bb(&[0.0, 0.0], &[1.0, 1.0])));
        e.merge_point(&[0.5, 0.5]);
        assert!(!e.is_empty());
        assert!(e.contains_point(&[0.5, 0.5]));
    }

    #[test]
    fn containment_and_overlap() {
        let outer = bb(&[0.0, 0.0], &[10.0, 10.0]);
        let inner = bb(&[2.0, 2.0], &[3.0, 3.0]);
        let crossing = bb(&[9.0, 9.0], &[11.0, 11.0]);
        let far = bb(&[20.0, 20.0], &[21.0, 21.0]);
        assert!(outer.contains_box(&inner));
        assert!(!inner.contains_box(&outer));
        assert!(outer.intersects(&crossing));
        assert!(!outer.intersects(&far));
        // Touching edges count as intersecting (closed boxes).
        assert!(outer.intersects(&bb(&[10.0, 0.0], &[12.0, 1.0])));
    }

    #[test]
    fn merge_enlargement_volume_margin() {
        let a = bb(&[0.0, 0.0], &[1.0, 1.0]);
        let b = bb(&[2.0, 0.0], &[3.0, 1.0]);
        let m = a.merged(&b);
        assert_eq!(m, bb(&[0.0, 0.0], &[3.0, 1.0]));
        assert_eq!(a.volume(), 1.0);
        assert_eq!(m.volume(), 3.0);
        assert_eq!(a.enlargement(&b), 2.0);
        assert_eq!(m.margin(), 4.0);
        assert_eq!(m.center(), vec![1.5, 0.5]);
    }

    #[test]
    fn min_dist_sq_cases() {
        let b = bb(&[0.0, 0.0], &[1.0, 1.0]);
        assert_eq!(b.min_dist_sq(&[0.5, 0.5]), 0.0); // inside
        assert_eq!(b.min_dist_sq(&[2.0, 0.5]), 1.0); // right of box
        assert_eq!(b.min_dist_sq(&[2.0, 2.0]), 2.0); // corner
    }

    #[test]
    fn form_range_is_tight() {
        let b = bb(&[-1.0, 2.0], &[1.0, 3.0]);
        // form: 2x - y + 1 over the box: x∈[-1,1] contributes [-2,2],
        // -y over y∈[2,3] contributes [-3,-2]; total [-4, 1].
        let (min, max) = b.form_range(&[2.0, -1.0], 1.0);
        assert_eq!(min, -4.0);
        assert_eq!(max, 1.0);
        // Brute-force corners agree.
        let mut bf_min = f64::INFINITY;
        let mut bf_max = f64::NEG_INFINITY;
        for &x in &[-1.0, 1.0] {
            for &y in &[2.0, 3.0] {
                let v: f64 = 2.0 * x - y + 1.0;
                bf_min = bf_min.min(v);
                bf_max = bf_max.max(v);
            }
        }
        assert_eq!((min, max), (bf_min, bf_max));
    }

    #[test]
    fn side_classification() {
        let h = Hyperplane::new(Vector::from([1.0, 0.0]), -5.0); // x = 5
        assert_eq!(
            bb(&[6.0, 0.0], &[7.0, 1.0]).side_of(&h),
            BoxSide::EntirelyAbove
        );
        assert_eq!(
            bb(&[0.0, 0.0], &[1.0, 1.0]).side_of(&h),
            BoxSide::EntirelyBelow
        );
        assert_eq!(bb(&[4.0, 0.0], &[6.0, 1.0]).side_of(&h), BoxSide::Straddles);
        // Touching the plane counts as above (closed form_range min == 0).
        assert_eq!(
            bb(&[5.0, 0.0], &[6.0, 1.0]).side_of(&h),
            BoxSide::EntirelyAbove
        );
    }

    #[test]
    fn slab_pruning_is_sound() {
        let p = Vector::from([2.0, 0.0]);
        let o = Vector::from([0.0, 2.0]);
        let s = Vector::from([-4.0, 0.0]);
        let slab = Slab::affected_subspace(&p, &o, &s).unwrap();
        // Box deep inside "target worse both before and after" region.
        // Δ(q) = 2q1 - 2q2; Δ'(q) = -2q1 - 2q2. For q1 large positive and
        // q2 very negative both are positive.
        let safe = bb(&[0.1, -10.0], &[0.2, -9.0]);
        assert!(safe.disjoint_from_slab(&slab));
        // Box containing a flipping point must not be pruned.
        let flipping_box = bb(&[0.5, 0.0], &[2.0, 1.0]);
        assert!(!flipping_box.disjoint_from_slab(&slab));
    }

    #[test]
    fn certain_side_matches_side_of() {
        let h = Hyperplane::new(Vector::from([0.0, 1.0]), 0.0); // y = 0
        assert_eq!(
            bb(&[0.0, 1.0], &[1.0, 2.0]).certain_side(&h),
            Some(Side::Above)
        );
        assert_eq!(
            bb(&[0.0, -2.0], &[1.0, -1.0]).certain_side(&h),
            Some(Side::Below)
        );
        assert_eq!(bb(&[0.0, -1.0], &[1.0, 1.0]).certain_side(&h), None);
    }
}
