//! Dense `d`-dimensional vectors over `f64`.
//!
//! The whole library works in a single coordinate space at a time: objects
//! are points in attribute space, top-k queries are points in weight space,
//! and improvement strategies are displacement vectors in attribute space.
//! All three are represented by [`Vector`].
//!
//! Hot paths (scoring a query against every object) operate on `&[f64]`
//! slices via the free functions [`dot`], [`norm`], etc., so callers that
//! store coordinates in flat buffers pay no abstraction cost.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics in debug builds if the lengths differ (callers guarantee equal
/// dimensionality; release builds truncate to the shorter slice via `zip`).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot: dimension mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm of a slice.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean norm (avoids the `sqrt` when only comparisons matter).
#[inline]
pub fn norm_sq(a: &[f64]) -> f64 {
    dot(a, a)
}

/// L1 norm (sum of absolute values) of a slice.
#[inline]
pub fn norm_l1(a: &[f64]) -> f64 {
    a.iter().map(|x| x.abs()).sum()
}

/// Squared Euclidean distance between two points.
#[inline]
pub fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dist_sq: dimension mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance between two points.
#[inline]
pub fn dist(a: &[f64], b: &[f64]) -> f64 {
    dist_sq(a, b).sqrt()
}

/// An owned dense vector in `R^d`.
///
/// `Vector` is deliberately a thin wrapper around `Vec<f64>`: it exists to
/// give geometric operations a home and to make signatures self-describing,
/// not to hide the representation. [`Vector::as_slice`] (or deref-style
/// indexing) exposes the raw coordinates for hot loops.
#[derive(Clone, PartialEq)]
pub struct Vector(Vec<f64>);

impl Vector {
    /// Creates a vector from raw coordinates.
    pub fn new(coords: Vec<f64>) -> Self {
        Vector(coords)
    }

    /// The zero vector of dimension `d`.
    pub fn zeros(d: usize) -> Self {
        Vector(vec![0.0; d])
    }

    /// A vector with every coordinate equal to `value`.
    pub fn filled(d: usize, value: f64) -> Self {
        Vector(vec![value; d])
    }

    /// The `i`-th standard basis vector of dimension `d`, scaled by `scale`.
    pub fn basis(d: usize, i: usize, scale: f64) -> Self {
        assert!(i < d, "basis index {i} out of range for dimension {d}");
        let mut v = vec![0.0; d];
        v[i] = scale;
        Vector(v)
    }

    /// Dimensionality of the vector.
    #[inline]
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Whether the vector has no coordinates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Coordinates as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// Coordinates as a mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.0
    }

    /// Consumes the vector, returning the raw coordinates.
    pub fn into_inner(self) -> Vec<f64> {
        self.0
    }

    /// Dot product with another vector.
    #[inline]
    pub fn dot(&self, other: &Vector) -> f64 {
        dot(&self.0, &other.0)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(&self) -> f64 {
        norm(&self.0)
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(&self) -> f64 {
        norm_sq(&self.0)
    }

    /// L1 norm.
    #[inline]
    pub fn norm_l1(&self) -> f64 {
        norm_l1(&self.0)
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn dist(&self, other: &Vector) -> f64 {
        dist(&self.0, &other.0)
    }

    /// Returns `self * t` without consuming `self`.
    pub fn scaled(&self, t: f64) -> Vector {
        Vector(self.0.iter().map(|x| x * t).collect())
    }

    /// Scales `self` in place by `t`.
    pub fn scale_mut(&mut self, t: f64) {
        for x in &mut self.0 {
            *x *= t;
        }
    }

    /// Unit vector in the direction of `self`, or `None` for the zero vector.
    pub fn normalized(&self) -> Option<Vector> {
        let n = self.norm();
        if n <= f64::EPSILON {
            None
        } else {
            Some(self.scaled(1.0 / n))
        }
    }

    /// `self + t * other`, the fused update used by iterative solvers.
    pub fn axpy(&self, t: f64, other: &Vector) -> Vector {
        debug_assert_eq!(self.dim(), other.dim());
        Vector(
            self.0
                .iter()
                .zip(&other.0)
                .map(|(a, b)| a + t * b)
                .collect(),
        )
    }

    /// True when every coordinate is finite (no NaN / infinity).
    pub fn is_finite(&self) -> bool {
        self.0.iter().all(|x| x.is_finite())
    }

    /// True when every coordinate's absolute value is at most `eps`.
    pub fn is_zero(&self, eps: f64) -> bool {
        self.0.iter().all(|x| x.abs() <= eps)
    }

    /// Component-wise clamp of each coordinate into `[lo[i], hi[i]]`.
    pub fn clamped(&self, lo: &[f64], hi: &[f64]) -> Vector {
        debug_assert_eq!(self.dim(), lo.len());
        debug_assert_eq!(self.dim(), hi.len());
        Vector(
            self.0
                .iter()
                .enumerate()
                .map(|(i, &x)| x.clamp(lo[i], hi[i]))
                .collect(),
        )
    }

    /// Iterator over coordinates.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.0.iter()
    }
}

impl fmt::Debug for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Vector(")?;
        for (i, x) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x:.6}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<f64>> for Vector {
    fn from(v: Vec<f64>) -> Self {
        Vector(v)
    }
}

impl From<&[f64]> for Vector {
    fn from(v: &[f64]) -> Self {
        Vector(v.to_vec())
    }
}

impl<const N: usize> From<[f64; N]> for Vector {
    fn from(v: [f64; N]) -> Self {
        Vector(v.to_vec())
    }
}

impl Index<usize> for Vector {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.0[i]
    }
}

impl IndexMut<usize> for Vector {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.0[i]
    }
}

impl Add<&Vector> for &Vector {
    type Output = Vector;
    fn add(self, rhs: &Vector) -> Vector {
        debug_assert_eq!(self.dim(), rhs.dim());
        Vector(self.0.iter().zip(&rhs.0).map(|(a, b)| a + b).collect())
    }
}

impl Sub<&Vector> for &Vector {
    type Output = Vector;
    fn sub(self, rhs: &Vector) -> Vector {
        debug_assert_eq!(self.dim(), rhs.dim());
        Vector(self.0.iter().zip(&rhs.0).map(|(a, b)| a - b).collect())
    }
}

impl Mul<f64> for &Vector {
    type Output = Vector;
    fn mul(self, t: f64) -> Vector {
        self.scaled(t)
    }
}

impl Neg for &Vector {
    type Output = Vector;
    fn neg(self) -> Vector {
        self.scaled(-1.0)
    }
}

impl AddAssign<&Vector> for Vector {
    fn add_assign(&mut self, rhs: &Vector) {
        debug_assert_eq!(self.dim(), rhs.dim());
        for (a, b) in self.0.iter_mut().zip(&rhs.0) {
            *a += b;
        }
    }
}

impl SubAssign<&Vector> for Vector {
    fn sub_assign(&mut self, rhs: &Vector) {
        debug_assert_eq!(self.dim(), rhs.dim());
        for (a, b) in self.0.iter_mut().zip(&rhs.0) {
            *a -= b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn norms() {
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
        assert_eq!(norm_sq(&[3.0, 4.0]), 25.0);
        assert_eq!(norm_l1(&[-3.0, 4.0]), 7.0);
    }

    #[test]
    fn distances() {
        assert_eq!(dist(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(dist_sq(&[1.0], &[4.0]), 9.0);
    }

    #[test]
    fn constructors() {
        assert_eq!(Vector::zeros(3).as_slice(), &[0.0, 0.0, 0.0]);
        assert_eq!(Vector::filled(2, 7.0).as_slice(), &[7.0, 7.0]);
        assert_eq!(Vector::basis(3, 1, 2.5).as_slice(), &[0.0, 2.5, 0.0]);
    }

    #[test]
    #[should_panic]
    fn basis_out_of_range_panics() {
        let _ = Vector::basis(2, 2, 1.0);
    }

    #[test]
    fn arithmetic() {
        let a = Vector::from([1.0, 2.0]);
        let b = Vector::from([3.0, -1.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 1.0]);
        assert_eq!((&a - &b).as_slice(), &[-2.0, 3.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[4.0, 1.0]);
        c -= &b;
        assert_eq!(c.as_slice(), a.as_slice());
    }

    #[test]
    fn axpy_matches_manual() {
        let a = Vector::from([1.0, 2.0]);
        let b = Vector::from([10.0, 20.0]);
        assert_eq!(a.axpy(0.5, &b).as_slice(), &[6.0, 12.0]);
    }

    #[test]
    fn normalized_unit_length() {
        let v = Vector::from([3.0, 4.0]).normalized().unwrap();
        assert!((v.norm() - 1.0).abs() < 1e-12);
        assert!(Vector::zeros(2).normalized().is_none());
    }

    #[test]
    fn clamp_and_zero_checks() {
        let v = Vector::from([-2.0, 5.0]);
        assert_eq!(v.clamped(&[0.0, 0.0], &[1.0, 1.0]).as_slice(), &[0.0, 1.0]);
        assert!(Vector::from([1e-12, -1e-12]).is_zero(1e-9));
        assert!(!Vector::from([0.1]).is_zero(1e-9));
    }

    #[test]
    fn finite_check() {
        assert!(Vector::from([1.0, 2.0]).is_finite());
        assert!(!Vector::from([f64::NAN]).is_finite());
        assert!(!Vector::from([f64::INFINITY]).is_finite());
    }

    #[test]
    fn indexing_and_debug() {
        let mut v = Vector::from([1.0, 2.0]);
        v[0] = 9.0;
        assert_eq!(v[0], 9.0);
        let s = format!("{v:?}");
        assert!(s.starts_with("Vector("));
    }
}
