//! Hyperplanes, half-spaces, and slabs in `R^d`.
//!
//! In the improvement-query setting a hyperplane arises as the intersection
//! of two object functions `f_i(q) = p_i · q` and `f_l(q) = p_l · q`: the set
//! of query points where both objects score equally, `(p_i − p_l) · q = 0`
//! (Eq. 2 of the paper). Applying a strategy `s` to `p_i` tilts that
//! intersection to `(p_i + s − p_l) · q = 0` (Eq. 3); the region between the
//! two is the *affected subspace* (Eqs. 4–5), modelled here by [`Slab`].

use crate::vector::{dot, Vector};

/// Which side of a hyperplane a point lies on.
///
/// Following the paper's convention, points exactly on the hyperplane are
/// treated as [`Side::Above`] ("queries falling on the intersection can be
/// treated as above it", §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// `normal · q + offset ≥ 0`.
    Above,
    /// `normal · q + offset < 0`.
    Below,
}

impl Side {
    /// The opposite side.
    pub fn flip(self) -> Side {
        match self {
            Side::Above => Side::Below,
            Side::Below => Side::Above,
        }
    }
}

/// A hyperplane `{ q : normal · q + offset = 0 }` in `R^d`.
#[derive(Debug, Clone, PartialEq)]
pub struct Hyperplane {
    normal: Vector,
    offset: f64,
}

impl Hyperplane {
    /// Creates a hyperplane from its normal vector and offset.
    ///
    /// # Panics
    /// Panics if the normal is the zero vector (the locus would be either
    /// empty or all of space, neither of which is a hyperplane).
    pub fn new(normal: Vector, offset: f64) -> Self {
        assert!(!normal.is_zero(0.0), "hyperplane normal must be non-zero");
        Hyperplane { normal, offset }
    }

    /// The intersection hyperplane of two object functions: the set of query
    /// points scoring `a` and `b` equally, `{ q : (a − b) · q = 0 }`.
    ///
    /// Returns `None` when the objects are identical (they never intersect
    /// transversally; every query scores them equally).
    pub fn object_intersection(a: &Vector, b: &Vector) -> Option<Self> {
        let n = a - b;
        if n.is_zero(0.0) {
            None
        } else {
            Some(Hyperplane {
                normal: n,
                offset: 0.0,
            })
        }
    }

    /// The hyperplane's normal vector.
    pub fn normal(&self) -> &Vector {
        &self.normal
    }

    /// The hyperplane's offset term.
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Dimensionality of the ambient space.
    pub fn dim(&self) -> usize {
        self.normal.dim()
    }

    /// The signed evaluation `normal · q + offset`.
    #[inline]
    pub fn eval(&self, q: &[f64]) -> f64 {
        dot(self.normal.as_slice(), q) + self.offset
    }

    /// Classifies which side `q` lies on (on-plane counts as `Above`).
    #[inline]
    pub fn side(&self, q: &[f64]) -> Side {
        if self.eval(q) >= 0.0 {
            Side::Above
        } else {
            Side::Below
        }
    }

    /// Perpendicular distance from `q` to the hyperplane.
    pub fn distance(&self, q: &[f64]) -> f64 {
        self.eval(q).abs() / self.normal.norm()
    }

    /// Orthogonal projection of `q` onto the hyperplane.
    pub fn project(&self, q: &[f64]) -> Vector {
        let t = self.eval(q) / self.normal.norm_sq();
        Vector::from(q).axpy(-t, &self.normal)
    }

    /// Returns a hyperplane with the normal flipped (same point set, with
    /// `Above`/`Below` exchanged).
    pub fn flipped(&self) -> Hyperplane {
        Hyperplane {
            normal: -&self.normal,
            offset: -self.offset,
        }
    }
}

/// The region between two parallel-or-tilted hyperplane positions where a
/// linear form changes sign: the paper's *affected subspace*.
///
/// Given the pre-improvement form `Δ(q) = (p − o) · q` and post-improvement
/// form `Δ'(q) = (p + s − o) · q`, a query's relative order against opponent
/// `o` flips iff `sign(Δ(q)) ≠ sign(Δ'(q))` (with on-plane counting as
/// non-negative). [`Slab::contains`] tests exactly that.
#[derive(Debug, Clone)]
pub struct Slab {
    before: Hyperplane,
    after: Hyperplane,
}

impl Slab {
    /// Builds the affected subspace for target attributes `p`, opponent
    /// attributes `o`, and strategy `s`.
    ///
    /// Returns `None` when either boundary would degenerate (target equal to
    /// the opponent before or after improvement): a degenerate boundary means
    /// ties everywhere, which the ranking layer resolves by object id rather
    /// than geometry.
    pub fn affected_subspace(p: &Vector, o: &Vector, s: &Vector) -> Option<Slab> {
        let before = Hyperplane::object_intersection(p, o)?;
        let p_after = p + s;
        let after = Hyperplane::object_intersection(&p_after, o)?;
        Some(Slab { before, after })
    }

    /// Builds a slab directly from two boundary hyperplanes.
    pub fn new(before: Hyperplane, after: Hyperplane) -> Slab {
        assert_eq!(
            before.dim(),
            after.dim(),
            "slab boundary dimension mismatch"
        );
        Slab { before, after }
    }

    /// The boundary corresponding to the pre-improvement intersection.
    pub fn before(&self) -> &Hyperplane {
        &self.before
    }

    /// The boundary corresponding to the post-improvement intersection.
    pub fn after(&self) -> &Hyperplane {
        &self.after
    }

    /// True iff the sign of the form flips across the improvement, i.e. the
    /// query point lies in the affected subspace.
    #[inline]
    pub fn contains(&self, q: &[f64]) -> bool {
        self.before.side(q) != self.after.side(q)
    }

    /// The sign pattern `(before, after)` at `q`; useful to distinguish
    /// queries where the target *gains* rank from where it *loses* rank.
    #[inline]
    pub fn sides(&self, q: &[f64]) -> (Side, Side) {
        (self.before.side(q), self.after.side(q))
    }

    /// Like [`Slab::contains`], but additionally reports queries lying
    /// within `tol` of either boundary as affected. Exact-tie queries (whose
    /// hit status is decided by an id tie-break rather than the sign) are
    /// then re-evaluated instead of skipped.
    #[inline]
    pub fn contains_tol(&self, q: &[f64], tol: f64) -> bool {
        let b = self.before.eval(q);
        let a = self.after.eval(q);
        (b >= 0.0) != (a >= 0.0) || b.abs() <= tol || a.abs() <= tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(n: &[f64], c: f64) -> Hyperplane {
        Hyperplane::new(Vector::from(n), c)
    }

    #[test]
    fn side_classification() {
        // x - y = 0 in 2D.
        let hp = h(&[1.0, -1.0], 0.0);
        assert_eq!(hp.side(&[2.0, 1.0]), Side::Above);
        assert_eq!(hp.side(&[1.0, 2.0]), Side::Below);
        // On-plane counts as Above, per the paper.
        assert_eq!(hp.side(&[1.0, 1.0]), Side::Above);
    }

    #[test]
    #[should_panic]
    fn zero_normal_rejected() {
        let _ = Hyperplane::new(Vector::zeros(2), 1.0);
    }

    #[test]
    fn object_intersection_basic() {
        let a = Vector::from([4.0, 3.0]);
        let b = Vector::from([1.0, -2.0]);
        let hp = Hyperplane::object_intersection(&a, &b).unwrap();
        // On the plane both objects score equally.
        // normal = (3, 5); a point on the plane: (5, -3).
        let q = [5.0, -3.0];
        assert!((hp.eval(&q)).abs() < 1e-12);
        assert!((dot(a.as_slice(), &q) - dot(b.as_slice(), &q)).abs() < 1e-12);
        assert!(Hyperplane::object_intersection(&a, &a).is_none());
    }

    #[test]
    fn distance_and_projection() {
        let hp = h(&[0.0, 1.0], -1.0); // y = 1
        assert!((hp.distance(&[5.0, 4.0]) - 3.0).abs() < 1e-12);
        let p = hp.project(&[5.0, 4.0]);
        assert!((p[0] - 5.0).abs() < 1e-12);
        assert!((p[1] - 1.0).abs() < 1e-12);
        // Projected point is on the plane.
        assert!(hp.eval(p.as_slice()).abs() < 1e-12);
    }

    #[test]
    fn flipped_preserves_point_set() {
        let hp = h(&[2.0, -1.0], 0.5);
        let fp = hp.flipped();
        for q in [[0.0, 0.5], [1.0, 2.5], [3.0, -1.0]] {
            assert!((hp.eval(&q) + fp.eval(&q)).abs() < 1e-12);
        }
        assert_eq!(hp.side(&[10.0, 0.0]), fp.side(&[10.0, 0.0]).flip());
    }

    #[test]
    fn paper_figure2_affected_subspace() {
        // Figure 2 of the paper: f1(q) = 4q1 + 3q2, f2(q) = q1 - 2q2,
        // s = (1, 0). The affected subspace is where f1 vs f2 flips.
        //
        // NOTE: the paper's figure ranks by *lowest* score (Eq. 6), so f2
        // beats f1 wherever f2(q) < f1(q), i.e. everywhere in the positive
        // quadrant; the *rank switch* happens for queries between the two
        // intersection lines. We verify sign-flip containment directly.
        let p1 = Vector::from([4.0, 3.0]);
        let p2 = Vector::from([1.0, -2.0]);
        let s = Vector::from([1.0, 0.0]);
        let slab = Slab::affected_subspace(&p1, &p2, &s).unwrap();
        // Before: Δ(q) = 3q1 + 5q2; after: Δ'(q) = 4q1 + 5q2.
        // A query with 3q1 + 5q2 < 0 ≤ 4q1 + 5q2 flips: e.g. q = (5, -3.5):
        // Δ = 15 - 17.5 = -2.5 < 0, Δ' = 20 - 17.5 = 2.5 ≥ 0.
        assert!(slab.contains(&[5.0, -3.5]));
        // A query far above both: no flip.
        assert!(!slab.contains(&[5.0, 5.0]));
        // A query far below both: no flip.
        assert!(!slab.contains(&[-5.0, -5.0]));
    }

    #[test]
    fn slab_sides_distinguish_direction() {
        let p = Vector::from([2.0]);
        let o = Vector::from([1.0]);
        let s = Vector::from([-2.0]); // target improves past opponent
        let slab = Slab::affected_subspace(&p, &o, &s).unwrap();
        // q = 1: before Δ = 1 ≥ 0 (target worse), after Δ' = -1 < 0 (better).
        assert_eq!(slab.sides(&[1.0]), (Side::Above, Side::Below));
        assert!(slab.contains(&[1.0]));
    }

    #[test]
    fn degenerate_slab_is_none() {
        let p = Vector::from([1.0, 1.0]);
        let o = p.clone();
        let s = Vector::from([1.0, 0.0]);
        assert!(Slab::affected_subspace(&p, &o, &s).is_none());
        // Strategy that lands exactly on the opponent also degenerates.
        let p2 = Vector::from([0.0, 1.0]);
        let s2 = Vector::from([1.0, 0.0]);
        assert!(Slab::affected_subspace(&p2, &Vector::from([1.0, 1.0]), &s2).is_none());
    }
}
