//! Binary space partitioning of query points into subdomains — Algorithm 1
//! (`FindSubdomains`) of the paper.
//!
//! The intersection hyperplanes of the object functions partition the query
//! domain into cells ("subdomains") inside which the full object ranking is
//! constant. Following the paper, the partition is built incrementally: each
//! hyperplane splits every group of queries it separates into an *above* and
//! a *below* group, and groups that end up empty are discarded.
//!
//! Two query points end up in the same subdomain **iff** they lie on the
//! same side of every supplied hyperplane; that invariant (and nothing else)
//! is what the downstream ESE machinery relies on. Each subdomain also
//! remembers the hyperplanes that actually split it off — the paper's
//! `boundaries` — plus its full side signature for exact membership tests
//! during incremental updates (§4.3).

use std::collections::HashMap;

use crate::hyperplane::{Hyperplane, Side};

/// One cell of the partition, holding the queries that fall inside it.
#[derive(Debug, Clone)]
pub struct Subdomain {
    /// Dense id of the subdomain (index into [`Partition::subdomains`]).
    pub id: usize,
    /// Indices (into the input query list) of the queries in this cell.
    pub queries: Vec<usize>,
    /// The hyperplanes that actually split this cell off, with the side of
    /// the cell relative to each — Algorithm 1's `boundaries`.
    pub boundaries: Vec<(usize, Side)>,
    /// Side of the cell with respect to *every* input hyperplane, in input
    /// order. All queries of the cell share this signature.
    pub signature: Vec<Side>,
}

/// The result of running `FindSubdomains`.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Non-empty subdomains, in creation order.
    pub subdomains: Vec<Subdomain>,
    /// For each input query index, the id of the subdomain containing it.
    pub assignment: Vec<usize>,
    /// The hyperplanes the partition was built from (kept for membership
    /// tests on later-arriving query points).
    hyperplanes: Vec<Hyperplane>,
}

/// Computes the side signature of a point against a hyperplane list.
pub fn signature_of(q: &[f64], hyperplanes: &[Hyperplane]) -> Vec<Side> {
    hyperplanes.iter().map(|h| h.side(q)).collect()
}

/// Algorithm 1: partitions `queries` by the arrangement of `hyperplanes`.
///
/// Runs in `O(|I| · |Q|)` time (each hyperplane classifies each point once),
/// which matches the incremental group-splitting formulation of the paper;
/// empty cells are never materialized.
pub fn find_subdomains(hyperplanes: &[Hyperplane], queries: &[Vec<f64>]) -> Partition {
    // Each group is (member query indices, boundaries accumulated so far).
    // Start with a single subdomain holding everything (Algorithm 1 lines
    // 1–5).
    type Group = (Vec<usize>, Vec<(usize, Side)>);
    let mut groups: Vec<Group> = vec![((0..queries.len()).collect(), Vec::new())];

    for (hi, h) in hyperplanes.iter().enumerate() {
        let mut next = Vec::with_capacity(groups.len());
        for (members, bounds) in groups {
            if members.is_empty() {
                continue;
            }
            let mut above = Vec::new();
            let mut below = Vec::new();
            for &qi in &members {
                match h.side(&queries[qi]) {
                    Side::Above => above.push(qi),
                    Side::Below => below.push(qi),
                }
            }
            // The hyperplane "overlaps" the group only if it separates it;
            // otherwise the group passes through unchanged (the common side
            // is still recorded via the signature computed at the end).
            if above.is_empty() || below.is_empty() {
                next.push((members, bounds));
            } else {
                let mut above_bounds = bounds.clone();
                above_bounds.push((hi, Side::Above));
                let mut below_bounds = bounds;
                below_bounds.push((hi, Side::Below));
                next.push((above, above_bounds));
                next.push((below, below_bounds));
            }
        }
        groups = next;
    }

    let mut assignment = vec![usize::MAX; queries.len()];
    let mut subdomains = Vec::with_capacity(groups.len());
    let mut id = 0;
    for (members, boundaries) in groups {
        if members.is_empty() {
            continue; // Algorithm 1 discards subdomains without queries
        }
        let signature = signature_of(&queries[members[0]], hyperplanes);
        for &qi in &members {
            assignment[qi] = id;
        }
        subdomains.push(Subdomain {
            id,
            queries: members,
            boundaries,
            signature,
        });
        id += 1;
    }

    Partition {
        subdomains,
        assignment,
        hyperplanes: hyperplanes.to_vec(),
    }
}

impl Partition {
    /// Number of non-empty subdomains.
    pub fn len(&self) -> usize {
        self.subdomains.len()
    }

    /// True when there are no subdomains (no queries were supplied).
    pub fn is_empty(&self) -> bool {
        self.subdomains.is_empty()
    }

    /// The hyperplanes the partition was built from.
    pub fn hyperplanes(&self) -> &[Hyperplane] {
        &self.hyperplanes
    }

    /// Exact membership test: does point `q` fall inside subdomain `id`?
    ///
    /// Used by the incremental update path (§4.3): new query points first
    /// probe the subdomains of their nearest neighbours before falling back
    /// to a full signature computation.
    pub fn point_in_subdomain(&self, q: &[f64], id: usize) -> bool {
        let sd = &self.subdomains[id];
        sd.signature
            .iter()
            .enumerate()
            .all(|(hi, &side)| self.hyperplanes[hi].side(q) == side)
    }

    /// Locates the subdomain containing `q`, if any existing cell matches
    /// its full signature. Returns `None` when `q` falls in a cell that is
    /// currently empty (no indexed query shares it).
    pub fn locate(&self, q: &[f64]) -> Option<usize> {
        let sig = signature_of(q, &self.hyperplanes);
        // A HashMap over signatures would be faster for repeated lookups;
        // Partition keeps one lazily in `SignatureIndex` below for callers
        // that need it. Linear scan is fine for the sizes BSP is used at.
        self.subdomains
            .iter()
            .find(|sd| sd.signature == sig)
            .map(|sd| sd.id)
    }

    /// Builds a hash index over signatures for repeated [`Partition::locate`]-style
    /// lookups.
    pub fn signature_index(&self) -> SignatureIndex<'_> {
        let mut map = HashMap::with_capacity(self.subdomains.len());
        for sd in &self.subdomains {
            map.insert(encode_signature(&sd.signature), sd.id);
        }
        SignatureIndex {
            partition: self,
            map,
        }
    }
}

fn encode_signature(sig: &[Side]) -> Vec<u8> {
    sig.iter()
        .map(|s| match s {
            Side::Above => 1u8,
            Side::Below => 0u8,
        })
        .collect()
}

/// Hash index over subdomain signatures for O(|I|) point location.
pub struct SignatureIndex<'a> {
    partition: &'a Partition,
    map: HashMap<Vec<u8>, usize>,
}

impl SignatureIndex<'_> {
    /// Locates the subdomain containing `q`, if any matches.
    pub fn locate(&self, q: &[f64]) -> Option<usize> {
        let sig = signature_of(q, &self.partition.hyperplanes);
        self.map.get(&encode_signature(&sig)).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::Vector;

    fn hp(n: &[f64], c: f64) -> Hyperplane {
        Hyperplane::new(Vector::from(n), c)
    }

    #[test]
    fn empty_inputs() {
        let p = find_subdomains(&[], &[]);
        assert!(p.is_empty());
        let p = find_subdomains(&[hp(&[1.0], 0.0)], &[]);
        assert!(p.is_empty());
    }

    #[test]
    fn no_hyperplanes_single_cell() {
        let queries = vec![vec![0.0, 0.0], vec![5.0, 5.0]];
        let p = find_subdomains(&[], &queries);
        assert_eq!(p.len(), 1);
        assert_eq!(p.assignment, vec![0, 0]);
        assert!(p.subdomains[0].boundaries.is_empty());
    }

    #[test]
    fn quadrant_partition() {
        // x = 0 and y = 0 split the plane into 4 quadrants.
        let hs = vec![hp(&[1.0, 0.0], 0.0), hp(&[0.0, 1.0], 0.0)];
        let queries = vec![
            vec![1.0, 1.0],   // ++
            vec![-1.0, 1.0],  // -+
            vec![-1.0, -1.0], // --
            vec![1.0, -1.0],  // +-
            vec![2.0, 3.0],   // ++ again
        ];
        let p = find_subdomains(&hs, &queries);
        assert_eq!(p.len(), 4);
        assert_eq!(p.assignment[0], p.assignment[4]);
        let distinct: std::collections::HashSet<_> = p.assignment.iter().collect();
        assert_eq!(distinct.len(), 4);
    }

    #[test]
    fn empty_cells_discarded() {
        // Three parallel lines create 4 cells but queries occupy only 2.
        let hs = vec![
            hp(&[1.0, 0.0], 0.0),
            hp(&[1.0, 0.0], -10.0),
            hp(&[1.0, 0.0], -20.0),
        ];
        let queries = vec![vec![-5.0, 0.0], vec![5.0, 0.0], vec![6.0, 1.0]];
        let p = find_subdomains(&hs, &queries);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn same_cell_iff_same_signature() {
        let hs = vec![
            hp(&[1.0, 2.0], -0.5),
            hp(&[-3.0, 1.0], 0.2),
            hp(&[0.5, -0.5], 0.0),
        ];
        let queries: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                let t = i as f64;
                vec![(t * 0.37).sin() * 3.0, (t * 0.73).cos() * 3.0]
            })
            .collect();
        let p = find_subdomains(&hs, &queries);
        for i in 0..queries.len() {
            for j in 0..queries.len() {
                let same_sig = signature_of(&queries[i], &hs) == signature_of(&queries[j], &hs);
                assert_eq!(
                    p.assignment[i] == p.assignment[j],
                    same_sig,
                    "queries {i} and {j} disagree"
                );
            }
        }
    }

    #[test]
    fn on_plane_counts_as_above() {
        let hs = vec![hp(&[1.0], 0.0)];
        let queries = vec![vec![0.0], vec![1.0], vec![-1.0]];
        let p = find_subdomains(&hs, &queries);
        assert_eq!(p.assignment[0], p.assignment[1]);
        assert_ne!(p.assignment[0], p.assignment[2]);
    }

    #[test]
    fn boundaries_recorded_only_on_split() {
        let hs = vec![
            hp(&[1.0, 0.0], -100.0), // splits nothing
            hp(&[1.0, 0.0], 0.0),    // splits the two points
        ];
        let queries = vec![vec![-1.0, 0.0], vec![1.0, 0.0]];
        let p = find_subdomains(&hs, &queries);
        assert_eq!(p.len(), 2);
        for sd in &p.subdomains {
            assert_eq!(sd.boundaries.len(), 1);
            assert_eq!(sd.boundaries[0].0, 1);
        }
    }

    #[test]
    fn locate_and_membership() {
        let hs = vec![hp(&[1.0, 0.0], 0.0), hp(&[0.0, 1.0], 0.0)];
        let queries = vec![vec![1.0, 1.0], vec![-1.0, -1.0]];
        let p = find_subdomains(&hs, &queries);
        let idx = p.signature_index();
        // A new point in the ++ quadrant locates to the first subdomain.
        let found = idx.locate(&[3.0, 4.0]).unwrap();
        assert_eq!(found, p.assignment[0]);
        assert!(p.point_in_subdomain(&[3.0, 4.0], found));
        assert!(!p.point_in_subdomain(&[-3.0, 4.0], found));
        // A point in an unoccupied quadrant has no home.
        assert!(idx.locate(&[-1.0, 1.0]).is_none());
        assert!(p.locate(&[-1.0, 1.0]).is_none());
        assert_eq!(p.locate(&[2.0, 2.0]), Some(p.assignment[0]));
    }
}
