//! 2-D convex hulls and onion (layered hull) peeling.
//!
//! Substrate for the "onion technique" top-k index (Chang et al., SIGMOD
//! 2000) discussed in the paper's related work (§2): data points are peeled
//! into convex layers; a linear top-k query's optimum over any point set is
//! attained on its convex hull, so scanning layers outside-in bounds how
//! deep a query must look.

/// A point in the plane.
pub type Point2 = (f64, f64);

#[inline]
fn cross(o: Point2, a: Point2, b: Point2) -> f64 {
    (a.0 - o.0) * (b.1 - o.1) - (a.1 - o.1) * (b.0 - o.0)
}

/// Andrew's monotone-chain convex hull.
///
/// Returns the indices (into `points`) of the hull vertices in
/// counter-clockwise order. Collinear points on the hull boundary are
/// **included** — for the onion index every extreme-scoring point matters,
/// so dropping collinear vertices would lose top-k candidates.
///
/// Degenerate inputs: fewer than 3 points (or all collinear) return all
/// distinct input indices sorted along the line.
pub fn convex_hull_indices(points: &[Point2]) -> Vec<usize> {
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| {
        points[a]
            .0
            .total_cmp(&points[b].0)
            .then(points[a].1.total_cmp(&points[b].1))
    });
    idx.dedup_by(|&mut a, &mut b| points[a] == points[b]);
    if idx.len() <= 2 {
        return idx;
    }
    // Degenerate all-collinear input: the two-chain walk would visit the
    // interior points twice, so return the sorted distinct points directly.
    let first = points[idx[0]];
    let last = points[idx[idx.len() - 1]];
    // iq-lint: allow(raw-score-cmp, reason = "exact collinearity degeneracy test")
    if idx.iter().all(|&i| cross(first, last, points[i]) == 0.0) {
        return idx;
    }

    let mut hull: Vec<usize> = Vec::with_capacity(idx.len() * 2);
    // Lower chain.
    for &i in &idx {
        while hull.len() >= 2 {
            let o = points[hull[hull.len() - 2]];
            let a = points[hull[hull.len() - 1]];
            // Strict right turns pop; collinear points stay.
            if cross(o, a, points[i]) < 0.0 {
                hull.pop();
            } else {
                break;
            }
        }
        hull.push(i);
    }
    // Upper chain.
    let lower_len = hull.len() + 1;
    for &i in idx.iter().rev().skip(1) {
        while hull.len() >= lower_len {
            let o = points[hull[hull.len() - 2]];
            let a = points[hull[hull.len() - 1]];
            if cross(o, a, points[i]) < 0.0 {
                hull.pop();
            } else {
                break;
            }
        }
        hull.push(i);
    }
    hull.pop(); // last point equals the first
    hull
}

/// Peels `points` into convex layers, outermost first.
///
/// Every input index appears in exactly one layer. Duplicated coordinates
/// are assigned to the same layer as their first occurrence.
pub fn onion_layers(points: &[Point2]) -> Vec<Vec<usize>> {
    let mut remaining: Vec<usize> = (0..points.len()).collect();
    let mut layers = Vec::new();
    while !remaining.is_empty() {
        let subset: Vec<Point2> = remaining.iter().map(|&i| points[i]).collect();
        let hull_local = convex_hull_indices(&subset);
        if hull_local.is_empty() {
            break;
        }
        let mut on_hull = vec![false; remaining.len()];
        // convex_hull_indices dedups identical coordinates; mark every
        // remaining point that shares coordinates with a hull vertex so
        // duplicates peel together.
        for &h in &hull_local {
            let p = subset[h];
            for (k, &s) in subset.iter().enumerate() {
                if s == p {
                    on_hull[k] = true;
                }
            }
        }
        let mut layer = Vec::new();
        let mut rest = Vec::new();
        for (k, &orig) in remaining.iter().enumerate() {
            if on_hull[k] {
                layer.push(orig);
            } else {
                rest.push(orig);
            }
        }
        layers.push(layer);
        remaining = rest;
    }
    layers
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn empty_and_tiny() {
        assert!(convex_hull_indices(&[]).is_empty());
        assert_eq!(convex_hull_indices(&[(1.0, 1.0)]), vec![0]);
        assert_eq!(convex_hull_indices(&[(0.0, 0.0), (1.0, 1.0)]).len(), 2);
    }

    #[test]
    fn duplicate_points_deduped() {
        let hull = convex_hull_indices(&[(0.0, 0.0), (0.0, 0.0), (1.0, 0.0), (0.0, 1.0)]);
        assert_eq!(hull.len(), 3);
    }

    #[test]
    fn square_with_interior() {
        let pts = vec![
            (0.0, 0.0),
            (4.0, 0.0),
            (4.0, 4.0),
            (0.0, 4.0),
            (2.0, 2.0), // interior
        ];
        let hull: HashSet<usize> = convex_hull_indices(&pts).into_iter().collect();
        assert_eq!(hull, HashSet::from([0, 1, 2, 3]));
    }

    #[test]
    fn collinear_boundary_points_kept() {
        let pts = vec![(0.0, 0.0), (2.0, 0.0), (4.0, 0.0), (2.0, 3.0)];
        let hull: HashSet<usize> = convex_hull_indices(&pts).into_iter().collect();
        // The midpoint of the bottom edge is collinear but must be kept.
        assert!(hull.contains(&1));
        assert_eq!(hull.len(), 4);
    }

    #[test]
    fn all_collinear() {
        let pts = vec![(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)];
        let hull = convex_hull_indices(&pts);
        assert_eq!(hull.len(), 3);
    }

    #[test]
    fn hull_contains_extreme_point_for_any_direction() {
        // Optimum of a linear form over points is attained on the hull.
        let pts: Vec<Point2> = (0..50)
            .map(|i| {
                let t = i as f64 * 0.61803;
                ((t.sin() * 5.0).round(), (t.cos() * 5.0).round())
            })
            .collect();
        let hull: HashSet<usize> = convex_hull_indices(&pts).into_iter().collect();
        for dir in [(1.0, 0.0), (0.0, 1.0), (-1.0, 2.0), (3.0, -1.0)] {
            let best = (0..pts.len())
                .max_by(|&a, &b| {
                    let fa = pts[a].0 * dir.0 + pts[a].1 * dir.1;
                    let fb = pts[b].0 * dir.0 + pts[b].1 * dir.1;
                    fa.total_cmp(&fb)
                })
                .unwrap();
            let best_score = pts[best].0 * dir.0 + pts[best].1 * dir.1;
            assert!(
                hull.iter()
                    .any(|&h| { (pts[h].0 * dir.0 + pts[h].1 * dir.1 - best_score).abs() < 1e-9 }),
                "direction {dir:?} extreme not on hull"
            );
        }
    }

    #[test]
    fn onion_partitions_everything() {
        let pts: Vec<Point2> = (0..30)
            .map(|i| {
                let t = i as f64;
                ((t * 0.37).sin() * 10.0, (t * 0.59).cos() * 10.0)
            })
            .collect();
        let layers = onion_layers(&pts);
        let mut seen = HashSet::new();
        for layer in &layers {
            assert!(!layer.is_empty());
            for &i in layer {
                assert!(seen.insert(i), "point {i} in two layers");
            }
        }
        assert_eq!(seen.len(), pts.len());
        assert!(layers.len() >= 2, "expected multiple layers");
    }

    #[test]
    fn onion_nested_squares() {
        let pts = vec![
            // outer square
            (0.0, 0.0),
            (10.0, 0.0),
            (10.0, 10.0),
            (0.0, 10.0),
            // inner square
            (4.0, 4.0),
            (6.0, 4.0),
            (6.0, 6.0),
            (4.0, 6.0),
            // center
            (5.0, 5.0),
        ];
        let layers = onion_layers(&pts);
        assert_eq!(layers.len(), 3);
        assert_eq!(layers[0].len(), 4);
        assert_eq!(layers[1].len(), 4);
        assert_eq!(layers[2], vec![8]);
    }
}
