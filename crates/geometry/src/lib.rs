//! # iq-geometry
//!
//! Geometric substrate for the `improvement-queries` workspace — a
//! from-scratch reproduction of *"Querying Improvement Strategies"*
//! (Yang & Cai, EDBT 2017).
//!
//! The paper's core trick is to interpret every object `p ∈ R^d` as the
//! linear function `f_p(q) = p · q` of the top-k query `q`, so that:
//!
//! * two objects tie exactly on a **hyperplane** in query space
//!   ([`hyperplane::Hyperplane::object_intersection`]);
//! * all pairwise intersections partition query space into **subdomains**
//!   with constant object ranking ([`bsp::find_subdomains`], Algorithm 1);
//! * an improvement strategy tilts the target's hyperplanes, and only
//!   queries inside the **affected subspace** between old and new positions
//!   can change result ([`hyperplane::Slab`], Eqs. 4–5).
//!
//! The remaining modules serve the index layer: [`bbox`] gives the R-tree
//! its pruning predicates, [`sweep`] provides plane-sweep intersection
//! discovery (the paper's citation \[15\]), and [`hull`] supports the onion
//! top-k baseline. [`matrix`] is the flat evaluation substrate: contiguous
//! row-major storage plus batched dot-product kernels that preserve the
//! scalar summation order bit-for-bit (see DESIGN.md §9).

#![warn(missing_docs)]

pub mod bbox;
pub mod bsp;
pub mod hull;
pub mod hyperplane;
pub mod matrix;
pub mod sweep;
pub mod vector;

pub use bbox::{BoundingBox, BoxSide};
pub use hyperplane::{Hyperplane, Side, Slab};
pub use matrix::FlatMatrix;
pub use vector::Vector;

// Marker-trait audit: the evaluation core shares these read-only across
// worker threads (iq-core::exec); a field change that introduces interior
// mutability or non-Send storage must fail here, at the source crate.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Vector>();
    assert_send_sync::<Hyperplane>();
    assert_send_sync::<Slab>();
    assert_send_sync::<BoundingBox>();
    assert_send_sync::<FlatMatrix>();
};
