//! Property-based tests for the geometric substrate.

use iq_geometry::bsp::{find_subdomains, signature_of};
use iq_geometry::hull::{convex_hull_indices, onion_layers};
use iq_geometry::sweep::{brute_force_intersections, segment_intersections, Segment};
use iq_geometry::{BoundingBox, Hyperplane, Slab, Vector};
use proptest::prelude::*;

fn finite(range: std::ops::Range<f64>) -> impl Strategy<Value = f64> {
    prop::num::f64::NORMAL.prop_map(move |x| {
        let frac = (x.abs() % 1.0).abs();
        range.start + frac * (range.end - range.start)
    })
}

fn point(d: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(finite(-10.0..10.0), d)
}

proptest! {
    #[test]
    fn form_range_bounds_every_contained_point(
        lo in point(3),
        ext in prop::collection::vec(finite(0.0..5.0), 3),
        normal in point(3),
        offset in finite(-5.0..5.0),
        t in prop::collection::vec(finite(0.0..1.0), 3),
    ) {
        let hi: Vec<f64> = lo.iter().zip(&ext).map(|(l, e)| l + e).collect();
        let b = BoundingBox::new(lo.clone(), hi.clone());
        // Arbitrary point inside the box.
        let p: Vec<f64> = (0..3).map(|i| lo[i] + t[i] * ext[i]).collect();
        prop_assume!(b.contains_point(&p));
        let (min, max) = b.form_range(&normal, offset);
        let v = iq_geometry::vector::dot(&normal, &p) + offset;
        prop_assert!(v >= min - 1e-9 && v <= max + 1e-9);
    }

    #[test]
    fn slab_pruning_never_prunes_contained_points(
        p in point(3),
        o in point(3),
        s in point(3),
        q in point(3),
        ext in prop::collection::vec(finite(0.0..2.0), 3),
    ) {
        let pv = Vector::new(p);
        let ov = Vector::new(o);
        let sv = Vector::new(s);
        if let Some(slab) = Slab::affected_subspace(&pv, &ov, &sv) {
            if slab.contains(&q) {
                // Any box containing q must not be reported disjoint.
                let lo: Vec<f64> = q.iter().zip(&ext).map(|(x, e)| x - e).collect();
                let hi: Vec<f64> = q.iter().zip(&ext).map(|(x, e)| x + e).collect();
                let b = BoundingBox::new(lo, hi);
                prop_assert!(!b.disjoint_from_slab(&slab));
            }
        }
    }

    #[test]
    fn projection_lands_on_plane_and_is_closest(
        n in point(3),
        c in finite(-3.0..3.0),
        q in point(3),
        other_t in finite(-2.0..2.0),
    ) {
        let nv = Vector::new(n.clone());
        prop_assume!(nv.norm() > 1e-6);
        let h = Hyperplane::new(nv, c);
        let proj = h.project(&q);
        prop_assert!(h.eval(proj.as_slice()).abs() < 1e-6);
        // Distance to the projection equals the plane distance, and any other
        // point on the plane is at least as far away.
        let d = iq_geometry::vector::dist(&q, proj.as_slice());
        prop_assert!((d - h.distance(&q)).abs() < 1e-6);
        // Pick another point on the plane by sliding along a tangent.
        let tangent = {
            let mut t = vec![0.0; 3];
            // Any vector orthogonal to n: swap two coords of n.
            t[0] = -n[1];
            t[1] = n[0];
            Vector::new(t)
        };
        if tangent.norm() > 1e-6 {
            let other = proj.axpy(other_t, &tangent);
            prop_assert!(h.eval(other.as_slice()).abs() < 1e-5);
            let d2 = iq_geometry::vector::dist(&q, other.as_slice());
            prop_assert!(d2 + 1e-6 >= d);
        }
    }

    #[test]
    fn bsp_same_cell_iff_same_signature(
        normals in prop::collection::vec(point(2), 1..5),
        offsets in prop::collection::vec(finite(-2.0..2.0), 5),
        queries in prop::collection::vec(point(2), 1..30),
    ) {
        let hs: Vec<Hyperplane> = normals
            .iter()
            .zip(&offsets)
            .filter(|(n, _)| n.iter().any(|x| x.abs() > 1e-9))
            .map(|(n, &c)| Hyperplane::new(Vector::new(n.clone()), c))
            .collect();
        prop_assume!(!hs.is_empty());
        let p = find_subdomains(&hs, &queries);
        // Every query assigned, and cell membership == signature equality.
        for i in 0..queries.len() {
            prop_assert!(p.assignment[i] != usize::MAX);
            for j in (i + 1)..queries.len() {
                let same_sig = signature_of(&queries[i], &hs) == signature_of(&queries[j], &hs);
                prop_assert_eq!(p.assignment[i] == p.assignment[j], same_sig);
            }
        }
        // Subdomain query lists are consistent with the assignment.
        for sd in &p.subdomains {
            for &qi in &sd.queries {
                prop_assert_eq!(p.assignment[qi], sd.id);
            }
        }
    }

    #[test]
    fn sweep_equals_brute_force(
        coords in prop::collection::vec((finite(0.0..10.0), finite(0.0..10.0),
                                          finite(0.0..10.0), finite(0.0..10.0)), 2..25),
    ) {
        let segs: Vec<Segment> = coords
            .into_iter()
            .map(|(x1, y1, x2, y2)| Segment::new((x1, y1), (x2, y2)))
            .collect();
        prop_assert_eq!(segment_intersections(&segs), brute_force_intersections(&segs));
    }

    #[test]
    fn hull_contains_directional_extremes(
        pts in prop::collection::vec((finite(-5.0..5.0), finite(-5.0..5.0)), 3..40),
        dir in (finite(-1.0..1.0), finite(-1.0..1.0)),
    ) {
        prop_assume!(dir.0.abs() + dir.1.abs() > 1e-6);
        let hull = convex_hull_indices(&pts);
        prop_assert!(!hull.is_empty());
        let score = |i: usize| pts[i].0 * dir.0 + pts[i].1 * dir.1;
        let best = (0..pts.len()).map(score).fold(f64::NEG_INFINITY, f64::max);
        let hull_best = hull.iter().map(|&i| score(i)).fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((best - hull_best).abs() < 1e-9);
    }

    #[test]
    fn onion_layers_partition(
        pts in prop::collection::vec((finite(-5.0..5.0), finite(-5.0..5.0)), 1..40),
    ) {
        let layers = onion_layers(&pts);
        let mut seen = vec![false; pts.len()];
        for layer in &layers {
            prop_assert!(!layer.is_empty());
            for &i in layer {
                prop_assert!(!seen[i]);
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }
}
