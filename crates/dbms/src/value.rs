//! Typed values and column types for the in-memory DBMS substrate.

use std::cmp::Ordering;
use std::fmt;

/// The column types the engine supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Text,
    /// Boolean.
    Bool,
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnType::Int => write!(f, "INT"),
            ColumnType::Float => write!(f, "FLOAT"),
            ColumnType::Text => write!(f, "TEXT"),
            ColumnType::Bool => write!(f, "BOOL"),
        }
    }
}

/// A single cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Integer value.
    Int(i64),
    /// Float value.
    Float(f64),
    /// Text value.
    Text(String),
    /// Boolean value.
    Bool(bool),
    /// SQL NULL.
    Null,
}

impl Value {
    /// The value's type, or `None` for NULL.
    pub fn column_type(&self) -> Option<ColumnType> {
        match self {
            Value::Int(_) => Some(ColumnType::Int),
            Value::Float(_) => Some(ColumnType::Float),
            Value::Text(_) => Some(ColumnType::Text),
            Value::Bool(_) => Some(ColumnType::Bool),
            Value::Null => None,
        }
    }

    /// Whether the value can be stored in a column of type `ty`
    /// (NULL fits everywhere; INT coerces into FLOAT).
    pub fn fits(&self, ty: ColumnType) -> bool {
        match (self, ty) {
            (Value::Null, _) => true,
            (Value::Int(_), ColumnType::Float) => true,
            (v, t) => v.column_type() == Some(t),
        }
    }

    /// Numeric view (INT and FLOAT only).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// SQL comparison: NULL compares with nothing (returns `None`);
    /// numerics compare across INT/FLOAT; other types compare within kind.
    // SQL semantics: NULL (and NaN) are incomparable, so the Option from
    // partial_cmp is the contract here, not a hazard to unwrap
    // (clippy.toml disallowed-methods).
    #[allow(clippy::disallowed_methods)]
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_fitting() {
        assert!(Value::Int(3).fits(ColumnType::Int));
        assert!(Value::Int(3).fits(ColumnType::Float)); // coercion
        assert!(!Value::Float(3.0).fits(ColumnType::Int));
        assert!(Value::Null.fits(ColumnType::Text));
        assert!(!Value::Text("x".into()).fits(ColumnType::Bool));
    }

    #[test]
    fn numeric_cross_comparison() {
        assert_eq!(
            Value::Int(2).compare(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(1).compare(&Value::Float(1.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Float(2.5).compare(&Value::Int(2)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn null_compares_with_nothing() {
        assert_eq!(Value::Null.compare(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).compare(&Value::Null), None);
    }

    #[test]
    fn text_and_bool_comparison() {
        assert_eq!(
            Value::Text("a".into()).compare(&Value::Text("b".into())),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Bool(false).compare(&Value::Bool(true)),
            Some(Ordering::Less)
        );
        // Cross-kind non-numeric comparison is undefined.
        assert_eq!(Value::Text("1".into()).compare(&Value::Int(1)), None);
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(ColumnType::Float.to_string(), "FLOAT");
    }
}
