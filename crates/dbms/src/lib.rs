//! # iq-dbms
//!
//! An in-memory DBMS substrate with the `IMPROVE` statement extension —
//! the "analytic tool … integrated with the Database Management System"
//! of §6.1. A [`session::Session`] holds a catalog of typed tables and
//! executes a SQL subset (`CREATE TABLE`, `INSERT`, `SELECT` with
//! WHERE/ORDER BY/LIMIT, `DROP TABLE`) plus:
//!
//! ```text
//! IMPROVE <objects> USING <queries> [WHERE <target filter>]
//!         (MINCOST <τ> | MAXHIT <β>)
//!         [COST EUCLIDEAN | COST L1] [FREEZE col, …] [APPLY]
//! ```
//!
//! which routes into the `iq-core` improvement-query engine: targets are
//! selected "manually or via an SQL select statement" exactly as the
//! paper's GUI describes, per-attribute adjustability is expressed with
//! `FREEZE`, and `APPLY` persists the improved object.

#![warn(missing_docs)]

pub mod csv;
pub mod exec;
pub mod iqext;
pub mod parser;
pub mod render;
pub mod session;
pub mod table;
pub mod value;

pub use csv::table_from_csv;
pub use exec::QueryResult;
pub use parser::{parse, Statement};
pub use render::{error_json, outcome_json, outcome_text, result_text, snapshot_sql, sql_literal};
pub use session::{Outcome, Session};
pub use table::{Column, Schema, Table};
pub use value::{ColumnType, Value};

use std::fmt;

/// Errors produced by the DBMS layer.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// Syntax error without a source position (semantic-level failures).
    Parse(String),
    /// Syntax error pinned to a byte offset in the statement text. The
    /// offset round-trips through the wire protocol (see [`render`]), so a
    /// remote client can point at the offending character.
    SyntaxAt {
        /// Byte offset of the offending token in the statement string.
        offset: usize,
        /// What was wrong there.
        message: String,
    },
    /// Statement is recognized but not executable in this context (e.g.
    /// `SHOW STATS` / `SHUTDOWN` outside an `iq-server` connection).
    Unsupported(String),
    /// Table already exists.
    TableExists(String),
    /// Unknown table.
    UnknownTable(String),
    /// Unknown column.
    UnknownColumn(String),
    /// Duplicate column in a schema.
    DuplicateColumn(String),
    /// Wrong number of values in a row.
    ArityMismatch {
        /// Expected arity.
        expected: usize,
        /// Found arity.
        found: usize,
    },
    /// Value does not fit the column type.
    TypeMismatch {
        /// Column name.
        column: String,
        /// Expected type.
        expected: ColumnType,
        /// Offending value.
        found: Value,
    },
    /// IMPROVE-specific failure.
    Improve(String),
    /// Durable-storage failure (WAL append, checkpoint, recovery). The
    /// storage layer lives in `iq-storage`; the server maps its errors
    /// into this variant so they ride the shared wire encoding.
    Storage(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse(m) => write!(f, "parse error: {m}"),
            DbError::SyntaxAt { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            DbError::Unsupported(m) => write!(f, "unsupported here: {m}"),
            DbError::TableExists(t) => write!(f, "table `{t}` already exists"),
            DbError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            DbError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            DbError::DuplicateColumn(c) => write!(f, "duplicate column `{c}`"),
            DbError::ArityMismatch { expected, found } => {
                write!(f, "expected {expected} values, found {found}")
            }
            DbError::TypeMismatch {
                column,
                expected,
                found,
            } => {
                write!(f, "column `{column}` expects {expected}, got {found}")
            }
            DbError::Improve(m) => write!(f, "IMPROVE error: {m}"),
            DbError::Storage(m) => write!(f, "storage error: {m}"),
        }
    }
}

impl std::error::Error for DbError {}
