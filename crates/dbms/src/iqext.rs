//! The `IMPROVE` statement: the bridge between the SQL engine and the
//! improvement-query machinery — the paper's "analytic tool integrated
//! with the DBMS" (§6.1).
//!
//! Conventions:
//!
//! * The object table's **numeric** columns are the improvable attributes,
//!   except a column named `id` (any case), which is treated as a key.
//! * The query table must have one weight column per attribute, named
//!   `w1, w2, …` in attribute order, plus an INT column `k`.
//! * One matching target row runs a single-target IQ (Algorithms 3/4);
//!   several run the combinatorial §5.1 search with a shared cost kind.
//! * `APPLY` writes the improved attribute values back into the table.

use crate::exec::{matching_rows, QueryResult};
use crate::parser::{CostKind, ImproveGoal, ImproveStmt};
use crate::table::Table;
use crate::value::{ColumnType, Value};
use crate::DbError;
use iq_core::multi::{multi_max_hit_iq, multi_min_cost_iq, TargetSpec};
use iq_core::{
    max_hit_iq, min_cost_iq, CostFunction, EuclideanCost, Instance, L1Cost, QueryIndex,
    SearchOptions, StrategyBounds, TopKQuery,
};
use iq_geometry::Vector;

/// The improvable attribute columns of an object table.
pub fn attribute_columns(table: &Table) -> Vec<usize> {
    table
        .schema
        .numeric_columns()
        .into_iter()
        .filter(|&i| !table.schema.columns()[i].name.eq_ignore_ascii_case("id"))
        .collect()
}

fn numeric(v: &Value, what: &str) -> Result<f64, DbError> {
    v.as_f64()
        .ok_or_else(|| DbError::Improve(format!("{what} must be numeric, got {v}")))
}

/// Builds the IQ instance from the object and query tables. Returns the
/// instance plus the attribute column indices.
pub fn build_instance(objects: &Table, queries: &Table) -> Result<(Instance, Vec<usize>), DbError> {
    let attrs = attribute_columns(objects);
    if attrs.is_empty() {
        return Err(DbError::Improve(
            "object table has no numeric attribute columns".into(),
        ));
    }
    let d = attrs.len();

    // Weight columns w1..wd and the k column.
    let mut wcols = Vec::with_capacity(d);
    for j in 0..d {
        let name = format!("w{}", j + 1);
        let idx = queries.schema.index_of(&name).ok_or_else(|| {
            DbError::Improve(format!(
                "query table missing weight column `{name}` ({d} attributes require w1..w{d})"
            ))
        })?;
        wcols.push(idx);
    }
    let kcol = queries
        .schema
        .index_of("k")
        .ok_or_else(|| DbError::Improve("query table missing column `k`".into()))?;
    if queries.schema.columns()[kcol].ty != ColumnType::Int {
        return Err(DbError::Improve("column `k` must be INT".into()));
    }

    let mut object_rows = Vec::with_capacity(objects.len());
    for row in objects.rows() {
        let mut o = Vec::with_capacity(d);
        for &c in &attrs {
            o.push(numeric(&row[c], "attribute")?);
        }
        object_rows.push(o);
    }
    let mut query_rows = Vec::with_capacity(queries.len());
    for row in queries.rows() {
        let mut w = Vec::with_capacity(d);
        for &c in &wcols {
            w.push(numeric(&row[c], "weight")?);
        }
        let k = match &row[kcol] {
            Value::Int(k) if *k >= 1 => *k as usize,
            other => {
                return Err(DbError::Improve(format!(
                    "k must be a positive INT, got {other}"
                )))
            }
        };
        query_rows.push(TopKQuery::new(w, k));
    }
    let instance =
        Instance::new(object_rows, query_rows).map_err(|e| DbError::Improve(e.to_string()))?;
    Ok((instance, attrs))
}

fn bounds_for(
    stmt: &ImproveStmt,
    objects: &Table,
    attrs: &[usize],
) -> Result<StrategyBounds, DbError> {
    let mut bounds = StrategyBounds::unbounded(attrs.len());
    for col in &stmt.freeze {
        let idx = objects
            .schema
            .index_of(col)
            .ok_or_else(|| DbError::UnknownColumn(col.clone()))?;
        let pos = attrs.iter().position(|&a| a == idx).ok_or_else(|| {
            DbError::Improve(format!(
                "FREEZE column `{col}` is not an improvable attribute"
            ))
        })?;
        bounds = bounds.freeze(pos);
    }
    Ok(bounds)
}

/// A prebuilt IQ evaluation context for one `(objects, queries)` table
/// pair: the extracted instance plus its subdomain index.
///
/// Per-target write-back deltas: `(object row, per-attribute delta)`
/// pairs, the second half of every IMPROVE search result.
pub type TargetDeltas = Vec<(usize, Vec<f64>)>;

/// Building the index dominates IMPROVE latency, so the serving layer
/// caches a `Prepared` per table pair and hands it to [`improve_with`];
/// any mutation of either table must drop (or incrementally update) the
/// cache — index staleness is the *caller's* responsibility, nothing here
/// re-checks the tables. Determinism note: a cached index and a freshly
/// built one yield byte-identical strategies, because the search depends
/// only on the instance's exact toplists/thresholds ("same subdomain ⇒
/// identical candidate list") — which is what makes caching safe for the
/// server's replay tests.
#[derive(Debug, Clone)]
pub struct Prepared {
    /// The extracted IQ instance.
    pub instance: Instance,
    /// Object-table column index of each instance attribute.
    pub attrs: Vec<usize>,
    /// The subdomain index over `instance`.
    pub index: QueryIndex,
}

impl Prepared {
    /// Extracts the instance and builds the subdomain index with the given
    /// execution policy.
    pub fn build(
        objects: &Table,
        queries: &Table,
        exec: &iq_core::ExecPolicy,
    ) -> Result<Prepared, DbError> {
        let (instance, attrs) = build_instance(objects, queries)?;
        let index = QueryIndex::build_with(&instance, exec);
        Ok(Prepared {
            instance,
            attrs,
            index,
        })
    }
}

/// Executes an IMPROVE statement against the object table in place (for
/// `APPLY`) and returns a result set: one row per target with the
/// per-attribute deltas, cost, and hit counts.
pub fn improve(
    objects: &mut Table,
    queries: &Table,
    stmt: &ImproveStmt,
) -> Result<QueryResult, DbError> {
    let (result, deltas) = improve_with(objects, queries, stmt, None, &SearchOptions::default())?;
    if stmt.apply {
        apply_deltas(objects, &deltas)?;
    }
    Ok(result)
}

/// Read-only IMPROVE (no `APPLY` write-back even if requested): the
/// concurrent-reader entry point. Returns the result set plus the deltas
/// the caller may later apply under a write lock.
pub fn improve_readonly(
    objects: &Table,
    queries: &Table,
    stmt: &ImproveStmt,
) -> Result<(QueryResult, TargetDeltas), DbError> {
    improve_with(objects, queries, stmt, None, &SearchOptions::default())
}

/// Writes per-target attribute deltas back into the object table —
/// `APPLY`'s mutation, split out so the serving layer can run the search
/// under a read lock and the write-back under the write lock.
pub fn apply_deltas(objects: &mut Table, deltas: &[(usize, Vec<f64>)]) -> Result<(), DbError> {
    let attrs = attribute_columns(objects);
    for (row, strategy) in deltas {
        for (pos, &col) in attrs.iter().enumerate() {
            let old = numeric(&objects.row(*row)[col], "attribute")?;
            objects.update_cell(*row, col, Value::Float(old + strategy[pos]))?;
        }
    }
    Ok(())
}

/// The IMPROVE search core, shared by every entry point. Reads the tables
/// only; never mutates. `prepared` supplies a cached instance/index (the
/// server's fast path) — pass `None` to extract and build fresh. Returns
/// the result set and the `(target row, per-attribute delta)` pairs.
pub fn improve_with(
    objects: &Table,
    queries: &Table,
    stmt: &ImproveStmt,
    prepared: Option<&Prepared>,
    opts: &SearchOptions,
) -> Result<(QueryResult, TargetDeltas), DbError> {
    let built;
    let (instance, attrs, index) = match prepared {
        Some(p) => (&p.instance, &p.attrs, &p.index),
        None => {
            built = Prepared::build(objects, queries, &opts.exec)?;
            (&built.instance, &built.attrs, &built.index)
        }
    };
    let targets = matching_rows(objects, stmt.predicate.as_ref())?;
    if targets.is_empty() {
        return Err(DbError::Improve(
            "no rows match the target predicate".into(),
        ));
    }
    let bounds = bounds_for(stmt, objects, attrs)?;
    let cost_fn: &dyn CostFunction = match stmt.cost {
        CostKind::Euclidean => &EuclideanCost,
        CostKind::L1 => &L1Cost,
    };

    // Run the appropriate search.
    let (strategies, costs, hits_before, hits_after, achieved) = if targets.len() == 1 {
        let t = targets[0];
        let r = match stmt.goal {
            ImproveGoal::MinCost(tau) => {
                min_cost_iq(instance, index, t, tau, cost_fn, &bounds, opts)
            }
            ImproveGoal::MaxHit(beta) => {
                max_hit_iq(instance, index, t, beta, cost_fn, &bounds, opts)
            }
        };
        (
            vec![r.strategy],
            vec![r.cost],
            r.hits_before,
            r.hits_after,
            r.achieved,
        )
    } else {
        let specs: Vec<TargetSpec<'_>> = targets
            .iter()
            .map(|&t| TargetSpec {
                target: t,
                cost_fn,
                bounds: bounds.clone(),
            })
            .collect();
        let r = match stmt.goal {
            ImproveGoal::MinCost(tau) => multi_min_cost_iq(instance, index, &specs, tau, 10_000),
            ImproveGoal::MaxHit(beta) => multi_max_hit_iq(instance, index, &specs, beta, 10_000),
        };
        (
            r.strategies,
            r.costs,
            r.hits_before,
            r.hits_after,
            r.achieved,
        )
    };

    // Build the result set.
    let mut columns = vec!["row".to_string()];
    for &c in attrs {
        columns.push(format!("delta_{}", objects.schema.columns()[c].name));
    }
    columns.extend([
        "cost".to_string(),
        "hits_before".to_string(),
        "hits_after".to_string(),
        "achieved".to_string(),
    ]);
    let rows = targets
        .iter()
        .zip(strategies.iter().zip(&costs))
        .map(|(&row, (strategy, &cost))| {
            let mut out = vec![Value::Int(row as i64)];
            out.extend(strategy.iter().map(|&v| Value::Float(v)));
            out.push(Value::Float(cost));
            out.push(Value::Int(hits_before as i64));
            out.push(Value::Int(hits_after as i64));
            out.push(Value::Bool(achieved));
            out
        })
        .collect();
    let deltas = targets
        .into_iter()
        .zip(strategies.into_iter().map(Vector::into_inner))
        .collect();
    Ok((QueryResult { columns, rows }, deltas))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, Statement};
    use crate::table::{Column, Schema};

    fn object_table() -> Table {
        let schema = Schema::new(vec![
            Column {
                name: "id".into(),
                ty: ColumnType::Int,
            },
            Column {
                name: "price".into(),
                ty: ColumnType::Float,
            },
            Column {
                name: "weight".into(),
                ty: ColumnType::Float,
            },
            Column {
                name: "label".into(),
                ty: ColumnType::Text,
            },
        ])
        .unwrap();
        let mut t = Table::new(schema);
        let data = [
            (1, 0.9, 0.8),
            (2, 0.2, 0.3),
            (3, 0.5, 0.5),
            (4, 0.7, 0.2),
            (5, 0.3, 0.9),
        ];
        for (id, p, w) in data {
            t.insert(vec![
                Value::Int(id),
                Value::Float(p),
                Value::Float(w),
                Value::Text(format!("obj{id}")),
            ])
            .unwrap();
        }
        t
    }

    fn query_table() -> Table {
        let schema = Schema::new(vec![
            Column {
                name: "w1".into(),
                ty: ColumnType::Float,
            },
            Column {
                name: "w2".into(),
                ty: ColumnType::Float,
            },
            Column {
                name: "k".into(),
                ty: ColumnType::Int,
            },
        ])
        .unwrap();
        let mut t = Table::new(schema);
        for (w1, w2, k) in [
            (0.9, 0.1, 1),
            (0.5, 0.5, 2),
            (0.1, 0.9, 1),
            (0.7, 0.3, 1),
            (0.3, 0.7, 2),
            (0.6, 0.4, 1),
        ] {
            t.insert(vec![Value::Float(w1), Value::Float(w2), Value::Int(k)])
                .unwrap();
        }
        t
    }

    fn improve_stmt(sql: &str) -> ImproveStmt {
        match parse(sql).unwrap() {
            Statement::Improve(s) => s,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn attribute_columns_skip_id_and_text() {
        let t = object_table();
        assert_eq!(attribute_columns(&t), vec![1, 2]);
    }

    #[test]
    fn instance_built_correctly() {
        let (inst, attrs) = build_instance(&object_table(), &query_table()).unwrap();
        assert_eq!(attrs, vec![1, 2]);
        assert_eq!(inst.num_objects(), 5);
        assert_eq!(inst.num_queries(), 6);
        assert_eq!(inst.object(0), &[0.9, 0.8]);
    }

    #[test]
    fn mincost_improve_single_target() {
        let mut objs = object_table();
        let qt = query_table();
        // Object 1 (row 0) is the worst; improve it to hit 3 queries.
        let stmt = improve_stmt("IMPROVE objs USING prefs WHERE id = 1 MINCOST 3");
        let r = improve(&mut objs, &qt, &stmt).unwrap();
        assert_eq!(r.rows.len(), 1);
        let hits_after = match r.rows[0][r.columns.iter().position(|c| c == "hits_after").unwrap()]
        {
            Value::Int(h) => h,
            ref other => panic!("{other:?}"),
        };
        assert!(hits_after >= 3, "hits_after = {hits_after}");
        // No APPLY: table untouched.
        assert_eq!(objs.row(0)[1], Value::Float(0.9));
    }

    #[test]
    fn apply_keeps_flat_mirrors_coherent_with_table() {
        let mut objs = object_table();
        let qt = query_table();
        let stmt = improve_stmt("IMPROVE objs USING prefs WHERE id = 1 MINCOST 2 APPLY");
        improve(&mut objs, &qt, &stmt).unwrap();
        // Rebuild an instance from the written-back table: the SoA mirrors
        // must agree bitwise with the nested rows, and scoring through
        // either layout must give identical results (the IMPROVE path
        // evaluated candidates through the flat kernels; the round-trip
        // through SQL `Value`s must not perturb a single bit).
        let (inst, _) = build_instance(&objs, &qt).unwrap();
        for i in 0..inst.num_objects() {
            assert_eq!(inst.objects_flat().row(i), inst.object(i), "object {i}");
        }
        for (qi, q) in inst.queries().iter().enumerate() {
            assert_eq!(
                inst.weights_flat().row(qi),
                q.weights.as_slice(),
                "query {qi}"
            );
            for i in 0..inst.num_objects() {
                let nested = iq_geometry::vector::dot(&q.weights, inst.object(i));
                let flat = inst.weights_flat().dot_row(qi, inst.object(i));
                assert_eq!(nested.to_bits(), flat.to_bits(), "score q{qi}/o{i}");
            }
        }
    }

    #[test]
    fn apply_writes_back() {
        let mut objs = object_table();
        let qt = query_table();
        let stmt = improve_stmt("IMPROVE objs USING prefs WHERE id = 1 MINCOST 2 APPLY");
        let before = objs.row(0)[1].clone();
        improve(&mut objs, &qt, &stmt).unwrap();
        assert_ne!(objs.row(0)[1], before, "APPLY did not change the row");
    }

    #[test]
    fn freeze_keeps_attribute_fixed() {
        let mut objs = object_table();
        let qt = query_table();
        let stmt = improve_stmt("IMPROVE objs USING prefs WHERE id = 1 MINCOST 2 FREEZE weight");
        let r = improve(&mut objs, &qt, &stmt).unwrap();
        let dw = match r.rows[0][2] {
            Value::Float(v) => v,
            ref other => panic!("{other:?}"),
        };
        assert!(dw.abs() < 1e-9, "frozen attribute moved: {dw}");
    }

    #[test]
    fn multi_target_combinatorial() {
        let mut objs = object_table();
        let qt = query_table();
        let stmt = improve_stmt("IMPROVE objs USING prefs WHERE id >= 4 MAXHIT 0.5");
        let r = improve(&mut objs, &qt, &stmt).unwrap();
        assert_eq!(r.rows.len(), 2);
        // Total cost within budget.
        let cost_col = r.columns.iter().position(|c| c == "cost").unwrap();
        let total: f64 = r
            .rows
            .iter()
            .map(|row| row[cost_col].as_f64().unwrap())
            .sum();
        assert!(total <= 0.5 + 1e-6);
    }

    #[test]
    fn errors_surface() {
        let mut objs = object_table();
        let qt = query_table();
        let stmt = improve_stmt("IMPROVE objs USING prefs WHERE id = 99 MINCOST 1");
        assert!(matches!(
            improve(&mut objs, &qt, &stmt),
            Err(DbError::Improve(_))
        ));
        let stmt = improve_stmt("IMPROVE objs USING prefs MINCOST 1 FREEZE label");
        assert!(improve(&mut objs, &qt, &stmt).is_err());
        // Query table missing k.
        let bad = Table::new(
            Schema::new(vec![
                Column {
                    name: "w1".into(),
                    ty: ColumnType::Float,
                },
                Column {
                    name: "w2".into(),
                    ty: ColumnType::Float,
                },
            ])
            .unwrap(),
        );
        let stmt = improve_stmt("IMPROVE objs USING bad MINCOST 1");
        assert!(matches!(
            improve(&mut objs, &bad, &stmt),
            Err(DbError::Improve(_))
        ));
    }
}
