//! Session layer: a catalog of tables plus a one-call `execute` entry
//! point — the REPL-able surface of the analytic tool.

use crate::exec::{select, QueryResult};
use crate::parser::{parse, Statement};
use crate::table::{Column, Schema, Table};
use crate::DbError;
use std::collections::HashMap;

/// The outcome of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Table created.
    Created(String),
    /// Rows inserted.
    Inserted(usize),
    /// Rows loaded from a CSV file.
    Copied(usize),
    /// Rows updated.
    Updated(usize),
    /// Rows deleted.
    Deleted(usize),
    /// Table dropped.
    Dropped(String),
    /// A result set (SELECT or IMPROVE).
    Rows(QueryResult),
    /// A storage checkpoint completed (server-side; a plain session has
    /// no storage layer and never produces this).
    Checkpointed {
        /// The new storage generation.
        generation: u64,
        /// WAL records made redundant by the snapshot.
        wal_truncated: u64,
    },
}

/// An in-memory database session.
#[derive(Debug, Default)]
pub struct Session {
    tables: HashMap<String, Table>,
}

impl Session {
    /// Creates an empty session.
    pub fn new() -> Self {
        Session::default()
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// A table by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    /// A table by name, mutably — the serving layer's `APPLY` write-back
    /// hook (search under a read lock, apply under the write lock).
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(&name.to_ascii_lowercase())
    }

    /// Registers a prebuilt table (used by examples/benches to bulk-load).
    pub fn register(&mut self, name: &str, table: Table) {
        self.tables.insert(name.to_ascii_lowercase(), table);
    }

    /// Parses and executes one statement.
    pub fn execute(&mut self, sql: &str) -> Result<Outcome, DbError> {
        let stmt = parse(sql)?;
        self.execute_parsed(stmt)
    }

    /// Executes a read-only statement against `&self` — the serving
    /// layer's concurrent-reader entry point (many of these may run in
    /// parallel under a shared lock). Statements that are not read-only
    /// per [`crate::parser::is_read_only`] are rejected, including
    /// `IMPROVE … APPLY`.
    pub fn execute_read(&self, stmt: &Statement) -> Result<Outcome, DbError> {
        match stmt {
            Statement::Select(sel) => {
                let t = self
                    .tables
                    .get(&sel.table.to_ascii_lowercase())
                    .ok_or_else(|| DbError::UnknownTable(sel.table.clone()))?;
                Ok(Outcome::Rows(select(t, sel)?))
            }
            Statement::ShowTables => Ok(Outcome::Rows(self.show_tables())),
            Statement::ShowWal => Err(DbError::Unsupported(
                "SHOW WAL requires an iq-server connection with --data-dir".into(),
            )),
            Statement::Improve(imp) if !imp.apply => {
                let queries = self
                    .tables
                    .get(&imp.query_table.to_ascii_lowercase())
                    .ok_or_else(|| DbError::UnknownTable(imp.query_table.clone()))?;
                let objects = self
                    .tables
                    .get(&imp.table.to_ascii_lowercase())
                    .ok_or_else(|| DbError::UnknownTable(imp.table.clone()))?;
                let (result, _deltas) = crate::iqext::improve_readonly(objects, queries, imp)?;
                Ok(Outcome::Rows(result))
            }
            other => Err(DbError::Unsupported(format!(
                "statement is not read-only: {other:?}"
            ))),
        }
    }

    /// Executes an already-parsed statement.
    pub fn execute_parsed(&mut self, stmt: Statement) -> Result<Outcome, DbError> {
        match stmt {
            Statement::Create { name, columns } => {
                let key = name.to_ascii_lowercase();
                if self.tables.contains_key(&key) {
                    return Err(DbError::TableExists(name));
                }
                let schema = Schema::new(
                    columns
                        .into_iter()
                        .map(|(name, ty)| Column { name, ty })
                        .collect(),
                )?;
                self.tables.insert(key, Table::new(schema));
                Ok(Outcome::Created(name))
            }
            Statement::Insert { table, rows } => {
                let t = self
                    .tables
                    .get_mut(&table.to_ascii_lowercase())
                    .ok_or(DbError::UnknownTable(table))?;
                let n = rows.len();
                for row in rows {
                    t.insert(row)?;
                }
                Ok(Outcome::Inserted(n))
            }
            Statement::Select(stmt) => {
                let t = self
                    .tables
                    .get(&stmt.table.to_ascii_lowercase())
                    .ok_or_else(|| DbError::UnknownTable(stmt.table.clone()))?;
                Ok(Outcome::Rows(select(t, &stmt)?))
            }
            Statement::Update {
                table,
                sets,
                predicate,
            } => {
                let t = self
                    .tables
                    .get_mut(&table.to_ascii_lowercase())
                    .ok_or(DbError::UnknownTable(table))?;
                // Resolve column indices up front so errors surface before
                // any row is touched.
                let cols: Vec<usize> = sets
                    .iter()
                    .map(|(c, _)| {
                        t.schema
                            .index_of(c)
                            .ok_or_else(|| DbError::UnknownColumn(c.clone()))
                    })
                    .collect::<Result<_, _>>()?;
                let rows = crate::exec::matching_rows(t, predicate.as_ref())?;
                for &r in &rows {
                    for (&col, (_, v)) in cols.iter().zip(&sets) {
                        t.update_cell(r, col, v.clone())?;
                    }
                }
                Ok(Outcome::Updated(rows.len()))
            }
            Statement::Delete { table, predicate } => {
                let t = self
                    .tables
                    .get_mut(&table.to_ascii_lowercase())
                    .ok_or(DbError::UnknownTable(table))?;
                let rows = crate::exec::matching_rows(t, predicate.as_ref())?;
                Ok(Outcome::Deleted(t.remove_rows(&rows)))
            }
            Statement::Copy {
                table,
                path,
                has_header,
            } => {
                let key = table.to_ascii_lowercase();
                if self.tables.contains_key(&key) {
                    return Err(DbError::TableExists(table));
                }
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| DbError::Parse(format!("cannot read `{path}`: {e}")))?;
                let t = crate::csv::table_from_csv(&text, has_header)?;
                let n = t.len();
                self.tables.insert(key, t);
                Ok(Outcome::Copied(n))
            }
            Statement::Drop { name } => {
                let key = name.to_ascii_lowercase();
                if self.tables.remove(&key).is_none() {
                    return Err(DbError::UnknownTable(name));
                }
                Ok(Outcome::Dropped(name))
            }
            Statement::Improve(stmt) => {
                // Borrow the query table by value (cloned) so the object
                // table can be mutated by APPLY.
                let queries = self
                    .tables
                    .get(&stmt.query_table.to_ascii_lowercase())
                    .ok_or_else(|| DbError::UnknownTable(stmt.query_table.clone()))?
                    .clone();
                let objects = self
                    .tables
                    .get_mut(&stmt.table.to_ascii_lowercase())
                    .ok_or_else(|| DbError::UnknownTable(stmt.table.clone()))?;
                Ok(Outcome::Rows(crate::iqext::improve(
                    objects, &queries, &stmt,
                )?))
            }
            Statement::ShowTables => Ok(Outcome::Rows(self.show_tables())),
            Statement::ShowStats => Err(DbError::Unsupported(
                "SHOW STATS requires an iq-server connection".into(),
            )),
            Statement::Shutdown => Err(DbError::Unsupported(
                "SHUTDOWN requires an iq-server connection".into(),
            )),
            Statement::Checkpoint => Err(DbError::Unsupported(
                "CHECKPOINT requires an iq-server connection with --data-dir".into(),
            )),
            Statement::ShowWal => Err(DbError::Unsupported(
                "SHOW WAL requires an iq-server connection with --data-dir".into(),
            )),
        }
    }

    /// `SHOW TABLES` result: `(table, rows)` pairs in sorted name order.
    fn show_tables(&self) -> QueryResult {
        QueryResult {
            columns: vec!["table".into(), "rows".into()],
            rows: self
                .table_names()
                .into_iter()
                .map(|name| {
                    let rows = self.tables[name].len();
                    vec![
                        crate::value::Value::Text(name.to_string()),
                        crate::value::Value::Int(rows as i64),
                    ]
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn session_with_data() -> Session {
        let mut s = Session::new();
        s.execute("CREATE TABLE cams (id INT, res FLOAT, price FLOAT)")
            .unwrap();
        s.execute(
            "INSERT INTO cams VALUES (1, 0.4, 0.9), (2, 0.6, 0.4), (3, 0.2, 0.2), (4, 0.8, 0.7)",
        )
        .unwrap();
        s.execute("CREATE TABLE prefs (w1 FLOAT, w2 FLOAT, k INT)")
            .unwrap();
        s.execute(
            "INSERT INTO prefs VALUES (0.8, 0.2, 1), (0.5, 0.5, 1), (0.2, 0.8, 2), (0.6, 0.4, 1)",
        )
        .unwrap();
        s
    }

    #[test]
    fn end_to_end_select() {
        let mut s = session_with_data();
        match s
            .execute("SELECT id FROM cams WHERE price < 0.5 ORDER BY id")
            .unwrap()
        {
            Outcome::Rows(r) => {
                assert_eq!(r.rows, vec![vec![Value::Int(2)], vec![Value::Int(3)]]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn end_to_end_improve() {
        let mut s = session_with_data();
        match s
            .execute("IMPROVE cams USING prefs WHERE id = 1 MINCOST 2 FREEZE id APPLY")
            .unwrap_err()
        {
            // `id` is not an improvable attribute (auto-excluded), so the
            // FREEZE is rejected — documents the convention.
            DbError::Improve(msg) => assert!(msg.contains("FREEZE")),
            other => panic!("{other:?}"),
        }
        match s
            .execute("IMPROVE cams USING prefs WHERE id = 1 MINCOST 2 APPLY")
            .unwrap()
        {
            Outcome::Rows(r) => {
                assert!(r.columns.contains(&"delta_res".to_string()));
                assert_eq!(r.rows.len(), 1);
            }
            other => panic!("{other:?}"),
        }
        // The APPLY persisted: the row changed.
        match s
            .execute("SELECT res, price FROM cams WHERE id = 1")
            .unwrap()
        {
            Outcome::Rows(r) => {
                assert_ne!(r.rows[0], vec![Value::Float(0.4), Value::Float(0.9)]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn catalog_operations() {
        let mut s = Session::new();
        s.execute("CREATE TABLE t (a INT)").unwrap();
        assert!(matches!(
            s.execute("CREATE TABLE t (a INT)"),
            Err(DbError::TableExists(_))
        ));
        assert_eq!(s.table_names(), vec!["t"]);
        s.execute("DROP TABLE t").unwrap();
        assert!(s.table_names().is_empty());
        assert!(matches!(
            s.execute("DROP TABLE t"),
            Err(DbError::UnknownTable(_))
        ));
        assert!(matches!(
            s.execute("SELECT * FROM nope"),
            Err(DbError::UnknownTable(_))
        ));
        assert!(matches!(
            s.execute("INSERT INTO nope VALUES (1)"),
            Err(DbError::UnknownTable(_))
        ));
    }

    #[test]
    fn update_and_delete() {
        let mut s = session_with_data();
        assert_eq!(
            s.execute("UPDATE cams SET price = 0.99 WHERE id <= 2")
                .unwrap(),
            Outcome::Updated(2)
        );
        match s.execute("SELECT price FROM cams WHERE id = 1").unwrap() {
            Outcome::Rows(r) => assert_eq!(r.rows[0][0], Value::Float(0.99)),
            other => panic!("{other:?}"),
        }
        assert_eq!(
            s.execute("DELETE FROM cams WHERE res < 0.5").unwrap(),
            Outcome::Deleted(2)
        );
        match s.execute("SELECT id FROM cams ORDER BY id").unwrap() {
            Outcome::Rows(r) => {
                assert_eq!(r.rows, vec![vec![Value::Int(2)], vec![Value::Int(4)]]);
            }
            other => panic!("{other:?}"),
        }
        // Type errors surface before mutation.
        assert!(s.execute("UPDATE cams SET res = 'nope'").is_err());
        assert!(s.execute("UPDATE cams SET missing = 1").is_err());
        // DELETE with no predicate empties the table.
        assert_eq!(s.execute("DELETE FROM cams").unwrap(), Outcome::Deleted(2));
    }

    #[test]
    fn register_prebuilt_table() {
        use crate::table::{Column, Schema, Table};
        use crate::value::ColumnType;
        let mut s = Session::new();
        let mut t = Table::new(
            Schema::new(vec![Column {
                name: "x".into(),
                ty: ColumnType::Int,
            }])
            .unwrap(),
        );
        t.insert(vec![Value::Int(7)]).unwrap();
        s.register("Bulk", t);
        match s.execute("SELECT * FROM bulk").unwrap() {
            Outcome::Rows(r) => assert_eq!(r.rows, vec![vec![Value::Int(7)]]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn empty_result_renders() {
        let mut s = session_with_data();
        match s.execute("SELECT id FROM cams WHERE id > 100").unwrap() {
            Outcome::Rows(r) => {
                assert!(r.rows.is_empty());
                let text = r.to_ascii();
                assert!(text.contains("id"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn copy_from_csv_file() {
        let dir = std::env::temp_dir().join("iq_dbms_copy_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cams.csv");
        std::fs::write(&path, "id,res,price\n1,0.4,0.9\n2,0.6,0.4\n").unwrap();
        let mut s = Session::new();
        let outcome = s
            .execute(&format!("COPY cams FROM '{}'", path.display()))
            .unwrap();
        assert_eq!(outcome, Outcome::Copied(2));
        match s.execute("SELECT COUNT(*), MAX(price) FROM cams").unwrap() {
            Outcome::Rows(r) => {
                assert_eq!(r.rows[0][0], Value::Int(2));
                assert_eq!(r.rows[0][1], Value::Float(0.9));
            }
            other => panic!("{other:?}"),
        }
        // Re-copying into an existing table fails.
        assert!(matches!(
            s.execute(&format!("COPY cams FROM '{}'", path.display())),
            Err(DbError::TableExists(_))
        ));
        // Missing file surfaces cleanly.
        assert!(s
            .execute("COPY nope FROM '/definitely/missing.csv'")
            .is_err());
    }

    #[test]
    fn show_tables_lists_catalog() {
        let mut s = session_with_data();
        match s.execute("SHOW TABLES").unwrap() {
            Outcome::Rows(r) => {
                assert_eq!(r.columns, vec!["table", "rows"]);
                assert_eq!(
                    r.rows,
                    vec![
                        vec![Value::Text("cams".into()), Value::Int(4)],
                        vec![Value::Text("prefs".into()), Value::Int(4)],
                    ]
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn server_only_statements_are_unsupported_locally() {
        let mut s = Session::new();
        assert!(matches!(
            s.execute("SHOW STATS"),
            Err(DbError::Unsupported(_))
        ));
        assert!(matches!(
            s.execute("SHUTDOWN"),
            Err(DbError::Unsupported(_))
        ));
        assert!(matches!(
            s.execute("CHECKPOINT"),
            Err(DbError::Unsupported(_))
        ));
        assert!(matches!(
            s.execute("SHOW WAL"),
            Err(DbError::Unsupported(_))
        ));
    }

    #[test]
    fn execute_read_matches_execute_for_readonly_statements() {
        let mut s = session_with_data();
        for sql in [
            "SELECT id FROM cams WHERE price < 0.5 ORDER BY id",
            "SHOW TABLES",
            "IMPROVE cams USING prefs WHERE id = 1 MINCOST 2",
        ] {
            let stmt = crate::parser::parse(sql).unwrap();
            assert!(crate::parser::is_read_only(&stmt));
            let via_read = s.execute_read(&stmt).unwrap();
            let via_write = s.execute(sql).unwrap();
            assert_eq!(via_read, via_write, "{sql}");
        }
        // Writes are rejected on the read path.
        let stmt = crate::parser::parse("INSERT INTO cams VALUES (9, 0.1, 0.1)").unwrap();
        assert!(matches!(
            s.execute_read(&stmt),
            Err(DbError::Unsupported(_))
        ));
        // IMPROVE … APPLY mutates → not read-only.
        let stmt =
            crate::parser::parse("IMPROVE cams USING prefs WHERE id = 1 MINCOST 2 APPLY").unwrap();
        assert!(matches!(
            s.execute_read(&stmt),
            Err(DbError::Unsupported(_))
        ));
    }

    #[test]
    fn created_outcome_echoes_parsed_name() {
        let mut s = Session::new();
        assert_eq!(
            s.execute("CREATE TABLE Wide (a INT)").unwrap(),
            Outcome::Created("Wide".into())
        );
    }

    #[test]
    fn table_names_case_insensitive() {
        let mut s = Session::new();
        s.execute("CREATE TABLE Cams (a INT)").unwrap();
        s.execute("INSERT INTO CAMS VALUES (1)").unwrap();
        match s.execute("SELECT * FROM cams").unwrap() {
            Outcome::Rows(r) => assert_eq!(r.rows.len(), 1),
            other => panic!("{other:?}"),
        }
    }
}
