//! Query execution: predicate evaluation and SELECT.

use crate::parser::{Aggregate, CompareOp, Predicate, SelectItem, SelectStmt};
use crate::table::Table;
use crate::value::Value;
use crate::DbError;
use std::cmp::Ordering;

/// A materialized result set.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Vec<Value>>,
}

impl QueryResult {
    /// Renders the result as an aligned ASCII table (for examples/REPL).
    /// Thin alias for [`crate::render::result_text`], the shared encoder.
    pub fn to_ascii(&self) -> String {
        crate::render::result_text(self)
    }
}

/// Evaluates a predicate against one row. Comparisons involving NULL are
/// false (SQL three-valued logic collapsed to two, documented behaviour).
pub fn eval_predicate(pred: &Predicate, table: &Table, row: &[Value]) -> Result<bool, DbError> {
    match pred {
        Predicate::Compare { column, op, value } => {
            let idx = table
                .schema
                .index_of(column)
                .ok_or_else(|| DbError::UnknownColumn(column.clone()))?;
            let Some(ord) = row[idx].compare(value) else {
                return Ok(false);
            };
            Ok(match op {
                CompareOp::Eq => ord == Ordering::Equal,
                CompareOp::Ne => ord != Ordering::Equal,
                CompareOp::Lt => ord == Ordering::Less,
                CompareOp::Le => ord != Ordering::Greater,
                CompareOp::Gt => ord == Ordering::Greater,
                CompareOp::Ge => ord != Ordering::Less,
            })
        }
        Predicate::And(a, b) => {
            Ok(eval_predicate(a, table, row)? && eval_predicate(b, table, row)?)
        }
        Predicate::Or(a, b) => Ok(eval_predicate(a, table, row)? || eval_predicate(b, table, row)?),
        Predicate::Not(a) => Ok(!eval_predicate(a, table, row)?),
    }
}

/// Row indices matching a predicate (all rows when `None`).
pub fn matching_rows(table: &Table, pred: Option<&Predicate>) -> Result<Vec<usize>, DbError> {
    let mut out = Vec::new();
    for (i, row) in table.rows().iter().enumerate() {
        let keep = match pred {
            None => true,
            Some(p) => eval_predicate(p, table, row)?,
        };
        if keep {
            out.push(i);
        }
    }
    Ok(out)
}

/// Executes a SELECT against a table.
pub fn select(table: &Table, stmt: &SelectStmt) -> Result<QueryResult, DbError> {
    // Aggregate projections collapse to one row; mixing with plain columns
    // is rejected (no GROUP BY in this engine).
    let has_agg = stmt
        .columns
        .iter()
        .any(|c| matches!(c, SelectItem::Agg(_, _)));
    if has_agg {
        if stmt
            .columns
            .iter()
            .any(|c| matches!(c, SelectItem::Column(_)))
        {
            return Err(DbError::Parse(
                "cannot mix aggregates and plain columns (no GROUP BY)".into(),
            ));
        }
        if stmt.order_by.is_some() {
            return Err(DbError::Parse(
                "ORDER BY is meaningless with aggregates".into(),
            ));
        }
        let rows = matching_rows(table, stmt.predicate.as_ref())?;
        let mut columns = Vec::new();
        let mut out = Vec::new();
        for item in &stmt.columns {
            let SelectItem::Agg(agg, arg) = item else {
                unreachable!()
            };
            let (label, value) = eval_aggregate(table, &rows, *agg, arg.as_deref())?;
            columns.push(label);
            out.push(value);
        }
        return Ok(QueryResult {
            columns,
            rows: vec![out],
        });
    }

    // Resolve projection.
    let proj: Vec<usize> = if stmt.columns.is_empty() {
        (0..table.schema.len()).collect()
    } else {
        stmt.columns
            .iter()
            .map(|c| {
                let SelectItem::Column(name) = c else {
                    unreachable!()
                };
                table
                    .schema
                    .index_of(name)
                    .ok_or_else(|| DbError::UnknownColumn(name.clone()))
            })
            .collect::<Result<_, _>>()?
    };

    let mut rows = matching_rows(table, stmt.predicate.as_ref())?;

    if let Some((col, asc)) = &stmt.order_by {
        let idx = table
            .schema
            .index_of(col)
            .ok_or_else(|| DbError::UnknownColumn(col.clone()))?;
        rows.sort_by(|&a, &b| {
            let ord = table.row(a)[idx]
                .compare(&table.row(b)[idx])
                .unwrap_or(Ordering::Equal);
            if *asc {
                ord
            } else {
                ord.reverse()
            }
        });
    }
    if let Some(limit) = stmt.limit {
        rows.truncate(limit);
    }

    let columns = proj
        .iter()
        .map(|&i| table.schema.columns()[i].name.clone())
        .collect();
    let out_rows = rows
        .into_iter()
        .map(|r| proj.iter().map(|&c| table.row(r)[c].clone()).collect())
        .collect();
    Ok(QueryResult {
        columns,
        rows: out_rows,
    })
}

/// Evaluates one aggregate over the selected rows. NULLs are skipped for
/// column aggregates (SQL semantics); empty inputs yield NULL (except
/// COUNT, which yields 0).
fn eval_aggregate(
    table: &Table,
    rows: &[usize],
    agg: Aggregate,
    arg: Option<&str>,
) -> Result<(String, Value), DbError> {
    let col = match arg {
        None => None,
        Some(name) => Some(
            table
                .schema
                .index_of(name)
                .ok_or_else(|| DbError::UnknownColumn(name.to_string()))?,
        ),
    };
    let label = match arg {
        None => format!("{}(*)", agg.name()),
        Some(name) => format!("{}({name})", agg.name()),
    };
    let non_null = |c: usize| {
        rows.iter()
            .map(move |&r| &table.row(r)[c])
            .filter(|v| !matches!(v, Value::Null))
    };
    let value = match (agg, col) {
        (Aggregate::Count, None) => Value::Int(rows.len() as i64),
        (Aggregate::Count, Some(c)) => Value::Int(non_null(c).count() as i64),
        (agg, Some(c)) => {
            let vals: Vec<&Value> = non_null(c).collect();
            if vals.is_empty() {
                Value::Null
            } else {
                match agg {
                    Aggregate::Sum | Aggregate::Avg => {
                        let mut total = 0.0;
                        for v in &vals {
                            total += v.as_f64().ok_or_else(|| {
                                DbError::Parse(format!("{}: column is not numeric", agg.name()))
                            })?;
                        }
                        if agg == Aggregate::Avg {
                            Value::Float(total / vals.len() as f64)
                        } else {
                            Value::Float(total)
                        }
                    }
                    Aggregate::Min | Aggregate::Max => {
                        let mut best = vals[0].clone();
                        for v in &vals[1..] {
                            let ord = v.compare(&best).ok_or_else(|| {
                                DbError::Parse(format!("{}: incomparable values", agg.name()))
                            })?;
                            let take = if agg == Aggregate::Min {
                                ord == Ordering::Less
                            } else {
                                ord == Ordering::Greater
                            };
                            if take {
                                best = (*v).clone();
                            }
                        }
                        best
                    }
                    Aggregate::Count => unreachable!(),
                }
            }
        }
        (_, None) => unreachable!("only COUNT accepts *"),
    };
    Ok((label, value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::table::{Column, Schema};
    use crate::value::ColumnType;

    fn cams() -> Table {
        let schema = Schema::new(vec![
            Column {
                name: "id".into(),
                ty: ColumnType::Int,
            },
            Column {
                name: "price".into(),
                ty: ColumnType::Float,
            },
            Column {
                name: "name".into(),
                ty: ColumnType::Text,
            },
        ])
        .unwrap();
        let mut t = Table::new(schema);
        for (id, price, name) in [(1, 250.0, "a"), (2, 340.0, "b"), (3, 199.0, "c")] {
            t.insert(vec![
                Value::Int(id),
                Value::Float(price),
                Value::Text(name.into()),
            ])
            .unwrap();
        }
        t
    }

    fn run(table: &Table, sql: &str) -> QueryResult {
        match parse(sql).unwrap() {
            crate::parser::Statement::Select(s) => select(table, &s).unwrap(),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn select_star_all_rows() {
        let r = run(&cams(), "SELECT * FROM cams");
        assert_eq!(r.columns, vec!["id", "price", "name"]);
        assert_eq!(r.rows.len(), 3);
    }

    #[test]
    fn where_and_projection() {
        let r = run(&cams(), "SELECT name FROM cams WHERE price < 300");
        assert_eq!(r.columns, vec!["name"]);
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn order_and_limit() {
        let r = run(&cams(), "SELECT id FROM cams ORDER BY price DESC LIMIT 2");
        assert_eq!(r.rows, vec![vec![Value::Int(2)], vec![Value::Int(1)]]);
        let r = run(&cams(), "SELECT id FROM cams ORDER BY price ASC LIMIT 1");
        assert_eq!(r.rows, vec![vec![Value::Int(3)]]);
    }

    #[test]
    fn complex_predicate() {
        let r = run(
            &cams(),
            "SELECT id FROM cams WHERE (price >= 200 AND price <= 300) OR name = 'c'",
        );
        let ids: Vec<&Value> = r.rows.iter().map(|row| &row[0]).collect();
        assert_eq!(ids, vec![&Value::Int(1), &Value::Int(3)]);
    }

    #[test]
    fn not_and_ne() {
        let r = run(
            &cams(),
            "SELECT id FROM cams WHERE NOT id = 2 AND name <> 'c'",
        );
        assert_eq!(r.rows, vec![vec![Value::Int(1)]]);
    }

    #[test]
    fn unknown_column_errors() {
        let t = cams();
        match parse("SELECT nope FROM cams").unwrap() {
            crate::parser::Statement::Select(s) => {
                assert!(matches!(select(&t, &s), Err(DbError::UnknownColumn(_))));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn null_comparisons_false() {
        let schema = Schema::new(vec![Column {
            name: "x".into(),
            ty: ColumnType::Int,
        }])
        .unwrap();
        let mut t = Table::new(schema);
        t.insert(vec![Value::Null]).unwrap();
        t.insert(vec![Value::Int(1)]).unwrap();
        match parse("SELECT * FROM t WHERE x = 1").unwrap() {
            crate::parser::Statement::Select(s) => {
                let r = select(&t, &s).unwrap();
                assert_eq!(r.rows.len(), 1);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn aggregates_over_rows() {
        let t = cams();
        let r = run(
            &t,
            "SELECT COUNT(*), AVG(price), MIN(price), MAX(price), SUM(id) FROM cams",
        );
        assert_eq!(r.columns[0], "COUNT(*)");
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Value::Int(3));
        assert!((r.rows[0][1].as_f64().unwrap() - (250.0 + 340.0 + 199.0) / 3.0).abs() < 1e-9);
        assert_eq!(r.rows[0][2], Value::Float(199.0));
        assert_eq!(r.rows[0][3], Value::Float(340.0));
        assert_eq!(r.rows[0][4].as_f64().unwrap(), 6.0);
    }

    #[test]
    fn aggregates_respect_where_and_nulls() {
        let schema = Schema::new(vec![Column {
            name: "x".into(),
            ty: ColumnType::Int,
        }])
        .unwrap();
        let mut t = Table::new(schema);
        t.insert(vec![Value::Int(5)]).unwrap();
        t.insert(vec![Value::Null]).unwrap();
        t.insert(vec![Value::Int(15)]).unwrap();
        let r = run(&t, "SELECT COUNT(*), COUNT(x), AVG(x) FROM t WHERE x > 0");
        // NULL fails the predicate → 2 rows; COUNT(x) counts non-NULLs.
        assert_eq!(r.rows[0][0], Value::Int(2));
        assert_eq!(r.rows[0][1], Value::Int(2));
        assert_eq!(r.rows[0][2], Value::Float(10.0));
        // Aggregates over an empty selection.
        let r = run(&t, "SELECT COUNT(*), MIN(x) FROM t WHERE x > 100");
        assert_eq!(r.rows[0][0], Value::Int(0));
        assert_eq!(r.rows[0][1], Value::Null);
    }

    #[test]
    fn aggregate_errors() {
        let t = cams();
        match parse("SELECT id, COUNT(*) FROM cams").unwrap() {
            crate::parser::Statement::Select(s) => {
                assert!(select(&t, &s).is_err(), "mixing must fail");
            }
            _ => unreachable!(),
        }
        match parse("SELECT AVG(name) FROM cams").unwrap() {
            crate::parser::Statement::Select(s) => {
                assert!(select(&t, &s).is_err(), "AVG over TEXT must fail");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn ascii_rendering() {
        let r = run(&cams(), "SELECT id, price FROM cams LIMIT 1");
        let text = r.to_ascii();
        assert!(text.contains("id"));
        assert!(text.contains("250.0000"));
        assert!(text.lines().count() >= 3);
    }
}
