//! Lexer and recursive-descent parser for the SQL subset plus the
//! `IMPROVE` statement extension.
//!
//! Supported grammar:
//!
//! ```text
//! stmt    := create | insert | select | update | delete | drop | improve
//! create  := CREATE TABLE ident "(" ident type ("," ident type)* ")"
//! insert  := INSERT INTO ident VALUES tuple ("," tuple)*
//! select  := SELECT ("*" | item ("," item)*) FROM ident
//!            [WHERE pred] [ORDER BY ident [ASC|DESC]] [LIMIT int]
//! item    := ident | agg "(" (ident | "*") ")"
//! agg     := COUNT | SUM | AVG | MIN | MAX
//! update  := UPDATE ident SET ident "=" literal ("," ident "=" literal)*
//!            [WHERE pred]
//! delete  := DELETE FROM ident [WHERE pred]
//! copy    := COPY ident FROM string [NOHEADER]
//! drop    := DROP TABLE ident
//! improve := IMPROVE ident USING ident [WHERE pred]
//!            (MINCOST number | MAXHIT number)
//!            [COST (EUCLIDEAN | L1)] [FREEZE ident ("," ident)*] [APPLY]
//! pred    := or-chain of comparisons with AND/OR/NOT and parentheses
//! ```
//!
//! The `IMPROVE` statement is the paper's analytic-tool surface (§6.1):
//! targets are the rows of the object table matching the `WHERE` clause
//! (one row → single-target IQ, several → combinatorial §5.1), the query
//! table supplies the top-k workload (`w1..wd` weight columns plus `k`),
//! and `APPLY` writes the improved attribute values back.

use crate::value::{ColumnType, Value};
use crate::DbError;

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// CREATE TABLE.
    Create {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<(String, ColumnType)>,
    },
    /// INSERT INTO … VALUES.
    Insert {
        /// Table name.
        table: String,
        /// Row tuples.
        rows: Vec<Vec<Value>>,
    },
    /// SELECT.
    Select(SelectStmt),
    /// UPDATE … SET.
    Update {
        /// Table name.
        table: String,
        /// `(column, new value)` assignments.
        sets: Vec<(String, Value)>,
        /// Optional row filter.
        predicate: Option<Predicate>,
    },
    /// DELETE FROM.
    Delete {
        /// Table name.
        table: String,
        /// Optional row filter (`None` = all rows).
        predicate: Option<Predicate>,
    },
    /// COPY … FROM (CSV file ingestion).
    Copy {
        /// Destination table (created; must not exist).
        table: String,
        /// CSV file path.
        path: String,
        /// Whether the first record is a header row.
        has_header: bool,
    },
    /// DROP TABLE.
    Drop {
        /// Table name.
        name: String,
    },
    /// The IMPROVE extension.
    Improve(ImproveStmt),
    /// SHOW TABLES — list the catalog.
    ShowTables,
    /// SHOW STATS — the serving layer's metrics snapshot. Parsed here so
    /// every front end shares one grammar; a plain [`crate::Session`] has
    /// no metrics registry and reports [`DbError::Unsupported`].
    ShowStats,
    /// SHUTDOWN — ask the server to drain and stop. Like `SHOW STATS`,
    /// only meaningful over an `iq-server` connection.
    Shutdown,
    /// CHECKPOINT — snapshot table state to disk and truncate the WAL.
    /// Only meaningful on a server running with `--data-dir`; a plain
    /// [`crate::Session`] reports [`DbError::Unsupported`].
    Checkpoint,
    /// SHOW WAL — the storage layer's counters (generation, WAL size,
    /// fsyncs, recovery stats). Server-only, like `SHOW STATS`.
    ShowWal,
}

/// Whether a statement only reads session state. Read-only statements may
/// run concurrently against a shared snapshot (the serving layer's
/// reader path); everything else must serialize through the write path.
pub fn is_read_only(stmt: &Statement) -> bool {
    match stmt {
        Statement::Select(_)
        | Statement::ShowTables
        | Statement::ShowStats
        | Statement::ShowWal => true,
        // IMPROVE without APPLY is a pure analytic query; APPLY mutates.
        Statement::Improve(imp) => !imp.apply,
        // CHECKPOINT writes no rows, but it rotates storage files and
        // must see a quiesced table state — it serializes with writers.
        _ => false,
    }
}

/// An aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// Row count (NULLs included for `COUNT(*)`, excluded for a column).
    Count,
    /// Numeric sum.
    Sum,
    /// Numeric mean.
    Avg,
    /// Minimum (any comparable type).
    Min,
    /// Maximum (any comparable type).
    Max,
}

impl Aggregate {
    /// The SQL spelling.
    pub fn name(self) -> &'static str {
        match self {
            Aggregate::Count => "COUNT",
            Aggregate::Sum => "SUM",
            Aggregate::Avg => "AVG",
            Aggregate::Min => "MIN",
            Aggregate::Max => "MAX",
        }
    }
}

/// One item of a SELECT projection.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// A plain column reference.
    Column(String),
    /// An aggregate over a column, or over `*` (COUNT only).
    Agg(Aggregate, Option<String>),
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// Projection; empty = `*`. Aggregates and plain columns cannot mix
    /// (there is no GROUP BY).
    pub columns: Vec<SelectItem>,
    /// Source table.
    pub table: String,
    /// Optional filter.
    pub predicate: Option<Predicate>,
    /// Optional ORDER BY column and direction (`true` = ascending).
    pub order_by: Option<(String, bool)>,
    /// Optional LIMIT.
    pub limit: Option<usize>,
}

/// The improvement-query goal.
#[derive(Debug, Clone, PartialEq)]
pub enum ImproveGoal {
    /// Min-Cost IQ with the desired hit count τ.
    MinCost(usize),
    /// Max-Hit IQ with budget β.
    MaxHit(f64),
}

/// Cost-function selection for IMPROVE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostKind {
    /// Euclidean (Eq. 30) — the default.
    Euclidean,
    /// Manhattan.
    L1,
}

/// An IMPROVE statement.
#[derive(Debug, Clone, PartialEq)]
pub struct ImproveStmt {
    /// Object table holding candidate targets.
    pub table: String,
    /// Query table holding the top-k workload.
    pub query_table: String,
    /// Target row filter (`None` = error unless the table has one row).
    pub predicate: Option<Predicate>,
    /// Min-Cost or Max-Hit.
    pub goal: ImproveGoal,
    /// Cost function.
    pub cost: CostKind,
    /// Attribute columns that must not change.
    pub freeze: Vec<String>,
    /// Whether to write improved values back to the table.
    pub apply: bool,
}

/// A filter predicate over one table's rows.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Comparison `column <op> literal` (or `literal <op> column`).
    Compare {
        /// Column name.
        column: String,
        /// Comparison operator.
        op: CompareOp,
        /// Literal operand.
        value: Value,
    },
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Symbol(&'static str),
}

/// Lexes `input` into tokens, each annotated with the byte offset where it
/// starts — the offsets feed [`DbError::SyntaxAt`] so parse errors point at
/// the offending character, locally and over the wire.
fn lex(input: &str) -> Result<Vec<(Tok, usize)>, DbError> {
    let b = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let at = i;
        match b[i] {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'(' | b')' | b',' | b'*' | b';' | b'=' => {
                toks.push((
                    Tok::Symbol(match b[i] {
                        b'(' => "(",
                        b')' => ")",
                        b',' => ",",
                        b'*' => "*",
                        b';' => ";",
                        _ => "=",
                    }),
                    at,
                ));
                i += 1;
            }
            b'<' => {
                if i + 1 < b.len() && b[i + 1] == b'=' {
                    toks.push((Tok::Symbol("<="), at));
                    i += 2;
                } else if i + 1 < b.len() && b[i + 1] == b'>' {
                    toks.push((Tok::Symbol("<>"), at));
                    i += 2;
                } else {
                    toks.push((Tok::Symbol("<"), at));
                    i += 1;
                }
            }
            b'>' => {
                if i + 1 < b.len() && b[i + 1] == b'=' {
                    toks.push((Tok::Symbol(">="), at));
                    i += 2;
                } else {
                    toks.push((Tok::Symbol(">"), at));
                    i += 1;
                }
            }
            b'\'' => {
                // Standard SQL quoting: `''` inside a literal is one `'`.
                // (Needed so rendered snapshots of arbitrary TEXT values
                // re-parse; see `render::sql_literal`.)
                let mut text = Vec::new();
                let mut j = i + 1;
                let mut closed = false;
                while j < b.len() {
                    if b[j] == b'\'' {
                        if j + 1 < b.len() && b[j + 1] == b'\'' {
                            text.push(b'\'');
                            j += 2;
                        } else {
                            closed = true;
                            j += 1;
                            break;
                        }
                    } else {
                        text.push(b[j]);
                        j += 1;
                    }
                }
                if !closed {
                    return Err(DbError::SyntaxAt {
                        offset: at,
                        message: "unterminated string literal".into(),
                    });
                }
                let text = String::from_utf8(text).map_err(|_| DbError::SyntaxAt {
                    offset: at,
                    message: "string literal is not valid UTF-8".into(),
                })?;
                toks.push((Tok::Str(text), at));
                i = j;
            }
            b'0'..=b'9' | b'.' | b'-' => {
                let start = i;
                if b[i] == b'-' {
                    i += 1;
                }
                let mut is_float = false;
                while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'.') {
                    if b[i] == b'.' {
                        is_float = true;
                    }
                    i += 1;
                }
                let text = &input[start..i];
                if text == "-" {
                    return Err(DbError::SyntaxAt {
                        offset: at,
                        message: "stray `-`".into(),
                    });
                }
                if is_float {
                    toks.push((
                        Tok::Float(text.parse().map_err(|_| DbError::SyntaxAt {
                            offset: at,
                            message: format!("bad float literal `{text}`"),
                        })?),
                        at,
                    ));
                } else {
                    toks.push((
                        Tok::Int(text.parse().map_err(|_| DbError::SyntaxAt {
                            offset: at,
                            message: format!("bad integer literal `{text}`"),
                        })?),
                        at,
                    ));
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                toks.push((Tok::Ident(input[start..i].to_string()), at));
            }
            other => {
                return Err(DbError::SyntaxAt {
                    offset: at,
                    message: format!("unexpected character `{}`", other as char),
                })
            }
        }
    }
    Ok(toks)
}

struct P {
    toks: Vec<Tok>,
    offs: Vec<usize>,
    /// Byte length of the input — the offset reported at end-of-statement.
    end: usize,
    pos: usize,
}

impl P {
    /// Byte offset of the token about to be consumed (input length at EOF).
    fn here(&self) -> usize {
        self.offs.get(self.pos).copied().unwrap_or(self.end)
    }

    fn err(&self, message: impl Into<String>) -> DbError {
        DbError::SyntaxAt {
            offset: self.here(),
            message: message.into(),
        }
    }

    /// Like [`P::err`], but for an already-consumed token.
    fn err_prev(&self, message: impl Into<String>) -> DbError {
        let offset = self
            .offs
            .get(self.pos.saturating_sub(1))
            .copied()
            .unwrap_or(self.end);
        DbError::SyntaxAt {
            offset,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn eat_symbol(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Symbol(x)) if *x == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: &str) -> Result<(), DbError> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{s}`")))
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(w)) if w.eq_ignore_ascii_case(kw))
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), DbError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw}")))
        }
    }

    fn ident(&mut self) -> Result<String, DbError> {
        match self.bump() {
            Some(Tok::Ident(w)) => Ok(w),
            other => Err(self.err_prev(format!("expected identifier, got {other:?}"))),
        }
    }

    fn literal(&mut self) -> Result<Value, DbError> {
        match self.bump() {
            Some(Tok::Int(i)) => Ok(Value::Int(i)),
            Some(Tok::Float(f)) => Ok(Value::Float(f)),
            Some(Tok::Str(s)) => Ok(Value::Text(s)),
            Some(Tok::Ident(w)) if w.eq_ignore_ascii_case("true") => Ok(Value::Bool(true)),
            Some(Tok::Ident(w)) if w.eq_ignore_ascii_case("false") => Ok(Value::Bool(false)),
            Some(Tok::Ident(w)) if w.eq_ignore_ascii_case("null") => Ok(Value::Null),
            other => Err(self.err_prev(format!("expected literal, got {other:?}"))),
        }
    }

    fn number(&mut self) -> Result<f64, DbError> {
        match self.bump() {
            Some(Tok::Int(i)) => Ok(i as f64),
            Some(Tok::Float(f)) => Ok(f),
            other => Err(self.err_prev(format!("expected number, got {other:?}"))),
        }
    }

    // --- predicates ---

    fn predicate(&mut self) -> Result<Predicate, DbError> {
        let mut left = self.pred_and()?;
        while self.eat_keyword("OR") {
            let right = self.pred_and()?;
            left = Predicate::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn pred_and(&mut self) -> Result<Predicate, DbError> {
        let mut left = self.pred_atom()?;
        while self.eat_keyword("AND") {
            let right = self.pred_atom()?;
            left = Predicate::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn pred_atom(&mut self) -> Result<Predicate, DbError> {
        if self.eat_keyword("NOT") {
            return Ok(Predicate::Not(Box::new(self.pred_atom()?)));
        }
        if self.eat_symbol("(") {
            let p = self.predicate()?;
            self.expect_symbol(")")?;
            return Ok(p);
        }
        let column = self.ident()?;
        let op = match self.bump() {
            Some(Tok::Symbol("=")) => CompareOp::Eq,
            Some(Tok::Symbol("<>")) => CompareOp::Ne,
            Some(Tok::Symbol("<")) => CompareOp::Lt,
            Some(Tok::Symbol("<=")) => CompareOp::Le,
            Some(Tok::Symbol(">")) => CompareOp::Gt,
            Some(Tok::Symbol(">=")) => CompareOp::Ge,
            other => return Err(self.err_prev(format!("expected comparison, got {other:?}"))),
        };
        let value = self.literal()?;
        Ok(Predicate::Compare { column, op, value })
    }

    // --- statements ---

    fn create(&mut self) -> Result<Statement, DbError> {
        self.expect_keyword("TABLE")?;
        let name = self.ident()?;
        self.expect_symbol("(")?;
        let mut columns: Vec<(String, ColumnType)> = Vec::new();
        loop {
            let col_at = self.here();
            let col = self.ident()?;
            // Reject duplicates at parse time, pointing at the second
            // occurrence — don't wait for Schema::new to notice.
            if columns
                .iter()
                .any(|(existing, _)| existing.eq_ignore_ascii_case(&col))
            {
                return Err(DbError::SyntaxAt {
                    offset: col_at,
                    message: format!("duplicate column `{col}`"),
                });
            }
            let ty_name = self.ident()?;
            let ty = match ty_name.to_ascii_uppercase().as_str() {
                "INT" | "INTEGER" | "BIGINT" => ColumnType::Int,
                "FLOAT" | "REAL" | "DOUBLE" => ColumnType::Float,
                "TEXT" | "VARCHAR" | "STRING" => ColumnType::Text,
                "BOOL" | "BOOLEAN" => ColumnType::Bool,
                other => return Err(self.err_prev(format!("unknown type `{other}`"))),
            };
            columns.push((col, ty));
            if !self.eat_symbol(",") {
                break;
            }
        }
        self.expect_symbol(")")?;
        Ok(Statement::Create { name, columns })
    }

    fn insert(&mut self) -> Result<Statement, DbError> {
        self.expect_keyword("INTO")?;
        let table = self.ident()?;
        self.expect_keyword("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_symbol("(")?;
            let mut row = Vec::new();
            loop {
                row.push(self.literal()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
            self.expect_symbol(")")?;
            rows.push(row);
            if !self.eat_symbol(",") {
                break;
            }
        }
        Ok(Statement::Insert { table, rows })
    }

    fn select(&mut self) -> Result<Statement, DbError> {
        let mut columns = Vec::new();
        if !self.eat_symbol("*") {
            loop {
                let name = self.ident()?;
                let agg = match name.to_ascii_uppercase().as_str() {
                    "COUNT" => Some(Aggregate::Count),
                    "SUM" => Some(Aggregate::Sum),
                    "AVG" => Some(Aggregate::Avg),
                    "MIN" => Some(Aggregate::Min),
                    "MAX" => Some(Aggregate::Max),
                    _ => None,
                };
                match agg {
                    Some(a) if self.eat_symbol("(") => {
                        let arg = if self.eat_symbol("*") {
                            if a != Aggregate::Count {
                                return Err(self.err_prev(format!(
                                    "{}(*) is not supported; name a column",
                                    a.name()
                                )));
                            }
                            None
                        } else {
                            Some(self.ident()?)
                        };
                        self.expect_symbol(")")?;
                        columns.push(SelectItem::Agg(a, arg));
                    }
                    _ => columns.push(SelectItem::Column(name)),
                }
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }
        self.expect_keyword("FROM")?;
        let table = self.ident()?;
        let predicate = if self.eat_keyword("WHERE") {
            Some(self.predicate()?)
        } else {
            None
        };
        let order_by = if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            let col = self.ident()?;
            let asc = if self.eat_keyword("DESC") {
                false
            } else {
                self.eat_keyword("ASC");
                true
            };
            Some((col, asc))
        } else {
            None
        };
        let limit = if self.eat_keyword("LIMIT") {
            Some(self.number()? as usize)
        } else {
            None
        };
        Ok(Statement::Select(SelectStmt {
            columns,
            table,
            predicate,
            order_by,
            limit,
        }))
    }

    fn update(&mut self) -> Result<Statement, DbError> {
        let table = self.ident()?;
        self.expect_keyword("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_symbol("=")?;
            sets.push((col, self.literal()?));
            if !self.eat_symbol(",") {
                break;
            }
        }
        let predicate = if self.eat_keyword("WHERE") {
            Some(self.predicate()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            sets,
            predicate,
        })
    }

    fn delete(&mut self) -> Result<Statement, DbError> {
        self.expect_keyword("FROM")?;
        let table = self.ident()?;
        let predicate = if self.eat_keyword("WHERE") {
            Some(self.predicate()?)
        } else {
            None
        };
        Ok(Statement::Delete { table, predicate })
    }

    fn improve(&mut self) -> Result<Statement, DbError> {
        let table = self.ident()?;
        self.expect_keyword("USING")?;
        let query_table = self.ident()?;
        let predicate = if self.eat_keyword("WHERE") {
            Some(self.predicate()?)
        } else {
            None
        };
        let goal = if self.eat_keyword("MINCOST") {
            ImproveGoal::MinCost(self.number()? as usize)
        } else if self.eat_keyword("MAXHIT") {
            ImproveGoal::MaxHit(self.number()?)
        } else {
            return Err(self.err("expected MINCOST or MAXHIT"));
        };
        let mut cost = CostKind::Euclidean;
        let mut freeze = Vec::new();
        let mut apply = false;
        loop {
            if self.eat_keyword("COST") {
                cost = if self.eat_keyword("EUCLIDEAN") {
                    CostKind::Euclidean
                } else if self.eat_keyword("L1") {
                    CostKind::L1
                } else {
                    return Err(self.err("expected EUCLIDEAN or L1 after COST"));
                };
            } else if self.eat_keyword("FREEZE") {
                loop {
                    freeze.push(self.ident()?);
                    if !self.eat_symbol(",") {
                        break;
                    }
                }
            } else if self.eat_keyword("APPLY") {
                apply = true;
            } else {
                break;
            }
        }
        Ok(Statement::Improve(ImproveStmt {
            table,
            query_table,
            predicate,
            goal,
            cost,
            freeze,
            apply,
        }))
    }
}

/// Parses one SQL statement (an optional trailing `;` is allowed).
pub fn parse(input: &str) -> Result<Statement, DbError> {
    let (toks, offs): (Vec<Tok>, Vec<usize>) = lex(input)?.into_iter().unzip();
    let mut p = P {
        toks,
        offs,
        end: input.len(),
        pos: 0,
    };
    let stmt = if p.eat_keyword("CREATE") {
        p.create()?
    } else if p.eat_keyword("INSERT") {
        p.insert()?
    } else if p.eat_keyword("SELECT") {
        p.select()?
    } else if p.eat_keyword("UPDATE") {
        p.update()?
    } else if p.eat_keyword("DELETE") {
        p.delete()?
    } else if p.eat_keyword("COPY") {
        let table = p.ident()?;
        p.expect_keyword("FROM")?;
        let path = match p.bump() {
            Some(Tok::Str(s)) => s,
            other => {
                return Err(p.err_prev(format!(
                    "expected quoted file path after FROM, got {other:?}"
                )))
            }
        };
        let has_header = !p.eat_keyword("NOHEADER");
        Statement::Copy {
            table,
            path,
            has_header,
        }
    } else if p.eat_keyword("DROP") {
        p.expect_keyword("TABLE")?;
        Statement::Drop { name: p.ident()? }
    } else if p.eat_keyword("IMPROVE") {
        p.improve()?
    } else if p.eat_keyword("SHOW") {
        if p.eat_keyword("TABLES") {
            Statement::ShowTables
        } else if p.eat_keyword("STATS") {
            Statement::ShowStats
        } else if p.eat_keyword("WAL") {
            Statement::ShowWal
        } else {
            return Err(p.err("expected TABLES, STATS, or WAL after SHOW"));
        }
    } else if p.eat_keyword("SHUTDOWN") {
        Statement::Shutdown
    } else if p.eat_keyword("CHECKPOINT") {
        Statement::Checkpoint
    } else {
        return Err(p.err(
            "expected CREATE, INSERT, SELECT, UPDATE, DELETE, COPY, DROP, IMPROVE, SHOW, \
             CHECKPOINT, or SHUTDOWN",
        ));
    };
    p.eat_symbol(";");
    if p.pos != p.toks.len() {
        return Err(p.err("trailing input after statement"));
    }
    Ok(stmt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_table() {
        let s = parse("CREATE TABLE cameras (id INT, price FLOAT, name TEXT)").unwrap();
        match s {
            Statement::Create { name, columns } => {
                assert_eq!(name, "cameras");
                assert_eq!(columns.len(), 3);
                assert_eq!(columns[1], ("price".to_string(), ColumnType::Float));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn insert_multi_row() {
        let s = parse("INSERT INTO t VALUES (1, 2.5, 'a'), (2, -3.0, 'b');").unwrap();
        match s {
            Statement::Insert { table, rows } => {
                assert_eq!(table, "t");
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[1][1], Value::Float(-3.0));
                assert_eq!(rows[0][2], Value::Text("a".into()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn select_full() {
        let s = parse(
            "SELECT id, price FROM cams WHERE price <= 300 AND NOT (id = 2) \
             ORDER BY price DESC LIMIT 5",
        )
        .unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(
                    sel.columns,
                    vec![
                        SelectItem::Column("id".into()),
                        SelectItem::Column("price".into())
                    ]
                );
                assert_eq!(sel.order_by, Some(("price".into(), false)));
                assert_eq!(sel.limit, Some(5));
                assert!(matches!(sel.predicate, Some(Predicate::And(_, _))));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn select_star() {
        let s = parse("SELECT * FROM t").unwrap();
        match s {
            Statement::Select(sel) => assert!(sel.columns.is_empty()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn improve_mincost() {
        let s = parse(
            "IMPROVE cameras USING prefs WHERE id = 1 MINCOST 25 COST L1 FREEZE price, id APPLY",
        )
        .unwrap();
        match s {
            Statement::Improve(imp) => {
                assert_eq!(imp.table, "cameras");
                assert_eq!(imp.query_table, "prefs");
                assert_eq!(imp.goal, ImproveGoal::MinCost(25));
                assert_eq!(imp.cost, CostKind::L1);
                assert_eq!(imp.freeze, vec!["price", "id"]);
                assert!(imp.apply);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn improve_maxhit_defaults() {
        let s = parse("IMPROVE t USING q MAXHIT 2.5").unwrap();
        match s {
            Statement::Improve(imp) => {
                assert_eq!(imp.goal, ImproveGoal::MaxHit(2.5));
                assert_eq!(imp.cost, CostKind::Euclidean);
                assert!(imp.freeze.is_empty());
                assert!(!imp.apply);
                assert!(imp.predicate.is_none());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn keywords_case_insensitive() {
        assert!(parse("select * from t where x = 1 order by x limit 1").is_ok());
        assert!(parse("improve t using q mincost 3").is_ok());
    }

    #[test]
    fn parse_errors() {
        assert!(parse("").is_err());
        assert!(parse("SELEC * FROM t").is_err());
        assert!(parse("SELECT * FROM").is_err());
        assert!(parse("CREATE TABLE t (a BLOB)").is_err());
        assert!(parse("INSERT INTO t VALUES (1").is_err());
        assert!(parse("IMPROVE t USING q").is_err()); // missing goal
        assert!(parse("SELECT * FROM t WHERE x ~ 1").is_err());
        assert!(parse("SELECT * FROM t extra").is_err());
        assert!(parse("INSERT INTO t VALUES ('unterminated)").is_err());
    }

    #[test]
    fn aggregate_projection() {
        let s =
            parse("SELECT COUNT(*), AVG(price), MIN(price), MAX(price), SUM(id) FROM t").unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.columns.len(), 5);
                assert_eq!(sel.columns[0], SelectItem::Agg(Aggregate::Count, None));
                assert_eq!(
                    sel.columns[1],
                    SelectItem::Agg(Aggregate::Avg, Some("price".into()))
                );
            }
            other => panic!("{other:?}"),
        }
        assert!(parse("SELECT AVG(*) FROM t").is_err());
        // An identifier that merely looks like an aggregate stays a column.
        let s = parse("SELECT count FROM t").unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.columns, vec![SelectItem::Column("count".into())]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn update_statement() {
        let s = parse("UPDATE cams SET price = 199.0, name = 'sale' WHERE id = 1").unwrap();
        match s {
            Statement::Update {
                table,
                sets,
                predicate,
            } => {
                assert_eq!(table, "cams");
                assert_eq!(sets.len(), 2);
                assert_eq!(sets[0], ("price".to_string(), Value::Float(199.0)));
                assert!(predicate.is_some());
            }
            other => panic!("{other:?}"),
        }
        assert!(parse("UPDATE cams price = 1").is_err());
        assert!(parse("UPDATE cams SET price 1").is_err());
    }

    #[test]
    fn delete_statement() {
        let s = parse("DELETE FROM cams WHERE price > 300").unwrap();
        match s {
            Statement::Delete { table, predicate } => {
                assert_eq!(table, "cams");
                assert!(predicate.is_some());
            }
            other => panic!("{other:?}"),
        }
        let s = parse("DELETE FROM cams").unwrap();
        assert!(matches!(
            s,
            Statement::Delete {
                predicate: None,
                ..
            }
        ));
        assert!(parse("DELETE cams").is_err());
    }

    #[test]
    fn copy_statement() {
        let s = parse("COPY cars FROM '/tmp/cars.csv'").unwrap();
        assert_eq!(
            s,
            Statement::Copy {
                table: "cars".into(),
                path: "/tmp/cars.csv".into(),
                has_header: true
            }
        );
        let s = parse("COPY cars FROM 'x.csv' NOHEADER").unwrap();
        assert!(matches!(
            s,
            Statement::Copy {
                has_header: false,
                ..
            }
        ));
        assert!(parse("COPY cars FROM cars_csv").is_err());
    }

    fn offset_of(err: DbError) -> usize {
        match err {
            DbError::SyntaxAt { offset, .. } => offset,
            other => panic!("expected SyntaxAt, got {other:?}"),
        }
    }

    #[test]
    fn syntax_errors_carry_byte_offsets() {
        // `~` at byte 28.
        let sql = "SELECT * FROM t WHERE price ~ 1";
        assert_eq!(offset_of(parse(sql).unwrap_err()), 28);
        // Unknown leading keyword points at byte 0.
        assert_eq!(offset_of(parse("SELEC * FROM t").unwrap_err()), 0);
        // Missing FROM target: offset is end-of-input.
        let sql = "SELECT * FROM";
        assert_eq!(offset_of(parse(sql).unwrap_err()), sql.len());
        // Trailing garbage points at the garbage, not the statement.
        let sql = "SELECT * FROM t extra";
        assert_eq!(offset_of(parse(sql).unwrap_err()), 16);
        // Unterminated string points at its opening quote.
        let sql = "INSERT INTO t VALUES ('oops)";
        assert_eq!(offset_of(parse(sql).unwrap_err()), 22);
        // Unknown column type points at the type token.
        let sql = "CREATE TABLE t (a BLOB)";
        assert_eq!(offset_of(parse(sql).unwrap_err()), 18);
    }

    #[test]
    fn create_rejects_duplicate_columns_at_parse_time() {
        let sql = "CREATE TABLE t (a INT, b FLOAT, a TEXT)";
        let err = parse(sql).unwrap_err();
        match &err {
            DbError::SyntaxAt { offset, message } => {
                // Points at the *second* `a`.
                assert_eq!(*offset, 32);
                assert!(message.contains("duplicate column `a`"), "{message}");
            }
            other => panic!("{other:?}"),
        }
        // Case-insensitive, like the rest of the catalog.
        assert!(parse("CREATE TABLE t (x INT, X INT)").is_err());
    }

    #[test]
    fn show_and_shutdown_statements() {
        assert_eq!(parse("SHOW TABLES").unwrap(), Statement::ShowTables);
        assert_eq!(parse("show stats;").unwrap(), Statement::ShowStats);
        assert_eq!(parse("SHUTDOWN").unwrap(), Statement::Shutdown);
        assert!(parse("SHOW nonsense").is_err());
    }

    #[test]
    fn checkpoint_and_show_wal_statements() {
        assert_eq!(parse("CHECKPOINT").unwrap(), Statement::Checkpoint);
        assert_eq!(parse("checkpoint;").unwrap(), Statement::Checkpoint);
        assert_eq!(parse("SHOW WAL").unwrap(), Statement::ShowWal);
        assert_eq!(parse("show wal;").unwrap(), Statement::ShowWal);
        // Trailing garbage still reports its byte offset.
        assert_eq!(offset_of(parse("CHECKPOINT now").unwrap_err()), 11);
        assert_eq!(offset_of(parse("SHOW WAL please").unwrap_err()), 9);
        // SHOW with a bad object points at the object token.
        assert_eq!(offset_of(parse("SHOW wals").unwrap_err()), 5);
    }

    #[test]
    fn string_literals_support_doubled_quotes() {
        let s = parse("INSERT INTO t VALUES ('it''s', '''', 'a''''b')").unwrap();
        match s {
            Statement::Insert { rows, .. } => {
                assert_eq!(rows[0][0], Value::Text("it's".into()));
                assert_eq!(rows[0][1], Value::Text("'".into()));
                assert_eq!(rows[0][2], Value::Text("a''b".into()));
            }
            other => panic!("{other:?}"),
        }
        // A lone trailing quote is still unterminated.
        assert_eq!(
            offset_of(parse("INSERT INTO t VALUES ('x''").unwrap_err()),
            22
        );
    }

    #[test]
    fn read_only_classification() {
        let ro = |sql: &str| is_read_only(&parse(sql).unwrap());
        assert!(ro("SELECT * FROM t"));
        assert!(ro("SHOW TABLES"));
        assert!(ro("SHOW STATS"));
        assert!(ro("SHOW WAL"));
        assert!(!ro("CHECKPOINT"));
        assert!(ro("IMPROVE t USING q MINCOST 3"));
        assert!(!ro("IMPROVE t USING q MINCOST 3 APPLY"));
        assert!(!ro("INSERT INTO t VALUES (1)"));
        assert!(!ro("UPDATE t SET a = 1"));
        assert!(!ro("DELETE FROM t"));
        assert!(!ro("DROP TABLE t"));
        assert!(!ro("CREATE TABLE t (a INT)"));
        assert!(!ro("SHUTDOWN"));
    }

    #[test]
    fn boolean_and_null_literals() {
        let s = parse("INSERT INTO t VALUES (TRUE, NULL, false)").unwrap();
        match s {
            Statement::Insert { rows, .. } => {
                assert_eq!(rows[0][0], Value::Bool(true));
                assert_eq!(rows[0][1], Value::Null);
                assert_eq!(rows[0][2], Value::Bool(false));
            }
            other => panic!("{other:?}"),
        }
    }
}
