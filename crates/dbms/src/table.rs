//! Schemas and in-memory tables.

use crate::value::{ColumnType, Value};
use crate::DbError;

/// A column definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// Column name (matched case-insensitively).
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Creates a schema, rejecting duplicate column names.
    pub fn new(columns: Vec<Column>) -> Result<Self, DbError> {
        for i in 0..columns.len() {
            for j in (i + 1)..columns.len() {
                if columns[i].name.eq_ignore_ascii_case(&columns[j].name) {
                    return Err(DbError::DuplicateColumn(columns[i].name.clone()));
                }
            }
        }
        Ok(Schema { columns })
    }

    /// The columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True for a zero-column schema.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of a column by (case-insensitive) name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Indices of every numeric (INT/FLOAT) column — the attribute columns
    /// the IMPROVE statement operates on.
    pub fn numeric_columns(&self) -> Vec<usize> {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, c)| matches!(c.ty, ColumnType::Int | ColumnType::Float))
            .map(|(i, _)| i)
            .collect()
    }
}

/// An in-memory row-store table.
#[derive(Debug, Clone)]
pub struct Table {
    /// The table schema.
    pub schema: Schema,
    rows: Vec<Vec<Value>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(schema: Schema) -> Self {
        Table {
            schema,
            rows: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rows.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// One row.
    pub fn row(&self, i: usize) -> &[Value] {
        &self.rows[i]
    }

    /// Inserts a row after arity and type checks.
    pub fn insert(&mut self, row: Vec<Value>) -> Result<(), DbError> {
        if row.len() != self.schema.len() {
            return Err(DbError::ArityMismatch {
                expected: self.schema.len(),
                found: row.len(),
            });
        }
        for (v, c) in row.iter().zip(self.schema.columns()) {
            if !v.fits(c.ty) {
                return Err(DbError::TypeMismatch {
                    column: c.name.clone(),
                    expected: c.ty,
                    found: v.clone(),
                });
            }
        }
        // Normalize INT→FLOAT coercions on the way in.
        let row = row
            .into_iter()
            .zip(self.schema.columns())
            .map(|(v, c)| match (v, c.ty) {
                (Value::Int(i), ColumnType::Float) => Value::Float(i as f64),
                (v, _) => v,
            })
            .collect();
        self.rows.push(row);
        Ok(())
    }

    /// Removes every row whose index is in `victims` (sorted or not),
    /// preserving the order of the remaining rows. Returns how many were
    /// removed.
    pub fn remove_rows(&mut self, victims: &[usize]) -> usize {
        if victims.is_empty() {
            return 0;
        }
        let dead: std::collections::HashSet<usize> = victims.iter().copied().collect();
        let before = self.rows.len();
        let mut i = 0;
        self.rows.retain(|_| {
            let keep = !dead.contains(&i);
            i += 1;
            keep
        });
        before - self.rows.len()
    }

    /// Overwrites one cell (used by IMPROVE's APPLY mode).
    pub fn update_cell(&mut self, row: usize, col: usize, value: Value) -> Result<(), DbError> {
        let c = &self.schema.columns()[col];
        if !value.fits(c.ty) {
            return Err(DbError::TypeMismatch {
                column: c.name.clone(),
                expected: c.ty,
                found: value,
            });
        }
        self.rows[row][col] = match (value, c.ty) {
            (Value::Int(i), ColumnType::Float) => Value::Float(i as f64),
            (v, _) => v,
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Column {
                name: "id".into(),
                ty: ColumnType::Int,
            },
            Column {
                name: "price".into(),
                ty: ColumnType::Float,
            },
            Column {
                name: "name".into(),
                ty: ColumnType::Text,
            },
        ])
        .unwrap()
    }

    #[test]
    fn duplicate_columns_rejected() {
        let r = Schema::new(vec![
            Column {
                name: "a".into(),
                ty: ColumnType::Int,
            },
            Column {
                name: "A".into(),
                ty: ColumnType::Float,
            },
        ]);
        assert!(matches!(r, Err(DbError::DuplicateColumn(_))));
    }

    #[test]
    fn insert_and_coerce() {
        let mut t = Table::new(schema());
        t.insert(vec![
            Value::Int(1),
            Value::Int(100),
            Value::Text("cam".into()),
        ])
        .unwrap();
        assert_eq!(t.row(0)[1], Value::Float(100.0)); // INT coerced
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn arity_and_type_errors() {
        let mut t = Table::new(schema());
        assert!(matches!(
            t.insert(vec![Value::Int(1)]),
            Err(DbError::ArityMismatch { .. })
        ));
        assert!(matches!(
            t.insert(vec![
                Value::Text("x".into()),
                Value::Float(1.0),
                Value::Null
            ]),
            Err(DbError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn lookup_case_insensitive() {
        let s = schema();
        assert_eq!(s.index_of("PRICE"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert_eq!(s.numeric_columns(), vec![0, 1]);
    }

    #[test]
    fn update_cell_typechecks() {
        let mut t = Table::new(schema());
        t.insert(vec![Value::Int(1), Value::Float(2.0), Value::Null])
            .unwrap();
        t.update_cell(0, 1, Value::Float(9.0)).unwrap();
        assert_eq!(t.row(0)[1], Value::Float(9.0));
        assert!(t.update_cell(0, 0, Value::Text("no".into())).is_err());
    }
}
