//! Shared result encoder: the single place where [`Outcome`],
//! [`QueryResult`], and [`DbError`] become user-visible text.
//!
//! Two renderings, one source of truth:
//!
//! - **Aligned text** ([`outcome_text`] / [`result_text`]) — what the REPL
//!   and the examples print. Floats use the fixed `{:.4}` cell format so
//!   tables stay column-stable.
//! - **Line JSON** ([`outcome_json`] / [`error_json`]) — the `iq-server`
//!   wire format: exactly one `\n`-free line per response, hand-rolled
//!   (no serde; see the offline compat policy in `crates/compat`). Floats
//!   use Rust's shortest round-trip formatting so a value is byte-identical
//!   however many times it is rendered — the serving layer's determinism
//!   tests compare whole response lines.
//!
//! Keeping both behind one module is what lets the REPL and the server
//! never drift: a new [`Outcome`] variant fails to compile here, not
//! silently render differently in two places.

use crate::exec::QueryResult;
use crate::session::Outcome;
use crate::value::Value;
use crate::DbError;
use std::fmt::Write as _;

/// Renders a result set as an aligned ASCII table (REPL/examples view).
pub fn result_text(result: &QueryResult) -> String {
    let mut widths: Vec<usize> = result.columns.iter().map(|c| c.len()).collect();
    let rendered: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|r| {
            r.iter()
                .enumerate()
                .map(|(i, v)| {
                    let s = text_cell(v);
                    widths[i] = widths[i].max(s.len());
                    s
                })
                .collect()
        })
        .collect();
    let mut out = String::new();
    let header: Vec<String> = result
        .columns
        .iter()
        .enumerate()
        .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
        .collect();
    out.push_str(&header.join(" | "));
    out.push('\n');
    out.push_str(
        &widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("-+-"),
    );
    out.push('\n');
    for r in rendered {
        let line: Vec<String> = r
            .iter()
            .enumerate()
            .map(|(i, s)| format!("{:width$}", s, width = widths[i]))
            .collect();
        out.push_str(&line.join(" | "));
        out.push('\n');
    }
    out
}

/// One cell of the text rendering. Floats are fixed-width (`{:.4}`) so
/// columns align; everything else uses the value's `Display`.
fn text_cell(v: &Value) -> String {
    match v {
        Value::Float(f) => format!("{f:.4}"),
        other => other.to_string(),
    }
}

/// Renders an execution outcome as the REPL's human-readable text.
/// Row-bearing outcomes become a multi-line aligned table; everything else
/// is a single status line.
pub fn outcome_text(outcome: &Outcome) -> String {
    match outcome {
        Outcome::Created(name) => format!("created table {name}"),
        Outcome::Inserted(n) => format!("inserted {n} row(s)"),
        Outcome::Copied(n) => format!("copied {n} row(s)"),
        Outcome::Updated(n) => format!("updated {n} row(s)"),
        Outcome::Deleted(n) => format!("deleted {n} row(s)"),
        Outcome::Dropped(name) => format!("dropped table {name}"),
        Outcome::Rows(r) => result_text(r),
        Outcome::Checkpointed {
            generation,
            wal_truncated,
        } => format!(
            "checkpointed to generation {generation} ({wal_truncated} wal record(s) truncated)"
        ),
    }
}

/// Renders an execution outcome as one line of JSON — the server's
/// success response. Shapes:
///
/// ```text
/// {"ok":true,"outcome":"rows","columns":["id"],"rows":[[1]]}
/// {"ok":true,"outcome":"created","table":"t"}
/// {"ok":true,"outcome":"inserted","count":3}      (copied/updated/deleted alike)
/// ```
pub fn outcome_json(outcome: &Outcome) -> String {
    let mut out = String::from("{\"ok\":true,\"outcome\":");
    match outcome {
        Outcome::Created(name) => {
            out.push_str("\"created\",\"table\":");
            json_string(&mut out, name);
        }
        Outcome::Dropped(name) => {
            out.push_str("\"dropped\",\"table\":");
            json_string(&mut out, name);
        }
        Outcome::Inserted(n) => {
            let _ = write!(out, "\"inserted\",\"count\":{n}");
        }
        Outcome::Copied(n) => {
            let _ = write!(out, "\"copied\",\"count\":{n}");
        }
        Outcome::Updated(n) => {
            let _ = write!(out, "\"updated\",\"count\":{n}");
        }
        Outcome::Deleted(n) => {
            let _ = write!(out, "\"deleted\",\"count\":{n}");
        }
        Outcome::Rows(r) => {
            out.push_str("\"rows\",\"columns\":[");
            for (i, c) in r.columns.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json_string(&mut out, c);
            }
            out.push_str("],\"rows\":[");
            for (i, row) in r.rows.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('[');
                for (j, v) in row.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    json_value(&mut out, v);
                }
                out.push(']');
            }
            out.push(']');
        }
        Outcome::Checkpointed {
            generation,
            wal_truncated,
        } => {
            let _ = write!(
                out,
                "\"checkpointed\",\"generation\":{generation},\"wal_truncated\":{wal_truncated}"
            );
        }
    }
    out.push('}');
    out
}

/// Renders one [`Value`] as a SQL literal that re-parses to the same
/// value. Floats keep Rust's shortest round-trip digits but always carry
/// a `.` so they re-lex as floats (`-0.0` must not collapse to the
/// integer `0`); quotes in TEXT are doubled per standard SQL. Non-finite
/// floats have no literal spelling and degrade to NULL — they cannot be
/// produced through the SQL surface in the first place.
pub fn sql_literal(v: &Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::Float(f) if f.is_finite() => {
            let s = format!("{f}");
            if s.contains('.') {
                s
            } else {
                format!("{s}.0")
            }
        }
        Value::Float(_) => "NULL".to_string(),
        Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
        Value::Bool(true) => "TRUE".to_string(),
        Value::Bool(false) => "FALSE".to_string(),
        Value::Null => "NULL".to_string(),
    }
}

/// Serializes a session's entire table state as SQL statements — the
/// storage layer's snapshot encoding (DESIGN.md §12). Tables appear in
/// sorted name order as one CREATE TABLE followed by INSERTs batched
/// `rows_per_insert` at a time, so replaying the statements through a
/// fresh [`Session`] reproduces the state exactly (INT literals coerce
/// back to FLOAT cells on insert, per [`crate::Table::insert`]).
pub fn snapshot_sql(session: &crate::Session, rows_per_insert: usize) -> Vec<String> {
    let rows_per_insert = rows_per_insert.max(1);
    let mut out = Vec::new();
    for name in session.table_names() {
        let table = session.table(name).expect("listed table exists");
        let cols: Vec<String> = table
            .schema
            .columns()
            .iter()
            .map(|c| format!("{} {}", c.name, c.ty))
            .collect();
        out.push(format!("CREATE TABLE {name} ({})", cols.join(", ")));
        for chunk in table.rows().chunks(rows_per_insert) {
            let tuples: Vec<String> = chunk
                .iter()
                .map(|row| {
                    let cells: Vec<String> = row.iter().map(sql_literal).collect();
                    format!("({})", cells.join(", "))
                })
                .collect();
            out.push(format!("INSERT INTO {name} VALUES {}", tuples.join(", ")));
        }
    }
    out
}

/// Renders an error as one line of JSON — the server's failure response:
/// `{"ok":false,"kind":"<kind>","error":"<message>"}`, plus an `"offset"`
/// field for positioned syntax errors so the byte offset survives the wire
/// (clients can point at the offending character of the SQL they sent).
pub fn error_json(err: &DbError) -> String {
    let kind = match err {
        DbError::Parse(_) => "parse",
        DbError::SyntaxAt { .. } => "syntax",
        DbError::Unsupported(_) => "unsupported",
        DbError::TableExists(_) => "table_exists",
        DbError::UnknownTable(_) => "unknown_table",
        DbError::UnknownColumn(_) => "unknown_column",
        DbError::DuplicateColumn(_) => "duplicate_column",
        DbError::ArityMismatch { .. } => "arity",
        DbError::TypeMismatch { .. } => "type",
        DbError::Improve(_) => "improve",
        DbError::Storage(_) => "storage",
    };
    let mut out = String::from("{\"ok\":false,\"kind\":");
    json_string(&mut out, kind);
    if let DbError::SyntaxAt { offset, .. } = err {
        let _ = write!(out, ",\"offset\":{offset}");
    }
    out.push_str(",\"error\":");
    json_string(&mut out, &err.to_string());
    out.push('}');
    out
}

/// Appends a JSON string literal (quoted, escaped) to `out`.
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends one cell as a JSON value. Floats use Rust's shortest
/// round-trip `Display` (so `1.0` renders as `1`, deterministically);
/// non-finite floats have no JSON spelling and become `null`.
fn json_value(out: &mut String, v: &Value) {
    match v {
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(f) if f.is_finite() => {
            let _ = write!(out, "{f}");
        }
        Value::Float(_) => out.push_str("null"),
        Value::Text(s) => json_string(out, s),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Null => out.push_str("null"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_rows() -> Outcome {
        Outcome::Rows(QueryResult {
            columns: vec!["id".into(), "price".into(), "name".into()],
            rows: vec![
                vec![Value::Int(1), Value::Float(0.5), Value::Text("a\"b".into())],
                vec![Value::Int(2), Value::Float(1.0), Value::Null],
            ],
        })
    }

    #[test]
    fn text_table_is_aligned() {
        let text = outcome_text(&sample_rows());
        assert!(text.contains("0.5000"), "{text}");
        let widths: Vec<usize> = text.lines().map(str::len).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{text}");
    }

    #[test]
    fn status_outcomes_render_as_single_lines() {
        assert_eq!(
            outcome_text(&Outcome::Created("t".into())),
            "created table t"
        );
        assert_eq!(outcome_text(&Outcome::Inserted(3)), "inserted 3 row(s)");
        assert_eq!(outcome_text(&Outcome::Deleted(0)), "deleted 0 row(s)");
    }

    #[test]
    fn rows_json_shape_and_escaping() {
        let json = outcome_json(&sample_rows());
        assert_eq!(
            json,
            "{\"ok\":true,\"outcome\":\"rows\",\
             \"columns\":[\"id\",\"price\",\"name\"],\
             \"rows\":[[1,0.5,\"a\\\"b\"],[2,1,null]]}"
        );
        assert!(!json.contains('\n'));
    }

    #[test]
    fn status_json_shapes() {
        assert_eq!(
            outcome_json(&Outcome::Created("t".into())),
            "{\"ok\":true,\"outcome\":\"created\",\"table\":\"t\"}"
        );
        assert_eq!(
            outcome_json(&Outcome::Updated(7)),
            "{\"ok\":true,\"outcome\":\"updated\",\"count\":7}"
        );
    }

    #[test]
    fn error_json_carries_kind_and_offset() {
        let err = DbError::SyntaxAt {
            offset: 28,
            message: "unexpected character `~`".into(),
        };
        let json = error_json(&err);
        assert!(json.starts_with("{\"ok\":false,\"kind\":\"syntax\",\"offset\":28,"));
        assert!(json.contains("unexpected character"));
        let json = error_json(&DbError::UnknownTable("nope".into()));
        assert!(json.contains("\"kind\":\"unknown_table\""));
        assert!(!json.contains("offset"));
        let json = error_json(&DbError::Unsupported("SHUTDOWN".into()));
        assert!(json.contains("\"kind\":\"unsupported\""));
    }

    #[test]
    fn json_escapes_control_characters() {
        let mut s = String::new();
        json_string(&mut s, "a\nb\t\\\"\u{1}");
        assert_eq!(s, "\"a\\nb\\t\\\\\\\"\\u0001\"");
    }

    #[test]
    fn checkpointed_outcome_renders() {
        let o = Outcome::Checkpointed {
            generation: 3,
            wal_truncated: 17,
        };
        assert_eq!(
            outcome_text(&o),
            "checkpointed to generation 3 (17 wal record(s) truncated)"
        );
        assert_eq!(
            outcome_json(&o),
            "{\"ok\":true,\"outcome\":\"checkpointed\",\"generation\":3,\"wal_truncated\":17}"
        );
    }

    #[test]
    fn sql_literals_reparse_to_the_same_value() {
        use crate::parser::{parse, Statement};
        let cases = vec![
            Value::Int(-42),
            Value::Float(0.5),
            Value::Float(1.0),
            Value::Float(-0.0),
            Value::Float(0.1 + 0.2),
            Value::Text("plain".into()),
            Value::Text("it's got 'quotes'".into()),
            Value::Text(String::new()),
            Value::Bool(true),
            Value::Bool(false),
            Value::Null,
        ];
        let literals: Vec<String> = cases.iter().map(sql_literal).collect();
        let sql = format!("INSERT INTO t VALUES ({})", literals.join(", "));
        match parse(&sql).unwrap() {
            Statement::Insert { rows, .. } => {
                for (orig, parsed) in cases.iter().zip(&rows[0]) {
                    assert_eq!(orig, parsed, "literal {}", sql_literal(orig));
                    // Bit-exact for floats: -0.0 must stay -0.0.
                    if let (Value::Float(a), Value::Float(b)) = (orig, parsed) {
                        assert_eq!(a.to_bits(), b.to_bits());
                    }
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn snapshot_sql_round_trips_session_state() {
        let mut s = crate::Session::new();
        s.execute("CREATE TABLE cams (id INT, price FLOAT, name TEXT, hot BOOL)")
            .unwrap();
        s.execute(
            "INSERT INTO cams VALUES (1, 0.5, 'a''b', TRUE), (2, 7.0, NULL, FALSE), (3, -0.0, '', TRUE)",
        )
        .unwrap();
        s.execute("CREATE TABLE prefs (w1 FLOAT, k INT)").unwrap();
        s.execute("INSERT INTO prefs VALUES (0.25, 1), (0.75, 2), (0.5, 3)")
            .unwrap();

        // Batch size 2 forces multiple INSERTs per table.
        let stmts = snapshot_sql(&s, 2);
        let mut replayed = crate::Session::new();
        for stmt in &stmts {
            replayed.execute(stmt).unwrap();
        }
        assert_eq!(replayed.table_names(), s.table_names());
        let names: Vec<String> = s.table_names().iter().map(|n| n.to_string()).collect();
        for name in &names {
            let (a, b) = (s.table(name).unwrap(), replayed.table(name).unwrap());
            let (a, b) = (a.clone(), b.clone());
            assert_eq!(a.schema.columns(), b.schema.columns(), "{name}");
            assert_eq!(a.rows(), b.rows(), "{name}");
            // And byte-identical through the shared text encoder.
            let q = format!("SELECT * FROM {name}");
            assert_eq!(
                outcome_text(&s.execute(&q).unwrap()),
                outcome_text(&replayed.execute(&q).unwrap())
            );
        }
        // INT literals in a FLOAT column came back as floats (7.0 renders
        // as `7` but reparses into the FLOAT column).
        assert_eq!(
            replayed.table("cams").unwrap().rows()[1][1],
            Value::Float(7.0)
        );
    }

    #[test]
    fn float_rendering_is_shortest_roundtrip_in_json() {
        let mut s = String::new();
        json_value(&mut s, &Value::Float(0.1 + 0.2));
        assert_eq!(s, "0.30000000000000004");
        s.clear();
        json_value(&mut s, &Value::Float(f64::NAN));
        assert_eq!(s, "null");
    }
}
