//! CSV ingestion: the path for loading *actual* datasets (the
//! fueleconomy.gov VEHICLE extract, an IPUMS pull, a product catalogue)
//! into the analytic tool.
//!
//! The reader handles the RFC-4180 essentials — quoted fields, doubled
//! quotes, embedded commas and newlines, CRLF — and infers column types
//! from the data (`INT` ⊂ `FLOAT`; `BOOL` for true/false; everything else
//! `TEXT`; empty fields are `NULL` and never force a column to `TEXT`).

use crate::table::{Column, Schema, Table};
use crate::value::{ColumnType, Value};
use crate::DbError;

/// Splits CSV text into records of raw string fields.
///
/// Returns an error for unterminated quotes. A trailing newline does not
/// produce an empty trailing record.
pub fn parse_csv(text: &str) -> Result<Vec<Vec<String>>, DbError> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut any = false;

    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => field.push(other),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => {} // swallowed; the \n ends the record
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                other => field.push(other),
            }
        }
    }
    if in_quotes {
        return Err(DbError::Parse("unterminated quote in CSV".into()));
    }
    if any && (!field.is_empty() || !record.is_empty()) {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

fn classify(field: &str) -> Option<ColumnType> {
    let t = field.trim();
    if t.is_empty() {
        return None; // NULL: compatible with every column type
    }
    if t.parse::<i64>().is_ok() {
        return Some(ColumnType::Int);
    }
    if t.parse::<f64>().is_ok() {
        return Some(ColumnType::Float);
    }
    if t.eq_ignore_ascii_case("true") || t.eq_ignore_ascii_case("false") {
        return Some(ColumnType::Bool);
    }
    Some(ColumnType::Text)
}

fn widen(a: ColumnType, b: ColumnType) -> ColumnType {
    use ColumnType::*;
    match (a, b) {
        (Int, Int) => Int,
        (Int, Float) | (Float, Int) | (Float, Float) => Float,
        (Bool, Bool) => Bool,
        _ => Text,
    }
}

fn convert(field: &str, ty: ColumnType) -> Value {
    let t = field.trim();
    if t.is_empty() {
        return Value::Null;
    }
    match ty {
        ColumnType::Int => t.parse::<i64>().map(Value::Int).unwrap_or(Value::Null),
        ColumnType::Float => t.parse::<f64>().map(Value::Float).unwrap_or(Value::Null),
        ColumnType::Bool => Value::Bool(t.eq_ignore_ascii_case("true")),
        ColumnType::Text => Value::Text(field.to_string()),
    }
}

/// Builds a table from CSV text. With `has_header`, the first record names
/// the columns; otherwise columns are `c1, c2, …`. Types are inferred over
/// the whole file; ragged records are an error.
pub fn table_from_csv(text: &str, has_header: bool) -> Result<Table, DbError> {
    let mut records = parse_csv(text)?;
    if records.is_empty() {
        return Err(DbError::Parse("CSV has no records".into()));
    }
    let header: Vec<String> = if has_header {
        records.remove(0)
    } else {
        (1..=records[0].len()).map(|i| format!("c{i}")).collect()
    };
    let width = header.len();
    for (i, r) in records.iter().enumerate() {
        if r.len() != width {
            return Err(DbError::Parse(format!(
                "CSV record {} has {} fields, expected {width}",
                i + 1 + has_header as usize,
                r.len()
            )));
        }
    }
    // Infer per-column types.
    let mut types: Vec<Option<ColumnType>> = vec![None; width];
    for r in &records {
        for (slot, field) in types.iter_mut().zip(r) {
            if let Some(t) = classify(field) {
                *slot = Some(match *slot {
                    None => t,
                    Some(prev) => widen(prev, t),
                });
            }
        }
    }
    let schema = Schema::new(
        header
            .into_iter()
            .zip(&types)
            .map(|(name, ty)| Column {
                name,
                ty: ty.unwrap_or(ColumnType::Text),
            })
            .collect(),
    )?;
    let mut table = Table::new(schema);
    for r in &records {
        let row: Vec<Value> = r
            .iter()
            .zip(&types)
            .map(|(field, ty)| convert(field, ty.unwrap_or(ColumnType::Text)))
            .collect();
        table.insert(row)?;
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_parsing() {
        let recs = parse_csv("a,b,c\n1,2,3\n").unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0], vec!["a", "b", "c"]);
        assert_eq!(recs[1], vec!["1", "2", "3"]);
    }

    #[test]
    fn quotes_commas_newlines() {
        let recs = parse_csv("\"a,b\",\"line1\nline2\",\"he said \"\"hi\"\"\"\n").unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0][0], "a,b");
        assert_eq!(recs[0][1], "line1\nline2");
        assert_eq!(recs[0][2], "he said \"hi\"");
    }

    #[test]
    fn crlf_and_no_trailing_newline() {
        let recs = parse_csv("x,y\r\n1,2").unwrap();
        assert_eq!(recs, vec![vec!["x", "y"], vec!["1", "2"]]);
    }

    #[test]
    fn unterminated_quote_rejected() {
        assert!(parse_csv("\"oops\n").is_err());
    }

    #[test]
    fn type_inference() {
        let t = table_from_csv(
            "id,price,name,active\n1,9.5,cam,true\n2,10,led,false\n",
            true,
        )
        .unwrap();
        let tys: Vec<ColumnType> = t.schema.columns().iter().map(|c| c.ty).collect();
        assert_eq!(
            tys,
            vec![
                ColumnType::Int,
                ColumnType::Float,
                ColumnType::Text,
                ColumnType::Bool
            ]
        );
        assert_eq!(t.len(), 2);
        assert_eq!(t.row(0)[1], Value::Float(9.5));
        assert_eq!(t.row(1)[1], Value::Float(10.0)); // INT widened to FLOAT
        assert_eq!(t.row(0)[3], Value::Bool(true));
    }

    #[test]
    fn empty_fields_are_null_not_text() {
        let t = table_from_csv("a,b\n1,\n,2\n", true).unwrap();
        assert_eq!(t.schema.columns()[0].ty, ColumnType::Int);
        assert_eq!(t.schema.columns()[1].ty, ColumnType::Int);
        assert_eq!(t.row(0)[1], Value::Null);
        assert_eq!(t.row(1)[0], Value::Null);
    }

    #[test]
    fn headerless_gets_positional_names() {
        let t = table_from_csv("1,2\n3,4\n", false).unwrap();
        assert_eq!(t.schema.columns()[0].name, "c1");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn ragged_rejected() {
        assert!(table_from_csv("a,b\n1\n", true).is_err());
        assert!(table_from_csv("", true).is_err());
    }

    #[test]
    fn mixed_types_widen_to_text() {
        let t = table_from_csv("v\n1\nhello\n", true).unwrap();
        assert_eq!(t.schema.columns()[0].ty, ColumnType::Text);
        assert_eq!(t.row(0)[0], Value::Text("1".into()));
    }
}
