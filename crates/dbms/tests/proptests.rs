//! Property tests for the SQL engine: generated data round-trips through
//! INSERT/SELECT/UPDATE/DELETE exactly like a model table, and predicate
//! evaluation matches a direct interpretation.

use iq_dbms::{Outcome, Session, Value};
use proptest::prelude::*;

fn small_int() -> impl Strategy<Value = i64> {
    -20i64..20
}

fn float_val() -> impl Strategy<Value = f64> {
    (-40i32..40).prop_map(|x| x as f64 * 0.5)
}

fn fresh_session(rows: &[(i64, f64)]) -> Session {
    let mut s = Session::new();
    s.execute("CREATE TABLE t (id INT, x FLOAT)").unwrap();
    for &(id, x) in rows {
        s.execute(&format!("INSERT INTO t VALUES ({id}, {x:.6})"))
            .unwrap();
    }
    s
}

fn select_ids(s: &mut Session, sql: &str) -> Vec<i64> {
    match s.execute(sql).unwrap() {
        Outcome::Rows(r) => r
            .rows
            .iter()
            .map(|row| match row[0] {
                Value::Int(i) => i,
                ref other => panic!("{other:?}"),
            })
            .collect(),
        other => panic!("{other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn where_comparisons_match_model(
        rows in prop::collection::vec((small_int(), float_val()), 0..30),
        bound in float_val(),
    ) {
        let mut s = fresh_session(&rows);
        let got = select_ids(&mut s, &format!("SELECT id FROM t WHERE x < {bound:.6}"));
        let want: Vec<i64> = rows
            .iter()
            .filter(|&&(_, x)| x < bound)
            .map(|&(id, _)| id)
            .collect();
        prop_assert_eq!(got, want);
        let got = select_ids(&mut s, &format!("SELECT id FROM t WHERE x >= {bound:.6}"));
        let want: Vec<i64> = rows
            .iter()
            .filter(|&&(_, x)| x >= bound)
            .map(|&(id, _)| id)
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn order_by_sorts_and_limit_truncates(
        xs in prop::collection::vec(float_val(), 1..30),
        limit in 1usize..10,
    ) {
        // Unique ids (the row position) make the expected order exact: the
        // engine's sort is stable over insertion order.
        let rows: Vec<(i64, f64)> = xs.iter().enumerate().map(|(i, &x)| (i as i64, x)).collect();
        let mut s = fresh_session(&rows);
        let got = select_ids(&mut s, &format!("SELECT id FROM t ORDER BY x ASC LIMIT {limit}"));
        let mut want: Vec<(f64, i64)> = rows.iter().map(|&(id, x)| (x, id)).collect();
        want.sort_by(|a, b| a.0.total_cmp(&b.0));
        let want: Vec<i64> = want.into_iter().map(|(_, id)| id).take(limit).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn update_then_select_roundtrip(
        rows in prop::collection::vec((small_int(), float_val()), 1..20),
        pivot in small_int(),
        newval in float_val(),
    ) {
        let mut s = fresh_session(&rows);
        let updated = match s
            .execute(&format!("UPDATE t SET x = {newval:.6} WHERE id = {pivot}"))
            .unwrap()
        {
            Outcome::Updated(n) => n,
            other => panic!("{other:?}"),
        };
        let expect = rows.iter().filter(|&&(id, _)| id == pivot).count();
        prop_assert_eq!(updated, expect);
        // Every pivot row now carries newval.
        match s.execute(&format!("SELECT x FROM t WHERE id = {pivot}")).unwrap() {
            Outcome::Rows(r) => {
                for row in r.rows {
                    let x = row[0].as_f64().unwrap();
                    prop_assert!((x - newval).abs() < 1e-9);
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn delete_removes_exactly_the_matches(
        rows in prop::collection::vec((small_int(), float_val()), 0..25),
        bound in float_val(),
    ) {
        let mut s = fresh_session(&rows);
        let deleted = match s
            .execute(&format!("DELETE FROM t WHERE x > {bound:.6}"))
            .unwrap()
        {
            Outcome::Deleted(n) => n,
            other => panic!("{other:?}"),
        };
        let expect_deleted = rows.iter().filter(|&&(_, x)| x > bound).count();
        prop_assert_eq!(deleted, expect_deleted);
        let left = select_ids(&mut s, "SELECT id FROM t");
        let want: Vec<i64> = rows
            .iter()
            .filter(|&&(_, x)| x <= bound)
            .map(|&(id, _)| id)
            .collect();
        prop_assert_eq!(left, want);
    }
}
