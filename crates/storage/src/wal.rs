//! The append-only write-ahead log: length-prefixed, CRC-checksummed
//! records, one per committed write statement, in commit order.
//!
//! File layout:
//!
//! ```text
//! [8-byte magic "IQWAL01\n"] [record]*
//! record := [payload_len: u32 LE] [crc32(payload): u32 LE] [payload bytes]
//! ```
//!
//! The payload is the committed SQL statement, UTF-8. Appends are
//! buffered only by the OS — every record is `write_all`'d whole — and
//! made durable per the configured [`FsyncMode`]: `always` syncs each
//! append (group-commit durability per statement), `batch` syncs when
//! either a record count or an elapsed-time threshold is crossed, `never`
//! leaves durability to the OS (crash may lose the unsynced tail; what
//! survives is still a valid prefix).
//!
//! **Torn-write policy.** A crash can leave a partial record at the tail:
//! a truncated length prefix, a truncated CRC/payload, or a payload whose
//! CRC does not match (torn sector). Replay stops at the first invalid
//! boundary and reports its byte offset; recovery truncates the file
//! there and appends after it. Everything before that boundary is intact
//! by CRC, so the surviving log is always a *prefix* of commit order —
//! never a subsequence with holes.

use crate::crc32::crc32;
use crate::{FsyncMode, StorageError};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// The 8-byte file magic.
pub const MAGIC: &[u8; 8] = b"IQWAL01\n";

/// Per-record framing overhead: 4-byte length + 4-byte CRC.
pub const RECORD_HEADER: usize = 8;

/// Records larger than this are treated as corruption, not allocated —
/// a torn length prefix can otherwise read as a multi-gigabyte "record".
pub const MAX_RECORD: usize = 1 << 28;

/// Appends one framed record to `out`.
pub fn encode_record(payload: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Why decoding stopped before the end of the buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Damage {
    /// Fewer than 8 header bytes remain — a torn length/CRC prefix.
    TruncatedHeader {
        /// Header bytes actually present.
        have: usize,
    },
    /// The length prefix promises more payload bytes than the file holds.
    TruncatedPayload {
        /// Bytes the length prefix promised.
        need: usize,
        /// Bytes actually present.
        have: usize,
    },
    /// The payload is fully present but its CRC does not match.
    ChecksumMismatch {
        /// CRC stored in the record header.
        stored: u32,
        /// CRC computed over the payload bytes.
        computed: u32,
    },
    /// The length prefix exceeds [`MAX_RECORD`] — treated as corruption.
    OversizedLength {
        /// The claimed payload length.
        len: usize,
    },
    /// The payload is not valid UTF-8 (statements are always UTF-8).
    InvalidUtf8,
}

impl std::fmt::Display for Damage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Damage::TruncatedHeader { have } => {
                write!(
                    f,
                    "truncated record header ({have} of {RECORD_HEADER} bytes)"
                )
            }
            Damage::TruncatedPayload { need, have } => {
                write!(f, "truncated payload ({have} of {need} bytes)")
            }
            Damage::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "crc mismatch (stored {stored:#010x}, computed {computed:#010x})"
                )
            }
            Damage::OversizedLength { len } => {
                write!(f, "implausible record length {len} (cap {MAX_RECORD})")
            }
            Damage::InvalidUtf8 => write!(f, "payload is not valid UTF-8"),
        }
    }
}

/// The outcome of decoding one record at `offset`.
#[derive(Debug, PartialEq, Eq)]
pub enum Decoded<'a> {
    /// A valid record; `next` is the offset just past it.
    Record {
        /// The record payload.
        payload: &'a [u8],
        /// Offset of the next record.
        next: usize,
    },
    /// `offset` is exactly the end of the buffer — a clean end of log.
    End,
    /// The bytes at `offset` are not a valid record.
    Damaged(Damage),
}

/// Decodes the record starting at `offset` in `buf`.
pub fn decode_record(buf: &[u8], offset: usize) -> Decoded<'_> {
    let rest = &buf[offset.min(buf.len())..];
    if rest.is_empty() {
        return Decoded::End;
    }
    if rest.len() < RECORD_HEADER {
        return Decoded::Damaged(Damage::TruncatedHeader { have: rest.len() });
    }
    let len = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
    if len > MAX_RECORD {
        return Decoded::Damaged(Damage::OversizedLength { len });
    }
    let stored = u32::from_le_bytes(rest[4..8].try_into().unwrap());
    let body = &rest[RECORD_HEADER..];
    if body.len() < len {
        return Decoded::Damaged(Damage::TruncatedPayload {
            need: len,
            have: body.len(),
        });
    }
    let payload = &body[..len];
    let computed = crc32(payload);
    if computed != stored {
        return Decoded::Damaged(Damage::ChecksumMismatch { stored, computed });
    }
    Decoded::Record {
        payload,
        next: offset + RECORD_HEADER + len,
    }
}

/// Damage found during replay, pinned to the byte offset where the first
/// invalid record starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayDamage {
    /// Byte offset (from the start of the file) of the invalid record.
    pub offset: u64,
    /// What is wrong there.
    pub damage: Damage,
}

impl std::fmt::Display for ReplayDamage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.damage, self.offset)
    }
}

/// The result of replaying a WAL file tolerantly.
#[derive(Debug)]
pub struct WalReplay {
    /// Decoded statements, in commit order — the longest valid prefix.
    pub entries: Vec<String>,
    /// Byte length of that prefix (including the magic); the recovery
    /// truncation point.
    pub valid_len: u64,
    /// The damage that ended replay, if the file did not end cleanly.
    pub damage: Option<ReplayDamage>,
}

/// Replays `path` tolerantly: decodes records until the first invalid
/// boundary, reporting (not failing on) a torn tail. A file shorter than
/// the magic is treated as a torn creation (empty log, `valid_len` 0); a
/// full-length magic that does not match is a hard error — the file is
/// not ours to truncate.
pub fn replay_file(path: &Path) -> Result<WalReplay, StorageError> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| StorageError::io(format!("read wal `{}`", path.display()), e))?;
    if bytes.len() < MAGIC.len() {
        return Ok(WalReplay {
            entries: Vec::new(),
            valid_len: 0,
            damage: (!bytes.is_empty()).then_some(ReplayDamage {
                offset: 0,
                damage: Damage::TruncatedHeader { have: bytes.len() },
            }),
        });
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(StorageError::BadMagic {
            path: path.to_path_buf(),
        });
    }
    let mut entries = Vec::new();
    let mut offset = MAGIC.len();
    loop {
        match decode_record(&bytes, offset) {
            Decoded::End => {
                return Ok(WalReplay {
                    entries,
                    valid_len: offset as u64,
                    damage: None,
                })
            }
            Decoded::Record { payload, next } => match std::str::from_utf8(payload) {
                Ok(s) => {
                    entries.push(s.to_string());
                    offset = next;
                }
                Err(_) => {
                    return Ok(WalReplay {
                        entries,
                        valid_len: offset as u64,
                        damage: Some(ReplayDamage {
                            offset: offset as u64,
                            damage: Damage::InvalidUtf8,
                        }),
                    })
                }
            },
            Decoded::Damaged(damage) => {
                return Ok(WalReplay {
                    entries,
                    valid_len: offset as u64,
                    damage: Some(ReplayDamage {
                        offset: offset as u64,
                        damage,
                    }),
                })
            }
        }
    }
}

/// An open, appendable WAL file.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    mode: FsyncMode,
    /// Current file length in bytes (magic included).
    pub bytes: u64,
    /// Records currently in the file.
    pub entries: u64,
    /// Appends since open (equals `entries` unless opened on an
    /// existing log).
    pub appends: u64,
    /// `fsync` calls issued.
    pub syncs: u64,
    pending: u64,
    last_sync: Instant,
}

impl Wal {
    /// Creates a fresh, empty WAL at `path` (truncating any existing
    /// file), writes and syncs the magic.
    // Wall-clock here is fsync batch pacing only — it never reaches data
    // (clippy.toml disallowed-methods; iq-lint wallclock-in-core allow).
    #[allow(clippy::disallowed_methods)]
    pub fn create(path: &Path, mode: FsyncMode) -> Result<Wal, StorageError> {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)
            .map_err(|e| StorageError::io(format!("create wal `{}`", path.display()), e))?;
        file.write_all(MAGIC)
            .and_then(|()| file.sync_data())
            .map_err(|e| StorageError::io(format!("init wal `{}`", path.display()), e))?;
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            mode,
            bytes: MAGIC.len() as u64,
            entries: 0,
            appends: 0,
            syncs: 1,
            pending: 0,
            last_sync: Instant::now(), // iq-lint: allow(wallclock-in-core, reason = "fsync batch deadline is I/O pacing, never data")
        })
    }

    /// Opens `path` for appending, replaying it tolerantly first. A torn
    /// tail is truncated at the last valid record boundary (per the
    /// torn-write policy); a missing or torn-before-magic file is
    /// (re)initialized empty. Returns the open log and the replay.
    // Wall-clock here is fsync batch pacing only — it never reaches data
    // (clippy.toml disallowed-methods; iq-lint wallclock-in-core allow).
    #[allow(clippy::disallowed_methods)]
    pub fn open(path: &Path, mode: FsyncMode) -> Result<(Wal, WalReplay), StorageError> {
        if !path.exists() {
            let wal = Wal::create(path, mode)?;
            return Ok((
                wal,
                WalReplay {
                    entries: Vec::new(),
                    valid_len: MAGIC.len() as u64,
                    damage: None,
                },
            ));
        }
        let replay = replay_file(path)?;
        if replay.valid_len < MAGIC.len() as u64 {
            // Torn during creation: nothing valid, start over.
            let wal = Wal::create(path, mode)?;
            return Ok((wal, replay));
        }
        let mut file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| StorageError::io(format!("open wal `{}`", path.display()), e))?;
        file.set_len(replay.valid_len)
            .and_then(|()| file.seek(SeekFrom::End(0)))
            .and_then(|_| file.sync_data())
            .map_err(|e| StorageError::io(format!("truncate wal `{}`", path.display()), e))?;
        let wal = Wal {
            file,
            path: path.to_path_buf(),
            mode,
            bytes: replay.valid_len,
            entries: replay.entries.len() as u64,
            appends: 0,
            syncs: 1,
            pending: 0,
            last_sync: Instant::now(), // iq-lint: allow(wallclock-in-core, reason = "fsync batch deadline is I/O pacing, never data")
        };
        Ok((wal, replay))
    }

    /// Appends one statement, then applies the fsync discipline. Returns
    /// whether this append issued an fsync (group-commit accounting).
    pub fn append(&mut self, statement: &str) -> Result<bool, StorageError> {
        let mut buf = Vec::with_capacity(RECORD_HEADER + statement.len());
        encode_record(statement.as_bytes(), &mut buf);
        // Record-boundary witness: the bytes about to hit disk must decode
        // back to exactly this payload with the cursor landing on the
        // buffer end, or recovery would misparse every later record.
        #[cfg(feature = "debug-invariants")]
        match decode_record(&buf, 0) {
            Decoded::Record { payload, next }
                if payload == statement.as_bytes() && next == buf.len() => {}
            other => {
                // iq-lint: allow(panic-in-hot-path, reason = "debug-invariants sanitizer is opt-in and must abort on corruption")
                panic!("debug-invariants: encoded WAL record fails round-trip decode: {other:?}")
            }
        }
        self.file
            .write_all(&buf)
            .map_err(|e| StorageError::io(format!("append wal `{}`", self.path.display()), e))?;
        self.bytes += buf.len() as u64;
        self.entries += 1;
        self.appends += 1;
        self.pending += 1;
        let should_sync = match self.mode {
            FsyncMode::Always => true,
            FsyncMode::Never => false,
            FsyncMode::Batch { every, interval } => {
                self.pending >= every || self.last_sync.elapsed() >= interval
            }
        };
        if should_sync {
            self.sync()?;
        }
        Ok(should_sync)
    }

    /// Forces an fsync of everything appended so far.
    // Wall-clock here is fsync batch pacing only — it never reaches data
    // (clippy.toml disallowed-methods; iq-lint wallclock-in-core allow).
    #[allow(clippy::disallowed_methods)]
    pub fn sync(&mut self) -> Result<(), StorageError> {
        self.file
            .sync_data()
            .map_err(|e| StorageError::io(format!("sync wal `{}`", self.path.display()), e))?;
        self.pending = 0;
        self.syncs += 1;
        self.last_sync = Instant::now(); // iq-lint: allow(wallclock-in-core, reason = "fsync batch deadline is I/O pacing, never data")
        Ok(())
    }

    /// The file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for Wal {
    /// Best-effort flush of a batched tail on clean shutdown; crash
    /// durability is the fsync discipline's business, not Drop's.
    fn drop(&mut self) {
        if self.pending > 0 {
            let _ = self.file.sync_data();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("iq_wal_unit_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn append_replay_round_trip() {
        let path = tmp("round_trip.log");
        let stmts = [
            "CREATE TABLE t (a INT)",
            "INSERT INTO t VALUES (1)",
            "DELETE FROM t",
        ];
        {
            let mut wal = Wal::create(&path, FsyncMode::Always).unwrap();
            for s in &stmts {
                wal.append(s).unwrap();
            }
            assert_eq!(wal.entries, 3);
            assert_eq!(wal.syncs, 4, "magic + one per append");
        }
        let replay = replay_file(&path).unwrap();
        assert_eq!(replay.entries, stmts);
        assert!(replay.damage.is_none());
        assert_eq!(replay.valid_len, std::fs::metadata(&path).unwrap().len());
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let path = tmp("torn.log");
        {
            let mut wal = Wal::create(&path, FsyncMode::Never).unwrap();
            wal.append("INSERT INTO t VALUES (1)").unwrap();
            wal.append("INSERT INTO t VALUES (2)").unwrap();
        }
        let full = std::fs::metadata(&path).unwrap().len();
        // Chop 3 bytes off the final record's payload.
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 3).unwrap();
        drop(f);

        let (wal, replay) = Wal::open(&path, FsyncMode::Always).unwrap();
        assert_eq!(replay.entries, vec!["INSERT INTO t VALUES (1)"]);
        let damage = replay.damage.expect("torn tail reported");
        assert!(matches!(damage.damage, Damage::TruncatedPayload { .. }));
        assert_eq!(damage.offset, replay.valid_len, "damage starts at the cut");
        assert_eq!(wal.bytes, replay.valid_len);
        drop(wal);
        // After the truncating open, the file replays cleanly.
        let again = replay_file(&path).unwrap();
        assert!(again.damage.is_none());
        assert_eq!(again.entries.len(), 1);
    }

    #[test]
    fn batch_mode_groups_syncs() {
        let path = tmp("batch.log");
        let mut wal = Wal::create(
            &path,
            FsyncMode::Batch {
                every: 4,
                interval: std::time::Duration::from_secs(3600),
            },
        )
        .unwrap();
        let mut synced = 0;
        for i in 0..8 {
            if wal.append(&format!("INSERT INTO t VALUES ({i})")).unwrap() {
                synced += 1;
            }
        }
        assert_eq!(synced, 2, "4-record groups");
        assert_eq!(wal.syncs, 3, "magic + two groups");
    }

    #[test]
    fn wrong_magic_is_a_hard_error() {
        let path = tmp("not_a_wal.log");
        std::fs::write(&path, b"PLAINTXT-and-then-some").unwrap();
        assert!(matches!(
            replay_file(&path),
            Err(StorageError::BadMagic { .. })
        ));
    }

    #[test]
    fn short_file_is_a_torn_creation() {
        let path = tmp("short.log");
        std::fs::write(&path, &MAGIC[..3]).unwrap();
        let (wal, replay) = Wal::open(&path, FsyncMode::Always).unwrap();
        assert!(replay.entries.is_empty());
        assert!(replay.damage.is_some());
        assert_eq!(wal.entries, 0);
        drop(wal);
        assert_eq!(
            std::fs::read(&path).unwrap()[..8],
            MAGIC[..],
            "reinitialized"
        );
    }
}
