//! Checkpoint snapshots: the engine's table state serialized as SQL
//! statements, written atomically.
//!
//! A snapshot reuses the WAL record framing (`[len][crc][payload]`) under
//! its own magic, with one extra leading record — a header naming the
//! statement count — so a torn or partial snapshot is *detectably*
//! incomplete rather than silently short. Unlike the WAL, a snapshot is
//! all-or-nothing: any damage invalidates the whole file and recovery
//! falls back to an older generation (or the bare WAL).
//!
//! Atomicity: the snapshot is written to `<path>.tmp`, fsynced, renamed
//! over the final path, and the directory is fsynced — a crash at any
//! point leaves either no snapshot at this generation or a complete one.

use crate::wal::{decode_record, encode_record, Decoded};
use crate::StorageError;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

/// The 8-byte snapshot file magic.
pub const MAGIC: &[u8; 8] = b"IQSNAP1\n";

fn invalid(path: &Path, reason: impl Into<String>) -> StorageError {
    StorageError::SnapshotInvalid {
        path: path.to_path_buf(),
        reason: reason.into(),
    }
}

/// Writes `statements` atomically to `path` (tmp + rename + dir fsync).
pub fn write_snapshot(path: &Path, statements: &[String]) -> Result<(), StorageError> {
    let tmp = path.with_extension("tmp");
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC);
    encode_record(format!("count={}", statements.len()).as_bytes(), &mut buf);
    for s in statements {
        encode_record(s.as_bytes(), &mut buf);
    }
    let mut file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(&tmp)
        .map_err(|e| StorageError::io(format!("create snapshot tmp `{}`", tmp.display()), e))?;
    file.write_all(&buf)
        .and_then(|()| file.sync_all())
        .map_err(|e| StorageError::io(format!("write snapshot `{}`", tmp.display()), e))?;
    drop(file);
    std::fs::rename(&tmp, path).map_err(|e| {
        StorageError::io(
            format!(
                "rename snapshot `{}` -> `{}`",
                tmp.display(),
                path.display()
            ),
            e,
        )
    })?;
    sync_dir(path.parent().unwrap_or_else(|| Path::new(".")))?;
    Ok(())
}

/// Loads a snapshot strictly: any framing damage, count mismatch, or
/// non-UTF-8 payload invalidates the file.
pub fn load_snapshot(path: &Path) -> Result<Vec<String>, StorageError> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| StorageError::io(format!("read snapshot `{}`", path.display()), e))?;
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Err(invalid(path, "bad or truncated magic"));
    }
    let mut offset = MAGIC.len();
    let mut records: Vec<String> = Vec::new();
    loop {
        match decode_record(&bytes, offset) {
            Decoded::End => break,
            Decoded::Record { payload, next } => {
                let s = std::str::from_utf8(payload)
                    .map_err(|_| invalid(path, format!("non-UTF-8 record at byte {offset}")))?;
                records.push(s.to_string());
                offset = next;
            }
            Decoded::Damaged(d) => return Err(invalid(path, format!("{d} at byte {offset}"))),
        }
    }
    let header = records
        .first()
        .ok_or_else(|| invalid(path, "missing count header"))?;
    let count: usize = header
        .strip_prefix("count=")
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| invalid(path, format!("malformed count header `{header}`")))?;
    if records.len() - 1 != count {
        return Err(invalid(
            path,
            format!(
                "statement count mismatch: header says {count}, file has {}",
                records.len() - 1
            ),
        ));
    }
    records.remove(0);
    Ok(records)
}

/// Fsyncs a directory so a just-renamed/created entry is durable.
pub fn sync_dir(dir: &Path) -> Result<(), StorageError> {
    File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(|e| StorageError::io(format!("sync dir `{}`", dir.display()), e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("iq_snap_unit_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn write_load_round_trip() {
        let path = tmp("rt.iqsnap");
        let stmts = vec![
            "CREATE TABLE t (a INT, b FLOAT)".to_string(),
            "INSERT INTO t VALUES (1, 2.5), (2, 3.5)".to_string(),
        ];
        write_snapshot(&path, &stmts).unwrap();
        assert_eq!(load_snapshot(&path).unwrap(), stmts);
        assert!(
            !path.with_extension("tmp").exists(),
            "tmp cleaned by rename"
        );
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let path = tmp("empty.iqsnap");
        write_snapshot(&path, &[]).unwrap();
        assert!(load_snapshot(&path).unwrap().is_empty());
    }

    #[test]
    fn truncated_snapshot_is_invalid() {
        let path = tmp("trunc.iqsnap");
        write_snapshot(&path, &["CREATE TABLE t (a INT)".to_string()]).unwrap();
        let full = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 2).unwrap();
        drop(f);
        assert!(matches!(
            load_snapshot(&path),
            Err(StorageError::SnapshotInvalid { .. })
        ));
    }

    #[test]
    fn count_mismatch_is_invalid() {
        let path = tmp("count.iqsnap");
        // Hand-build a snapshot whose header over-promises.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        encode_record(b"count=2", &mut buf);
        encode_record(b"CREATE TABLE t (a INT)", &mut buf);
        std::fs::write(&path, &buf).unwrap();
        let err = load_snapshot(&path).unwrap_err();
        assert!(err.to_string().contains("count mismatch"), "{err}");
    }

    #[test]
    fn bit_flip_is_invalid() {
        let path = tmp("flip.iqsnap");
        write_snapshot(&path, &["INSERT INTO t VALUES (42)".to_string()]).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() - 4;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_snapshot(&path),
            Err(StorageError::SnapshotInvalid { .. })
        ));
    }
}
