//! `iq-storage`: the durable storage layer under `iq-server`.
//!
//! Std-only (per the offline-dependency policy, DESIGN.md §10). The
//! layer persists exactly what the engine's in-memory write log already
//! records — committed write statements, in commit order — so recovery
//! is the same operation as the replay-determinism invariant: feed the
//! surviving statements through a fresh `Session` and you *are* the
//! pre-crash state.
//!
//! On disk a data directory holds one *generation* of files:
//!
//! ```text
//! data/
//!   snap-<gen>.iqsnap   table state at the start of generation <gen>
//!   wal-<gen>.log       writes committed since that snapshot
//! ```
//!
//! Generation 0 has no snapshot (empty initial state). `CHECKPOINT`
//! advances `gen -> gen+1`: write `snap-(gen+1)` atomically, create an
//! empty `wal-(gen+1)`, then delete the old pair. Recovery picks the
//! highest-generation *valid* snapshot (falling back past damaged ones),
//! replays the matching WAL tolerantly (torn tail truncated at the last
//! valid CRC boundary), and removes any stale files a checkpoint crash
//! left behind. See DESIGN.md §12 for the full protocol and crash-window
//! analysis.

mod crc32;
pub mod snapshot;
pub mod wal;

pub use crc32::crc32;
pub use wal::{Damage, ReplayDamage, WalReplay};

use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::time::Duration;

/// Errors from the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// An I/O failure, with the operation that hit it.
    Io {
        /// What was being attempted.
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A file carried the wrong magic — it is not ours to touch.
    BadMagic {
        /// The offending file.
        path: PathBuf,
    },
    /// A snapshot failed validation (snapshots are all-or-nothing).
    SnapshotInvalid {
        /// The offending file.
        path: PathBuf,
        /// What failed.
        reason: String,
    },
}

impl StorageError {
    pub(crate) fn io(context: String, source: std::io::Error) -> StorageError {
        StorageError::Io { context, source }
    }
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io { context, source } => write!(f, "{context}: {source}"),
            StorageError::BadMagic { path } => {
                write!(
                    f,
                    "`{}` is not an iq-storage file (bad magic)",
                    path.display()
                )
            }
            StorageError::SnapshotInvalid { path, reason } => {
                write!(f, "invalid snapshot `{}`: {reason}", path.display())
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// When appended WAL records are made durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncMode {
    /// Fsync on every append: no acknowledged write is ever lost.
    Always,
    /// Group commit: fsync when `every` records are pending or `interval`
    /// has elapsed since the last sync, whichever comes first (checked on
    /// append — there is no background timer thread).
    Batch {
        /// Pending-record threshold.
        every: u64,
        /// Elapsed-time threshold.
        interval: Duration,
    },
    /// Never fsync explicitly: durability is left to the OS page cache.
    /// A crash may lose the unsynced tail, but what survives is still a
    /// valid prefix of commit order.
    Never,
}

impl FsyncMode {
    /// Short name, as accepted by [`FromStr`] and shown in `SHOW WAL`.
    pub fn name(&self) -> String {
        match self {
            FsyncMode::Always => "always".to_string(),
            FsyncMode::Never => "never".to_string(),
            FsyncMode::Batch { every, interval } => {
                if *every == u64::MAX {
                    format!("batch:{}ms", interval.as_millis())
                } else {
                    format!("batch:{every}")
                }
            }
        }
    }
}

impl FromStr for FsyncMode {
    type Err = String;

    /// Accepts `always`, `never`, `batch:N` (every N records), or
    /// `batch:Nms` (every N milliseconds).
    fn from_str(s: &str) -> Result<FsyncMode, String> {
        match s {
            "always" => return Ok(FsyncMode::Always),
            "never" => return Ok(FsyncMode::Never),
            _ => {}
        }
        let spec = s.strip_prefix("batch:").ok_or_else(|| {
            format!("unknown fsync mode `{s}` (want always|never|batch:N|batch:Nms)")
        })?;
        if let Some(ms) = spec.strip_suffix("ms") {
            let ms: u64 = ms
                .parse()
                .map_err(|_| format!("bad batch interval `{spec}`"))?;
            if ms == 0 {
                return Ok(FsyncMode::Always);
            }
            Ok(FsyncMode::Batch {
                every: u64::MAX,
                interval: Duration::from_millis(ms),
            })
        } else {
            let n: u64 = spec
                .parse()
                .map_err(|_| format!("bad batch size `{spec}`"))?;
            if n <= 1 {
                return Ok(FsyncMode::Always);
            }
            Ok(FsyncMode::Batch {
                every: n,
                interval: Duration::from_secs(3600),
            })
        }
    }
}

/// Configuration for [`Storage::open`].
#[derive(Debug, Clone)]
pub struct StorageConfig {
    /// Fsync discipline for WAL appends.
    pub fsync: FsyncMode,
    /// Auto-checkpoint when the WAL exceeds this many payload bytes
    /// (`None` disables size-triggered checkpoints; explicit `CHECKPOINT`
    /// still works).
    pub checkpoint_bytes: Option<u64>,
}

impl Default for StorageConfig {
    fn default() -> StorageConfig {
        StorageConfig {
            fsync: FsyncMode::Always,
            checkpoint_bytes: None,
        }
    }
}

/// What recovery found and reconstructed at open.
#[derive(Debug)]
pub struct Recovery {
    /// All statements to replay, snapshot first then WAL, in commit order.
    pub statements: Vec<String>,
    /// How many of `statements` came from the snapshot.
    pub snapshot_statements: usize,
    /// How many came from the WAL tail.
    pub wal_statements: usize,
    /// Bytes cut from a torn WAL tail (0 for a clean log).
    pub truncated_bytes: u64,
    /// Human-readable description of the tail damage, if any.
    pub damage: Option<String>,
    /// The generation recovered into (appends continue in this gen).
    pub generation: u64,
}

/// The result of a checkpoint.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointInfo {
    /// The new generation number.
    pub generation: u64,
    /// WAL records made redundant (truncated) by the snapshot.
    pub wal_records_truncated: u64,
    /// Statements written into the snapshot.
    pub snapshot_statements: usize,
}

/// A point-in-time view of the storage layer's counters, for `SHOW WAL`
/// and metrics.
#[derive(Debug, Clone, Copy)]
pub struct StorageStats {
    /// Current generation.
    pub generation: u64,
    /// Records in the current WAL.
    pub wal_entries: u64,
    /// Current WAL file length in bytes (magic included).
    pub wal_bytes: u64,
    /// Appends since open.
    pub wal_appends: u64,
    /// Fsyncs issued on the current WAL since open/rotation.
    pub wal_fsyncs: u64,
    /// Checkpoints taken since open.
    pub checkpoints: u64,
}

/// The storage orchestrator: one open data directory, one current
/// generation, one appendable WAL.
#[derive(Debug)]
pub struct Storage {
    dir: PathBuf,
    config: StorageConfig,
    generation: u64,
    wal: wal::Wal,
    checkpoints: u64,
}

fn wal_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("wal-{generation}.log"))
}

fn snap_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("snap-{generation}.iqsnap"))
}

/// Parses `<stem>-<gen>.<ext>` file names back to generation numbers.
fn parse_generation(name: &str, stem: &str, ext: &str) -> Option<u64> {
    name.strip_prefix(stem)?
        .strip_prefix('-')?
        .strip_suffix(ext)?
        .strip_suffix('.')?
        .parse()
        .ok()
}

impl Storage {
    /// Opens (or initializes) the data directory and performs recovery.
    ///
    /// Recovery protocol: load the highest-generation snapshot that
    /// validates (skipping damaged ones), replay the WAL of the same
    /// generation tolerantly, and delete every file belonging to another
    /// generation — leftovers of an interrupted checkpoint. With no
    /// valid snapshot, recovery starts from the lowest surviving WAL
    /// (normally `wal-0.log`).
    pub fn open(dir: &Path, config: StorageConfig) -> Result<(Storage, Recovery), StorageError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| StorageError::io(format!("create data dir `{}`", dir.display()), e))?;
        let mut snap_gens: Vec<u64> = Vec::new();
        let mut wal_gens: Vec<u64> = Vec::new();
        let entries = std::fs::read_dir(dir)
            .map_err(|e| StorageError::io(format!("scan data dir `{}`", dir.display()), e))?;
        for entry in entries {
            let entry =
                entry.map_err(|e| StorageError::io(format!("scan `{}`", dir.display()), e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(g) = parse_generation(name, "snap", "iqsnap") {
                snap_gens.push(g);
            } else if let Some(g) = parse_generation(name, "wal", "log") {
                wal_gens.push(g);
            }
        }
        snap_gens.sort_unstable_by(|a, b| b.cmp(a));
        wal_gens.sort_unstable();

        // Pick the newest snapshot that validates; fall back past damage.
        let mut chosen: Option<(u64, Vec<String>)> = None;
        for &g in &snap_gens {
            match snapshot::load_snapshot(&snap_path(dir, g)) {
                Ok(stmts) => {
                    chosen = Some((g, stmts));
                    break;
                }
                Err(_) => continue,
            }
        }
        let (generation, snapshot_statements) = match chosen {
            Some((g, stmts)) => (g, stmts),
            // No usable snapshot: resume the oldest WAL (it holds the
            // longest history), which is gen 0 unless 0 was checkpointed
            // away — then the snapshot that replaced it must have been
            // valid, so this branch means "fresh directory" in practice.
            None => (wal_gens.first().copied().unwrap_or(0), Vec::new()),
        };

        let (wal, replay) = wal::Wal::open(&wal_path(dir, generation), config.fsync)?;

        // Remove files from other generations (interrupted-checkpoint
        // leftovers) and stray snapshot tmps. Best-effort.
        for &g in &snap_gens {
            if g != generation {
                let _ = std::fs::remove_file(snap_path(dir, g));
            }
        }
        for &g in &wal_gens {
            if g != generation {
                let _ = std::fs::remove_file(wal_path(dir, g));
            }
        }
        for g in [generation, generation + 1] {
            let _ = std::fs::remove_file(snap_path(dir, g).with_extension("tmp"));
        }

        let wal_len_on_disk = std::fs::metadata(wal.path())
            .map(|m| m.len())
            .unwrap_or(replay.valid_len);
        let truncated_bytes = wal_len_on_disk.saturating_sub(replay.valid_len);
        let mut statements = snapshot_statements;
        let snapshot_count = statements.len();
        let wal_count = replay.entries.len();
        statements.extend(replay.entries);

        let storage = Storage {
            dir: dir.to_path_buf(),
            config,
            generation,
            wal,
            checkpoints: 0,
        };
        let recovery = Recovery {
            statements,
            snapshot_statements: snapshot_count,
            wal_statements: wal_count,
            // `Wal::open` already truncated the file; report what it cut.
            truncated_bytes,
            damage: replay.damage.map(|d| d.to_string()),
            generation,
        };
        Ok((storage, recovery))
    }

    /// Appends one committed statement to the WAL (group-commit fsync per
    /// the configured mode). Returns whether this append fsynced.
    pub fn append(&mut self, statement: &str) -> Result<bool, StorageError> {
        self.wal.append(statement)
    }

    /// Whether the WAL has outgrown the auto-checkpoint threshold.
    pub fn should_checkpoint(&self) -> bool {
        match self.config.checkpoint_bytes {
            Some(limit) => self.wal.bytes.saturating_sub(wal::MAGIC.len() as u64) >= limit,
            None => false,
        }
    }

    /// Takes a checkpoint: writes `statements` (the full current table
    /// state, as SQL) to the next generation's snapshot, rotates to a
    /// fresh WAL, and deletes the previous generation.
    ///
    /// Crash windows: before the snapshot rename lands, recovery still
    /// sees the old pair (the `.tmp` is ignored and cleaned). After the
    /// rename but before old files are deleted, recovery prefers the new
    /// snapshot (highest valid generation) and deletes the stragglers —
    /// the old WAL is never replayed on top of the new snapshot, which
    /// would double-apply writes.
    pub fn checkpoint(&mut self, statements: &[String]) -> Result<CheckpointInfo, StorageError> {
        let next = self.generation + 1;
        snapshot::write_snapshot(&snap_path(&self.dir, next), statements)?;
        let new_wal = wal::Wal::create(&wal_path(&self.dir, next), self.config.fsync)?;
        snapshot::sync_dir(&self.dir)?;
        let truncated = self.wal.entries;
        let old_gen = self.generation;
        self.wal = new_wal; // drops (and flushes) the old handle
        self.generation = next;
        self.checkpoints += 1;
        let _ = std::fs::remove_file(wal_path(&self.dir, old_gen));
        let _ = std::fs::remove_file(snap_path(&self.dir, old_gen));
        let _ = snapshot::sync_dir(&self.dir);
        Ok(CheckpointInfo {
            generation: next,
            wal_records_truncated: truncated,
            snapshot_statements: statements.len(),
        })
    }

    /// Forces an fsync of the WAL regardless of mode.
    pub fn sync(&mut self) -> Result<(), StorageError> {
        self.wal.sync()
    }

    /// Current counters.
    pub fn stats(&self) -> StorageStats {
        StorageStats {
            generation: self.generation,
            wal_entries: self.wal.entries,
            wal_bytes: self.wal.bytes,
            wal_appends: self.wal.appends,
            wal_fsyncs: self.wal.syncs,
            checkpoints: self.checkpoints,
        }
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured fsync mode.
    pub fn fsync_mode(&self) -> FsyncMode {
        self.config.fsync
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("iq_storage_unit_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fsync_mode_parses() {
        assert_eq!("always".parse::<FsyncMode>().unwrap(), FsyncMode::Always);
        assert_eq!("never".parse::<FsyncMode>().unwrap(), FsyncMode::Never);
        assert_eq!(
            "batch:64".parse::<FsyncMode>().unwrap(),
            FsyncMode::Batch {
                every: 64,
                interval: Duration::from_secs(3600)
            }
        );
        assert_eq!(
            "batch:10ms".parse::<FsyncMode>().unwrap(),
            FsyncMode::Batch {
                every: u64::MAX,
                interval: Duration::from_millis(10)
            }
        );
        // Degenerate batches collapse to `always`.
        assert_eq!("batch:1".parse::<FsyncMode>().unwrap(), FsyncMode::Always);
        assert_eq!("batch:0ms".parse::<FsyncMode>().unwrap(), FsyncMode::Always);
        assert!("sometimes".parse::<FsyncMode>().is_err());
        assert!("batch:x".parse::<FsyncMode>().is_err());
        assert_eq!("batch:64".parse::<FsyncMode>().unwrap().name(), "batch:64");
        assert_eq!(
            "batch:10ms".parse::<FsyncMode>().unwrap().name(),
            "batch:10ms"
        );
    }

    #[test]
    fn open_append_reopen() {
        let dir = tmp_dir("reopen");
        let cfg = StorageConfig::default();
        {
            let (mut st, rec) = Storage::open(&dir, cfg.clone()).unwrap();
            assert!(rec.statements.is_empty());
            assert_eq!(rec.generation, 0);
            st.append("CREATE TABLE t (a INT)").unwrap();
            st.append("INSERT INTO t VALUES (1)").unwrap();
        }
        let (st, rec) = Storage::open(&dir, cfg).unwrap();
        assert_eq!(
            rec.statements,
            vec!["CREATE TABLE t (a INT)", "INSERT INTO t VALUES (1)"]
        );
        assert_eq!(rec.wal_statements, 2);
        assert_eq!(rec.snapshot_statements, 0);
        assert_eq!(rec.truncated_bytes, 0);
        assert_eq!(st.stats().wal_entries, 2);
    }

    #[test]
    fn checkpoint_rotates_and_recovers() {
        let dir = tmp_dir("ckpt");
        let cfg = StorageConfig::default();
        {
            let (mut st, _) = Storage::open(&dir, cfg.clone()).unwrap();
            st.append("CREATE TABLE t (a INT)").unwrap();
            st.append("INSERT INTO t VALUES (1)").unwrap();
            let info = st
                .checkpoint(&[
                    "CREATE TABLE t (a INT)".to_string(),
                    "INSERT INTO t VALUES (1)".to_string(),
                ])
                .unwrap();
            assert_eq!(info.generation, 1);
            assert_eq!(info.wal_records_truncated, 2);
            // Post-checkpoint writes land in the new WAL.
            st.append("INSERT INTO t VALUES (2)").unwrap();
            assert!(!wal_path(&dir, 0).exists());
            assert!(snap_path(&dir, 1).exists());
        }
        let (st, rec) = Storage::open(&dir, cfg).unwrap();
        assert_eq!(rec.generation, 1);
        assert_eq!(rec.snapshot_statements, 2);
        assert_eq!(rec.wal_statements, 1);
        assert_eq!(
            rec.statements,
            vec![
                "CREATE TABLE t (a INT)",
                "INSERT INTO t VALUES (1)",
                "INSERT INTO t VALUES (2)"
            ]
        );
        assert_eq!(st.stats().generation, 1);
    }

    #[test]
    fn damaged_snapshot_falls_back() {
        let dir = tmp_dir("fallback");
        let cfg = StorageConfig::default();
        {
            let (mut st, _) = Storage::open(&dir, cfg.clone()).unwrap();
            st.append("CREATE TABLE t (a INT)").unwrap();
            st.checkpoint(&["CREATE TABLE t (a INT)".to_string()])
                .unwrap();
        }
        // Corrupt the generation-1 snapshot.
        let snap = snap_path(&dir, 1);
        let mut bytes = std::fs::read(&snap).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&snap, &bytes).unwrap();
        // Gen-0 files are gone (deleted at checkpoint), so recovery has
        // nothing older: it starts a fresh gen-1 WAL with no snapshot...
        // but the damaged snapshot must not be *trusted*.
        let (_st, rec) = Storage::open(&dir, cfg).unwrap();
        assert_eq!(rec.snapshot_statements, 0, "damaged snapshot not loaded");
    }

    #[test]
    fn interrupted_checkpoint_leftovers_are_cleaned() {
        let dir = tmp_dir("leftovers");
        let cfg = StorageConfig::default();
        {
            let (mut st, _) = Storage::open(&dir, cfg.clone()).unwrap();
            st.append("CREATE TABLE t (a INT)").unwrap();
            st.checkpoint(&["CREATE TABLE t (a INT)".to_string()])
                .unwrap();
            st.append("INSERT INTO t VALUES (9)").unwrap();
        }
        // Simulate a crash mid-checkpoint: a stale tmp and a stray old wal.
        std::fs::write(snap_path(&dir, 2).with_extension("tmp"), b"junk").unwrap();
        std::fs::write(wal_path(&dir, 0), wal::MAGIC).unwrap();
        let (_st, rec) = Storage::open(&dir, cfg).unwrap();
        assert_eq!(rec.generation, 1);
        assert_eq!(
            rec.statements,
            vec!["CREATE TABLE t (a INT)", "INSERT INTO t VALUES (9)"]
        );
        assert!(!wal_path(&dir, 0).exists(), "stray old wal removed");
        assert!(
            !snap_path(&dir, 2).with_extension("tmp").exists(),
            "stale tmp removed"
        );
    }

    #[test]
    fn should_checkpoint_tracks_threshold() {
        let dir = tmp_dir("threshold");
        let cfg = StorageConfig {
            fsync: FsyncMode::Never,
            checkpoint_bytes: Some(64),
        };
        let (mut st, _) = Storage::open(&dir, cfg).unwrap();
        assert!(!st.should_checkpoint());
        st.append("INSERT INTO t VALUES (1234567890)").unwrap();
        assert!(!st.should_checkpoint());
        st.append("INSERT INTO t VALUES (1234567890)").unwrap();
        assert!(st.should_checkpoint());
        st.checkpoint(&[]).unwrap();
        assert!(!st.should_checkpoint(), "rotation resets the meter");
    }
}
