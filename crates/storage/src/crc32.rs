//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), table-driven.
//!
//! The repo's offline-dependency policy (DESIGN.md §10) rules out
//! `crc32fast`; this is the textbook byte-at-a-time implementation with a
//! lazily built 256-entry table. Throughput is irrelevant here — WAL
//! records are short SQL strings and the fsync dominates the commit path
//! by orders of magnitude.

/// The 256-entry lookup table for the reflected IEEE polynomial.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// The CRC-32 of `data` — matches the ubiquitous zlib/`crc32fast` value,
/// so checksums stay comparable if the implementation is ever swapped.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"INSERT INTO t VALUES (1)");
        let mut tampered = b"INSERT INTO t VALUES (1)".to_vec();
        for byte in 0..tampered.len() {
            for bit in 0..8 {
                tampered[byte] ^= 1 << bit;
                assert_ne!(crc32(&tampered), base, "flip at {byte}:{bit} undetected");
                tampered[byte] ^= 1 << bit;
            }
        }
    }
}
