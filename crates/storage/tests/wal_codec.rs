//! Property tests for the WAL record codec: encode → decode identity on
//! arbitrary statement streams, plus directed corruption — every class of
//! damage (payload bit-flip, truncated length prefix, truncated CRC) is
//! detected and pinned to the correct byte offset, and the records before
//! the damage always survive intact (prefix semantics).

use iq_storage::wal::{decode_record, encode_record, Damage, Decoded, MAGIC, RECORD_HEADER};
use proptest::prelude::*;

/// Decodes a full buffer (no magic) into payloads, mirroring replay.
fn decode_all(buf: &[u8]) -> (Vec<Vec<u8>>, Option<(usize, Damage)>) {
    let mut out = Vec::new();
    let mut offset = 0;
    loop {
        match decode_record(buf, offset) {
            Decoded::End => return (out, None),
            Decoded::Record { payload, next } => {
                out.push(payload.to_vec());
                offset = next;
            }
            Decoded::Damaged(d) => return (out, Some((offset, d))),
        }
    }
}

fn statements() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(any::<u8>(), 0..80), 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn encode_decode_identity(stmts in statements()) {
        let mut buf = Vec::new();
        for s in &stmts {
            encode_record(s, &mut buf);
        }
        let (decoded, damage) = decode_all(&buf);
        prop_assert!(damage.is_none());
        prop_assert_eq!(decoded, stmts);
    }

    #[test]
    fn any_truncation_yields_a_valid_prefix(stmts in statements(), cut_sel in any::<usize>()) {
        let mut buf = Vec::new();
        let mut boundaries = vec![0usize];
        for s in &stmts {
            encode_record(s, &mut buf);
            boundaries.push(buf.len());
        }
        let cut = cut_sel % (buf.len() + 1); // 0..=len
        let (decoded, damage) = decode_all(&buf[..cut]);
        // The decodable records are exactly those whose frame fits.
        let expect = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
        prop_assert_eq!(decoded.len(), expect, "cut at {}", cut);
        prop_assert_eq!(&decoded[..], &stmts[..expect]);
        // On a record boundary the cut looks like a clean end; anywhere
        // else the damage offset is the last boundary before the cut.
        match damage {
            None => prop_assert!(boundaries.contains(&cut)),
            Some((offset, _)) => {
                prop_assert_eq!(offset, boundaries[expect]);
                prop_assert!(!boundaries.contains(&cut));
            }
        }
    }

    #[test]
    fn payload_bit_flip_detected_at_offset(stmts in statements(), which in any::<usize>(), bit in 0u8..8) {
        // Flip one bit inside a chosen record's payload (skip empties).
        let nonempty: Vec<usize> =
            (0..stmts.len()).filter(|&i| !stmts[i].is_empty()).collect();
        prop_assume!(!nonempty.is_empty());
        let victim = nonempty[which % nonempty.len()];

        let mut buf = Vec::new();
        let mut starts = Vec::new();
        for s in &stmts {
            starts.push(buf.len());
            encode_record(s, &mut buf);
        }
        let byte_in_payload = which % stmts[victim].len();
        buf[starts[victim] + RECORD_HEADER + byte_in_payload] ^= 1 << bit;

        let (decoded, damage) = decode_all(&buf);
        let (offset, d) = damage.expect("flip must be detected");
        prop_assert_eq!(offset, starts[victim], "damage pinned to the flipped record");
        prop_assert!(matches!(d, Damage::ChecksumMismatch { .. }), "{:?}", d);
        prop_assert_eq!(decoded.len(), victim, "records before the flip survive");
        prop_assert_eq!(&decoded[..], &stmts[..victim]);
    }
}

#[test]
fn truncated_length_prefix_reports_header_damage() {
    let mut buf = Vec::new();
    encode_record(b"INSERT INTO t VALUES (1)", &mut buf);
    let first = buf.len();
    encode_record(b"INSERT INTO t VALUES (2)", &mut buf);
    // Leave only 2 of the second record's 4 length bytes.
    let (decoded, damage) = decode_all(&buf[..first + 2]);
    assert_eq!(decoded.len(), 1);
    let (offset, d) = damage.unwrap();
    assert_eq!(offset, first);
    assert_eq!(d, Damage::TruncatedHeader { have: 2 });
}

#[test]
fn truncated_crc_reports_header_damage() {
    let mut buf = Vec::new();
    encode_record(b"DELETE FROM t", &mut buf);
    // Length prefix intact, CRC cut in half: still a header truncation.
    let (decoded, damage) = decode_all(&buf[..6]);
    assert!(decoded.is_empty());
    let (offset, d) = damage.unwrap();
    assert_eq!(offset, 0);
    assert_eq!(d, Damage::TruncatedHeader { have: 6 });
}

#[test]
fn corrupt_length_prefix_is_bounded() {
    let mut buf = Vec::new();
    encode_record(b"x", &mut buf);
    // Blow the length field up past the plausibility cap.
    buf[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
    let (decoded, damage) = decode_all(&buf);
    assert!(decoded.is_empty());
    let (offset, d) = damage.unwrap();
    assert_eq!(offset, 0);
    assert!(matches!(d, Damage::OversizedLength { .. }));
}

#[test]
fn magic_constants_are_distinct() {
    assert_ne!(MAGIC, iq_storage::snapshot::MAGIC);
}
