//! # iq-workload
//!
//! Workload generation for the `improvement-queries` evaluation (§6.2 of
//! the paper): the IN/CO/AC [synthetic object datasets](synthetic), the
//! simulated [VEHICLE and HOUSE real-world tables](real), and the UN/CL
//! [top-k query generators](queries) with polynomial utility forms.
//!
//! [`standard_instance`] assembles the combinations the evaluation figures
//! sweep over, seeded deterministically so experiments are reproducible.

#![warn(missing_docs)]

pub mod queries;
pub mod real;
pub mod sqlgen;
pub mod synthetic;

pub use queries::{QueryDistribution, K_RANGE};
pub use real::RealDataset;
pub use sqlgen::{seed_statements, SqlStream, StatementMix};
pub use synthetic::Distribution;

use iq_core::Instance;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a ready-to-index instance: `n` objects from the given synthetic
/// distribution, `m` queries from the given query distribution with
/// `k ∈ [1, k_max]`, all derived from `seed`.
pub fn standard_instance(
    dist: Distribution,
    qdist: QueryDistribution,
    n: usize,
    m: usize,
    d: usize,
    k_max: usize,
    seed: u64,
) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let objects = synthetic::generate(dist, n, d, &mut rng);
    let qs = queries::queries(qdist, m, d, 1..=k_max.max(1), &mut rng);
    Instance::new(objects, qs).expect("generated instance is consistent")
}

/// Builds an instance over one of the simulated real-world tables with
/// `m` queries of the given distribution — the paper uses a query set one
/// third of the dataset size (§6.3.2).
pub fn real_instance(
    dataset: &RealDataset,
    qdist: QueryDistribution,
    m: usize,
    k_max: usize,
    seed: u64,
) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let qs = queries::queries(qdist, m, dataset.dim(), 1..=k_max.max(1), &mut rng);
    Instance::new(dataset.rows.clone(), qs).expect("real instance is consistent")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_instance_shape() {
        let inst = standard_instance(
            Distribution::Independent,
            QueryDistribution::Uniform,
            100,
            40,
            3,
            10,
            42,
        );
        assert_eq!(inst.num_objects(), 100);
        assert_eq!(inst.num_queries(), 40);
        assert_eq!(inst.dim(), 3);
        assert!(inst.max_k() <= 10);
    }

    #[test]
    fn deterministic_by_seed() {
        let mk = |seed| {
            standard_instance(
                Distribution::Correlated,
                QueryDistribution::Clustered,
                50,
                20,
                2,
                5,
                seed,
            )
        };
        let a = mk(7);
        let b = mk(7);
        assert_eq!(a.objects(), b.objects());
        let c = mk(8);
        assert_ne!(a.objects(), c.objects());
    }

    #[test]
    fn real_instance_wraps_dataset() {
        let mut rng = StdRng::seed_from_u64(1);
        let ds = real::vehicle_scaled(500, &mut rng);
        let inst = real_instance(&ds, QueryDistribution::Uniform, 100, 8, 3);
        assert_eq!(inst.num_objects(), 500);
        assert_eq!(inst.num_queries(), 100);
        assert_eq!(inst.dim(), 5);
    }
}
