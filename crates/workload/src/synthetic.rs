//! Synthetic object datasets (§6.2): Independent (IN), Correlated (CO),
//! and Anti-correlated (AC), generated with the method of Börzsönyi et al.
//! ("The Skyline Operator", ICDE 2001). Every generated attribute lies in
//! `[0, 1]`; the paper uses 10 attributes per object with experiments
//! running on 1–5 of them.

use rand::Rng;

/// The three synthetic distributions of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Distribution {
    /// All attributes independent and uniform.
    Independent,
    /// Attributes positively correlated (good objects good everywhere).
    Correlated,
    /// Attributes anti-correlated (good in one dimension, bad in others).
    AntiCorrelated,
}

impl Distribution {
    /// Short label matching the paper's dataset names.
    pub fn label(self) -> &'static str {
        match self {
            Distribution::Independent => "IN",
            Distribution::Correlated => "CO",
            Distribution::AntiCorrelated => "AC",
        }
    }
}

/// Generates `n` objects with `d` attributes in `[0, 1]` under the given
/// distribution.
pub fn generate<R: Rng>(dist: Distribution, n: usize, d: usize, rng: &mut R) -> Vec<Vec<f64>> {
    (0..n).map(|_| generate_one(dist, d, rng)).collect()
}

fn generate_one<R: Rng>(dist: Distribution, d: usize, rng: &mut R) -> Vec<f64> {
    match dist {
        Distribution::Independent => (0..d).map(|_| rng.gen::<f64>()).collect(),
        Distribution::Correlated => {
            // A shared latent level with small independent perturbations:
            // points concentrate along the main diagonal.
            let level = peaked(rng);
            (0..d)
                .map(|_| (level + normal(rng) * 0.06).clamp(0.0, 1.0))
                .collect()
        }
        Distribution::AntiCorrelated => {
            // Points concentrate near the plane Σxᵢ = d/2: raise one
            // attribute and the others must drop.
            let total = (0.5 + normal(rng) * 0.05) * d as f64;
            let mut raw: Vec<f64> = (0..d).map(|_| rng.gen::<f64>()).collect();
            let sum: f64 = raw.iter().sum();
            if sum > 0.0 {
                let scale = total / sum;
                for v in &mut raw {
                    *v = (*v * scale).clamp(0.0, 1.0);
                }
            }
            raw
        }
    }
}

/// A value in `[0, 1]` peaked around 0.5 (sum of two uniforms).
fn peaked<R: Rng>(rng: &mut R) -> f64 {
    0.5 * (rng.gen::<f64>() + rng.gen::<f64>())
}

/// A standard-normal sample (Box–Muller).
fn normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Sample Pearson correlation between two attribute columns, used by the
/// generator tests and the dataset documentation.
pub fn correlation(objects: &[Vec<f64>], i: usize, j: usize) -> f64 {
    let n = objects.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mean = |k: usize| objects.iter().map(|o| o[k]).sum::<f64>() / n;
    let (mi, mj) = (mean(i), mean(j));
    let mut cov = 0.0;
    let mut vi = 0.0;
    let mut vj = 0.0;
    for o in objects {
        cov += (o[i] - mi) * (o[j] - mj);
        vi += (o[i] - mi).powi(2);
        vj += (o[j] - mj).powi(2);
    }
    if vi <= 0.0 || vj <= 0.0 {
        0.0
    } else {
        cov / (vi.sqrt() * vj.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gen(dist: Distribution) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(7);
        generate(dist, 3000, 4, &mut rng)
    }

    #[test]
    fn values_in_unit_range() {
        for dist in [
            Distribution::Independent,
            Distribution::Correlated,
            Distribution::AntiCorrelated,
        ] {
            let data = gen(dist);
            assert_eq!(data.len(), 3000);
            for o in &data {
                assert_eq!(o.len(), 4);
                for &v in o {
                    assert!((0.0..=1.0).contains(&v), "{dist:?}: {v}");
                }
            }
        }
    }

    #[test]
    fn independent_uncorrelated() {
        let data = gen(Distribution::Independent);
        let c = correlation(&data, 0, 1);
        assert!(c.abs() < 0.1, "IN correlation too strong: {c}");
    }

    #[test]
    fn correlated_strongly_positive() {
        let data = gen(Distribution::Correlated);
        let c = correlation(&data, 0, 1);
        assert!(c > 0.6, "CO correlation too weak: {c}");
    }

    #[test]
    fn anticorrelated_negative() {
        let data = gen(Distribution::AntiCorrelated);
        let c = correlation(&data, 0, 1);
        assert!(c < -0.15, "AC correlation not negative enough: {c}");
    }

    #[test]
    fn labels() {
        assert_eq!(Distribution::Independent.label(), "IN");
        assert_eq!(Distribution::Correlated.label(), "CO");
        assert_eq!(Distribution::AntiCorrelated.label(), "AC");
    }

    #[test]
    fn correlation_degenerate_inputs() {
        assert_eq!(correlation(&[], 0, 0), 0.0);
        assert_eq!(correlation(&[vec![1.0, 1.0]], 0, 1), 0.0);
        // Constant column → zero correlation by convention.
        let c = correlation(&[vec![0.5, 0.1], vec![0.5, 0.9]], 0, 1);
        assert_eq!(c, 0.0);
    }
}
