//! Top-k query workload generation (§6.2): the UN (uniform) and CL
//! (clustered) weight distributions of Vlachou et al., polynomial utility
//! forms with per-term degrees in `[1, 5]`, and `k` drawn from `[1, 50]`.

use iq_core::{Instance, TopKQuery};
use iq_expr::{Expr, LinearizedUtility};
use rand::Rng;

/// The two query-weight distributions of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryDistribution {
    /// Weights uniform and independent in `[0, 1]`.
    Uniform,
    /// Weights clustered around a handful of preference centroids.
    Clustered,
}

impl QueryDistribution {
    /// Short label matching the paper's query-set names.
    pub fn label(self) -> &'static str {
        match self {
            QueryDistribution::Uniform => "UN",
            QueryDistribution::Clustered => "CL",
        }
    }
}

/// The paper's default `k` range (Table 2 text: "randomly selected from
/// `[1, 50]`").
pub const K_RANGE: std::ops::RangeInclusive<usize> = 1..=50;

/// Generates `m` weight vectors of dimension `d` under the distribution.
/// Weights are normalized per query so that each lies in `[0, 1]` (the
/// §3.2 normalization assumption).
pub fn weights<R: Rng>(dist: QueryDistribution, m: usize, d: usize, rng: &mut R) -> Vec<Vec<f64>> {
    match dist {
        QueryDistribution::Uniform => (0..m)
            .map(|_| (0..d).map(|_| rng.gen::<f64>()).collect())
            .collect(),
        QueryDistribution::Clustered => {
            // Vlachou et al.: a few preference clusters with Gaussian
            // spread around each centroid.
            let n_clusters = 5.min(m.max(1));
            let centroids: Vec<Vec<f64>> = (0..n_clusters)
                .map(|_| (0..d).map(|_| rng.gen::<f64>()).collect())
                .collect();
            (0..m)
                .map(|_| {
                    let c = &centroids[rng.gen_range(0..n_clusters)];
                    c.iter()
                        .map(|&v| (v + normal(rng) * 0.05).clamp(0.0, 1.0))
                        .collect()
                })
                .collect()
        }
    }
}

/// Generates `m` top-k queries with `k ∈ k_range`.
pub fn queries<R: Rng>(
    dist: QueryDistribution,
    m: usize,
    d: usize,
    k_range: std::ops::RangeInclusive<usize>,
    rng: &mut R,
) -> Vec<TopKQuery> {
    weights(dist, m, d, rng)
        .into_iter()
        .map(|w| TopKQuery::new(w, rng.gen_range(k_range.clone())))
        .collect()
}

fn normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A random polynomial utility form in the paper's style: one term per
/// dimension, `w_i · (p_{a_i})^{deg_i}`, degree uniform in `[1, 5]`, with
/// an occasional cross-product term `p_a · p_b` (the Eq. 20 shape).
pub fn random_polynomial_form<R: Rng>(d: usize, rng: &mut R) -> Expr {
    assert!(d > 0);
    let mut expr: Option<Expr> = None;
    for i in 0..d {
        let deg = rng.gen_range(1..=5u32);
        let mut mono = Expr::attr(i).pow(deg);
        if d > 1 && rng.gen_bool(0.25) {
            let other = (i + 1 + rng.gen_range(0..d - 1)) % d;
            mono = mono.mul(Expr::attr(other));
        }
        let term = Expr::weight(i).mul(mono);
        expr = Some(match expr {
            None => term,
            Some(acc) => acc.add(term),
        });
    }
    expr.unwrap()
}

/// A complete non-linear workload: a polynomial utility form, its
/// linearization, and the *augmented* linear instance obtained by mapping
/// every object through the substitution attributes and every query's
/// weights through the substitution coefficients (§5.2).
pub struct NonLinearWorkload {
    /// The original utility form.
    pub form: Expr,
    /// Its linearization.
    pub linearized: LinearizedUtility,
    /// The augmented linear instance the IQ machinery runs on.
    pub instance: Instance,
    /// The raw (pre-augmentation) objects.
    pub raw_objects: Vec<Vec<f64>>,
    /// The raw per-query weight vectors.
    pub raw_weights: Vec<Vec<f64>>,
}

/// Builds a non-linear workload over raw objects and query weights.
pub fn build_nonlinear_workload<R: Rng>(
    form: Expr,
    raw_objects: Vec<Vec<f64>>,
    dist: QueryDistribution,
    m: usize,
    k_range: std::ops::RangeInclusive<usize>,
    rng: &mut R,
) -> Result<NonLinearWorkload, iq_expr::LinearizeError> {
    let linearized = LinearizedUtility::linearize(&form)?;
    let n_weights = form.max_weight().map_or(0, |w| w + 1);
    let raw_weights = weights(dist, m, n_weights, rng);
    let objects: Vec<Vec<f64>> = raw_objects
        .iter()
        .map(|o| linearized.augmented_object(o))
        .collect();
    let queries: Vec<TopKQuery> = raw_weights
        .iter()
        .map(|w| {
            TopKQuery::new(
                linearized.augmented_query(w),
                rng.gen_range(k_range.clone()),
            )
        })
        .collect();
    let instance = Instance::new(objects, queries).expect("augmented instance is consistent");
    Ok(NonLinearWorkload {
        form,
        linearized,
        instance,
        raw_objects,
        raw_weights,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate, Distribution};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_weights_cover_the_space() {
        let mut rng = StdRng::seed_from_u64(4);
        let ws = weights(QueryDistribution::Uniform, 2000, 3, &mut rng);
        let mean: f64 = ws.iter().map(|w| w[0]).sum::<f64>() / 2000.0;
        assert!((mean - 0.5).abs() < 0.05, "uniform mean off: {mean}");
        for w in &ws {
            for &v in w {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn clustered_weights_concentrate() {
        let mut rng = StdRng::seed_from_u64(5);
        let ws = weights(QueryDistribution::Clustered, 2000, 3, &mut rng);
        // Average pairwise distance must be far below the uniform baseline
        // for points in the same cluster; test via nearest-centroid spread:
        // compute distance of each point to the closest of 5 k-means-ish
        // representatives (first occurrence heuristic).
        let reps: Vec<&Vec<f64>> = ws.iter().take(5).collect();
        let avg_min_dist: f64 = ws
            .iter()
            .map(|w| {
                reps.iter()
                    .map(|r| {
                        w.iter()
                            .zip(r.iter())
                            .map(|(a, b)| (a - b) * (a - b))
                            .sum::<f64>()
                            .sqrt()
                    })
                    .fold(f64::INFINITY, f64::min)
            })
            .sum::<f64>()
            / ws.len() as f64;
        assert!(avg_min_dist < 0.4, "clusters too diffuse: {avg_min_dist}");
    }

    #[test]
    fn k_values_in_range() {
        let mut rng = StdRng::seed_from_u64(6);
        let qs = queries(QueryDistribution::Uniform, 500, 2, K_RANGE, &mut rng);
        assert!(qs.iter().all(|q| (1..=50).contains(&q.k)));
        let distinct: std::collections::HashSet<usize> = qs.iter().map(|q| q.k).collect();
        assert!(distinct.len() > 20, "k values suspiciously concentrated");
    }

    #[test]
    fn polynomial_form_degrees_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let form = random_polynomial_form(4, &mut rng);
            // Must linearize cleanly and mention all weights.
            let lin = LinearizedUtility::linearize(&form).unwrap();
            assert!(lin.dim() >= 1 && lin.dim() <= 4);
            assert_eq!(form.max_weight(), Some(3));
        }
    }

    #[test]
    fn nonlinear_workload_preserves_scores() {
        let mut rng = StdRng::seed_from_u64(8);
        let raw = generate(Distribution::Independent, 50, 3, &mut rng);
        let form = random_polynomial_form(3, &mut rng);
        let wl =
            build_nonlinear_workload(form, raw, QueryDistribution::Uniform, 20, 1..=5, &mut rng)
                .unwrap();
        // Augmented linear scores equal the original utility exactly.
        for (qi, w) in wl.raw_weights.iter().enumerate() {
            for (oi, o) in wl.raw_objects.iter().enumerate() {
                let direct = wl.form.eval(o, w);
                let linear = wl.instance.score(oi, qi);
                assert!(
                    (direct - linear).abs() < 1e-9 * (1.0 + direct.abs()),
                    "object {oi}, query {qi}: {direct} vs {linear}"
                );
            }
        }
    }

    #[test]
    fn labels() {
        assert_eq!(QueryDistribution::Uniform.label(), "UN");
        assert_eq!(QueryDistribution::Clustered.label(), "CL");
    }
}
