//! Simulated stand-ins for the paper's two real-world datasets (§6.2).
//!
//! The originals are not redistributable inputs of this reproduction, so
//! we synthesize tables with the same schema, size, and — crucially — the
//! same *correlation structure*, which is what distinguishes them from the
//! IN/CO/AC synthetics (see DESIGN.md, substitution table):
//!
//! * **VEHICLE** — fueleconomy.gov, 37,051 vehicle models: year, weight,
//!   horsepower, MPG, annual fuel cost. Heavier cars have more horsepower
//!   and worse MPG; worse MPG means higher annual cost; newer cars do
//!   slightly better.
//! * **HOUSE** — IPUMS extract, 100,000 household records: house value,
//!   household income, persons, monthly mortgage. Value, income and
//!   mortgage are strongly positively correlated.
//!
//! All attributes are normalized to `[0, 1]` exactly as the paper does.

use rand::Rng;

/// A simulated real-world table: normalized rows plus schema metadata.
#[derive(Debug, Clone)]
pub struct RealDataset {
    /// Dataset name ("VEHICLE" or "HOUSE").
    pub name: &'static str,
    /// Attribute names, in column order.
    pub attributes: Vec<&'static str>,
    /// Rows, each attribute normalized to `[0, 1]`.
    pub rows: Vec<Vec<f64>>,
}

impl RealDataset {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.attributes.len()
    }
}

/// The paper's VEHICLE size.
pub const VEHICLE_ROWS: usize = 37_051;
/// The paper's HOUSE size.
pub const HOUSE_ROWS: usize = 100_000;

fn normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn normalize_columns(rows: &mut [Vec<f64>]) {
    if rows.is_empty() {
        return;
    }
    let d = rows[0].len();
    for j in 0..d {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for r in rows.iter() {
            lo = lo.min(r[j]);
            hi = hi.max(r[j]);
        }
        let span = (hi - lo).max(1e-12);
        for r in rows.iter_mut() {
            r[j] = (r[j] - lo) / span;
        }
    }
}

/// Simulated VEHICLE at its paper size. Prefer [`vehicle_scaled`] for
/// tests and scaled-down experiments.
pub fn vehicle<R: Rng>(rng: &mut R) -> RealDataset {
    vehicle_scaled(VEHICLE_ROWS, rng)
}

/// Simulated VEHICLE with `n` rows.
pub fn vehicle_scaled<R: Rng>(n: usize, rng: &mut R) -> RealDataset {
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        // Latent "size class" drives weight/horsepower/MPG jointly.
        let size = rng.gen::<f64>(); // 0 = compact, 1 = heavy truck
        let year = 1990.0 + rng.gen::<f64>() * 27.0; // model years 1990–2016
        let weight = 1800.0 + size * 3200.0 + normal(rng) * 220.0; // lbs
        let horsepower = 80.0 + size * 320.0 + normal(rng) * 40.0;
        // MPG drops with weight, improves with model year.
        let mpg = (52.0 - size * 30.0 + (year - 1990.0) * 0.35 + normal(rng) * 3.0).max(8.0);
        // Annual fuel cost inversely tied to MPG (fixed miles / price).
        let annual_cost = 18_000.0 / mpg * 2.5 + normal(rng) * 60.0;
        rows.push(vec![year, weight, horsepower, mpg, annual_cost]);
    }
    normalize_columns(&mut rows);
    RealDataset {
        name: "VEHICLE",
        attributes: vec!["year", "weight", "horsepower", "mpg", "annual_cost"],
        rows,
    }
}

/// Simulated HOUSE at its paper size. Prefer [`house_scaled`] for tests
/// and scaled-down experiments.
pub fn house<R: Rng>(rng: &mut R) -> RealDataset {
    house_scaled(HOUSE_ROWS, rng)
}

/// Simulated HOUSE with `n` rows.
pub fn house_scaled<R: Rng>(n: usize, rng: &mut R) -> RealDataset {
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        // Log-normal income drives value and mortgage.
        let log_income = 10.6 + normal(rng) * 0.55; // median ≈ $40k
        let income = log_income.exp();
        let value = income * (3.0 + normal(rng).abs() * 1.5) + normal(rng) * 15_000.0;
        let mortgage = (value * 0.004 + normal(rng) * 120.0).max(0.0); // monthly
        let persons = (1.0 + rng.gen::<f64>() * 5.0 + normal(rng) * 0.8).clamp(1.0, 12.0);
        rows.push(vec![
            value.max(10_000.0),
            income.max(5_000.0),
            persons,
            mortgage,
        ]);
    }
    normalize_columns(&mut rows);
    RealDataset {
        name: "HOUSE",
        attributes: vec![
            "house_value",
            "household_income",
            "persons",
            "monthly_mortgage",
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::correlation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn vehicle_schema_and_normalization() {
        let mut rng = StdRng::seed_from_u64(1);
        let ds = vehicle_scaled(5000, &mut rng);
        assert_eq!(ds.name, "VEHICLE");
        assert_eq!(ds.dim(), 5);
        assert_eq!(ds.len(), 5000);
        for r in &ds.rows {
            for &v in r {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn vehicle_correlation_structure() {
        let mut rng = StdRng::seed_from_u64(2);
        let ds = vehicle_scaled(8000, &mut rng);
        // weight (1) vs horsepower (2): strongly positive.
        assert!(correlation(&ds.rows, 1, 2) > 0.5);
        // weight (1) vs mpg (3): strongly negative.
        assert!(correlation(&ds.rows, 1, 3) < -0.5);
        // mpg (3) vs annual cost (4): strongly negative.
        assert!(correlation(&ds.rows, 3, 4) < -0.5);
    }

    #[test]
    fn house_schema_and_correlations() {
        let mut rng = StdRng::seed_from_u64(3);
        let ds = house_scaled(8000, &mut rng);
        assert_eq!(ds.name, "HOUSE");
        assert_eq!(ds.dim(), 4);
        // value (0) vs income (1) and value (0) vs mortgage (3): positive.
        assert!(correlation(&ds.rows, 0, 1) > 0.3);
        assert!(correlation(&ds.rows, 0, 3) > 0.5);
        for r in &ds.rows {
            for &v in r {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn paper_sizes_constants() {
        assert_eq!(VEHICLE_ROWS, 37_051);
        assert_eq!(HOUSE_ROWS, 100_000);
    }
}
