//! SQL workload generation for the serving layer: renders an [`Instance`]
//! as seed DDL/DML and emits a deterministic, seeded stream of follow-up
//! statements (the `loadgen` client's request mix).
//!
//! This module produces **SQL strings only** — `iq-workload` sits below
//! `iq-dbms` in the crate graph, so it cannot name parser types. The
//! contract with the DBMS layer is purely textual: object tables are
//! `(id INT, a1..ad FLOAT)`, query tables `(w1..wd FLOAT, k INT)`,
//! matching the `IMPROVE` conventions (`iq_dbms::iqext`).
//!
//! Floats are rendered with Rust's shortest round-trip `Display`, which
//! the DBMS lexer parses back to the identical bit pattern — so a
//! SQL-seeded session scores objects bitwise the same as an in-process
//! instance, and replays of the same seed are byte-identical.

use iq_core::Instance;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Renders `CREATE TABLE` + batched `INSERT` statements that load
/// `instance` into tables named `objects` and `queries`. `batch` caps rows
/// per INSERT (clamped to ≥ 1).
pub fn seed_statements(
    instance: &Instance,
    objects: &str,
    queries: &str,
    batch: usize,
) -> Vec<String> {
    let d = instance.dim();
    let batch = batch.max(1);
    let mut out = Vec::new();

    let mut create = format!("CREATE TABLE {objects} (id INT");
    for j in 0..d {
        let _ = write!(create, ", a{} FLOAT", j + 1);
    }
    create.push(')');
    out.push(create);

    let mut create = format!("CREATE TABLE {queries} (");
    for j in 0..d {
        let _ = write!(create, "w{} FLOAT, ", j + 1);
    }
    create.push_str("k INT)");
    out.push(create);

    for chunk_start in (0..instance.num_objects()).step_by(batch) {
        let mut stmt = format!("INSERT INTO {objects} VALUES ");
        for (n, i) in (chunk_start..(chunk_start + batch).min(instance.num_objects())).enumerate() {
            if n > 0 {
                stmt.push_str(", ");
            }
            let _ = write!(stmt, "({i}");
            for &v in instance.object(i) {
                let _ = write!(stmt, ", {v}");
            }
            stmt.push(')');
        }
        out.push(stmt);
    }

    for chunk_start in (0..instance.num_queries()).step_by(batch) {
        let mut stmt = format!("INSERT INTO {queries} VALUES ");
        for (n, qi) in (chunk_start..(chunk_start + batch).min(instance.num_queries())).enumerate()
        {
            if n > 0 {
                stmt.push_str(", ");
            }
            stmt.push('(');
            let q = &instance.queries()[qi];
            for &w in q.weights.as_slice() {
                let _ = write!(stmt, "{w}, ");
            }
            let _ = write!(stmt, "{})", q.k);
        }
        out.push(stmt);
    }

    out
}

/// Relative weights of the statement kinds a [`SqlStream`] emits.
#[derive(Debug, Clone, Copy)]
pub struct StatementMix {
    /// `SELECT … FROM objects` point/range reads.
    pub select: u32,
    /// Read-only `IMPROVE … MINCOST` analytic queries.
    pub improve: u32,
    /// `INSERT INTO queries` (a new top-k query joins the workload).
    pub insert_query: u32,
    /// `UPDATE objects SET a1 = …` attribute writes.
    pub update_object: u32,
}

impl Default for StatementMix {
    /// Read-heavy serving mix: mostly IMPROVE with some SELECT and a
    /// trickle of writes.
    fn default() -> Self {
        StatementMix {
            select: 30,
            improve: 60,
            insert_query: 5,
            update_object: 5,
        }
    }
}

impl StatementMix {
    /// A pure-read mix (no writes ever) — what the determinism stress
    /// tests replay concurrently.
    pub fn read_only() -> Self {
        StatementMix {
            select: 40,
            improve: 60,
            insert_query: 0,
            update_object: 0,
        }
    }
}

/// A deterministic statement stream: same construction parameters ⇒ same
/// statement sequence, statement by statement.
#[derive(Debug)]
pub struct SqlStream {
    rng: StdRng,
    mix: StatementMix,
    objects: String,
    queries: String,
    num_objects: usize,
    dim: usize,
    tau: usize,
}

impl SqlStream {
    /// A stream over tables shaped like `instance` (object count, dim),
    /// using `tau` as the MINCOST goal. Statements refer to tables
    /// `objects` / `queries` by the given names.
    pub fn new(
        instance: &Instance,
        objects: &str,
        queries: &str,
        mix: StatementMix,
        tau: usize,
        seed: u64,
    ) -> Self {
        SqlStream {
            rng: StdRng::seed_from_u64(seed),
            mix,
            objects: objects.to_string(),
            queries: queries.to_string(),
            num_objects: instance.num_objects(),
            dim: instance.dim(),
            tau: tau.max(1),
        }
    }

    /// The next statement in the stream (the stream is infinite).
    pub fn next_statement(&mut self) -> String {
        let total =
            self.mix.select + self.mix.improve + self.mix.insert_query + self.mix.update_object;
        let mut pick = self.rng.gen_range(0..total.max(1));
        let oid = self.rng.gen_range(0..self.num_objects.max(1));
        if pick < self.mix.select {
            return format!("SELECT id, a1 FROM {} WHERE id = {oid}", self.objects);
        }
        pick -= self.mix.select;
        if pick < self.mix.improve {
            return format!(
                "IMPROVE {} USING {} WHERE id = {oid} MINCOST {}",
                self.objects, self.queries, self.tau
            );
        }
        pick -= self.mix.improve;
        if pick < self.mix.insert_query {
            let mut stmt = format!("INSERT INTO {} VALUES (", self.queries);
            let mut raw: Vec<f64> = (0..self.dim).map(|_| self.rng.gen::<f64>()).collect();
            let sum: f64 = raw.iter().sum();
            if sum > 0.0 {
                for w in &mut raw {
                    *w /= sum;
                }
            }
            for w in &raw {
                let _ = write!(stmt, "{w}, ");
            }
            let _ = write!(stmt, "{})", self.rng.gen_range(1..=3usize));
            return stmt;
        }
        let attr = self.rng.gen_range(0..self.dim.max(1)) + 1;
        let v: f64 = self.rng.gen();
        format!("UPDATE {} SET a{attr} = {v} WHERE id = {oid}", self.objects)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{standard_instance, Distribution, QueryDistribution};

    fn tiny() -> Instance {
        standard_instance(
            Distribution::Independent,
            QueryDistribution::Uniform,
            20,
            10,
            2,
            3,
            11,
        )
    }

    #[test]
    fn seed_statements_shape() {
        let inst = tiny();
        let stmts = seed_statements(&inst, "objects", "queries", 8);
        assert_eq!(
            stmts[0],
            "CREATE TABLE objects (id INT, a1 FLOAT, a2 FLOAT)"
        );
        assert_eq!(stmts[1], "CREATE TABLE queries (w1 FLOAT, w2 FLOAT, k INT)");
        // 20 objects in batches of 8 → 3 INSERTs; 10 queries → 2.
        let obj_inserts = stmts
            .iter()
            .filter(|s| s.starts_with("INSERT INTO objects"))
            .count();
        assert_eq!(obj_inserts, 3);
        let q_inserts = stmts
            .iter()
            .filter(|s| s.starts_with("INSERT INTO queries"))
            .count();
        assert_eq!(q_inserts, 2);
    }

    #[test]
    fn stream_is_deterministic_and_mix_respected() {
        let inst = tiny();
        let gen = |seed| {
            let mut s = SqlStream::new(
                &inst,
                "objects",
                "queries",
                StatementMix::default(),
                2,
                seed,
            );
            (0..200).map(|_| s.next_statement()).collect::<Vec<_>>()
        };
        assert_eq!(gen(3), gen(3));
        assert_ne!(gen(3), gen(4));
        let stmts = gen(3);
        assert!(stmts.iter().any(|s| s.starts_with("SELECT")));
        assert!(stmts.iter().any(|s| s.starts_with("IMPROVE")));
        // Read-only mix never writes.
        let mut s = SqlStream::new(&inst, "o", "q", StatementMix::read_only(), 2, 9);
        for _ in 0..200 {
            let stmt = s.next_statement();
            assert!(
                stmt.starts_with("SELECT") || stmt.starts_with("IMPROVE"),
                "{stmt}"
            );
        }
    }
}
