//! Ablation: deterministic parallel candidate scoring vs thread count.
//!
//! Runs the Figure 7 workload (Efficient-IQ Min-Cost on the Independent
//! synthetic dataset) with the `iq_core::exec` thread pool pinned to 1, 2,
//! 4, and 8 workers. The search returns a byte-identical `IqReport` at
//! every thread count (asserted here, property-tested in
//! `crates/core/tests/proptests.rs`); only wall-clock time may change.
//! Measured numbers live in EXPERIMENTS.md next to `ablation_ese` —
//! speedups only materialise on multi-core hosts, so the recorded
//! environment matters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iq_bench::harness::{build_instance, run_one_min_cost, Scheme};
use iq_core::{ExecPolicy, QueryIndex, SearchOptions};
use iq_workload::{Distribution, QueryDistribution};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_parallel");
    group.sample_size(10);
    for &(n, m) in &[(600usize, 120usize), (2000, 400)] {
        let inst = build_instance(
            Distribution::Independent,
            QueryDistribution::Uniform,
            n,
            m,
            3,
            6,
            7,
        );
        let target = 0;
        let tau = (inst.hit_count_naive(target) + 8).min(inst.num_queries());
        let reference = {
            let opts = SearchOptions {
                candidate_cap: Some(32),
                exec: ExecPolicy::sequential(),
                ..SearchOptions::default()
            };
            let index = QueryIndex::build_with(&inst, &opts.exec);
            run_one_min_cost(&inst, &index, Scheme::EfficientIq, target, tau, &opts, 70)
        };
        for threads in [1usize, 2, 4, 8] {
            let opts = SearchOptions {
                candidate_cap: Some(32),
                exec: ExecPolicy::with_threads(threads),
                ..SearchOptions::default()
            };
            let index = QueryIndex::build_with(&inst, &opts.exec);
            let r = run_one_min_cost(&inst, &index, Scheme::EfficientIq, target, tau, &opts, 70);
            assert_eq!(r.cost.to_bits(), reference.cost.to_bits());
            assert_eq!(r.hits_after, reference.hits_after);
            assert_eq!(r.candidates_evaluated, reference.candidates_evaluated);
            group.bench_with_input(
                BenchmarkId::new(format!("threads={threads}"), format!("{n}x{m}")),
                &(&inst, &index),
                |b, (inst, index)| {
                    b.iter(|| {
                        run_one_min_cost(inst, index, Scheme::EfficientIq, target, tau, &opts, 70)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
