//! Figure 4: indexing cost vs number of objects — Efficient-IQ's subdomain
//! index against the Dominant Graph, at Criterion smoke scale. The full
//! sweep (with the paper's averaging over IN/CO/AC) lives in the `figures`
//! binary (`figures fig4`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iq_bench::harness::build_instance;
use iq_core::QueryIndex;
use iq_topk::DominantGraph;
use iq_workload::{Distribution, QueryDistribution};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig04_index_objects");
    group.sample_size(10);
    for &n in &[300usize, 600] {
        let inst = build_instance(
            Distribution::Independent,
            QueryDistribution::Uniform,
            n,
            120,
            3,
            8,
            4,
        );
        group.bench_with_input(
            BenchmarkId::new("efficient_iq_index", n),
            &inst,
            |b, inst| b.iter(|| QueryIndex::build(inst)),
        );
        group.bench_with_input(BenchmarkId::new("dominant_graph", n), &inst, |b, inst| {
            b.iter(|| DominantGraph::build(inst.objects()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
