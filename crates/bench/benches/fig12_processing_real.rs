//! Figure 12: IQ processing time on the (simulated) real-world datasets —
//! all four schemes on VEHICLE and HOUSE at Criterion smoke scale.
//! Full-size run with quality metrics: `figures fig12`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iq_bench::harness::{run_one_min_cost, Scheme};
use iq_core::{QueryIndex, SearchOptions};
use iq_workload::{real, real_instance, QueryDistribution};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_processing_real");
    group.sample_size(10);
    let opts = SearchOptions {
        candidate_cap: Some(32),
        ..SearchOptions::default()
    };
    let mut rng = StdRng::seed_from_u64(12);
    let datasets = vec![
        ("VEHICLE", real::vehicle_scaled(500, &mut rng)),
        ("HOUSE", real::house_scaled(500, &mut rng)),
    ];
    for (name, ds) in datasets {
        let inst = real_instance(&ds, QueryDistribution::Uniform, ds.len() / 3, 6, 121);
        let index = QueryIndex::build(&inst);
        let target = 0;
        let tau = (inst.hit_count_naive(target) + 8).min(inst.num_queries());
        for scheme in Scheme::ALL {
            group.bench_with_input(
                BenchmarkId::new(scheme.label(), name),
                &(&inst, &index),
                |b, (inst, index)| {
                    b.iter(|| run_one_min_cost(inst, index, scheme, target, tau, &opts, 122))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
