//! Figure 8: IQ processing time vs number of objects on the Correlated
//! synthetic dataset — all four schemes of §6.1 at Criterion smoke scale.
//! Full sweep with quality metrics: `figures fig8`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iq_bench::harness::{build_instance, run_one_min_cost, Scheme};
use iq_core::{QueryIndex, SearchOptions};
use iq_workload::{Distribution, QueryDistribution};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig08_processing_co");
    group.sample_size(10);
    let opts = SearchOptions {
        candidate_cap: Some(32),
        ..SearchOptions::default()
    };
    for &n in &[300usize, 600] {
        let inst = build_instance(
            Distribution::Correlated,
            QueryDistribution::Uniform,
            n,
            120,
            3,
            6,
            8,
        );
        let index = QueryIndex::build(&inst);
        let target = 0;
        let tau = (inst.hit_count_naive(target) + 8).min(inst.num_queries());
        for scheme in Scheme::ALL {
            group.bench_with_input(
                BenchmarkId::new(scheme.label(), n),
                &(&inst, &index),
                |b, (inst, index)| {
                    b.iter(|| run_one_min_cost(inst, index, scheme, target, tau, &opts, 80))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
