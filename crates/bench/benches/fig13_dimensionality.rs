//! Figure 13: Efficient-IQ scalability in the number of variables of the
//! interpreted functions (1–5). The paper reports sub-linear growth of the
//! processing time. Full sweep: `figures fig13`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iq_bench::harness::{build_instance, run_one_min_cost, Scheme};
use iq_core::{QueryIndex, SearchOptions};
use iq_workload::{Distribution, QueryDistribution};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_dimensionality");
    group.sample_size(10);
    let opts = SearchOptions {
        candidate_cap: Some(32),
        ..SearchOptions::default()
    };
    for d in 1..=5usize {
        let inst = build_instance(
            Distribution::Independent,
            QueryDistribution::Uniform,
            400,
            120,
            d,
            6,
            13 + d as u64,
        );
        let index = QueryIndex::build(&inst);
        let target = 0;
        let tau = (inst.hit_count_naive(target) + 8).min(inst.num_queries());
        group.bench_with_input(
            BenchmarkId::new("Efficient-IQ", d),
            &(&inst, &index),
            |b, (inst, index)| {
                b.iter(|| {
                    run_one_min_cost(inst, index, Scheme::EfficientIq, target, tau, &opts, 133)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
