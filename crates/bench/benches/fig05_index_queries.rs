//! Figure 5: indexing cost vs number of queries — the subdomain index
//! against a bare R-tree over the query points. Full sweep: `figures fig5`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iq_bench::harness::build_instance;
use iq_core::QueryIndex;
use iq_index::RTree;
use iq_workload::{Distribution, QueryDistribution};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig05_index_queries");
    group.sample_size(10);
    for &m in &[100usize, 200] {
        let inst = build_instance(
            Distribution::Independent,
            QueryDistribution::Uniform,
            400,
            m,
            3,
            8,
            5,
        );
        group.bench_with_input(
            BenchmarkId::new("efficient_iq_index", m),
            &inst,
            |b, inst| b.iter(|| QueryIndex::build(inst)),
        );
        group.bench_with_input(BenchmarkId::new("rtree_only", m), &inst, |b, inst| {
            b.iter(|| {
                let mut t = RTree::new(inst.dim());
                for (qi, q) in inst.queries().iter().enumerate() {
                    t.insert(q.weights.clone(), qi);
                }
                t
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
