//! Ablation for the §4.3 update machinery: one incremental operation
//! against the full index rebuild it replaces, plus the R-tree split
//! heuristics feeding the same workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iq_bench::harness::build_instance;
use iq_core::update::{add_query, UpdateStats};
use iq_core::{QueryIndex, TopKQuery};
use iq_index::{RTree, SplitAlgorithm};
use iq_workload::{Distribution, QueryDistribution};

fn bench_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_updates");
    group.sample_size(10);
    for &(n, m) in &[(1000usize, 300usize), (4000, 600)] {
        let inst = build_instance(
            Distribution::Independent,
            QueryDistribution::Clustered,
            n,
            m,
            3,
            6,
            77,
        );
        let index = QueryIndex::build(&inst);
        let label = format!("{n}x{m}");
        // Incremental: add one clustered query (kNN fast path likely).
        group.bench_with_input(
            BenchmarkId::new("add_query_incremental", &label),
            &(),
            |b, _| {
                b.iter_batched(
                    || (inst.clone(), index.clone()),
                    |(mut inst, mut index)| {
                        let w = inst.queries()[0].weights.clone();
                        let mut stats = UpdateStats::default();
                        add_query(&mut inst, &mut index, TopKQuery::new(w, 3), &mut stats).unwrap();
                        (inst, index)
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
        // The alternative: rebuild from scratch after the same insertion.
        group.bench_with_input(BenchmarkId::new("full_rebuild", &label), &(), |b, _| {
            b.iter_batched(
                || {
                    let mut i = inst.clone();
                    let w = i.queries()[0].weights.clone();
                    i.push_query(TopKQuery::new(w, 3)).unwrap();
                    i
                },
                |inst| QueryIndex::build(&inst),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_splits(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_rtree_split");
    group.sample_size(10);
    let inst = build_instance(
        Distribution::Independent,
        QueryDistribution::Clustered,
        100,
        2000,
        3,
        4,
        78,
    );
    for (name, algo) in [
        ("quadratic", SplitAlgorithm::Quadratic),
        ("rstar", SplitAlgorithm::RStar),
    ] {
        group.bench_function(BenchmarkId::new("build", name), |b| {
            b.iter(|| {
                let mut t = RTree::with_split(3, 16, algo);
                for (qi, q) in inst.queries().iter().enumerate() {
                    t.insert(q.weights.clone(), qi);
                }
                t
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_updates, bench_splits);
criterion_main!(benches);
