//! Figure 6: indexing cost on the (simulated) real-world datasets —
//! Efficient-IQ, bare R-tree, and Dominant Graph on VEHICLE and HOUSE.
//! Full-size run: `figures fig6`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iq_core::QueryIndex;
use iq_index::RTree;
use iq_topk::DominantGraph;
use iq_workload::{real, real_instance, QueryDistribution};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig06_index_real");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(6);
    let datasets = vec![
        ("VEHICLE", real::vehicle_scaled(600, &mut rng)),
        ("HOUSE", real::house_scaled(600, &mut rng)),
    ];
    for (name, ds) in datasets {
        let inst = real_instance(&ds, QueryDistribution::Uniform, ds.len() / 3, 8, 66);
        group.bench_with_input(
            BenchmarkId::new("efficient_iq_index", name),
            &inst,
            |b, inst| b.iter(|| QueryIndex::build(inst)),
        );
        group.bench_with_input(BenchmarkId::new("rtree_only", name), &inst, |b, inst| {
            b.iter(|| {
                let mut t = RTree::new(inst.dim());
                for (qi, q) in inst.queries().iter().enumerate() {
                    t.insert(q.weights.clone(), qi);
                }
                t
            })
        });
        group.bench_with_input(
            BenchmarkId::new("dominant_graph", name),
            &inst,
            |b, inst| b.iter(|| DominantGraph::build(inst.objects())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
