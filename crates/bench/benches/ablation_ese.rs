//! Ablation: the value of each layer of Efficient Strategy Evaluation.
//!
//! Compares, on identical instances and strategies:
//! * `ese_fast` — per-threshold-object grouped slab retrieval (the shipped
//!   path);
//! * `ese_pairwise` — the literal Algorithm 2 loop over every object's
//!   affected subspace;
//! * `thresholded_scan` — per-query threshold comparison with no spatial
//!   pruning (still index-assisted: the thresholds come from the
//!   subdomain index);
//! * `no_index` — honest from-scratch evaluation: apply the strategy and
//!   recompute every query's top-k over the whole dataset.
//!
//! This is the design-choice evidence behind DESIGN.md §3: each layer of
//! the index buys an order of magnitude, and the grouped fast path is the
//! reason strategy evaluation is cheap enough to run once per candidate
//! inside the greedy loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iq_bench::harness::build_instance;
use iq_core::{QueryIndex, TargetEvaluator};
use iq_geometry::Vector;
use iq_workload::{Distribution, QueryDistribution};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_ese");
    group.sample_size(20);
    for &(n, m) in &[(500usize, 200usize), (2000, 800)] {
        let inst = build_instance(
            Distribution::Independent,
            QueryDistribution::Uniform,
            n,
            m,
            3,
            8,
            99,
        );
        let index = QueryIndex::build(&inst);
        let ev = TargetEvaluator::new(&inst, &index, 0);
        // A small strategy: the realistic candidate-evaluation shape.
        let s = Vector::from([-0.02, -0.01, -0.015]);
        let label = format!("{n}x{m}");
        group.bench_with_input(BenchmarkId::new("ese_fast", &label), &(), |b, _| {
            b.iter(|| ev.evaluate(&s))
        });
        group.bench_with_input(BenchmarkId::new("ese_pairwise", &label), &(), |b, _| {
            b.iter(|| ev.evaluate_pairwise(&index, &s))
        });
        group.bench_with_input(BenchmarkId::new("thresholded_scan", &label), &(), |b, _| {
            b.iter(|| ev.evaluate_naive(&s))
        });
        group.bench_with_input(BenchmarkId::new("no_index", &label), &(), |b, _| {
            b.iter(|| {
                let improved = inst.with_strategy(0, &s);
                improved.hit_count_naive(0)
            })
        });
        // The scoring-kernel ablation behind DESIGN.md §9: one full pass
        // scoring the improved target against every query weight vector,
        // through the nested Vec<Vec<f64>> rows vs the flat SoA kernel.
        let p_new = &Vector::from(inst.object(0)) + &s;
        group.bench_with_input(
            BenchmarkId::new("flat_vs_nested", format!("{label}/nested")),
            &(),
            |b, _| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for q in inst.queries() {
                        acc += iq_geometry::vector::dot(&q.weights, p_new.as_slice());
                    }
                    std::hint::black_box(acc)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("flat_vs_nested", format!("{label}/flat")),
            &(),
            |b, _| {
                let mut buf = Vec::new();
                b.iter(|| {
                    inst.weights_flat().scores_into(p_new.as_slice(), &mut buf);
                    std::hint::black_box(buf.iter().sum::<f64>())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
