//! Figure 10: IQ processing time vs number of queries on the Uniform
//! (Un) query distribution — all four schemes at smoke scale.
//! Full sweep with quality metrics: `figures fig10`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iq_bench::harness::{build_instance, run_one_min_cost, Scheme};
use iq_core::{QueryIndex, SearchOptions};
use iq_workload::{Distribution, QueryDistribution};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_processing_un");
    group.sample_size(10);
    let opts = SearchOptions {
        candidate_cap: Some(32),
        ..SearchOptions::default()
    };
    for &m in &[100usize, 200] {
        let inst = build_instance(
            Distribution::Independent,
            QueryDistribution::Uniform,
            400,
            m,
            3,
            6,
            10,
        );
        let index = QueryIndex::build(&inst);
        let target = 0;
        let tau = (inst.hit_count_naive(target) + 8).min(inst.num_queries());
        for scheme in Scheme::ALL {
            group.bench_with_input(
                BenchmarkId::new(scheme.label(), m),
                &(&inst, &index),
                |b, (inst, index)| {
                    b.iter(|| run_one_min_cost(inst, index, scheme, target, tau, &opts, 100))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
