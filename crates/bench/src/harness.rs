//! Shared experiment harness for the paper's evaluation (§6.2–§6.3).
//!
//! Every figure is a sweep over one parameter with the rest pinned to the
//! Table 2 defaults. [`Settings`] holds those defaults, scaled by the
//! `IQ_SCALE` environment variable (default 0.02) so the full suite runs
//! on a laptop in minutes — the RTA-IQ comparator is the long pole, its
//! per-query cost growing with `|D|·|Q|`. `IQ_SCALE=1` reproduces the
//! paper-scale setup (expect hours, dominated by RTA-IQ, exactly as the
//! paper reports).
//!
//! The harness measures the two §6.3.2 metrics — average IQ processing
//! time and average cost-per-hit-query — for the four schemes of §6.1
//! (Efficient-IQ, RTA-IQ, Greedy, Random), plus the §6.3.1 indexing
//! metrics (build time, index size as a fraction of the raw data).

use iq_core::baselines::{greedy_iq, random_max_hit_iq, random_min_cost_iq};
use iq_core::{
    max_hit_iq, min_cost_iq, EuclideanCost, Instance, QueryIndex, SearchOptions, StrategyBounds,
    TargetEvaluator,
};
use iq_topk::DominantGraph;
use iq_workload::{standard_instance, Distribution, QueryDistribution};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Table 2 of the paper, scaled by `IQ_SCALE`.
#[derive(Debug, Clone)]
pub struct Settings {
    /// Default number of objects (paper: 100,000).
    pub num_objects: usize,
    /// Object-count sweep (paper: 50,000 – 200,000).
    pub object_sweep: Vec<usize>,
    /// Default number of queries (paper: 10,000).
    pub num_queries: usize,
    /// Query-count sweep (paper: 5,000 – 15,000).
    pub query_sweep: Vec<usize>,
    /// Default τ (paper: 250; sampled from 100 – 500 per query).
    pub tau: usize,
    /// τ sampling range.
    pub tau_range: (usize, usize),
    /// Default β (paper: 50; sampled from 10 – 100 per query).
    pub beta: f64,
    /// β sampling range.
    pub beta_range: (f64, f64),
    /// Dimensionality (paper default: 3, swept 1 – 5 in Fig. 13).
    pub dims: usize,
    /// Maximum per-query k (paper: 50).
    pub k_max: usize,
    /// IQs issued per measurement point (paper: 100 + 100).
    pub iqs_per_point: usize,
}

impl Settings {
    /// Builds the settings from `IQ_SCALE` (default 0.02).
    pub fn from_env() -> Self {
        let scale: f64 = std::env::var("IQ_SCALE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0.02);
        Self::with_scale(scale)
    }

    /// Builds the settings at an explicit scale factor.
    pub fn with_scale(scale: f64) -> Self {
        let s = |v: usize| ((v as f64 * scale).round() as usize).max(8);
        Settings {
            num_objects: s(100_000),
            object_sweep: vec![s(50_000), s(100_000), s(150_000), s(200_000)],
            num_queries: s(10_000),
            query_sweep: vec![s(5_000), s(10_000), s(15_000)],
            tau: s(250),
            tau_range: (s(100), s(500)),
            beta: (50.0 * scale).max(0.5),
            beta_range: ((10.0 * scale).max(0.1), (100.0 * scale).max(1.0)),
            dims: 3,
            k_max: 50.min(s(50)).max(2),
            iqs_per_point: ((10.0 * scale.sqrt() * 3.0).round() as usize).clamp(4, 100),
        }
    }

    /// Tiny settings for smoke tests and Criterion benches.
    pub fn tiny() -> Self {
        Settings {
            num_objects: 400,
            object_sweep: vec![200, 400],
            num_queries: 150,
            query_sweep: vec![100, 150],
            tau: 10,
            tau_range: (5, 15),
            beta: 1.0,
            beta_range: (0.3, 1.5),
            dims: 3,
            k_max: 10,
            iqs_per_point: 4,
        }
    }
}

/// The four IQ-processing schemes of §6.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// The paper's contribution: subdomain index + ESE.
    EfficientIq,
    /// Same search, RTA-based evaluation.
    RtaIq,
    /// Cheapest-query-first greedy.
    Greedy,
    /// Random strategy sampling.
    Random,
}

impl Scheme {
    /// All four schemes in the paper's plotting order.
    pub const ALL: [Scheme; 4] = [
        Scheme::EfficientIq,
        Scheme::RtaIq,
        Scheme::Greedy,
        Scheme::Random,
    ];

    /// The label used in the figures.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::EfficientIq => "Efficient-IQ",
            Scheme::RtaIq => "RTA-IQ",
            Scheme::Greedy => "Greedy",
            Scheme::Random => "Random",
        }
    }
}

/// Indexing metrics for one configuration (Figs. 4–6).
#[derive(Debug, Clone)]
pub struct IndexCosts {
    /// Efficient-IQ's subdomain index build time (seconds).
    pub efficient_time: f64,
    /// Efficient-IQ's index size as a percentage of the raw dataset bytes.
    pub efficient_size_pct: f64,
    /// Plain R-tree build time over the query points (seconds).
    pub rtree_time: f64,
    /// Plain R-tree size percentage.
    pub rtree_size_pct: f64,
    /// Dominant Graph build time over the objects (seconds).
    pub dominant_graph_time: f64,
    /// Dominant Graph size percentage.
    pub dominant_graph_size_pct: f64,
}

/// Raw dataset footprint: objects + queries as packed f64 rows.
fn data_bytes(instance: &Instance) -> usize {
    (instance.num_objects() + instance.num_queries()) * instance.dim() * 8
        + instance.num_queries() * 8
}

/// Measures all three indexing schemes on one instance.
pub fn measure_index_costs(instance: &Instance) -> IndexCosts {
    let base = data_bytes(instance).max(1) as f64;

    let t0 = Instant::now();
    let qindex = QueryIndex::build(instance);
    let efficient_time = t0.elapsed().as_secs_f64();
    let efficient_size_pct = 100.0 * qindex.size_bytes() as f64 / base;

    let t0 = Instant::now();
    let mut rtree = iq_index::RTree::new(instance.dim().max(1));
    for (qi, q) in instance.queries().iter().enumerate() {
        rtree.insert(q.weights.clone(), qi);
    }
    let rtree_time = t0.elapsed().as_secs_f64();
    let rtree_size_pct = 100.0 * rtree.size_bytes() as f64 / base;

    let t0 = Instant::now();
    let dg = DominantGraph::build(instance.objects());
    let dominant_graph_time = t0.elapsed().as_secs_f64();
    let dominant_graph_size_pct = 100.0 * dg.size_bytes() as f64 / base;

    IndexCosts {
        efficient_time,
        efficient_size_pct,
        rtree_time,
        rtree_size_pct,
        dominant_graph_time,
        dominant_graph_size_pct,
    }
}

/// Processing metrics for one (configuration, scheme) pair (Figs. 7–13).
#[derive(Debug, Clone)]
pub struct ProcessingMetrics {
    /// Average wall-clock time per IQ (milliseconds), indexing excluded.
    pub avg_time_ms: f64,
    /// Average cost per hit query (the paper's unified quality metric).
    pub avg_cost_per_hit: f64,
    /// IQs issued.
    pub issued: usize,
}

/// Issues a mixed batch of Min-Cost and Max-Hit IQs with randomly drawn
/// targets, τ, and β (as §6.3.2 does), and reports averages.
pub fn measure_processing(
    instance: &Instance,
    scheme: Scheme,
    settings: &Settings,
    opts: &SearchOptions,
    seed: u64,
) -> ProcessingMetrics {
    let mut rng = StdRng::seed_from_u64(seed);
    let index = QueryIndex::build_with(instance, &opts.exec);
    let bounds = StrategyBounds::unbounded(instance.dim());
    let cost = EuclideanCost;

    let mut total_time = 0.0f64;
    let mut ratio_sum = 0.0f64;
    let mut ratio_count = 0usize;
    let issued = settings.iqs_per_point.max(2);

    for i in 0..issued {
        let target = rng.gen_range(0..instance.num_objects());
        let min_cost_kind = i % 2 == 0;
        let tau = rng
            .gen_range(settings.tau_range.0..=settings.tau_range.1.max(settings.tau_range.0 + 1))
            .min(instance.num_queries());
        let beta = rng.gen_range(settings.beta_range.0..=settings.beta_range.1);

        let t0 = Instant::now();
        let report = match (scheme, min_cost_kind) {
            (Scheme::EfficientIq, true) => {
                min_cost_iq(instance, &index, target, tau, &cost, &bounds, opts)
            }
            (Scheme::EfficientIq, false) => {
                max_hit_iq(instance, &index, target, beta, &cost, &bounds, opts)
            }
            (Scheme::RtaIq, true) => {
                iq_core::baselines::rta_min_cost_iq(instance, target, tau, &cost, &bounds, opts)
            }
            (Scheme::RtaIq, false) => {
                iq_core::baselines::rta_max_hit_iq(instance, target, beta, &cost, &bounds, opts)
            }
            (Scheme::Greedy, true) => {
                let mut ev = TargetEvaluator::new_with(instance, &index, target, &opts.exec);
                greedy_iq(&mut ev, Some(tau), None, &cost, &bounds, opts)
            }
            (Scheme::Greedy, false) => {
                let mut ev = TargetEvaluator::new_with(instance, &index, target, &opts.exec);
                greedy_iq(&mut ev, None, Some(beta), &cost, &bounds, opts)
            }
            (Scheme::Random, true) => {
                let mut ev = TargetEvaluator::new_with(instance, &index, target, &opts.exec);
                random_min_cost_iq(&mut ev, tau, &cost, &bounds, &mut rng, 500)
            }
            (Scheme::Random, false) => {
                let mut ev = TargetEvaluator::new_with(instance, &index, target, &opts.exec);
                random_max_hit_iq(&mut ev, beta, &cost, &bounds, &mut rng, 500)
            }
        };
        total_time += t0.elapsed().as_secs_f64();

        // The paper's unified quality metric: average cost per hit query of
        // the returned strategy (§6.3.2), lower is better.
        //
        // * No-op results (zero cost — goal already met or the scheme gave
        //   up) say nothing about strategy quality: excluded, uniformly.
        // * A Min-Cost IQ's goal is τ hits: credit is capped at τ, so a
        //   blind overshoot (Random's signature move) cannot launder a huge
        //   cost through hits nobody asked for.
        // * A Max-Hit IQ's spend is budget-capped for everyone, so the raw
        //   hits-after denominator is fair.
        // * Paid-but-hit-nothing strategies are charged their full cost.
        if report.cost > 0.0 {
            let credited = if min_cost_kind {
                report.hits_after.min(tau)
            } else {
                report.hits_after
            };
            ratio_sum += if credited > 0 {
                report.cost / credited as f64
            } else {
                report.cost
            };
            ratio_count += 1;
        }
    }

    ProcessingMetrics {
        avg_time_ms: 1000.0 * total_time / issued as f64,
        avg_cost_per_hit: if ratio_count == 0 {
            0.0
        } else {
            ratio_sum / ratio_count as f64
        },
        issued,
    }
}

/// Runs one Min-Cost IQ under the given scheme — the unit of work the
/// per-figure Criterion benches time. The query index is passed in so the
/// measurement covers only IQ processing, matching the paper's metric.
pub fn run_one_min_cost(
    instance: &Instance,
    index: &QueryIndex,
    scheme: Scheme,
    target: usize,
    tau: usize,
    opts: &SearchOptions,
    seed: u64,
) -> iq_core::IqReport {
    let bounds = StrategyBounds::unbounded(instance.dim());
    let cost = EuclideanCost;
    match scheme {
        Scheme::EfficientIq => min_cost_iq(instance, index, target, tau, &cost, &bounds, opts),
        Scheme::RtaIq => {
            iq_core::baselines::rta_min_cost_iq(instance, target, tau, &cost, &bounds, opts)
        }
        Scheme::Greedy => {
            let mut ev = TargetEvaluator::new_with(instance, index, target, &opts.exec);
            greedy_iq(&mut ev, Some(tau), None, &cost, &bounds, opts)
        }
        Scheme::Random => {
            let mut ev = TargetEvaluator::new_with(instance, index, target, &opts.exec);
            let mut rng = StdRng::seed_from_u64(seed);
            random_min_cost_iq(&mut ev, tau, &cost, &bounds, &mut rng, 300)
        }
    }
}

/// Builds the instance for one experiment point.
pub fn build_instance(
    dist: Distribution,
    qdist: QueryDistribution,
    n: usize,
    m: usize,
    d: usize,
    k_max: usize,
    seed: u64,
) -> Instance {
    standard_instance(dist, qdist, n, m, d, k_max, seed)
}

/// Prints Table 2 (the experiment settings actually in force).
pub fn print_settings(settings: &Settings) {
    println!("Table 2 — experiment settings (IQ_SCALE-adjusted)");
    println!(
        "  |D| default {} (sweep {:?})",
        settings.num_objects, settings.object_sweep
    );
    println!(
        "  |Q| default {} (sweep {:?})",
        settings.num_queries, settings.query_sweep
    );
    println!(
        "  tau default {} (range {}..={})",
        settings.tau, settings.tau_range.0, settings.tau_range.1
    );
    println!(
        "  beta default {} (range {}..={})",
        settings.beta, settings.beta_range.0, settings.beta_range.1
    );
    println!(
        "  dims {}  k_max {}  IQs/point {}",
        settings.dims, settings.k_max, settings.iqs_per_point
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settings_scale_sanely() {
        let s = Settings::with_scale(0.01);
        assert_eq!(s.num_objects, 1000);
        assert_eq!(s.query_sweep, vec![50, 100, 150]);
        let full = Settings::with_scale(1.0);
        assert_eq!(full.num_objects, 100_000);
        assert_eq!(full.tau, 250);
    }

    #[test]
    fn index_costs_smoke() {
        let s = Settings::tiny();
        let inst = build_instance(
            Distribution::Independent,
            QueryDistribution::Uniform,
            s.num_objects,
            s.num_queries,
            s.dims,
            s.k_max,
            1,
        );
        let c = measure_index_costs(&inst);
        assert!(c.efficient_time >= 0.0);
        assert!(c.efficient_size_pct > 0.0);
        assert!(c.rtree_size_pct > 0.0);
        assert!(c.dominant_graph_size_pct > 0.0);
        // The subdomain index carries more than a bare R-tree.
        assert!(c.efficient_size_pct >= c.rtree_size_pct);
    }

    #[test]
    fn processing_smoke_all_schemes() {
        let s = Settings::tiny();
        let inst = build_instance(
            Distribution::Independent,
            QueryDistribution::Uniform,
            200,
            80,
            3,
            5,
            2,
        );
        let tiny = Settings {
            iqs_per_point: 2,
            tau_range: (3, 6),
            beta_range: (0.2, 0.5),
            ..s
        };
        for scheme in Scheme::ALL {
            let m = measure_processing(&inst, scheme, &tiny, &SearchOptions::default(), 3);
            assert_eq!(m.issued, 2);
            assert!(m.avg_time_ms >= 0.0, "{scheme:?}");
            assert!(m.avg_cost_per_hit.is_finite(), "{scheme:?}");
        }
    }
}
