//! # iq-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (§6). The [`harness`] module holds the Table 2
//! settings (scaled by `IQ_SCALE`), workload construction, and the
//! per-scheme measurement loops; the `figures` binary prints each figure's
//! series as rows; the Criterion benches under `benches/` give per-figure
//! statistical timings at smoke scale.

// Timing is this crate's job: wall-clock constructors are unbanned here
// (clippy.toml disallowed-methods; see iq-lint wallclock-in-core).
#![allow(clippy::disallowed_methods)]
#![warn(missing_docs)]

pub mod harness;
pub mod record;

pub use harness::{
    build_instance, measure_index_costs, measure_processing, print_settings, IndexCosts,
    ProcessingMetrics, Scheme, Settings,
};
pub use record::{BenchEntry, Recorder};
