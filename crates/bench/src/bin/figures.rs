//! Regenerates every table and figure of the paper's evaluation as
//! printed rows.
//!
//! ```text
//! cargo run --release -p iq-bench --bin figures            # everything
//! cargo run --release -p iq-bench --bin figures fig7 fig13 # a subset
//! IQ_SCALE=1 cargo run --release -p iq-bench --bin figures # paper scale
//! cargo run --release -p iq-bench --bin figures -- --json out.json
//! ```
//!
//! `--json PATH` additionally records every measured point as a flat
//! `name`/`value`/`unit` series (see [`iq_bench::record`]) so CI can diff
//! figure data across commits without scraping the printed tables.
//!
//! Figure ↔ experiment map (see DESIGN.md §6 and EXPERIMENTS.md):
//! fig4  index time/size vs |D| (Efficient-IQ vs DominantGraph)
//! fig5  index time/size vs |Q| (Efficient-IQ vs bare R-tree)
//! fig6  index cost on VEHICLE/HOUSE (all three)
//! fig7–9   IQ time & cost-per-hit vs |D| on IN/CO/AC (4 schemes)
//! fig10–11 IQ time & cost-per-hit vs |Q| on UN/CL (4 schemes)
//! fig12 IQ time & cost-per-hit on VEHICLE/HOUSE (4 schemes)
//! fig13 Efficient-IQ scalability vs number of variables (1–5)

use iq_bench::harness::{
    build_instance, measure_index_costs, measure_processing, print_settings, Scheme, Settings,
};
use iq_bench::record::Recorder;
use iq_core::{Instance, SearchOptions};
use iq_workload::{real, real_instance, Distribution, QueryDistribution};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut rec = Recorder::disabled();
    if let Some(pos) = args.iter().position(|a| a == "--json") {
        if pos + 1 >= args.len() {
            eprintln!("--json requires a file path");
            std::process::exit(2);
        }
        rec = Recorder::to_path(args.remove(pos + 1));
        args.remove(pos);
    }
    let all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |name: &str| all || args.iter().any(|a| a == name);

    let settings = Settings::from_env();
    print_settings(&settings);
    println!();

    if want("fig4") {
        fig4(&settings, &mut rec);
    }
    if want("fig5") {
        fig5(&settings, &mut rec);
    }
    if want("fig6") {
        fig6(&settings, &mut rec);
    }
    if want("fig7") {
        fig_processing_objects(&settings, Distribution::Independent, 7, &mut rec);
    }
    if want("fig8") {
        fig_processing_objects(&settings, Distribution::Correlated, 8, &mut rec);
    }
    if want("fig9") {
        fig_processing_objects(&settings, Distribution::AntiCorrelated, 9, &mut rec);
    }
    if want("fig10") {
        fig_processing_queries(&settings, QueryDistribution::Uniform, 10, &mut rec);
    }
    if want("fig11") {
        fig_processing_queries(&settings, QueryDistribution::Clustered, 11, &mut rec);
    }
    if want("fig12") {
        fig12(&settings, &mut rec);
    }
    if want("fig13") {
        fig13(&settings, &mut rec);
    }

    match rec.finish() {
        Ok(Some(path)) => println!(
            "wrote {} series entries to {}",
            rec.entries().len(),
            path.display()
        ),
        Ok(None) => {}
        Err(e) => {
            eprintln!("failed to write --json output: {e}");
            std::process::exit(1);
        }
    }
}

/// A uniform candidate cap keeps the slow comparator evaluators tractable
/// at scaled |Q| without changing any scheme's relative standing (see
/// EXPERIMENTS.md, "methodology deviations").
fn processing_opts() -> SearchOptions {
    SearchOptions {
        candidate_cap: Some(64),
        ..SearchOptions::default()
    }
}

fn fig4(s: &Settings, rec: &mut Recorder) {
    println!("== Figure 4: indexing cost vs number of objects (linear utilities) ==");
    println!(
        "{:>8} | {:>16} {:>16} | {:>14} {:>14}",
        "|D|", "Efficient-IQ (s)", "DominantGraph (s)", "Eff size (%)", "DG size (%)"
    );
    for &n in &s.object_sweep {
        // The paper averages over the synthetic distributions; so do we.
        let mut eff_t = 0.0;
        let mut dg_t = 0.0;
        let mut eff_s = 0.0;
        let mut dg_s = 0.0;
        let dists = [
            Distribution::Independent,
            Distribution::Correlated,
            Distribution::AntiCorrelated,
        ];
        for (i, &dist) in dists.iter().enumerate() {
            let inst = build_instance(
                dist,
                QueryDistribution::Uniform,
                n,
                s.num_queries,
                s.dims,
                s.k_max,
                40 + i as u64,
            );
            let c = measure_index_costs(&inst);
            eff_t += c.efficient_time;
            dg_t += c.dominant_graph_time;
            eff_s += c.efficient_size_pct;
            dg_s += c.dominant_graph_size_pct;
        }
        let k = dists.len() as f64;
        println!(
            "{:>8} | {:>16.3} {:>16.3} | {:>14.1} {:>14.1}",
            n,
            eff_t / k,
            dg_t / k,
            eff_s / k,
            dg_s / k
        );
        rec.record(
            format!("fig4/|D|={n}/Efficient-IQ/build_time"),
            eff_t / k,
            "s",
        );
        rec.record(
            format!("fig4/|D|={n}/DominantGraph/build_time"),
            dg_t / k,
            "s",
        );
        rec.record(format!("fig4/|D|={n}/Efficient-IQ/size"), eff_s / k, "pct");
        rec.record(format!("fig4/|D|={n}/DominantGraph/size"), dg_s / k, "pct");
    }
    println!();
}

fn fig5(s: &Settings, rec: &mut Recorder) {
    println!("== Figure 5: indexing cost vs number of queries (UN, non-linear allowed) ==");
    println!(
        "{:>8} | {:>16} {:>12} | {:>14} {:>14}",
        "|Q|", "Efficient-IQ (s)", "R-tree (s)", "Eff size (%)", "R-tree size (%)"
    );
    for &m in &s.query_sweep {
        let inst = build_instance(
            Distribution::Independent,
            QueryDistribution::Uniform,
            s.num_objects,
            m,
            s.dims,
            s.k_max,
            50,
        );
        let c = measure_index_costs(&inst);
        println!(
            "{:>8} | {:>16.3} {:>12.3} | {:>14.1} {:>14.1}",
            m, c.efficient_time, c.rtree_time, c.efficient_size_pct, c.rtree_size_pct
        );
        rec.record(
            format!("fig5/|Q|={m}/Efficient-IQ/build_time"),
            c.efficient_time,
            "s",
        );
        rec.record(format!("fig5/|Q|={m}/R-tree/build_time"), c.rtree_time, "s");
        rec.record(
            format!("fig5/|Q|={m}/Efficient-IQ/size"),
            c.efficient_size_pct,
            "pct",
        );
        rec.record(format!("fig5/|Q|={m}/R-tree/size"), c.rtree_size_pct, "pct");
    }
    println!();
}

fn real_datasets(s: &Settings) -> Vec<(&'static str, Instance)> {
    let scale = s.num_objects as f64 / 100_000.0;
    let mut rng = StdRng::seed_from_u64(60);
    let vehicle = real::vehicle_scaled(
        ((real::VEHICLE_ROWS as f64 * scale) as usize).max(100),
        &mut rng,
    );
    let house = real::house_scaled(
        ((real::HOUSE_ROWS as f64 * scale) as usize).max(100),
        &mut rng,
    );
    // "For each real-world dataset, we use a randomly generated query set
    // that is one third of its size" (§6.3.2).
    vec![
        (
            "VEHICLE",
            real_instance(
                &vehicle,
                QueryDistribution::Uniform,
                vehicle.len() / 3,
                s.k_max,
                61,
            ),
        ),
        (
            "HOUSE",
            real_instance(
                &house,
                QueryDistribution::Uniform,
                house.len() / 3,
                s.k_max,
                62,
            ),
        ),
    ]
}

fn fig6(s: &Settings, rec: &mut Recorder) {
    println!("== Figure 6: indexing cost on the real-world datasets ==");
    println!(
        "{:>8} | {:>13} {:>10} {:>10} | {:>9} {:>9} {:>9}",
        "dataset", "Efficient (s)", "R-tree (s)", "DG (s)", "Eff (%)", "R-tree(%)", "DG (%)"
    );
    for (name, inst) in real_datasets(s) {
        let c = measure_index_costs(&inst);
        println!(
            "{:>8} | {:>13.3} {:>10.3} {:>10.3} | {:>9.1} {:>9.1} {:>9.1}",
            name,
            c.efficient_time,
            c.rtree_time,
            c.dominant_graph_time,
            c.efficient_size_pct,
            c.rtree_size_pct,
            c.dominant_graph_size_pct
        );
        rec.record(
            format!("fig6/{name}/Efficient-IQ/build_time"),
            c.efficient_time,
            "s",
        );
        rec.record(format!("fig6/{name}/R-tree/build_time"), c.rtree_time, "s");
        rec.record(
            format!("fig6/{name}/DominantGraph/build_time"),
            c.dominant_graph_time,
            "s",
        );
        rec.record(
            format!("fig6/{name}/Efficient-IQ/size"),
            c.efficient_size_pct,
            "pct",
        );
        rec.record(format!("fig6/{name}/R-tree/size"), c.rtree_size_pct, "pct");
        rec.record(
            format!("fig6/{name}/DominantGraph/size"),
            c.dominant_graph_size_pct,
            "pct",
        );
    }
    println!();
}

fn print_processing_header(x_label: &str) {
    print!("{x_label:>8} |");
    for scheme in Scheme::ALL {
        print!(" {:>14}", format!("{} ms", scheme.label()));
    }
    print!(" |");
    for scheme in Scheme::ALL {
        print!(" {:>14}", format!("{} c/h", scheme.label()));
    }
    println!();
}

fn print_processing_row(
    series: &str,
    x: String,
    inst: &Instance,
    s: &Settings,
    seed: u64,
    rec: &mut Recorder,
) {
    let opts = processing_opts();
    let mut times = Vec::new();
    let mut ratios = Vec::new();
    for scheme in Scheme::ALL {
        let m = measure_processing(inst, scheme, s, &opts, seed);
        rec.record(
            format!("{series}/{}/time", scheme.label()),
            m.avg_time_ms,
            "ms",
        );
        rec.record(
            format!("{series}/{}/cost_per_hit", scheme.label()),
            m.avg_cost_per_hit,
            "cost/hit",
        );
        times.push(m.avg_time_ms);
        ratios.push(m.avg_cost_per_hit);
    }
    print!("{x:>8} |");
    for t in &times {
        print!(" {t:>14.1}");
    }
    print!(" |");
    for r in &ratios {
        print!(" {r:>14.4}");
    }
    println!();
}

fn fig_processing_objects(s: &Settings, dist: Distribution, fignum: u32, rec: &mut Recorder) {
    println!(
        "== Figure {fignum}: IQ processing vs number of objects on {} ==",
        dist.label()
    );
    print_processing_header("|D|");
    for &n in &s.object_sweep {
        let inst = build_instance(
            dist,
            QueryDistribution::Uniform,
            n,
            s.num_queries,
            s.dims,
            s.k_max,
            70 + fignum as u64,
        );
        print_processing_row(
            &format!("fig{fignum}/|D|={n}"),
            n.to_string(),
            &inst,
            s,
            700 + fignum as u64,
            rec,
        );
    }
    println!();
}

fn fig_processing_queries(s: &Settings, qdist: QueryDistribution, fignum: u32, rec: &mut Recorder) {
    println!(
        "== Figure {fignum}: IQ processing vs number of queries on {} ==",
        qdist.label()
    );
    print_processing_header("|Q|");
    for &m in &s.query_sweep {
        let inst = build_instance(
            Distribution::Independent,
            qdist,
            s.num_objects,
            m,
            s.dims,
            s.k_max,
            80 + fignum as u64,
        );
        print_processing_row(
            &format!("fig{fignum}/|Q|={m}"),
            m.to_string(),
            &inst,
            s,
            800 + fignum as u64,
            rec,
        );
    }
    println!();
}

fn fig12(s: &Settings, rec: &mut Recorder) {
    println!("== Figure 12: IQ processing on the real-world datasets ==");
    print_processing_header("dataset");
    for (name, inst) in real_datasets(s) {
        print_processing_row(
            &format!("fig12/{name}"),
            name.to_string(),
            &inst,
            s,
            120,
            rec,
        );
    }
    println!();
}

fn fig13(s: &Settings, rec: &mut Recorder) {
    println!("== Figure 13: Efficient-IQ scalability vs number of variables ==");
    println!("{:>8} | {:>14} | {:>14}", "vars", "time (ms)", "cost/hit");
    for d in 1..=5usize {
        let inst = build_instance(
            Distribution::Independent,
            QueryDistribution::Uniform,
            s.num_objects,
            s.num_queries,
            d,
            s.k_max,
            130 + d as u64,
        );
        let m = measure_processing(&inst, Scheme::EfficientIq, s, &processing_opts(), 131);
        println!(
            "{:>8} | {:>14.1} | {:>14.4}",
            d, m.avg_time_ms, m.avg_cost_per_hit
        );
        rec.record(
            format!("fig13/vars={d}/Efficient-IQ/time"),
            m.avg_time_ms,
            "ms",
        );
        rec.record(
            format!("fig13/vars={d}/Efficient-IQ/cost_per_hit"),
            m.avg_cost_per_hit,
            "cost/hit",
        );
    }
    println!();
}
