//! `loadgen`: a load-generating client for `iq-server`.
//!
//! Spawns an in-process server on an ephemeral port, seeds it with a
//! deterministic `iq-workload` instance, then drives it through two
//! phases — a 1-connection baseline and an N-connection run of the same
//! per-connection request count — and reports per-kind throughput,
//! client-observed latency percentiles, and the N-conn/1-conn IMPROVE
//! scaling ratio.
//!
//! The scaling ratio is bounded by physical cores: CPU-bound IMPROVE
//! cannot scale past `min(cores, connections)`, so on a 1-core box the
//! honest ratio is ~1× regardless of architecture. The number is
//! *measured*, never assumed — CI runs this on multi-core machines where
//! the concurrency actually shows (see DESIGN.md §11).
//!
//! With `--durability` the serving phases are replaced by a durability
//! benchmark: an in-process durable engine (no TCP) timed through a
//! write-only workload once per fsync mode (`always`, `batch:64`,
//! `never`), plus a timed recovery replay and an auto-checkpoint
//! exercise. The JSON rows feed CI's `recovery-smoke` job against the
//! committed `BENCH_pr4.json` baseline.
//!
//! ```text
//! loadgen [--objects N] [--queries N] [--dim D] [--seed S] [--tau T]
//!         [--requests N] [--conns N] [--workers N] [--queue N]
//!         [--json PATH] [--check-stats] [--durability] [--writes N]
//! ```

// Timing is this crate's job: wall-clock constructors are unbanned here
// (clippy.toml disallowed-methods; see iq-lint wallclock-in-core).
#![allow(clippy::disallowed_methods)]
use iq_core::{ExecPolicy, Instance};
use iq_server::{
    protocol, Client, DurabilityConfig, Engine, FsyncMode, Metrics, ServerConfig, ServerHandle,
};
use iq_workload::{
    seed_statements, standard_instance, Distribution, QueryDistribution, SqlStream, StatementMix,
};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

struct Config {
    objects: usize,
    queries: usize,
    dim: usize,
    seed: u64,
    tau: usize,
    requests: usize,
    conns: usize,
    workers: usize,
    queue: usize,
    json: Option<String>,
    check_stats: bool,
    durability: bool,
    writes: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            objects: 300,
            queries: 100,
            dim: 2,
            seed: 42,
            tau: 4,
            requests: 40,
            conns: 8,
            workers: 8,
            queue: 256,
            json: None,
            check_stats: false,
            durability: false,
            writes: 400,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--objects N] [--queries N] [--dim D] [--seed S] [--tau T] \
         [--requests PER_CONN] [--conns N] [--workers N] [--queue N] \
         [--json PATH] [--check-stats] [--durability] [--writes N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Config {
    let mut cfg = Config::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--objects" => cfg.objects = value().parse().unwrap_or_else(|_| usage()),
            "--queries" => cfg.queries = value().parse().unwrap_or_else(|_| usage()),
            "--dim" => cfg.dim = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => cfg.seed = value().parse().unwrap_or_else(|_| usage()),
            "--tau" => cfg.tau = value().parse().unwrap_or_else(|_| usage()),
            "--requests" => cfg.requests = value().parse().unwrap_or_else(|_| usage()),
            "--conns" => cfg.conns = value().parse().unwrap_or_else(|_| usage()),
            "--workers" => cfg.workers = value().parse().unwrap_or_else(|_| usage()),
            "--queue" => cfg.queue = value().parse().unwrap_or_else(|_| usage()),
            "--json" => cfg.json = Some(value()),
            "--check-stats" => cfg.check_stats = true,
            "--durability" => cfg.durability = true,
            "--writes" => cfg.writes = value().parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    cfg
}

/// Client-side accounting for one phase: latencies per statement kind.
#[derive(Default)]
struct PhaseStats {
    select_us: Vec<u64>,
    improve_us: Vec<u64>,
    errors: usize,
    elapsed_s: f64,
}

fn kind_of(sql: &str) -> &'static str {
    if sql.starts_with("SELECT") {
        "select"
    } else {
        "improve"
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Drives `conns` connections, each issuing `requests` statements from a
/// deterministic read-only stream, and merges the client-side timings.
fn run_phase(
    handle: &ServerHandle,
    instance: &Instance,
    conns: usize,
    requests: usize,
    tau: usize,
    seed: u64,
) -> PhaseStats {
    let addr = handle.addr();
    let started = Instant::now();
    let threads: Vec<_> = (0..conns)
        .map(|c| {
            let mut stream = SqlStream::new(
                instance,
                "objects",
                "queries",
                StatementMix::read_only(),
                tau,
                seed ^ (0x9e37_79b9_7f4a_7c15 * (c as u64 + 1)),
            );
            let stmts: Vec<String> = (0..requests).map(|_| stream.next_statement()).collect();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut local = PhaseStats::default();
                for sql in &stmts {
                    let t0 = Instant::now();
                    let response = client.request(sql).expect("request");
                    let us = t0.elapsed().as_micros() as u64;
                    if !protocol::is_ok(&response) {
                        local.errors += 1;
                        continue;
                    }
                    match kind_of(sql) {
                        "select" => local.select_us.push(us),
                        _ => local.improve_us.push(us),
                    }
                }
                local
            })
        })
        .collect();

    let mut merged = PhaseStats::default();
    for t in threads {
        let local = t.join().expect("client thread");
        merged.select_us.extend(local.select_us);
        merged.improve_us.extend(local.improve_us);
        merged.errors += local.errors;
    }
    merged.elapsed_s = started.elapsed().as_secs_f64();
    merged.select_us.sort_unstable();
    merged.improve_us.sort_unstable();
    merged
}

/// Writes the CI-facing BENCH JSON shape: `{"benches": [{name, value,
/// unit}, …]}` — what `scripts/bench_diff.py` consumes.
fn write_bench_json(path: &str, rows: &[(String, f64, &str)]) {
    let mut out = String::from("{\n  \"benches\": [\n");
    for (i, (name, value, unit)) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{ \"name\": \"{name}\", \"value\": {value}, \"unit\": \"{unit}\" }}"
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write json");
    eprintln!("wrote {path}");
}

/// Opens a durable engine on `dir` (sequential exec — durability cost is
/// what's under test, not search parallelism).
fn open_durable(
    dir: &std::path::Path,
    fsync: FsyncMode,
    checkpoint_bytes: Option<u64>,
) -> (Engine, iq_server::Recovery) {
    Engine::with_storage(
        Arc::new(Metrics::new()),
        ExecPolicy::sequential(),
        DurabilityConfig {
            data_dir: dir.to_path_buf(),
            fsync,
            checkpoint_bytes,
        },
    )
    .expect("open durable engine")
}

/// One durability phase: `writes` single-row INSERTs through a fresh
/// durable engine under `fsync`, then a timed recovery replay of the same
/// directory. Returns (write rps, recovery-replay rps, recovered dump).
fn durability_phase(dir: &std::path::Path, fsync: FsyncMode, writes: usize) -> (f64, f64, String) {
    let _ = std::fs::remove_dir_all(dir);
    let (engine, _) = open_durable(dir, fsync, None);
    engine
        .execute_sql("CREATE TABLE t (id INT, x FLOAT)")
        .expect("create");
    let started = Instant::now();
    for i in 0..writes {
        let v = (i * 37 % 1000) as f64 / 1000.0;
        engine
            .execute_sql(&format!("INSERT INTO t VALUES ({i}, {v})"))
            .expect("insert");
    }
    let write_rps = writes as f64 / started.elapsed().as_secs_f64().max(1e-9);
    drop(engine); // clean close: flushes any unsynced batch tail

    let started = Instant::now();
    let (engine, recovery) = open_durable(dir, fsync, None);
    let replay_rps = recovery.statements.len() as f64 / started.elapsed().as_secs_f64().max(1e-9);
    assert_eq!(
        recovery.statements.len(),
        writes + 1,
        "every acknowledged write recovered"
    );
    (write_rps, replay_rps, engine.dump_tables())
}

/// The `--durability` mode: write throughput per fsync discipline,
/// recovery replay rate, and an auto-checkpoint exercise — all in-process
/// (the WAL sits under the engine, not the TCP layer).
fn run_durability(cfg: &Config) {
    let base = std::env::temp_dir().join(format!("iq_loadgen_dur_{}", std::process::id()));
    let modes: [(&str, FsyncMode); 3] = [
        ("always", FsyncMode::Always),
        ("batch64", "batch:64".parse().expect("batch mode")),
        ("never", FsyncMode::Never),
    ];
    eprintln!("durability: {} writes per fsync mode", cfg.writes);

    let mut rows: Vec<(String, f64, &str)> = Vec::new();
    let mut dumps: Vec<String> = Vec::new();
    let mut replay_always = 0.0;
    for (label, fsync) in modes {
        let (write_rps, replay_rps, dump) = durability_phase(&base.join(label), fsync, cfg.writes);
        eprintln!(
            "  fsync {label}: {write_rps:.0} writes/s, recovery replay {replay_rps:.0} stmts/s"
        );
        rows.push((
            format!("durability/fsync_{label}/write_throughput"),
            write_rps,
            "rps",
        ));
        if label == "always" {
            replay_always = replay_rps;
        }
        dumps.push(dump);
    }
    // Same writes, any fsync mode ⇒ byte-identical recovered state.
    assert!(
        dumps.windows(2).all(|w| w[0] == w[1]),
        "fsync mode changed the recovered state"
    );
    rows.push((
        "durability/recovery_replay_rate".into(),
        replay_always,
        "rps",
    ));

    // Auto-checkpoint: a small threshold must rotate the WAL mid-run and
    // recovery must come back through the snapshot to the same state.
    let ckpt_dir = base.join("autockpt");
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let (engine, _) = open_durable(&ckpt_dir, FsyncMode::Always, Some(4096));
    engine
        .execute_sql("CREATE TABLE t (id INT, x FLOAT)")
        .expect("create");
    for i in 0..cfg.writes {
        let v = (i * 37 % 1000) as f64 / 1000.0;
        engine
            .execute_sql(&format!("INSERT INTO t VALUES ({i}, {v})"))
            .expect("insert");
    }
    let checkpoints = engine
        .metrics()
        .checkpoints
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(checkpoints >= 1, "auto-checkpoint never fired");
    let before = engine.dump_tables();
    drop(engine);
    let (engine, recovery) = open_durable(&ckpt_dir, FsyncMode::Always, Some(4096));
    assert!(
        recovery.snapshot_statements > 0,
        "recovery used the snapshot"
    );
    assert_eq!(engine.dump_tables(), before, "checkpointed state survived");
    assert_eq!(
        engine.dump_tables(),
        dumps[0],
        "checkpoint changed the state"
    );
    eprintln!(
        "  auto-checkpoint: {checkpoints} rotation(s), recovered through generation {}",
        recovery.generation
    );
    rows.push((
        "durability/auto_checkpoint/rotations".into(),
        checkpoints as f64,
        "count",
    ));
    rows.push(("durability/writes".into(), cfg.writes as f64, "count"));

    let _ = std::fs::remove_dir_all(&base);
    if let Some(path) = &cfg.json {
        write_bench_json(path, &rows);
    }
}

fn main() {
    let cfg = parse_args();
    if cfg.durability {
        run_durability(&cfg);
        return;
    }

    let exec = ExecPolicy::share_across(cfg.workers);
    let metrics = Arc::new(Metrics::new());
    let engine = Arc::new(Engine::new(Arc::clone(&metrics), exec));
    let handle = iq_server::start(
        engine,
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: cfg.workers,
            queue_capacity: cfg.queue,
            default_deadline: None,
        },
    )
    .expect("start in-process server");

    // Seed over the wire, like any client would.
    let instance = standard_instance(
        Distribution::Independent,
        QueryDistribution::Uniform,
        cfg.objects,
        cfg.queries,
        cfg.dim,
        3,
        cfg.seed,
    );
    let mut seeder = Client::connect(handle.addr()).expect("connect");
    for sql in seed_statements(&instance, "objects", "queries", 128) {
        let r = seeder.request(&sql).expect("seed request");
        assert!(protocol::is_ok(&r), "seed failed: {r}");
    }
    // Warm the prepared-index cache so both phases measure serving, not
    // the one-time build.
    let warm = format!(
        "IMPROVE objects USING queries WHERE id = 0 MINCOST {}",
        cfg.tau
    );
    assert!(protocol::is_ok(&seeder.request(&warm).expect("warmup")));

    eprintln!(
        "loadgen: {} objects, {} queries, dim {}, tau {}, {} workers",
        cfg.objects, cfg.queries, cfg.dim, cfg.tau, cfg.workers
    );

    let base = run_phase(&handle, &instance, 1, cfg.requests, cfg.tau, cfg.seed);
    let multi = run_phase(
        &handle,
        &instance,
        cfg.conns,
        cfg.requests,
        cfg.tau,
        cfg.seed,
    );

    let base_improve_rps = base.improve_us.len() as f64 / base.elapsed_s.max(1e-9);
    let multi_improve_rps = multi.improve_us.len() as f64 / multi.elapsed_s.max(1e-9);
    let ratio = multi_improve_rps / base_improve_rps.max(1e-9);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let report = |label: &str, s: &PhaseStats| {
        eprintln!(
            "{label}: {:.2}s, {} improve + {} select ok, {} errors",
            s.elapsed_s,
            s.improve_us.len(),
            s.select_us.len(),
            s.errors
        );
        eprintln!(
            "  improve p50/p95/p99: {}/{}/{} us; throughput {:.1} rps",
            percentile(&s.improve_us, 50.0),
            percentile(&s.improve_us, 95.0),
            percentile(&s.improve_us, 99.0),
            s.improve_us.len() as f64 / s.elapsed_s.max(1e-9),
        );
    };
    report("1-conn baseline", &base);
    report(&format!("{}-conn", cfg.conns), &multi);
    eprintln!(
        "scaling ratio ({}conn/1conn improve throughput): {:.2}x on {} core(s) \
         [physical bound ~= min(cores, conns) = {}]",
        cfg.conns,
        ratio,
        cores,
        cores.min(cfg.conns),
    );

    if cfg.check_stats {
        let r = seeder.request("SHOW STATS").expect("SHOW STATS");
        let stats = protocol::parse_stats(&r).expect("stats decode");
        let get = |name: &str| stats.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v);
        // +1 for the warmup improve; the seeder's SHOW STATS itself isn't
        // counted until after it's answered.
        let want_improve = (base.improve_us.len() + multi.improve_us.len() + 1) as i64;
        let want_select = (base.select_us.len() + multi.select_us.len()) as i64;
        assert_eq!(get("improve_ok"), want_improve, "improve_ok mismatch");
        assert_eq!(get("select_ok"), want_select, "select_ok mismatch");
        assert_eq!(get("queue_depth"), 0, "queue drained");
        eprintln!(
            "check-stats: server counters match client-side counts \
             (improve_ok={want_improve}, select_ok={want_select})"
        );
    }

    if let Some(path) = &cfg.json {
        let mut rows: Vec<(String, f64, &str)> = Vec::new();
        let mut phase_rows = |label: &str, s: &PhaseStats| {
            let rps = s.improve_us.len() as f64 / s.elapsed_s.max(1e-9);
            rows.push((format!("serve/{label}/improve_throughput"), rps, "rps"));
            for (p, tag) in [(50.0, "p50"), (95.0, "p95"), (99.0, "p99")] {
                rows.push((
                    format!("serve/{label}/improve_{tag}_us"),
                    percentile(&s.improve_us, p) as f64,
                    "us",
                ));
            }
        };
        phase_rows("1conn", &base);
        phase_rows(&format!("{}conn", cfg.conns), &multi);
        rows.push(("serve/scaling_ratio".into(), ratio, "x"));
        rows.push(("serve/cores".into(), cores as f64, "count"));

        write_bench_json(path, &rows);
    }

    let _ = seeder.request("SHUTDOWN").expect("shutdown");
    handle.join();
}
