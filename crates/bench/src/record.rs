//! Machine-readable figure output.
//!
//! `figures --json out.json` records every printed measurement as a flat
//! `name`/`value`/`unit` series — the same shape the
//! `github-action-benchmark` tooling consumes (`BENCHMARK_DATA.benches` in
//! its `data.js`), so a CI run can diff figure series across commits
//! without scraping the human-readable tables.
//!
//! The writer is hand-rolled: the workspace is built offline and the
//! series names/units are plain ASCII, so a serde dependency would buy
//! nothing.

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

/// One measured point: `fig7/|D|=2000/Efficient-IQ/time` = `12.3 ms`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Slash-separated series key: `figure/x/scheme/metric`.
    pub name: String,
    /// The measured value.
    pub value: f64,
    /// The unit the value is expressed in (`ms`, `s`, `pct`, …).
    pub unit: &'static str,
}

/// Collects [`BenchEntry`] points while the figures print, and writes them
/// out as one JSON document at the end of the run.
#[derive(Debug, Default)]
pub struct Recorder {
    path: Option<PathBuf>,
    entries: Vec<BenchEntry>,
}

impl Recorder {
    /// A recorder that keeps nothing (no `--json` flag given).
    pub fn disabled() -> Self {
        Recorder::default()
    }

    /// A recorder that will write to `path` on [`Recorder::finish`].
    pub fn to_path(path: impl Into<PathBuf>) -> Self {
        Recorder {
            path: Some(path.into()),
            entries: Vec::new(),
        }
    }

    /// Whether entries are being kept.
    pub fn enabled(&self) -> bool {
        self.path.is_some()
    }

    /// Records one measurement. A no-op when disabled, so the figure code
    /// can record unconditionally.
    pub fn record(&mut self, name: impl Into<String>, value: f64, unit: &'static str) {
        if self.enabled() {
            self.entries.push(BenchEntry {
                name: name.into(),
                value,
                unit,
            });
        }
    }

    /// The entries recorded so far.
    pub fn entries(&self) -> &[BenchEntry] {
        &self.entries
    }

    /// Serializes the recorded series; `None` when disabled.
    pub fn to_json(&self) -> Option<String> {
        self.path.as_ref()?;
        Some(render_json(&self.entries))
    }

    /// Writes the JSON document to the `--json` path, if one was given.
    /// Returns the path written to.
    pub fn finish(&self) -> io::Result<Option<&Path>> {
        match &self.path {
            None => Ok(None),
            Some(path) => {
                std::fs::write(path, render_json(&self.entries))?;
                Ok(Some(path))
            }
        }
    }
}

fn render_json(entries: &[BenchEntry]) -> String {
    let mut out = String::from("{\n  \"benches\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{ \"name\": \"{}\", \"value\": {}, \"unit\": \"{}\" }}{sep}",
            escape(&e.name),
            finite(e.value),
            escape(e.unit),
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// JSON has no NaN/Infinity literals; a measurement that produced one is a
/// bug upstream, but the document must still parse.
fn finite(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_keeps_nothing() {
        let mut r = Recorder::disabled();
        r.record("fig4/x/y", 1.0, "s");
        assert!(r.entries().is_empty());
        assert_eq!(r.to_json(), None);
        assert_eq!(r.finish().unwrap(), None);
    }

    #[test]
    fn json_document_is_well_formed() {
        let mut r = Recorder::to_path("/dev/null");
        r.record("fig7/|D|=2000/Efficient-IQ/time", 12.5, "ms");
        r.record("fig7/|D|=2000/Efficient-IQ/cost_per_hit", 0.031, "cost/hit");
        r.record("weird \"name\"\\", f64::NAN, "s");
        let json = r.to_json().unwrap();
        assert!(json.starts_with("{\n  \"benches\": [\n"));
        assert!(json.contains(
            "{ \"name\": \"fig7/|D|=2000/Efficient-IQ/time\", \"value\": 12.5, \"unit\": \"ms\" },"
        ));
        assert!(json.contains("\\\"name\\\"\\\\"));
        assert!(json.contains("\"value\": null"));
        // Balanced braces/brackets, no trailing comma before the close.
        assert!(json.ends_with("  ]\n}\n"));
        assert!(!json.contains(",\n  ]"));
    }

    #[test]
    fn finish_writes_the_file() {
        let path = std::env::temp_dir().join("iq_recorder_test.json");
        let mut r = Recorder::to_path(&path);
        r.record("a/b", 2.0, "s");
        let written = r.finish().unwrap().unwrap();
        assert_eq!(written, path);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"name\": \"a/b\""));
        let _ = std::fs::remove_file(&path);
    }
}
