//! End-to-end tests over real TCP: a server on an ephemeral port, real
//! clients, full request/response round-trips including parse errors,
//! deadlines, stats, and graceful shutdown.

use iq_core::ExecPolicy;
use iq_server::{protocol, Client, Engine, Metrics, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

fn start_server(workers: usize, queue: usize) -> iq_server::ServerHandle {
    let engine = Arc::new(Engine::new(
        Arc::new(Metrics::new()),
        ExecPolicy::sequential(),
    ));
    iq_server::start(
        engine,
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers,
            queue_capacity: queue,
            default_deadline: None,
        },
    )
    .expect("bind ephemeral port")
}

fn seed(c: &mut Client) {
    for sql in [
        "CREATE TABLE objects (id INT, a1 FLOAT, a2 FLOAT)",
        "INSERT INTO objects VALUES (0, 0.9, 0.8), (1, 0.2, 0.3), (2, 0.5, 0.5)",
        "CREATE TABLE queries (w1 FLOAT, w2 FLOAT, k INT)",
        "INSERT INTO queries VALUES (0.9, 0.1, 1), (0.5, 0.5, 2), (0.1, 0.9, 1)",
    ] {
        let r = c.request(sql).unwrap();
        assert!(protocol::is_ok(&r), "seed failed: {r}");
    }
}

#[test]
fn crud_round_trips_over_tcp() {
    let handle = start_server(2, 16);
    let mut c = Client::connect(handle.addr()).unwrap();
    seed(&mut c);

    let r = c
        .request("SELECT id, a1 FROM objects WHERE id = 1")
        .unwrap();
    assert_eq!(
        r,
        "{\"ok\":true,\"outcome\":\"rows\",\"columns\":[\"id\",\"a1\"],\"rows\":[[1,0.2]]}"
    );

    let r = c
        .request("UPDATE objects SET a1 = 0.25 WHERE id = 1")
        .unwrap();
    assert_eq!(r, "{\"ok\":true,\"outcome\":\"updated\",\"count\":1}");

    let r = c
        .request("IMPROVE objects USING queries WHERE id = 2 MINCOST 2")
        .unwrap();
    assert!(protocol::is_ok(&r), "{r}");
    assert!(r.contains("\"outcome\":\"rows\""));

    let r = c.request("SHOW TABLES").unwrap();
    assert!(r.contains("objects") && r.contains("queries"), "{r}");

    handle.shutdown();
    handle.join();
}

#[test]
fn parse_errors_round_trip_with_byte_offsets() {
    let handle = start_server(1, 8);
    let mut c = Client::connect(handle.addr()).unwrap();

    // Duplicate CREATE TABLE column: rejected at parse time, offset of the
    // second occurrence survives the wire (satellite 1's contract).
    let sql = "CREATE TABLE t (id INT, a FLOAT, a FLOAT)";
    let r = c.request(sql).unwrap();
    assert!(!protocol::is_ok(&r));
    assert_eq!(protocol::error_kind(&r), Some("syntax"));
    let offset = protocol::error_offset(&r).expect("offset present");
    assert_eq!(&sql[offset..offset + 1], "a", "points at the duplicate");

    // Plain syntax error: offset points at the offending byte.
    let r = c.request("SELECT ~ FROM t").unwrap();
    assert_eq!(protocol::error_kind(&r), Some("syntax"));
    assert_eq!(protocol::error_offset(&r), Some(7));

    // Semantic error keeps its kind.
    let r = c.request("SELECT id FROM nope").unwrap();
    assert_eq!(protocol::error_kind(&r), Some("unknown_table"));

    handle.shutdown();
    handle.join();
}

#[test]
fn show_stats_reflects_traffic() {
    let handle = start_server(2, 16);
    let mut c = Client::connect(handle.addr()).unwrap();
    seed(&mut c);
    for _ in 0..3 {
        c.request("SELECT id FROM objects WHERE id = 0").unwrap();
    }
    c.request("SELECT broken ~").unwrap(); // one invalid line

    let r = c.request("SHOW STATS").unwrap();
    let stats = protocol::parse_stats(&r).expect("stats decode");
    let get = |name: &str| {
        stats
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    assert_eq!(get("select_ok"), 3);
    assert_eq!(get("insert_ok"), 2);
    assert_eq!(get("invalid_errors"), 1);
    assert!(get("select_p50_us") > 0, "latency histogram populated");
    assert!(get("connections") >= 1);

    handle.shutdown();
    handle.join();
}

#[test]
fn zero_deadline_times_out_in_queue() {
    let handle = start_server(1, 8);
    let mut c = Client::connect(handle.addr()).unwrap();
    // @0 expires before any worker can dequeue it.
    let r = c.request("@0 SELECT 1 FROM t").unwrap();
    assert_eq!(protocol::error_kind(&r), Some("timed_out"));
    assert_eq!(
        handle
            .engine()
            .metrics()
            .timed_out
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    // The connection is still usable afterwards.
    let r = c.request("SHOW TABLES").unwrap();
    assert!(protocol::is_ok(&r), "{r}");

    handle.shutdown();
    handle.join();
}

#[test]
fn shutdown_statement_drains_gracefully() {
    let handle = start_server(2, 16);
    let mut c = Client::connect(handle.addr()).unwrap();
    seed(&mut c);

    let r = c.request("SHUTDOWN").unwrap();
    assert_eq!(r, "{\"ok\":true,\"outcome\":\"shutdown\"}");
    assert!(handle.is_shutting_down());
    let addr = handle.addr();
    handle.join();

    // After the drain completes the port no longer accepts work: either
    // the connect fails outright or the connection is never served.
    // The connect may still succeed via the OS backlog, but the request
    // must never be served.
    if let Ok(mut c2) = Client::connect(addr) {
        if let Ok(r) = c2.request("SHOW TABLES") {
            panic!("post-shutdown request must not be served: {r}");
        }
    }
}

#[test]
fn full_queue_rejects_with_backpressure() {
    // One worker, capacity-1 queue: stuff it with slow IMPROVEs from many
    // connections and at least one concurrent request must bounce.
    let handle = start_server(1, 1);
    let mut seeder = Client::connect(handle.addr()).unwrap();
    seed(&mut seeder);

    let addr = handle.addr();
    let threads: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let mut rejected = 0;
                for _ in 0..10 {
                    let r = c
                        .request("IMPROVE objects USING queries WHERE id = 0 MINCOST 2")
                        .unwrap();
                    if protocol::error_kind(&r) == Some("rejected") {
                        rejected += 1;
                    } else {
                        assert!(protocol::is_ok(&r), "{r}");
                    }
                }
                rejected
            })
        })
        .collect();
    let total_rejected: u64 = threads.into_iter().map(|t| t.join().unwrap()).sum();
    assert_eq!(
        total_rejected,
        handle
            .engine()
            .metrics()
            .rejected
            .load(std::sync::atomic::Ordering::Relaxed),
        "client-visible rejections match the counter"
    );

    handle.shutdown();
    handle.join();
    std::thread::sleep(Duration::from_millis(10));
}
