//! Concurrency determinism: the serving layer must never change answers.
//!
//! Two contracts, mirroring DESIGN.md §11:
//!
//! 1. **Read determinism** — N client threads issuing the identical
//!    IMPROVE concurrently all receive byte-identical response lines,
//!    equal to what a fresh single-threaded [`iq_dbms::Session`] renders.
//! 2. **Write serializability** — any concurrent interleaving of writes
//!    is equivalent to *some* serial order; the engine's write log records
//!    that order, and replaying it through a fresh session reproduces the
//!    exact final state.

use iq_core::ExecPolicy;
use iq_server::{protocol, Client, Engine, Metrics, ServerConfig, ServerHandle};
use iq_workload::{seed_statements, standard_instance, Distribution, QueryDistribution};
use iq_workload::{SqlStream, StatementMix};
use proptest::prelude::*;
use std::sync::Arc;

fn start_server(workers: usize) -> ServerHandle {
    // share_across keeps worker-level concurrency honest even when the
    // per-request ExecPolicy would itself fan out.
    let exec = ExecPolicy::share_across(workers);
    let engine = Arc::new(Engine::new(Arc::new(Metrics::new()), exec));
    iq_server::start(
        engine,
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers,
            queue_capacity: 128,
            default_deadline: None,
        },
    )
    .expect("bind")
}

fn seed_sql() -> Vec<String> {
    let instance = standard_instance(
        Distribution::Independent,
        QueryDistribution::Uniform,
        40,
        20,
        2,
        3,
        17,
    );
    seed_statements(&instance, "objects", "queries", 16)
}

#[test]
fn concurrent_identical_improves_are_byte_identical() {
    let handle = start_server(4);
    let mut seeder = Client::connect(handle.addr()).unwrap();
    let seed = seed_sql();
    for sql in &seed {
        assert!(protocol::is_ok(&seeder.request(sql).unwrap()));
    }

    const IMPROVE: &str = "IMPROVE objects USING queries WHERE id = 3 MINCOST 4";
    let addr = handle.addr();
    let lines: Vec<Vec<String>> = (0..6)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                (0..5).map(|_| c.request(IMPROVE).unwrap()).collect()
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|t| t.join().unwrap())
        .collect();

    // Every response from every thread is the same byte string…
    let first = &lines[0][0];
    for per_thread in &lines {
        for line in per_thread {
            assert_eq!(line, first, "concurrent IMPROVE answers diverged");
        }
    }
    // …and equals a fresh sequential session's rendering.
    let mut session = iq_dbms::Session::new();
    for sql in &seed {
        session.execute(sql).unwrap();
    }
    let expected = iq_dbms::outcome_json(&session.execute(IMPROVE).unwrap());
    assert_eq!(*first, expected, "server answer differs from sequential");

    handle.shutdown();
    handle.join();
}

#[test]
fn interleaved_writes_serialize_to_the_write_log_order() {
    let handle = start_server(4);
    let mut seeder = Client::connect(handle.addr()).unwrap();
    let seed = seed_sql();
    for sql in &seed {
        assert!(protocol::is_ok(&seeder.request(sql).unwrap()));
    }

    // Several writer threads race deterministic per-thread streams of
    // mixed reads and writes.
    let instance = standard_instance(
        Distribution::Independent,
        QueryDistribution::Uniform,
        40,
        20,
        2,
        3,
        17,
    );
    let addr = handle.addr();
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let mut stream = SqlStream::new(
                &instance,
                "objects",
                "queries",
                StatementMix::default(),
                3,
                100 + t as u64,
            );
            let stmts: Vec<String> = (0..20).map(|_| stream.next_statement()).collect();
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                for sql in stmts {
                    let r = c.request(&sql).unwrap();
                    assert!(
                        protocol::is_ok(&r) || protocol::error_kind(&r).is_some(),
                        "{r}"
                    );
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    // The write log is the serial history: replaying it through a fresh
    // sequential session must reproduce the engine's exact table state.
    let engine = Arc::clone(handle.engine());
    let mut replay = iq_dbms::Session::new();
    let replay_engine = Engine::new(Arc::new(Metrics::new()), ExecPolicy::sequential());
    {
        // Borrowed guard, not a clone; dropped before dump_tables below.
        let log = engine.write_log();
        assert!(log.len() >= seed.len(), "seed writes are in the log");
        for sql in log.iter() {
            replay.execute(sql).unwrap();
            replay_engine.execute_sql(sql).unwrap();
        }
    }
    assert_eq!(
        engine.dump_tables(),
        replay_engine.dump_tables(),
        "concurrent history is not equivalent to its serialization"
    );

    handle.shutdown();
    handle.join();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random small workloads, random thread/worker shapes: the write-log
    /// replay invariant must hold for all of them.
    #[test]
    fn random_mixed_workloads_serialize(
        workers in 1usize..4,
        clients in 1usize..4,
        per_client in 4usize..12,
        seed in 0u64..1000,
    ) {
        let handle = start_server(workers);
        let mut seeder = Client::connect(handle.addr()).unwrap();
        let instance = standard_instance(
            Distribution::Independent,
            QueryDistribution::Uniform,
            20,
            10,
            2,
            3,
            seed,
        );
        for sql in seed_statements(&instance, "objects", "queries", 8) {
            prop_assert!(protocol::is_ok(&seeder.request(&sql).unwrap()));
        }

        let addr = handle.addr();
        let threads: Vec<_> = (0..clients)
            .map(|t| {
                let mut stream = SqlStream::new(
                    &instance, "objects", "queries",
                    StatementMix::default(), 2, seed ^ (t as u64 + 1),
                );
                let stmts: Vec<String> =
                    (0..per_client).map(|_| stream.next_statement()).collect();
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    for sql in stmts {
                        let _ = c.request(&sql).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }

        let engine = Arc::clone(handle.engine());
        let replay = Engine::new(Arc::new(Metrics::new()), ExecPolicy::sequential());
        for sql in engine.write_log().iter() {
            replay.execute_sql(sql).unwrap();
        }
        prop_assert_eq!(engine.dump_tables(), replay.dump_tables());

        handle.shutdown();
        handle.join();
    }
}
