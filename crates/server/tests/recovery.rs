//! Crash recovery: the durable layer must restore exactly the acknowledged
//! prefix of the write history, whatever the crash looked like.
//!
//! Three attack shapes, mirroring DESIGN.md §12:
//!
//! 1. **Clean restart** — drop the engine, reopen the data dir: state is
//!    byte-identical, with or without intervening checkpoints.
//! 2. **Torn/corrupt WAL** — truncate the log at *any* byte offset (or
//!    flip a bit): startup recovers without error to the longest valid
//!    record prefix, and the recovered tables are byte-identical to
//!    replaying that prefix through a fresh session.
//! 3. **Process kill** — SIGKILL the real `iq-server` binary mid-stream
//!    under `--fsync always`: every acknowledged write survives.

use iq_core::ExecPolicy;
use iq_server::{protocol, DurabilityConfig, Engine, FsyncMode, Metrics};
use iq_storage::wal::{MAGIC, RECORD_HEADER};
use proptest::prelude::*;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A unique scratch directory, removed on drop (kept on panic so a failed
/// run leaves its evidence behind).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("iq_recovery_{tag}_{}_{n}", std::process::id()));
        if dir.exists() {
            std::fs::remove_dir_all(&dir).unwrap();
        }
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
}

fn open_engine(
    dir: &Path,
    fsync: FsyncMode,
    checkpoint_bytes: Option<u64>,
) -> (Engine, iq_storage::Recovery) {
    Engine::with_storage(
        Arc::new(Metrics::new()),
        ExecPolicy::sequential(),
        DurabilityConfig {
            data_dir: dir.to_path_buf(),
            fsync,
            checkpoint_bytes,
        },
    )
    .expect("open durable engine")
}

/// Replays `statements` through a fresh in-memory engine and fingerprints
/// the result — the independent "ground truth" side of every assertion.
fn state_of(statements: &[String]) -> String {
    let e = Engine::new(Arc::new(Metrics::new()), ExecPolicy::sequential());
    for sql in statements {
        e.execute_sql(sql).expect(sql);
    }
    e.dump_tables()
}

fn seed_writes() -> Vec<String> {
    vec![
        "CREATE TABLE objects (id INT, a1 FLOAT, a2 FLOAT)".into(),
        "INSERT INTO objects VALUES (0, 0.9, 0.8), (1, 0.2, 0.3), (2, 0.5, 0.5)".into(),
        "CREATE TABLE queries (w1 FLOAT, w2 FLOAT, k INT)".into(),
        "INSERT INTO queries VALUES (0.9, 0.1, 1), (0.5, 0.5, 2), (0.3, 0.7, 1)".into(),
        "UPDATE objects SET a1 = 0.75 WHERE id = 1".into(),
        "DELETE FROM objects WHERE id = 2".into(),
    ]
}

/// Byte offsets in a generation-0 WAL at which each record *ends*:
/// `boundaries[0]` is end-of-magic (zero records), `boundaries[i]` the end
/// of the i-th record. Computed from the statements alone — independent of
/// the encoder under test.
fn record_boundaries(statements: &[String]) -> Vec<u64> {
    let mut out = vec![MAGIC.len() as u64];
    let mut at = MAGIC.len() as u64;
    for sql in statements {
        at += (RECORD_HEADER + sql.len()) as u64;
        out.push(at);
    }
    out
}

/// Copies every regular file in `src` into a fresh `dst`.
fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        if entry.file_type().unwrap().is_file() {
            std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
        }
    }
}

fn truncate_file(path: &Path, len: u64) {
    let f = std::fs::OpenOptions::new().write(true).open(path).unwrap();
    f.set_len(len).unwrap();
}

#[test]
fn restart_recovers_exact_state() {
    let tmp = TempDir::new("restart");
    let writes = seed_writes();
    let before = {
        let (engine, recovery) = open_engine(tmp.path(), FsyncMode::Always, None);
        assert!(recovery.statements.is_empty(), "fresh dir has no history");
        for sql in &writes {
            engine.execute_sql(sql).unwrap();
        }
        // Reads must not enter the durable history.
        engine
            .execute_sql("SELECT id FROM objects WHERE id = 0")
            .unwrap();
        engine
            .execute_sql("IMPROVE objects USING queries WHERE id = 0 MINCOST 2")
            .unwrap();
        engine.dump_tables()
    };

    let (engine, recovery) = open_engine(tmp.path(), FsyncMode::Always, None);
    assert_eq!(
        recovery.statements, writes,
        "recovered history is the write log"
    );
    assert_eq!(recovery.snapshot_statements, 0);
    assert_eq!(recovery.wal_statements, writes.len());
    assert!(recovery.damage.is_none());
    assert_eq!(engine.dump_tables(), before, "state survives restart");
    // The recovered statements seed the in-memory write log, so the
    // repo-wide replay invariant holds across the restart too.
    assert_eq!(&*engine.write_log(), &writes[..]);
    assert_eq!(engine.dump_tables(), state_of(&writes));
}

#[test]
fn checkpoint_rotates_and_recovery_uses_the_snapshot() {
    let tmp = TempDir::new("checkpoint");
    let writes = seed_writes();
    let before = {
        let (engine, _) = open_engine(tmp.path(), FsyncMode::Always, None);
        for sql in &writes[..4] {
            engine.execute_sql(sql).unwrap();
        }
        match engine.execute_sql("CHECKPOINT").unwrap() {
            iq_dbms::Outcome::Checkpointed {
                generation,
                wal_truncated,
            } => {
                assert_eq!(generation, 1);
                assert_eq!(wal_truncated, 4, "all four records left the wal");
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
        for sql in &writes[4..] {
            engine.execute_sql(sql).unwrap();
        }
        engine.dump_tables()
    };

    let (engine, recovery) = open_engine(tmp.path(), FsyncMode::Always, None);
    assert_eq!(recovery.generation, 1);
    assert!(
        recovery.snapshot_statements > 0,
        "snapshot carries the state"
    );
    assert_eq!(
        recovery.wal_statements, 2,
        "only post-checkpoint writes in the wal"
    );
    assert_eq!(engine.dump_tables(), before);
    assert_eq!(engine.dump_tables(), state_of(&writes));
}

#[test]
fn auto_checkpoint_triggers_and_recovers() {
    let tmp = TempDir::new("autockpt");
    let before = {
        // Tiny threshold: every write crosses it, so each commit rotates.
        let (engine, _) = open_engine(tmp.path(), FsyncMode::Always, Some(64));
        for sql in &seed_writes() {
            engine.execute_sql(sql).unwrap();
        }
        assert!(
            engine.metrics().checkpoints.load(Ordering::Relaxed) >= 2,
            "size trigger fired"
        );
        engine.dump_tables()
    };
    let (engine, recovery) = open_engine(tmp.path(), FsyncMode::Always, Some(64));
    assert!(recovery.generation >= 2, "generations advanced");
    assert_eq!(engine.dump_tables(), before);
    assert_eq!(engine.dump_tables(), state_of(&seed_writes()));
}

/// The acceptance sweep: truncate the WAL at *every* byte offset. Startup
/// must always succeed, recover exactly the longest valid record prefix,
/// and land on the state a fresh session reaches replaying that prefix.
#[test]
fn any_byte_truncation_recovers_the_longest_valid_prefix() {
    let tmp = TempDir::new("sweep");
    let writes = seed_writes();
    {
        let (engine, _) = open_engine(tmp.path(), FsyncMode::Always, None);
        for sql in &writes {
            engine.execute_sql(sql).unwrap();
        }
    }
    let wal = tmp.path().join("wal-0.log");
    let full_len = std::fs::metadata(&wal).unwrap().len();
    let boundaries = record_boundaries(&writes);
    assert_eq!(
        *boundaries.last().unwrap(),
        full_len,
        "layout matches encoder"
    );

    for cut in 0..=full_len {
        let copy = TempDir::new("sweep_cut");
        copy_dir(tmp.path(), copy.path());
        truncate_file(&copy.path().join("wal-0.log"), cut);

        let (engine, recovery) = open_engine(copy.path(), FsyncMode::Always, None);
        // Longest valid prefix: every record that ends at or before the cut.
        let expect = boundaries.iter().filter(|&&b| b > 8 && b <= cut).count();
        assert_eq!(
            recovery.statements,
            &writes[..expect],
            "cut at byte {cut}: recovered history must be the valid prefix"
        );
        // Only an empty file or an exact record boundary is a clean end;
        // everything else (including a torn magic) is reported damage.
        let clean = cut == 0 || boundaries.contains(&cut);
        assert_eq!(
            recovery.damage.is_some(),
            !clean,
            "cut at byte {cut}: torn tail reported iff mid-record"
        );
        assert_eq!(
            engine.dump_tables(),
            state_of(&writes[..expect]),
            "cut at byte {cut}: state must equal a fresh replay of the prefix"
        );
        // The reopened WAL was truncated to the valid prefix and accepts
        // new appends — the torn tail is gone for good.
        engine.execute_sql("CREATE TABLE extra (id INT)").unwrap();
    }
}

#[test]
fn payload_corruption_stops_replay_at_the_damaged_record() {
    let tmp = TempDir::new("corrupt");
    let writes = seed_writes();
    {
        let (engine, _) = open_engine(tmp.path(), FsyncMode::Always, None);
        for sql in &writes {
            engine.execute_sql(sql).unwrap();
        }
    }
    let wal = tmp.path().join("wal-0.log");
    let boundaries = record_boundaries(&writes);
    // Flip one payload bit inside the fourth record.
    let mut bytes = std::fs::read(&wal).unwrap();
    let target = boundaries[3] as usize + RECORD_HEADER + 2;
    bytes[target] ^= 0x10;
    std::fs::write(&wal, &bytes).unwrap();

    let (engine, recovery) = open_engine(tmp.path(), FsyncMode::Always, None);
    assert_eq!(
        recovery.statements,
        &writes[..3],
        "replay stops before the flip"
    );
    let damage = recovery.damage.expect("corruption is reported");
    assert!(
        damage.contains("crc mismatch") && damage.contains(&format!("at byte {}", boundaries[3])),
        "damage names the fault and its byte offset: {damage}"
    );
    assert_eq!(engine.dump_tables(), state_of(&writes[..3]));
}

/// A deterministic random write mix: statement `i` of a given seed is
/// always the same string, without depending on the workload RNG.
fn random_writes(seed: u64, n: usize) -> Vec<String> {
    let mut out = vec!["CREATE TABLE t (id INT, x FLOAT, note TEXT)".to_string()];
    let mut s = seed.wrapping_mul(2654435761).wrapping_add(1);
    let mut step = || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        s >> 33
    };
    for i in 0..n {
        let v = (step() % 1000) as f64 / 1000.0;
        out.push(match step() % 4 {
            0 | 1 => format!("INSERT INTO t VALUES ({i}, {v}, 'row {i}')"),
            2 => format!(
                "UPDATE t SET x = {v} WHERE id = {}",
                step() % (i as u64 + 1)
            ),
            _ => format!("DELETE FROM t WHERE id = {}", step() % (i as u64 + 1)),
        });
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random write mixes × random truncation points: the crash-recovery
    /// property must hold for all of them (the ISSUE's acceptance bar).
    #[test]
    fn random_mixes_recover_any_truncation(
        seed in 0u64..10_000,
        n_writes in 1usize..16,
        cut_sel in any::<usize>(),
    ) {
        let tmp = TempDir::new("prop");
        let writes = random_writes(seed, n_writes);
        {
            // fsync never: the Drop-flush path must still leave a
            // fully decodable log behind a clean process exit.
            let (engine, _) = open_engine(tmp.path(), FsyncMode::Never, None);
            for sql in &writes {
                engine.execute_sql(sql).unwrap();
            }
        }
        let wal = tmp.path().join("wal-0.log");
        let full_len = std::fs::metadata(&wal).unwrap().len() as usize;
        let cut = (cut_sel % (full_len + 1)) as u64;
        truncate_file(&wal, cut);

        let boundaries = record_boundaries(&writes);
        let expect = boundaries.iter().filter(|&&b| b > 8 && b <= cut).count();
        let (engine, recovery) = open_engine(tmp.path(), FsyncMode::Never, None);
        prop_assert_eq!(&recovery.statements, &writes[..expect]);
        prop_assert_eq!(engine.dump_tables(), state_of(&writes[..expect]));
    }
}

/// The end-to-end crash: SIGKILL the real binary mid-stream. Under
/// `--fsync always` every acknowledged write must survive into a fresh
/// engine opened on the same directory.
#[test]
fn killed_server_preserves_every_acknowledged_write() {
    let tmp = TempDir::new("kill");
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_iq-server"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--data-dir",
            tmp.path().to_str().unwrap(),
            "--fsync",
            "always",
        ])
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn iq-server");

    // The binary announces its ephemeral port on stderr once it's serving.
    let stderr = child.stderr.take().unwrap();
    let mut lines = BufReader::new(stderr).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("server exited before listening")
            .unwrap();
        if let Some(rest) = line.strip_prefix("iq-server listening on ") {
            break rest.to_string();
        }
    };
    // Keep draining stderr so the child never blocks on a full pipe.
    let drain = std::thread::spawn(move || for _ in lines.by_ref() {});

    let writes = seed_writes();
    let mut client = iq_server::Client::connect(addr.as_str()).expect("connect");
    for sql in &writes {
        let response = client.request(sql).expect(sql);
        assert!(protocol::is_ok(&response), "{sql}: {response}");
    }

    // No SHUTDOWN, no drain: the process dies with whatever it has synced.
    child.kill().unwrap();
    child.wait().unwrap();
    drain.join().unwrap();

    let (engine, recovery) = open_engine(tmp.path(), FsyncMode::Always, None);
    assert_eq!(
        recovery.statements, writes,
        "every acknowledged write survived the kill"
    );
    assert_eq!(engine.dump_tables(), state_of(&writes));
}

/// Belt and braces for the wire format constant the sweep relies on: the
/// independent layout arithmetic matches what the binary actually wrote.
#[test]
fn wal_layout_matches_the_independent_arithmetic() {
    let tmp = TempDir::new("layout");
    let writes = seed_writes();
    {
        let (engine, _) = open_engine(tmp.path(), FsyncMode::Always, None);
        for sql in &writes {
            engine.execute_sql(sql).unwrap();
        }
    }
    let bytes = std::fs::read(tmp.path().join("wal-0.log")).unwrap();
    assert_eq!(&bytes[..8], MAGIC);
    let boundaries = record_boundaries(&writes);
    for (i, sql) in writes.iter().enumerate() {
        let start = boundaries[i] as usize;
        let len = u32::from_le_bytes(bytes[start..start + 4].try_into().unwrap());
        assert_eq!(len as usize, sql.len());
        let stored_crc = u32::from_le_bytes(bytes[start + 4..start + 8].try_into().unwrap());
        assert_eq!(stored_crc, iq_storage::crc32(sql.as_bytes()));
        assert_eq!(
            &bytes[start + RECORD_HEADER..start + RECORD_HEADER + sql.len()],
            sql.as_bytes()
        );
    }
}
