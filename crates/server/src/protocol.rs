//! The wire protocol: newline-delimited requests and responses.
//!
//! **Request** — one line of SQL, optionally prefixed with a per-request
//! deadline: `@<ms> <sql>` means "drop me if a worker hasn't started me
//! within `<ms>` milliseconds". No prefix means the server default.
//!
//! **Response** — exactly one line of JSON per request, in request order:
//! the [`iq_dbms::render`] line-JSON for outcomes and errors, plus three
//! server-level shapes produced here:
//!
//! ```text
//! {"ok":false,"kind":"rejected","error":"admission queue full"}
//! {"ok":false,"kind":"timed_out","error":"deadline expired before execution"}
//! {"ok":true,"outcome":"shutdown"}
//! ```
//!
//! This module also carries the tiny response scanners the client side
//! (loadgen, tests) uses — hand-rolled against the known shapes, no JSON
//! parser dependency.

use std::time::Duration;

/// Splits an optional `@<ms> ` deadline prefix off a request line.
/// Malformed prefixes are left in the SQL (the parser will point at them).
pub fn parse_request(line: &str) -> (Option<Duration>, &str) {
    let Some(rest) = line.strip_prefix('@') else {
        return (None, line);
    };
    let Some((num, sql)) = rest.split_once(' ') else {
        return (None, line);
    };
    match num.parse::<u64>() {
        Ok(ms) => (Some(Duration::from_millis(ms)), sql),
        Err(_) => (None, line),
    }
}

/// The response to a request rejected at admission (queue full).
pub fn rejected_response() -> String {
    "{\"ok\":false,\"kind\":\"rejected\",\"error\":\"admission queue full\"}".to_string()
}

/// The response to a request whose deadline expired in the queue.
pub fn timed_out_response() -> String {
    "{\"ok\":false,\"kind\":\"timed_out\",\"error\":\"deadline expired before execution\"}"
        .to_string()
}

/// The acknowledgement for an accepted SHUTDOWN.
pub fn shutdown_response() -> String {
    "{\"ok\":true,\"outcome\":\"shutdown\"}".to_string()
}

/// Whether a response line reports success.
pub fn is_ok(response: &str) -> bool {
    response.starts_with("{\"ok\":true")
}

/// The `"kind"` field of a failure response, if present.
pub fn error_kind(response: &str) -> Option<&str> {
    let start = response.find("\"kind\":\"")? + "\"kind\":\"".len();
    let end = response[start..].find('"')?;
    Some(&response[start..start + end])
}

/// The `"offset"` field of a positioned syntax error, if present — this is
/// the round-trip end of [`iq_dbms::DbError::SyntaxAt`].
pub fn error_offset(response: &str) -> Option<usize> {
    let start = response.find("\"offset\":")? + "\"offset\":".len();
    let digits: String = response[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Decodes a `SHOW STATS` response into `(metric, value)` pairs. Returns
/// `None` if the line is not a rows response of that shape.
pub fn parse_stats(response: &str) -> Option<Vec<(String, i64)>> {
    if !is_ok(response) || !response.contains("\"outcome\":\"rows\"") {
        return None;
    }
    let rows_at = response.find("\"rows\":[")? + "\"rows\":[".len();
    let body = &response[rows_at..response.rfind(']')?];
    let mut out = Vec::new();
    // Rows look like ["metric_name",123] separated by commas.
    for part in body.split("],") {
        let part = part.trim_start_matches('[').trim_end_matches(']');
        if part.is_empty() {
            continue;
        }
        let (name, value) = part.split_once(',')?;
        let name = name.trim().trim_matches('"').to_string();
        let value = value.trim().parse::<i64>().ok()?;
        out.push((name, value));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_prefix_parses_and_malformed_falls_through() {
        let (d, sql) = parse_request("@250 SELECT 1 FROM t");
        assert_eq!(d, Some(Duration::from_millis(250)));
        assert_eq!(sql, "SELECT 1 FROM t");
        let (d, sql) = parse_request("SELECT * FROM t");
        assert_eq!(d, None);
        assert_eq!(sql, "SELECT * FROM t");
        // `@` with no number stays in the SQL.
        let (d, sql) = parse_request("@abc SELECT");
        assert_eq!(d, None);
        assert_eq!(sql, "@abc SELECT");
    }

    #[test]
    fn response_scanners() {
        assert!(is_ok(
            "{\"ok\":true,\"outcome\":\"rows\",\"columns\":[],\"rows\":[]}"
        ));
        assert!(!is_ok(&rejected_response()));
        assert_eq!(error_kind(&rejected_response()), Some("rejected"));
        assert_eq!(error_kind(&timed_out_response()), Some("timed_out"));
        let err = "{\"ok\":false,\"kind\":\"syntax\",\"offset\":28,\"error\":\"x\"}";
        assert_eq!(error_offset(err), Some(28));
        assert_eq!(error_offset(&rejected_response()), None);
    }

    #[test]
    fn stats_decoding() {
        let line = "{\"ok\":true,\"outcome\":\"rows\",\"columns\":[\"metric\",\"value\"],\
                    \"rows\":[[\"select_ok\",5],[\"improve_ok\",2],[\"queue_depth\",0]]}";
        let stats = parse_stats(line).unwrap();
        assert_eq!(
            stats,
            vec![
                ("select_ok".into(), 5),
                ("improve_ok".into(), 2),
                ("queue_depth".into(), 0),
            ]
        );
        assert_eq!(parse_stats("{\"ok\":false}"), None);
    }
}
