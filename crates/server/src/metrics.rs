//! The embedded metrics registry: lock-free atomic counters and
//! log-bucketed latency histograms, readable while the server runs.
//!
//! Everything here is `AtomicU64`-based so the hot path (workers recording
//! request outcomes) never takes a lock and readers (`SHOW STATS`, the
//! `--metrics-json` dump) see a consistent-enough snapshot without
//! stopping the world. Counters are monotonic; `queue_depth` is the one
//! gauge.
//!
//! Latencies use power-of-two microsecond buckets (bucket *i* holds
//! `2^i ≤ µs < 2^(i+1)`), so percentile reads are O(buckets) and the
//! reported value is the bucket's upper bound — at worst 2× the true
//! latency, which is plenty for load shedding and regression bounds.

use iq_dbms::parser::Statement;
use iq_dbms::{QueryResult, Value};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// The statement kinds the server accounts separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatementKind {
    /// CREATE TABLE.
    Create,
    /// INSERT.
    Insert,
    /// SELECT.
    Select,
    /// UPDATE.
    Update,
    /// DELETE.
    Delete,
    /// COPY.
    Copy,
    /// DROP TABLE.
    Drop,
    /// Read-only IMPROVE.
    Improve,
    /// IMPROVE … APPLY (a write).
    ImproveApply,
    /// SHOW TABLES.
    ShowTables,
    /// SHOW STATS.
    ShowStats,
    /// SHUTDOWN.
    Shutdown,
    /// CHECKPOINT.
    Checkpoint,
    /// SHOW WAL.
    ShowWal,
    /// A line that failed to parse (no statement to classify).
    Invalid,
}

/// All kinds, in the fixed order used for storage and reporting.
pub const ALL_KINDS: [StatementKind; 15] = [
    StatementKind::Create,
    StatementKind::Insert,
    StatementKind::Select,
    StatementKind::Update,
    StatementKind::Delete,
    StatementKind::Copy,
    StatementKind::Drop,
    StatementKind::Improve,
    StatementKind::ImproveApply,
    StatementKind::ShowTables,
    StatementKind::ShowStats,
    StatementKind::Shutdown,
    StatementKind::Checkpoint,
    StatementKind::ShowWal,
    StatementKind::Invalid,
];

impl StatementKind {
    /// Classifies a parsed statement.
    pub fn of(stmt: &Statement) -> StatementKind {
        match stmt {
            Statement::Create { .. } => StatementKind::Create,
            Statement::Insert { .. } => StatementKind::Insert,
            Statement::Select(_) => StatementKind::Select,
            Statement::Update { .. } => StatementKind::Update,
            Statement::Delete { .. } => StatementKind::Delete,
            Statement::Copy { .. } => StatementKind::Copy,
            Statement::Drop { .. } => StatementKind::Drop,
            Statement::Improve(imp) if imp.apply => StatementKind::ImproveApply,
            Statement::Improve(_) => StatementKind::Improve,
            Statement::ShowTables => StatementKind::ShowTables,
            Statement::ShowStats => StatementKind::ShowStats,
            Statement::Shutdown => StatementKind::Shutdown,
            Statement::Checkpoint => StatementKind::Checkpoint,
            Statement::ShowWal => StatementKind::ShowWal,
        }
    }

    /// The metric-name spelling.
    pub fn name(self) -> &'static str {
        match self {
            StatementKind::Create => "create",
            StatementKind::Insert => "insert",
            StatementKind::Select => "select",
            StatementKind::Update => "update",
            StatementKind::Delete => "delete",
            StatementKind::Copy => "copy",
            StatementKind::Drop => "drop",
            StatementKind::Improve => "improve",
            StatementKind::ImproveApply => "improve_apply",
            StatementKind::ShowTables => "show_tables",
            StatementKind::ShowStats => "show_stats",
            StatementKind::Shutdown => "shutdown",
            StatementKind::Checkpoint => "checkpoint",
            StatementKind::ShowWal => "show_wal",
            StatementKind::Invalid => "invalid",
        }
    }

    fn idx(self) -> usize {
        ALL_KINDS.iter().position(|&k| k == self).unwrap()
    }
}

const BUCKETS: usize = 40;

/// A log2-µs histogram with atomic buckets.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Records one latency observation.
    pub fn record(&self, micros: u64) {
        // floor(log2(µs)), clamped: 0µs and 1µs share bucket 0.
        let b = (64 - micros.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
    }

    /// Total observation count.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The latency below which `p` percent of observations fall, as the
    /// containing bucket's upper bound in µs. Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return 1u64 << (i + 1);
            }
        }
        1u64 << BUCKETS
    }
}

#[derive(Debug, Default)]
struct KindStats {
    ok: AtomicU64,
    errors: AtomicU64,
    latency: Histogram,
}

/// The server-wide registry. One instance per [`crate::engine::Engine`],
/// shared by every worker via `Arc`.
#[derive(Debug, Default)]
pub struct Metrics {
    by_kind: [KindStats; ALL_KINDS.len()],
    /// Requests rejected at admission (queue full).
    pub rejected: AtomicU64,
    /// Requests whose deadline expired before a worker picked them up.
    pub timed_out: AtomicU64,
    /// Current admission-queue depth (gauge).
    pub queue_depth: AtomicU64,
    /// Highest queue depth ever observed.
    pub queue_high_water: AtomicU64,
    /// Connections accepted over the server's lifetime.
    pub connections: AtomicU64,
    /// IMPROVE cache hits (prepared index reused).
    pub cache_hits: AtomicU64,
    /// IMPROVE cache misses (index built).
    pub cache_misses: AtomicU64,
    /// Cache entries dropped because a write touched their tables.
    pub cache_invalidations: AtomicU64,
    /// Times a write unsealed a sealed query index (it is re-sealed
    /// immediately; this counts the events, per the seal-state guard).
    pub index_unseals: AtomicU64,
    /// WAL records appended (durable commit path; 0 without `--data-dir`).
    pub wal_appends: AtomicU64,
    /// Fsyncs issued by the WAL (group commit makes this ≤ appends).
    pub wal_fsyncs: AtomicU64,
    /// Checkpoints taken (explicit `CHECKPOINT` plus auto-checkpoints).
    pub checkpoints: AtomicU64,
    /// Statements replayed during startup recovery (snapshot + WAL tail).
    pub recovered_statements: AtomicU64,
    /// Bytes truncated from a torn WAL tail during recovery.
    pub recovery_truncated_bytes: AtomicU64,
}

impl Metrics {
    /// Fresh, all-zero registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records a completed request: outcome and latency.
    pub fn record(&self, kind: StatementKind, ok: bool, micros: u64) {
        let s = &self.by_kind[kind.idx()];
        if ok {
            s.ok.fetch_add(1, Ordering::Relaxed);
        } else {
            s.errors.fetch_add(1, Ordering::Relaxed);
        }
        s.latency.record(micros);
    }

    /// Successful-request count for one kind.
    pub fn ok_count(&self, kind: StatementKind) -> u64 {
        self.by_kind[kind.idx()].ok.load(Ordering::Relaxed)
    }

    /// Failed-request count for one kind.
    pub fn error_count(&self, kind: StatementKind) -> u64 {
        self.by_kind[kind.idx()].errors.load(Ordering::Relaxed)
    }

    /// Updates the queue-depth gauge and its high-water mark.
    pub fn set_queue_depth(&self, depth: u64) {
        self.queue_depth.store(depth, Ordering::Relaxed);
        self.queue_high_water.fetch_max(depth, Ordering::Relaxed);
    }

    /// The `SHOW STATS` result set: `(metric, value)` rows, integer
    /// values (latencies in µs). Per-kind rows appear only for kinds that
    /// have been observed, so a fresh server reports a compact table.
    pub fn stats_result(&self) -> QueryResult {
        let mut rows: Vec<Vec<Value>> = Vec::new();
        let mut push = |name: String, v: u64| {
            rows.push(vec![Value::Text(name), Value::Int(v as i64)]);
        };
        for kind in ALL_KINDS {
            let s = &self.by_kind[kind.idx()];
            let ok = s.ok.load(Ordering::Relaxed);
            let errors = s.errors.load(Ordering::Relaxed);
            if ok == 0 && errors == 0 {
                continue;
            }
            push(format!("{}_ok", kind.name()), ok);
            push(format!("{}_errors", kind.name()), errors);
            push(
                format!("{}_p50_us", kind.name()),
                s.latency.percentile(50.0),
            );
            push(
                format!("{}_p95_us", kind.name()),
                s.latency.percentile(95.0),
            );
            push(
                format!("{}_p99_us", kind.name()),
                s.latency.percentile(99.0),
            );
        }
        push("rejected".into(), self.rejected.load(Ordering::Relaxed));
        push("timed_out".into(), self.timed_out.load(Ordering::Relaxed));
        push(
            "queue_depth".into(),
            self.queue_depth.load(Ordering::Relaxed),
        );
        push(
            "queue_high_water".into(),
            self.queue_high_water.load(Ordering::Relaxed),
        );
        push(
            "connections".into(),
            self.connections.load(Ordering::Relaxed),
        );
        push("cache_hits".into(), self.cache_hits.load(Ordering::Relaxed));
        push(
            "cache_misses".into(),
            self.cache_misses.load(Ordering::Relaxed),
        );
        push(
            "cache_invalidations".into(),
            self.cache_invalidations.load(Ordering::Relaxed),
        );
        push(
            "index_unseals".into(),
            self.index_unseals.load(Ordering::Relaxed),
        );
        push(
            "wal_appends".into(),
            self.wal_appends.load(Ordering::Relaxed),
        );
        push("wal_fsyncs".into(), self.wal_fsyncs.load(Ordering::Relaxed));
        push(
            "checkpoints".into(),
            self.checkpoints.load(Ordering::Relaxed),
        );
        push(
            "recovered_statements".into(),
            self.recovered_statements.load(Ordering::Relaxed),
        );
        push(
            "recovery_truncated_bytes".into(),
            self.recovery_truncated_bytes.load(Ordering::Relaxed),
        );
        QueryResult {
            columns: vec!["metric".into(), "value".into()],
            rows,
        }
    }

    /// The full registry in the repo's BENCH JSON shape
    /// (`{"benches":[{"name","value","unit"},…]}`), for `--metrics-json`.
    pub fn to_json(&self) -> String {
        let result = self.stats_result();
        let mut out = String::from("{\n  \"benches\": [\n");
        for (i, row) in result.rows.iter().enumerate() {
            let (Value::Text(name), Value::Int(v)) = (&row[0], &row[1]) else {
                unreachable!("stats_result rows are (Text, Int)");
            };
            let unit = if name.ends_with("_us") { "us" } else { "count" };
            let _ = write!(
                out,
                "    {{\"name\": \"{name}\", \"value\": {v}, \"unit\": \"{unit}\"}}"
            );
            out.push_str(if i + 1 < result.rows.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iq_dbms::parse;

    #[test]
    fn classification_covers_statements() {
        let of = |sql: &str| StatementKind::of(&parse(sql).unwrap());
        assert_eq!(of("SELECT * FROM t"), StatementKind::Select);
        assert_eq!(of("IMPROVE t USING q MINCOST 1"), StatementKind::Improve);
        assert_eq!(
            of("IMPROVE t USING q MINCOST 1 APPLY"),
            StatementKind::ImproveApply
        );
        assert_eq!(of("SHOW STATS"), StatementKind::ShowStats);
        assert_eq!(of("SHUTDOWN"), StatementKind::Shutdown);
    }

    #[test]
    fn histogram_percentiles_bracket_observations() {
        let h = Histogram::default();
        for _ in 0..90 {
            h.record(100); // bucket ⌊log2 100⌋ = 6, upper bound 128
        }
        for _ in 0..10 {
            h.record(10_000); // bucket 13, upper bound 16384
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.percentile(50.0), 128);
        assert_eq!(h.percentile(90.0), 128);
        assert_eq!(h.percentile(99.0), 16_384);
        let empty = Histogram::default();
        assert_eq!(empty.percentile(99.0), 0);
    }

    #[test]
    fn stats_result_reports_only_observed_kinds() {
        let m = Metrics::new();
        m.record(StatementKind::Select, true, 50);
        m.record(StatementKind::Select, false, 10);
        m.set_queue_depth(3);
        m.set_queue_depth(1);
        let r = m.stats_result();
        let get = |name: &str| {
            r.rows
                .iter()
                .find(|row| row[0] == Value::Text(name.into()))
                .map(|row| row[1].clone())
        };
        assert_eq!(get("select_ok"), Some(Value::Int(1)));
        assert_eq!(get("select_errors"), Some(Value::Int(1)));
        assert_eq!(get("improve_ok"), None, "unobserved kind must be absent");
        assert_eq!(get("queue_depth"), Some(Value::Int(1)));
        assert_eq!(get("queue_high_water"), Some(Value::Int(3)));
        assert_eq!(m.ok_count(StatementKind::Select), 1);
        assert_eq!(m.error_count(StatementKind::Select), 1);
    }

    #[test]
    fn json_dump_is_bench_shaped() {
        let m = Metrics::new();
        m.record(StatementKind::Improve, true, 1000);
        let json = m.to_json();
        assert!(json.starts_with("{\n  \"benches\": [\n"));
        assert!(json.contains("\"name\": \"improve_ok\", \"value\": 1, \"unit\": \"count\""));
        assert!(json.contains("\"unit\": \"us\""));
    }
}
