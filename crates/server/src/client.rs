//! A minimal blocking client for the line protocol: send one SQL line,
//! read one JSON response line. Used by the e2e tests and `loadgen`.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One connection to an `iq-server`.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects; the server has no handshake, so this is just TCP.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: stream,
            reader,
        })
    }

    /// Sends one request line and blocks for its response line. The
    /// protocol is strictly request/response per connection, so pairing
    /// is positional.
    pub fn request(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while response.ends_with('\n') || response.ends_with('\r') {
            response.pop();
        }
        Ok(response)
    }
}
