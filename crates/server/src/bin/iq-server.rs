//! The `iq-server` binary: bind, optionally recover from a data
//! directory and/or preload a seeded workload, serve until a client sends
//! `SHUTDOWN`, then optionally dump metrics.
//!
//! ```text
//! iq-server [--addr 127.0.0.1:4477] [--workers N] [--queue N]
//!           [--deadline-ms MS] [--preload N_OBJECTS,N_QUERIES,DIM,SEED]
//!           [--data-dir PATH] [--fsync always|never|batch:N|batch:Nms]
//!           [--checkpoint-bytes N] [--metrics-json PATH]
//! ```
//!
//! With `--data-dir`, every committed write is appended to a CRC-checked
//! WAL before the client sees its acknowledgement, and startup recovers
//! the previous state (snapshot + WAL tail; see DESIGN.md §12). When
//! recovery finds any state, `--preload` is skipped — the recovered
//! writes already include the seed of the previous run.

use iq_core::ExecPolicy;
use iq_server::{
    engine::{DurabilityConfig, Engine},
    metrics::Metrics,
    server,
    server::ServerConfig,
    FsyncMode,
};
use iq_workload::{seed_statements, standard_instance, Distribution, QueryDistribution};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: iq-server [--addr HOST:PORT] [--workers N] [--queue N] \
         [--deadline-ms MS] [--preload N_OBJECTS,N_QUERIES,DIM,SEED] \
         [--data-dir PATH] [--fsync always|never|batch:N|batch:Nms] \
         [--checkpoint-bytes N] [--metrics-json PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let mut config = ServerConfig {
        addr: "127.0.0.1:4477".into(),
        ..ServerConfig::default()
    };
    let mut preload: Option<(usize, usize, usize, u64)> = None;
    let mut metrics_json: Option<String> = None;
    let mut data_dir: Option<PathBuf> = None;
    let mut fsync = FsyncMode::Always;
    let mut checkpoint_bytes: Option<u64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--workers" => config.workers = value("--workers").parse().unwrap_or_else(|_| usage()),
            "--queue" => {
                config.queue_capacity = value("--queue").parse().unwrap_or_else(|_| usage())
            }
            "--deadline-ms" => {
                let ms: u64 = value("--deadline-ms").parse().unwrap_or_else(|_| usage());
                config.default_deadline = Some(Duration::from_millis(ms));
            }
            "--preload" => {
                let spec = value("--preload");
                let parts: Vec<u64> = spec
                    .split(',')
                    .map(|p| p.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                if parts.len() != 4 {
                    usage();
                }
                preload = Some((
                    parts[0] as usize,
                    parts[1] as usize,
                    parts[2] as usize,
                    parts[3],
                ));
            }
            "--data-dir" => data_dir = Some(PathBuf::from(value("--data-dir"))),
            "--fsync" => {
                fsync = value("--fsync").parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                })
            }
            "--checkpoint-bytes" => {
                checkpoint_bytes = Some(
                    value("--checkpoint-bytes")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                )
            }
            "--metrics-json" => metrics_json = Some(value("--metrics-json")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }

    // Per-request parallelism shares the machine with cross-request
    // concurrency: each worker's IMPROVE gets an equal slice of threads.
    let exec = ExecPolicy::share_across(config.workers.max(1));
    let metrics = Arc::new(Metrics::new());
    let mut recovered_writes = 0usize;
    let engine = match data_dir {
        Some(dir) => {
            let durability = DurabilityConfig {
                data_dir: dir.clone(),
                fsync,
                checkpoint_bytes,
            };
            match Engine::with_storage(Arc::clone(&metrics), exec, durability) {
                Ok((engine, recovery)) => {
                    recovered_writes = recovery.statements.len();
                    eprintln!(
                        "recovered {} statement(s) from {} (generation {}: {} snapshot + {} wal{})",
                        recovery.statements.len(),
                        dir.display(),
                        recovery.generation,
                        recovery.snapshot_statements,
                        recovery.wal_statements,
                        match &recovery.damage {
                            Some(d) => format!("; torn tail truncated: {d}"),
                            None => String::new(),
                        }
                    );
                    Arc::new(engine)
                }
                Err(e) => {
                    eprintln!("recovery failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        None => Arc::new(Engine::new(Arc::clone(&metrics), exec)),
    };

    match preload {
        Some(_) if recovered_writes > 0 => {
            eprintln!("skipping --preload: recovered state already holds the data");
        }
        Some((n_objects, n_queries, dim, seed)) => {
            let instance = standard_instance(
                Distribution::Independent,
                QueryDistribution::Uniform,
                n_objects,
                n_queries,
                dim,
                3,
                seed,
            );
            for sql in seed_statements(&instance, "objects", "queries", 256) {
                if let Err(e) = engine.execute_sql(&sql) {
                    eprintln!("preload failed: {e}");
                    std::process::exit(1);
                }
            }
            eprintln!(
                "preloaded {n_objects} objects, {n_queries} queries (dim {dim}, seed {seed})"
            );
        }
        None => {}
    }

    let handle = match server::start(engine, config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("bind failed: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("iq-server listening on {}", handle.addr());
    eprintln!("send SHUTDOWN on any connection to drain and stop");

    let engine = Arc::clone(handle.engine());
    handle.join();

    if let Some(path) = metrics_json {
        let json = engine.metrics().to_json();
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed writing {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("metrics written to {path}");
    }
}
