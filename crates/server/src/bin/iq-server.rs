//! The `iq-server` binary: bind, optionally preload a seeded workload,
//! serve until a client sends `SHUTDOWN`, then optionally dump metrics.
//!
//! ```text
//! iq-server [--addr 127.0.0.1:4477] [--workers N] [--queue N]
//!           [--deadline-ms MS] [--preload N_OBJECTS,N_QUERIES,DIM,SEED]
//!           [--metrics-json PATH]
//! ```

use iq_core::ExecPolicy;
use iq_server::{engine::Engine, metrics::Metrics, server, server::ServerConfig};
use iq_workload::{seed_statements, standard_instance, Distribution, QueryDistribution};
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: iq-server [--addr HOST:PORT] [--workers N] [--queue N] \
         [--deadline-ms MS] [--preload N_OBJECTS,N_QUERIES,DIM,SEED] \
         [--metrics-json PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let mut config = ServerConfig {
        addr: "127.0.0.1:4477".into(),
        ..ServerConfig::default()
    };
    let mut preload: Option<(usize, usize, usize, u64)> = None;
    let mut metrics_json: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--workers" => config.workers = value("--workers").parse().unwrap_or_else(|_| usage()),
            "--queue" => {
                config.queue_capacity = value("--queue").parse().unwrap_or_else(|_| usage())
            }
            "--deadline-ms" => {
                let ms: u64 = value("--deadline-ms").parse().unwrap_or_else(|_| usage());
                config.default_deadline = Some(Duration::from_millis(ms));
            }
            "--preload" => {
                let spec = value("--preload");
                let parts: Vec<u64> = spec
                    .split(',')
                    .map(|p| p.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                if parts.len() != 4 {
                    usage();
                }
                preload = Some((
                    parts[0] as usize,
                    parts[1] as usize,
                    parts[2] as usize,
                    parts[3],
                ));
            }
            "--metrics-json" => metrics_json = Some(value("--metrics-json")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }

    // Per-request parallelism shares the machine with cross-request
    // concurrency: each worker's IMPROVE gets an equal slice of threads.
    let exec = ExecPolicy::share_across(config.workers.max(1));
    let metrics = Arc::new(Metrics::new());
    let engine = Arc::new(Engine::new(Arc::clone(&metrics), exec));

    if let Some((n_objects, n_queries, dim, seed)) = preload {
        let instance = standard_instance(
            Distribution::Independent,
            QueryDistribution::Uniform,
            n_objects,
            n_queries,
            dim,
            3,
            seed,
        );
        for sql in seed_statements(&instance, "objects", "queries", 256) {
            if let Err(e) = engine.execute_sql(&sql) {
                eprintln!("preload failed: {e}");
                std::process::exit(1);
            }
        }
        eprintln!("preloaded {n_objects} objects, {n_queries} queries (dim {dim}, seed {seed})");
    }

    let handle = match server::start(engine, config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("bind failed: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("iq-server listening on {}", handle.addr());
    eprintln!("send SHUTDOWN on any connection to drain and stop");

    let engine = Arc::clone(handle.engine());
    handle.join();

    if let Some(path) = metrics_json {
        let json = engine.metrics().to_json();
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed writing {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("metrics written to {path}");
    }
}
