//! The shared engine: one [`iq_dbms::Session`] behind a read-write
//! snapshot discipline, plus a prepared-index cache for IMPROVE.
//!
//! Concurrency model:
//!
//! * **Readers** (`SELECT`, `SHOW TABLES`, read-only `IMPROVE`) run under
//!   the `RwLock`'s shared mode — any number side by side. They see a
//!   *sealed snapshot*: between writes the catalog is immutable and every
//!   cached [`Prepared`] index is in its sealed (arena) read form.
//! * **Writers** (everything else) take the exclusive mode, so writes are
//!   totally ordered — the write log records that order, and the
//!   serializability tests replay it against a fresh single-threaded
//!   session to prove the concurrent history equivalent.
//!
//! Cache discipline: a write that INSERTs into a cached pair's query or
//! object table goes through the *incremental* update path
//! (`iq_core::update::{add_query, add_object}`) and then re-seals the
//! index — the unseal is counted in [`Metrics::index_unseals`], never
//! silent. Any other shape of write (UPDATE/DELETE/DROP/CREATE/COPY on a
//! cached table, or an INSERT the incremental path cannot absorb, e.g.
//! `k ≥ K'`) drops the cache entry instead; correctness never depends on
//! the incremental path applying.
//!
//! Determinism: a cached index and a freshly built one answer IMPROVE
//! byte-identically (same toplists ⇒ same subdomains ⇒ same candidate
//! list — the repo-wide invariant), so caching shapes latency only.

use crate::metrics::{Metrics, StatementKind};
use iq_core::update::{self, UpdateStats};
use iq_core::{ExecPolicy, SearchOptions, TopKQuery};
use iq_dbms::iqext::{self, Prepared};
use iq_dbms::parser::{is_read_only, ImproveStmt, Statement};
use iq_dbms::{error_json, outcome_json, parse, DbError, Outcome, QueryResult, Session, Value};
use iq_storage::{FsyncMode, Recovery, Storage, StorageConfig};
use std::collections::HashMap;
use std::ops::Deref;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::{Arc, RwLock, RwLockReadGuard};

/// Cache key: lowercased `(object_table, query_table)`.
type CacheKey = (String, String);

/// Rows per INSERT statement in checkpoint snapshots — large enough to
/// amortize parse overhead on recovery, small enough to keep any single
/// statement's allocation modest.
const SNAPSHOT_ROWS_PER_INSERT: usize = 128;

struct EngineState {
    session: Session,
    cache: HashMap<CacheKey, Prepared>,
    /// Write statements in commit order (the serial history). Spans the
    /// engine's whole lifetime — checkpoints rotate the on-disk WAL but
    /// never this log, so replay-determinism tests keep working.
    write_log: Vec<String>,
    /// Durable storage, when the engine was opened with a data dir.
    storage: Option<Storage>,
}

/// Configuration for [`Engine::with_storage`].
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// The data directory (created if missing).
    pub data_dir: PathBuf,
    /// WAL fsync discipline.
    pub fsync: FsyncMode,
    /// Auto-checkpoint threshold in WAL payload bytes (`None` = only
    /// explicit `CHECKPOINT` statements rotate the log).
    pub checkpoint_bytes: Option<u64>,
}

/// A read guard over the committed write history — borrow, don't clone.
/// Derefs to `[String]`; holding it blocks writers, so keep it short.
pub struct WriteLogGuard<'a>(RwLockReadGuard<'a, EngineState>);

impl Deref for WriteLogGuard<'_> {
    type Target = [String];

    fn deref(&self) -> &[String] {
        &self.0.write_log
    }
}

/// The concurrent engine shared by all server workers.
pub struct Engine {
    state: RwLock<EngineState>,
    metrics: Arc<Metrics>,
    opts: SearchOptions,
}

impl Engine {
    /// An empty engine whose IMPROVE searches use `exec` threads each.
    pub fn new(metrics: Arc<Metrics>, exec: ExecPolicy) -> Self {
        Engine {
            state: RwLock::new(EngineState {
                session: Session::new(),
                cache: HashMap::new(),
                write_log: Vec::new(),
                storage: None,
            }),
            metrics,
            opts: SearchOptions {
                exec,
                ..SearchOptions::default()
            },
        }
    }

    /// A durable engine: opens (or creates) `config.data_dir`, recovers
    /// table state from the latest snapshot plus the WAL tail, and appends
    /// every subsequent committed write to the WAL before acknowledging.
    ///
    /// Recovery replays the recovered statements through a fresh session —
    /// the same path the determinism tests use — so the post-recovery
    /// state is byte-identical to replaying the surviving write-log prefix.
    /// The recovered statements also seed [`Engine::write_log`], keeping
    /// the replay invariant intact across restarts. Prepared indexes are
    /// not persisted; they rebuild lazily on first IMPROVE.
    pub fn with_storage(
        metrics: Arc<Metrics>,
        exec: ExecPolicy,
        config: DurabilityConfig,
    ) -> Result<(Self, Recovery), DbError> {
        let (storage, recovery) = Storage::open(
            &config.data_dir,
            StorageConfig {
                fsync: config.fsync,
                checkpoint_bytes: config.checkpoint_bytes,
            },
        )
        .map_err(storage_err)?;
        let mut session = Session::new();
        for (i, sql) in recovery.statements.iter().enumerate() {
            session.execute(sql).map_err(|e| {
                DbError::Storage(format!(
                    "recovery replay failed at statement {} of {}: {e}",
                    i + 1,
                    recovery.statements.len()
                ))
            })?;
        }
        metrics
            .recovered_statements
            .store(recovery.statements.len() as u64, Ordering::Relaxed);
        metrics
            .recovery_truncated_bytes
            .store(recovery.truncated_bytes, Ordering::Relaxed);
        let engine = Engine {
            state: RwLock::new(EngineState {
                session,
                cache: HashMap::new(),
                write_log: recovery.statements.clone(),
                storage: Some(storage),
            }),
            metrics,
            opts: SearchOptions {
                exec,
                ..SearchOptions::default()
            },
        };
        Ok((engine, recovery))
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Executes one SQL line and renders the response as one line of JSON
    /// — the wire-facing entry point. `SHOW STATS` is answered from the
    /// metrics registry; `SHUTDOWN` is the *server's* business and is
    /// rejected here (the connection layer intercepts it first).
    pub fn execute_line(&self, sql: &str) -> String {
        match self.execute_sql(sql) {
            Ok(outcome) => outcome_json(&outcome),
            Err(e) => error_json(&e),
        }
    }

    /// Executes one SQL statement with full classification, returning the
    /// outcome. Records nothing in the metrics histograms — the caller
    /// (worker or test) owns timing.
    pub fn execute_sql(&self, sql: &str) -> Result<Outcome, DbError> {
        let stmt = parse(sql)?;
        match &stmt {
            Statement::ShowStats => Ok(Outcome::Rows(self.metrics.stats_result())),
            // SHOW WAL is read-only but answered from the storage handle,
            // which a plain Session doesn't have — intercept it here.
            Statement::ShowWal => Ok(Outcome::Rows(self.show_wal())),
            Statement::Shutdown => Err(DbError::Unsupported(
                "SHUTDOWN must be sent over a server connection".into(),
            )),
            Statement::Improve(imp) if !imp.apply => self.improve_read(imp),
            _ if is_read_only(&stmt) => {
                let st = self.state.read().unwrap();
                st.session.execute_read(&stmt)
            }
            _ => self.execute_write(sql, stmt),
        }
    }

    /// The `SHOW WAL` result: storage-layer counters as `(metric, value)`
    /// rows. Works without `--data-dir` too (`wal_enabled` = 0) so probes
    /// don't have to know how the server was started.
    fn show_wal(&self) -> QueryResult {
        let st = self.state.read().unwrap();
        let mut rows: Vec<Vec<Value>> = Vec::new();
        let mut push = |name: &str, v: Value| rows.push(vec![Value::Text(name.into()), v]);
        match st.storage.as_ref() {
            Some(storage) => {
                let s = storage.stats();
                push("wal_enabled", Value::Int(1));
                push("fsync_mode", Value::Text(storage.fsync_mode().name()));
                push("wal_generation", Value::Int(s.generation as i64));
                push("wal_entries", Value::Int(s.wal_entries as i64));
                push("wal_bytes", Value::Int(s.wal_bytes as i64));
                push("wal_appends", Value::Int(s.wal_appends as i64));
                push("wal_fsyncs", Value::Int(s.wal_fsyncs as i64));
                push("checkpoints", Value::Int(s.checkpoints as i64));
            }
            None => push("wal_enabled", Value::Int(0)),
        }
        push(
            "recovered_statements",
            Value::Int(self.metrics.recovered_statements.load(Ordering::Relaxed) as i64),
        );
        push(
            "recovery_truncated_bytes",
            Value::Int(
                self.metrics
                    .recovery_truncated_bytes
                    .load(Ordering::Relaxed) as i64,
            ),
        );
        QueryResult {
            columns: vec!["metric".into(), "value".into()],
            rows,
        }
    }

    /// Classifies one SQL line without executing it.
    pub fn classify(sql: &str) -> StatementKind {
        match parse(sql) {
            Ok(stmt) => StatementKind::of(&stmt),
            Err(_) => StatementKind::Invalid,
        }
    }

    /// The committed write history, in commit order, borrowed behind the
    /// state lock — no clone of the (possibly huge) log. Holding the
    /// guard blocks writers; iterate and drop.
    pub fn write_log(&self) -> WriteLogGuard<'_> {
        WriteLogGuard(self.state.read().unwrap())
    }

    /// Renders every table as aligned text, in name order — a cheap state
    /// fingerprint for the serializability tests.
    pub fn dump_tables(&self) -> String {
        let st = self.state.read().unwrap();
        let mut out = String::new();
        for name in st.session.table_names() {
            out.push_str(name);
            out.push('\n');
            let table = st.session.table(name).unwrap();
            let result = iq_dbms::QueryResult {
                columns: table
                    .schema
                    .columns()
                    .iter()
                    .map(|c| c.name.clone())
                    .collect(),
                rows: table.rows().to_vec(),
            };
            out.push_str(&iq_dbms::result_text(&result));
            out.push('\n');
        }
        out
    }

    /// Read-only IMPROVE: ensure a prepared index exists (write lock only
    /// on a cache miss), then search under the shared lock.
    fn improve_read(&self, imp: &ImproveStmt) -> Result<Outcome, DbError> {
        let key = cache_key(imp);
        self.ensure_prepared(imp, &key);
        let st = self.state.read().unwrap();
        let objects = st
            .session
            .table(&imp.table)
            .ok_or_else(|| DbError::UnknownTable(imp.table.clone()))?;
        let queries = st
            .session
            .table(&imp.query_table)
            .ok_or_else(|| DbError::UnknownTable(imp.query_table.clone()))?;
        let prepared = st.cache.get(&key);
        let (result, _deltas) = iqext::improve_with(objects, queries, imp, prepared, &self.opts)?;
        Ok(Outcome::Rows(result))
    }

    /// Builds and caches the prepared index for an IMPROVE's table pair if
    /// it is missing. Build failures are not cached — the subsequent
    /// uncached execution reports the error with full context.
    fn ensure_prepared(&self, imp: &ImproveStmt, key: &CacheKey) {
        {
            let st = self.state.read().unwrap();
            if st.cache.contains_key(key) {
                self.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        let mut st = self.state.write().unwrap();
        if st.cache.contains_key(key) {
            // Raced with another builder; theirs is as good as ours.
            self.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let (Some(objects), Some(queries)) = (
            st.session.table(&imp.table),
            st.session.table(&imp.query_table),
        ) else {
            return;
        };
        if let Ok(prepared) = Prepared::build(objects, queries, &self.opts.exec) {
            self.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
            st.cache.insert(key.clone(), prepared);
        }
    }

    /// A write: exclusive lock, execute, maintain the cache, log.
    fn execute_write(&self, sql: &str, stmt: Statement) -> Result<Outcome, DbError> {
        let mut st = self.state.write().unwrap();
        let st = &mut *st;

        // CHECKPOINT is a storage operation, not a table write: snapshot
        // the current state and rotate the WAL. It is neither WAL-logged
        // nor write-logged — it changes no rows.
        if matches!(stmt, Statement::Checkpoint) {
            if st.storage.is_none() {
                return Err(DbError::Unsupported(
                    "CHECKPOINT requires a server started with --data-dir".into(),
                ));
            }
            let info = self.checkpoint_locked(st)?;
            return Ok(Outcome::Checkpointed {
                generation: info.generation,
                wal_truncated: info.wal_records_truncated,
            });
        }

        // IMPROVE … APPLY reuses the cache for the search, then applies
        // deltas and invalidates entries that index the mutated table.
        if let Statement::Improve(imp) = &stmt {
            let key = cache_key(imp);
            let objects = st
                .session
                .table(&imp.table)
                .ok_or_else(|| DbError::UnknownTable(imp.table.clone()))?;
            let queries = st
                .session
                .table(&imp.query_table)
                .ok_or_else(|| DbError::UnknownTable(imp.query_table.clone()))?;
            let (result, deltas) =
                iqext::improve_with(objects, queries, imp, st.cache.get(&key), &self.opts)?;
            let objects_mut = st.session.table_mut(&imp.table).expect("checked above");
            iqext::apply_deltas(objects_mut, &deltas)?;
            invalidate_touching(&mut st.cache, &self.metrics, &imp.table);
            self.commit(st, sql)?;
            return Ok(Outcome::Rows(result));
        }

        let touched = written_table(&stmt);
        let insert_rows = match &stmt {
            Statement::Insert { rows, .. } => Some(rows.clone()),
            _ => None,
        };
        let outcome = st.session.execute_parsed(stmt)?;

        if let Some(table) = touched {
            match insert_rows {
                Some(rows) => self.absorb_insert(st, &table, &rows),
                None => invalidate_touching(&mut st.cache, &self.metrics, &table),
            }
        }
        self.commit(st, sql)?;
        Ok(outcome)
    }

    /// Commits an executed write: WAL append first (consuming `sql` by
    /// reference — no clone until the in-memory log needs one), then the
    /// in-memory log, then a size-triggered auto-checkpoint.
    ///
    /// Error policy: the statement already executed, so a WAL append
    /// failure leaves memory ahead of disk. The error is surfaced to the
    /// client (the write may not survive a crash) rather than unwinding
    /// the applied state — same contract as a lost unsynced tail under
    /// `--fsync never`, but loud. Auto-checkpoint failures are swallowed:
    /// the write itself is durable and the next write retries the rotation.
    fn commit(&self, st: &mut EngineState, sql: &str) -> Result<(), DbError> {
        if let Some(storage) = st.storage.as_mut() {
            let synced = storage.append(sql).map_err(storage_err)?;
            self.metrics.wal_appends.fetch_add(1, Ordering::Relaxed);
            if synced {
                self.metrics.wal_fsyncs.fetch_add(1, Ordering::Relaxed);
            }
        }
        st.write_log.push(sql.to_string());
        if st.storage.as_ref().is_some_and(Storage::should_checkpoint) {
            let _ = self.checkpoint_locked(st);
        }
        Ok(())
    }

    /// Takes a checkpoint under the already-held write lock: serialize
    /// table state through the shared `render` encoder, hand it to the
    /// storage layer, count the event.
    fn checkpoint_locked(
        &self,
        st: &mut EngineState,
    ) -> Result<iq_storage::CheckpointInfo, DbError> {
        let statements = iq_dbms::snapshot_sql(&st.session, SNAPSHOT_ROWS_PER_INSERT);
        let storage = st.storage.as_mut().expect("caller checked storage");
        let info = storage.checkpoint(&statements).map_err(storage_err)?;
        self.metrics.checkpoints.fetch_add(1, Ordering::Relaxed);
        Ok(info)
    }

    /// Feeds freshly inserted rows through the incremental update path for
    /// every cache entry indexing `table`; entries the path cannot absorb
    /// are dropped instead.
    fn absorb_insert(&self, st: &mut EngineState, table: &str, rows: &[Vec<Value>]) {
        let table_lc = table.to_ascii_lowercase();
        let keys: Vec<CacheKey> = st
            .cache
            .keys()
            .filter(|(o, q)| *o == table_lc || *q == table_lc)
            .cloned()
            .collect();
        for key in keys {
            let mut prepared = st.cache.remove(&key).unwrap();
            let as_queries = key.1 == table_lc;
            let absorbed = if as_queries {
                let Some(qt) = st.session.table(&key.1) else {
                    continue;
                };
                absorb_query_rows(&mut prepared, qt, rows)
            } else {
                absorb_object_rows(&mut prepared, rows)
            };
            if absorbed {
                // The incremental inserts unsealed the query R-tree;
                // re-seal so readers stay on the arena fast path, and
                // count the event (the seal-state guard's contract:
                // writes against a sealed index are never silent).
                if !prepared.index.is_sealed() {
                    self.metrics.index_unseals.fetch_add(1, Ordering::Relaxed);
                    prepared.index.seal();
                }
                st.cache.insert(key, prepared);
            } else {
                self.metrics
                    .cache_invalidations
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Maps a storage-layer error into the DBMS error space (wire kind
/// `storage`).
fn storage_err(e: iq_storage::StorageError) -> DbError {
    DbError::Storage(e.to_string())
}

/// The cache key for an IMPROVE statement.
fn cache_key(imp: &ImproveStmt) -> CacheKey {
    (
        imp.table.to_ascii_lowercase(),
        imp.query_table.to_ascii_lowercase(),
    )
}

/// The table a write statement mutates, if any.
fn written_table(stmt: &Statement) -> Option<String> {
    match stmt {
        Statement::Create { name, .. } | Statement::Drop { name } => Some(name.clone()),
        Statement::Insert { table, .. }
        | Statement::Update { table, .. }
        | Statement::Delete { table, .. }
        | Statement::Copy { table, .. } => Some(table.clone()),
        _ => None,
    }
}

/// Drops every cache entry whose object or query table is `table`.
fn invalidate_touching(cache: &mut HashMap<CacheKey, Prepared>, metrics: &Metrics, table: &str) {
    let table_lc = table.to_ascii_lowercase();
    let before = cache.len();
    cache.retain(|(o, q), _| *o != table_lc && *q != table_lc);
    let dropped = (before - cache.len()) as u64;
    if dropped > 0 {
        metrics
            .cache_invalidations
            .fetch_add(dropped, Ordering::Relaxed);
    }
}

/// Incrementally adds inserted query rows to a prepared index. Returns
/// false (entry must be invalidated) if any row cannot be absorbed — bad
/// shape, non-positive k, or `k ≥ K'` (the index cannot widen toplists).
fn absorb_query_rows(prepared: &mut Prepared, qt: &iq_dbms::Table, rows: &[Vec<Value>]) -> bool {
    let d = prepared.instance.dim();
    let mut wcols = Vec::with_capacity(d);
    for j in 0..d {
        match qt.schema.index_of(&format!("w{}", j + 1)) {
            Some(idx) => wcols.push(idx),
            None => return false,
        }
    }
    let Some(kcol) = qt.schema.index_of("k") else {
        return false;
    };
    let mut stats = UpdateStats::default();
    for row in rows {
        let mut weights = Vec::with_capacity(d);
        for &c in &wcols {
            match row.get(c).and_then(Value::as_f64) {
                Some(w) => weights.push(w),
                None => return false,
            }
        }
        let k = match row.get(kcol) {
            Some(Value::Int(k)) if *k >= 1 => *k as usize,
            _ => return false,
        };
        if k >= prepared.index.kprime() {
            return false;
        }
        if update::add_query(
            &mut prepared.instance,
            &mut prepared.index,
            TopKQuery::new(weights, k),
            &mut stats,
        )
        .is_err()
        {
            return false;
        }
    }
    true
}

/// Incrementally adds inserted object rows to a prepared index. The
/// attribute layout must match the prepared extraction exactly.
fn absorb_object_rows(prepared: &mut Prepared, rows: &[Vec<Value>]) -> bool {
    let mut stats = UpdateStats::default();
    for row in rows {
        let mut attrs = Vec::with_capacity(prepared.attrs.len());
        for &c in &prepared.attrs {
            match row.get(c).and_then(Value::as_f64) {
                Some(v) => attrs.push(v),
                None => return false,
            }
        }
        if update::add_object(
            &mut prepared.instance,
            &mut prepared.index,
            attrs,
            &mut stats,
        )
        .is_err()
        {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Engine {
        let e = Engine::new(Arc::new(Metrics::new()), ExecPolicy::sequential());
        for sql in [
            "CREATE TABLE objects (id INT, a1 FLOAT, a2 FLOAT)",
            "INSERT INTO objects VALUES (0, 0.9, 0.8), (1, 0.2, 0.3), (2, 0.5, 0.5), \
             (3, 0.7, 0.2), (4, 0.3, 0.9)",
            "CREATE TABLE queries (w1 FLOAT, w2 FLOAT, k INT)",
            "INSERT INTO queries VALUES (0.9, 0.1, 1), (0.5, 0.5, 2), (0.1, 0.9, 1), \
             (0.7, 0.3, 1), (0.3, 0.7, 2), (0.6, 0.4, 1)",
        ] {
            e.execute_sql(sql).unwrap();
        }
        e
    }

    const IMPROVE: &str = "IMPROVE objects USING queries WHERE id = 0 MINCOST 3";

    #[test]
    fn cached_improve_is_byte_identical_to_fresh() {
        let e = engine();
        let first = e.execute_line(IMPROVE); // builds the cache
        let second = e.execute_line(IMPROVE); // hits it
        assert_eq!(first, second);
        assert_eq!(e.metrics().cache_misses.load(Ordering::Relaxed), 1);
        assert_eq!(e.metrics().cache_hits.load(Ordering::Relaxed), 1);
        // A fresh session (no cache at all) agrees byte for byte.
        let mut s = Session::new();
        for sql in e.write_log().iter() {
            s.execute(sql).unwrap();
        }
        let fresh = outcome_json(&s.execute(IMPROVE).unwrap());
        assert_eq!(first, fresh);
    }

    #[test]
    fn insert_into_cached_pair_absorbs_incrementally() {
        let e = engine();
        e.execute_sql(IMPROVE).unwrap();
        assert_eq!(e.metrics().cache_misses.load(Ordering::Relaxed), 1);
        // Absorbable insert: small k, correct shape.
        e.execute_sql("INSERT INTO queries VALUES (0.4, 0.6, 1)")
            .unwrap();
        assert_eq!(e.metrics().index_unseals.load(Ordering::Relaxed), 1);
        assert_eq!(e.metrics().cache_invalidations.load(Ordering::Relaxed), 0);
        // The cached index must now answer exactly like a fresh build.
        let cached = e.execute_line(IMPROVE);
        assert_eq!(
            e.metrics().cache_misses.load(Ordering::Relaxed),
            1,
            "still cached"
        );
        let fresh_engine = Engine::new(Arc::new(Metrics::new()), ExecPolicy::sequential());
        for sql in e.write_log().iter() {
            fresh_engine.execute_sql(sql).unwrap();
        }
        assert_eq!(cached, fresh_engine.execute_line(IMPROVE));
    }

    #[test]
    fn object_insert_absorbs_and_update_invalidates() {
        let e = engine();
        e.execute_sql(IMPROVE).unwrap();
        e.execute_sql("INSERT INTO objects VALUES (5, 0.1, 0.1)")
            .unwrap();
        assert_eq!(e.metrics().cache_invalidations.load(Ordering::Relaxed), 0);
        let cached = e.execute_line(IMPROVE);
        // UPDATE cannot be absorbed: the entry is dropped, then rebuilt.
        e.execute_sql("UPDATE objects SET a1 = 0.95 WHERE id = 5")
            .unwrap();
        assert_eq!(e.metrics().cache_invalidations.load(Ordering::Relaxed), 1);
        let rebuilt = e.execute_line(IMPROVE);
        assert_eq!(e.metrics().cache_misses.load(Ordering::Relaxed), 2);
        // Different data ⇒ possibly different answer; both must equal a
        // from-scratch replay at their point in history.
        let replay = Engine::new(Arc::new(Metrics::new()), ExecPolicy::sequential());
        for sql in e.write_log().iter() {
            replay.execute_sql(sql).unwrap();
        }
        assert_eq!(rebuilt, replay.execute_line(IMPROVE));
        drop(cached);
    }

    #[test]
    fn oversized_k_invalidates_instead_of_asserting() {
        let e = engine();
        e.execute_sql(IMPROVE).unwrap();
        // K' is derived from max k in the workload; k = 40 is far beyond.
        e.execute_sql("INSERT INTO queries VALUES (0.2, 0.8, 40)")
            .unwrap();
        assert_eq!(e.metrics().cache_invalidations.load(Ordering::Relaxed), 1);
        // Still answers correctly (rebuilds), no panic.
        let rebuilt = e.execute_line(IMPROVE);
        assert!(rebuilt.contains("\"ok\":true"), "{rebuilt}");
    }

    #[test]
    fn show_stats_and_shutdown_routing() {
        let e = engine();
        match e.execute_sql("SHOW STATS").unwrap() {
            Outcome::Rows(r) => assert_eq!(r.columns, vec!["metric", "value"]),
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            e.execute_sql("SHUTDOWN"),
            Err(DbError::Unsupported(_))
        ));
    }

    #[test]
    fn checkpoint_without_data_dir_is_unsupported() {
        let e = engine();
        assert!(matches!(
            e.execute_sql("CHECKPOINT"),
            Err(DbError::Unsupported(_))
        ));
    }

    #[test]
    fn show_wal_reports_disabled_without_data_dir() {
        let e = engine();
        match e.execute_sql("SHOW WAL").unwrap() {
            Outcome::Rows(r) => {
                assert_eq!(r.columns, vec!["metric", "value"]);
                assert_eq!(
                    r.rows[0],
                    vec![Value::Text("wal_enabled".into()), Value::Int(0)]
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn write_log_guard_derefs_without_cloning() {
        let e = engine();
        assert_eq!(e.write_log().len(), 4);
        let first = e.write_log().first().cloned().unwrap();
        assert!(first.starts_with("CREATE TABLE objects"));
        // Two overlapping read guards coexist (shared mode).
        let g1 = e.write_log();
        let g2 = e.write_log();
        assert_eq!(g1.len(), g2.len());
    }

    #[test]
    fn write_log_records_only_writes() {
        let e = engine();
        e.execute_sql("SELECT id FROM objects WHERE id = 1")
            .unwrap();
        e.execute_sql(IMPROVE).unwrap();
        assert_eq!(e.write_log().len(), 4, "only the 4 seed writes");
        e.execute_sql("DELETE FROM objects WHERE id = 4").unwrap();
        assert_eq!(e.write_log().len(), 5);
    }
}
