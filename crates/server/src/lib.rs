//! `iq-server`: a concurrent serving layer over the IQ engine.
//!
//! A std-only (no new dependencies) multi-threaded TCP server speaking a
//! newline-delimited SQL/JSON protocol over the [`iq_dbms`] statement
//! set, with:
//!
//! - a fixed worker pool layered on [`iq_core::exec::ExecPolicy`] so that
//!   per-request parallelism composes with cross-request concurrency
//!   without oversubscription ([`ExecPolicy::share_across`]);
//! - snapshot reads: concurrent `SELECT` / `IMPROVE` readers share an
//!   `RwLock` read guard plus a prepared-index cache, while writes
//!   serialize through the incremental update path with index re-seal
//!   ([`engine`]);
//! - bounded admission with backpressure, per-request deadlines, and a
//!   graceful drain on `SHUTDOWN` ([`server`]);
//! - embedded metrics — request counters, per-statement-kind latency
//!   histograms, queue depth — via `SHOW STATS` and a JSON dump
//!   ([`metrics`]).
//!
//! Determinism carries through from the engine: because the same
//! subdomain always yields the identical ordered candidate list, a cached
//! prepared index answers `IMPROVE` byte-identically to a fresh build,
//! and any interleaving of concurrent writes is equivalent to its
//! serialization order (recorded in the engine's write log).
//!
//! See DESIGN.md §11 for the protocol grammar and lifecycle.

// Timing is this crate's job: wall-clock constructors are unbanned here
// (clippy.toml disallowed-methods; see iq-lint wallclock-in-core).
#![allow(clippy::disallowed_methods)]
pub mod client;
pub mod engine;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use client::Client;
pub use engine::{DurabilityConfig, Engine, WriteLogGuard};
pub use iq_storage::{FsyncMode, Recovery};
pub use metrics::{Metrics, StatementKind};
pub use server::{start, ServerConfig, ServerHandle};
