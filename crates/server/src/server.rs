//! The connection/worker machinery: accept loop, per-connection readers,
//! bounded admission queue, worker pool, and graceful drain.
//!
//! Threading layout (all `std::thread`, no runtime):
//!
//! ```text
//! accept thread ──spawns──▶ one reader thread per connection
//!                               │ admission (bounded, rejects when full)
//!                               ▼
//!                        AdmissionQueue (Mutex<VecDeque> + Condvar)
//!                               │
//!                     worker 0 … worker N-1  ──▶ Engine (RwLock snapshots)
//! ```
//!
//! A connection is strictly request/response: its reader enqueues one
//! request, waits for the worker's response line, writes it, then reads
//! the next line — so responses can never reorder within a connection,
//! while the worker pool bounds *global* concurrency. Backpressure is
//! immediate: a full queue rejects at admission with a `rejected` line
//! rather than buffering unboundedly.
//!
//! Shutdown (`SHUTDOWN` statement, or [`ServerHandle::shutdown`]) drains:
//! the acceptor stops, queued requests finish, readers close after their
//! in-flight response, workers exit when the queue runs dry. `std` cannot
//! catch SIGTERM without extra dependencies, so the statement and the
//! programmatic handle are the two shutdown paths (see DESIGN.md §11).

use crate::engine::Engine;
use crate::metrics::Metrics;
use crate::protocol;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads executing statements.
    pub workers: usize,
    /// Admission-queue capacity; a full queue rejects new requests.
    pub queue_capacity: usize,
    /// Deadline applied to requests without an `@<ms>` prefix.
    pub default_deadline: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_capacity: 64,
            default_deadline: None,
        }
    }
}

/// One admitted request.
struct Request {
    sql: String,
    deadline: Option<Instant>,
    reply: mpsc::Sender<String>,
}

/// The bounded admission queue. `try_push` never blocks — backpressure is
/// an immediate rejection, keeping slow clients from wedging readers.
struct AdmissionQueue {
    inner: Mutex<(VecDeque<Request>, bool)>, // (queue, closed)
    cv: Condvar,
    capacity: usize,
    metrics: Arc<Metrics>,
}

impl AdmissionQueue {
    fn new(capacity: usize, metrics: Arc<Metrics>) -> Self {
        AdmissionQueue {
            inner: Mutex::new((VecDeque::new(), false)),
            cv: Condvar::new(),
            capacity: capacity.max(1),
            metrics,
        }
    }

    /// Admits a request, or returns it when the queue is full or closed.
    fn try_push(&self, req: Request) -> Result<(), Request> {
        let mut guard = self.inner.lock().unwrap();
        let (queue, closed) = &mut *guard;
        if *closed || queue.len() >= self.capacity {
            return Err(req);
        }
        queue.push_back(req);
        self.metrics.set_queue_depth(queue.len() as u64);
        self.cv.notify_one();
        Ok(())
    }

    /// Blocks for the next request; `None` once closed *and* drained —
    /// the worker-exit condition, which is what makes shutdown a drain.
    fn pop(&self) -> Option<Request> {
        let mut guard = self.inner.lock().unwrap();
        loop {
            let (queue, closed) = &mut *guard;
            if let Some(req) = queue.pop_front() {
                self.metrics.set_queue_depth(queue.len() as u64);
                return Some(req);
            }
            if *closed {
                return None;
            }
            guard = self.cv.wait(guard).unwrap();
        }
    }

    fn close(&self) {
        self.inner.lock().unwrap().1 = true;
        self.cv.notify_all();
    }
}

/// A running server; dropping the handle does **not** stop it — call
/// [`ServerHandle::shutdown`] (or send `SHUTDOWN` over a connection) and
/// then [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    queue: Arc<AdmissionQueue>,
    threads: Vec<JoinHandle<()>>,
    engine: Arc<Engine>,
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared engine (metrics access, post-shutdown inspection).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Requests a drain-and-stop. Idempotent; returns immediately.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.close();
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Waits for the acceptor, all connections, and all workers to finish.
    /// Call [`ServerHandle::shutdown`] first (or have a client send
    /// `SHUTDOWN`), otherwise this blocks for the server's lifetime.
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Binds and starts the server.
pub fn start(engine: Arc<Engine>, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let shutdown = Arc::new(AtomicBool::new(false));
    let metrics = Arc::clone(engine.metrics());
    let queue = Arc::new(AdmissionQueue::new(
        config.queue_capacity,
        Arc::clone(&metrics),
    ));
    let mut threads = Vec::new();

    // Workers: drain the queue until it is closed and empty.
    for _ in 0..config.workers.max(1) {
        let queue = Arc::clone(&queue);
        let engine = Arc::clone(&engine);
        let metrics = Arc::clone(&metrics);
        threads.push(std::thread::spawn(move || {
            while let Some(req) = queue.pop() {
                if req.deadline.is_some_and(|d| Instant::now() > d) {
                    metrics.timed_out.fetch_add(1, Ordering::Relaxed);
                    let _ = req.reply.send(protocol::timed_out_response());
                    continue;
                }
                let kind = Engine::classify(&req.sql);
                let started = Instant::now();
                let response = engine.execute_line(&req.sql);
                let micros = started.elapsed().as_micros() as u64;
                metrics.record(kind, protocol::is_ok(&response), micros);
                let _ = req.reply.send(response);
            }
        }));
    }

    // Acceptor: nonblocking poll so it can observe the shutdown flag; each
    // connection gets its own reader thread, tracked for the final join.
    let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    {
        let shutdown = Arc::clone(&shutdown);
        let queue = Arc::clone(&queue);
        let metrics = Arc::clone(&metrics);
        let conn_threads = Arc::clone(&conn_threads);
        let default_deadline = config.default_deadline;
        threads.push(std::thread::spawn(move || {
            loop {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        metrics.connections.fetch_add(1, Ordering::Relaxed);
                        let shutdown = Arc::clone(&shutdown);
                        let queue = Arc::clone(&queue);
                        let handle = std::thread::spawn(move || {
                            serve_connection(stream, &queue, &shutdown, default_deadline);
                        });
                        conn_threads.lock().unwrap().push(handle);
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
            // Drain: wait for every connection to finish its in-flight
            // work, then close the queue so workers exit.
            let handles = std::mem::take(&mut *conn_threads.lock().unwrap());
            for h in handles {
                let _ = h.join();
            }
            queue.close();
        }));
    }

    Ok(ServerHandle {
        addr,
        shutdown,
        queue,
        threads,
        engine,
    })
}

/// One connection's request/response loop.
fn serve_connection(
    stream: TcpStream,
    queue: &AdmissionQueue,
    shutdown: &AtomicBool,
    default_deadline: Option<Duration>,
) {
    // One-line responses must not sit in Nagle's buffer waiting for a
    // delayed ACK (a silent ~40ms tax per request); short read timeouts
    // keep the reader responsive to shutdown even on an idle client.
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = LineReader::new(stream);

    loop {
        let line = match reader.read_line(shutdown) {
            Some(l) => l,
            None => return, // EOF, error, or shutdown while idle
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (deadline_ms, sql) = protocol::parse_request(line);

        // SHUTDOWN is the connection layer's statement: acknowledge, then
        // trip the flag. The acceptor notices, drains, and closing the
        // queue lets every worker exit.
        if matches!(iq_dbms::parse(sql), Ok(iq_dbms::Statement::Shutdown)) {
            // Flag first, ack second: a client that has the ack in hand
            // must observe the server as already shutting down.
            shutdown.store(true, Ordering::SeqCst);
            let _ = writeln!(writer, "{}", protocol::shutdown_response());
            return;
        }

        let deadline = deadline_ms.or(default_deadline).map(|d| Instant::now() + d);
        let (tx, rx) = mpsc::channel();
        let req = Request {
            sql: sql.to_string(),
            deadline,
            reply: tx,
        };
        let response = match queue.try_push(req) {
            Ok(()) => match rx.recv() {
                Ok(r) => r,
                Err(_) => return, // workers gone (shutdown raced us)
            },
            Err(_) => {
                queue.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                protocol::rejected_response()
            }
        };
        if writeln!(writer, "{response}").is_err() {
            return;
        }
        if shutdown.load(Ordering::SeqCst) {
            return; // in-flight request answered; now drain this reader
        }
    }
}

/// A byte-accumulating line reader that tolerates read timeouts:
/// `BufReader::read_line` can hand back partial lines on timeout, so this
/// keeps its own buffer and only yields complete `\n`-terminated lines.
struct LineReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl LineReader {
    fn new(stream: TcpStream) -> Self {
        LineReader {
            stream,
            buf: Vec::new(),
        }
    }

    /// The next complete line, or `None` on EOF/error — or on shutdown,
    /// but only while idle *between* lines (a half-read line still gets
    /// finished, so an in-flight request is never truncated).
    fn read_line(&mut self, shutdown: &AtomicBool) -> Option<String> {
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=pos).collect();
                return Some(String::from_utf8_lossy(&line).into_owned());
            }
            if shutdown.load(Ordering::SeqCst) && self.buf.is_empty() {
                return None;
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return None, // EOF
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    continue; // timeout tick: re-check shutdown
                }
                Err(_) => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_queue(cap: usize) -> AdmissionQueue {
        AdmissionQueue::new(cap, Arc::new(Metrics::new()))
    }

    fn mk_request() -> (Request, mpsc::Receiver<String>) {
        let (tx, rx) = mpsc::channel();
        (
            Request {
                sql: "SELECT 1".into(),
                deadline: None,
                reply: tx,
            },
            rx,
        )
    }

    #[test]
    fn queue_bounds_and_rejects_when_full() {
        let q = mk_queue(2);
        let (r1, _rx1) = mk_request();
        let (r2, _rx2) = mk_request();
        let (r3, _rx3) = mk_request();
        assert!(q.try_push(r1).is_ok());
        assert!(q.try_push(r2).is_ok());
        assert!(q.try_push(r3).is_err(), "third must bounce");
        assert_eq!(q.metrics.queue_high_water.load(Ordering::Relaxed), 2);
        // Popping frees a slot.
        assert!(q.pop().is_some());
        let (r4, _rx4) = mk_request();
        assert!(q.try_push(r4).is_ok());
    }

    #[test]
    fn closed_queue_rejects_pushes_and_drains_pops() {
        let q = mk_queue(4);
        let (r1, _rx1) = mk_request();
        assert!(q.try_push(r1).is_ok());
        q.close();
        let (r2, _rx2) = mk_request();
        assert!(q.try_push(r2).is_err(), "closed rejects new work");
        assert!(q.pop().is_some(), "but queued work still drains");
        assert!(q.pop().is_none(), "then signals exhaustion");
    }

    #[test]
    fn pop_wakes_on_close_from_another_thread() {
        let q = Arc::new(mk_queue(1));
        let q2 = Arc::clone(&q);
        let waiter = std::thread::spawn(move || q2.pop().is_none());
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(waiter.join().unwrap(), "blocked pop must observe close");
    }
}
