//! Generic union functions for heterogeneous utility functions (§5.3).
//!
//! When different users rank the same dataset with *structurally different*
//! utility functions (the paper's Eqs. 19 and 26), the subdomain machinery
//! needs a single function space. The paper's fix: construct one "generic"
//! function whose weight vector is the concatenation of every member
//! function's weights — a query using member `i` sets every other member's
//! weights to zero, making each member a special case of the union
//! (Eqs. 27–29).
//!
//! [`GenericFamily`] implements that over *linearized* members: the
//! augmented attribute space is the concatenation of the members' augmented
//! attributes, and [`GenericFamily::augmented_query`] embeds a member query
//! into the union space with zeros elsewhere.

use crate::linearize::{LinearizeError, LinearizedUtility};
use crate::Expr;

/// A family of heterogeneous utility functions unified into one generic
/// linear function over a shared augmented space.
#[derive(Debug, Clone)]
pub struct GenericFamily {
    members: Vec<LinearizedUtility>,
    offsets: Vec<usize>,
    total_dim: usize,
}

impl GenericFamily {
    /// Builds the family by linearizing each member expression.
    pub fn from_exprs(exprs: &[Expr]) -> Result<Self, LinearizeError> {
        let members = exprs
            .iter()
            .map(LinearizedUtility::linearize)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self::from_linearized(members))
    }

    /// Builds the family from already-linearized members.
    pub fn from_linearized(members: Vec<LinearizedUtility>) -> Self {
        let mut offsets = Vec::with_capacity(members.len());
        let mut total = 0;
        for m in &members {
            offsets.push(total);
            total += m.dim();
        }
        GenericFamily {
            members,
            offsets,
            total_dim: total,
        }
    }

    /// Number of member utility functions.
    pub fn num_members(&self) -> usize {
        self.members.len()
    }

    /// The member utilities.
    pub fn members(&self) -> &[LinearizedUtility] {
        &self.members
    }

    /// Dimensionality of the union (generic) function space.
    pub fn dim(&self) -> usize {
        self.total_dim
    }

    /// The block `[start, end)` of union dimensions owned by member `i`.
    pub fn member_block(&self, member: usize) -> std::ops::Range<usize> {
        let start = self.offsets[member];
        start..start + self.members[member].dim()
    }

    /// The union-space attribute vector of an object: the concatenation of
    /// every member's augmented attributes, computed on the fly.
    pub fn augmented_object(&self, attrs: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.total_dim);
        for m in &self.members {
            out.extend(m.augmented_object(attrs));
        }
        out
    }

    /// Embeds a query of member `member` into union space: its augmented
    /// weights in the member's block, zeros elsewhere (the w₃ = w₄ = 0 rule
    /// of Eq. 27–29).
    pub fn augmented_query(&self, member: usize, weights: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.total_dim];
        let aq = self.members[member].augmented_query(weights);
        let start = self.offsets[member];
        out[start..start + aq.len()].copy_from_slice(&aq);
        out
    }

    /// Scores an object for a member query through the union space.
    pub fn score(&self, member: usize, attrs: &[f64], weights: &[f64]) -> f64 {
        self.members[member].score(attrs, weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, Schema};

    fn family(sources: &[&str]) -> GenericFamily {
        let schema = Schema::positional();
        let exprs: Vec<Expr> = sources.iter().map(|s| parse(s, &schema).unwrap()).collect();
        GenericFamily::from_exprs(&exprs).unwrap()
    }

    #[test]
    fn paper_eq27_union_of_car_utilities() {
        // u (Eq. 19): sqrt(w1·Price) + w2·Capacity/MPG
        // v (Eq. 26): MPG/(w1·Price) + w2·Capacity²
        // (attributes: p1 = Price, p2 = MPG, p3 = Capacity)
        let fam = family(&["sqrt(w1 * p1) + w2 * p3 / p2", "p2 / (w1 * p1) + w2 * p3^2"]);
        assert_eq!(fam.num_members(), 2);
        assert_eq!(fam.dim(), 4);

        // Car 1 of Table 1: (15000, 30, 4).
        let attrs = [15000.0, 30.0, 4.0];
        let ao = fam.augmented_object(&attrs);
        assert_eq!(ao.len(), 4);

        // A member-0 query scores identically through the union dot product.
        for (member, weights) in [(0usize, [2.0, 3.0]), (1usize, [0.5, 0.1])] {
            let aq = fam.augmented_query(member, &weights);
            let dot: f64 = ao.iter().zip(&aq).map(|(a, b)| a * b).sum();
            let direct = fam.members()[member].score(&attrs, &weights);
            assert!(
                (dot - direct).abs() < 1e-9 * (1.0 + direct.abs()),
                "member {member}: union {dot} vs direct {direct}"
            );
            // Weights outside the member's block are zero.
            let block = fam.member_block(member);
            for (i, v) in aq.iter().enumerate() {
                if !block.contains(&i) {
                    assert_eq!(*v, 0.0, "weight leakage at union dim {i}");
                }
            }
        }
    }

    #[test]
    fn member_blocks_are_disjoint_and_cover() {
        let fam = family(&["w1 * p1", "w1 * p1^2 + w2 * p2", "w1 * p2"]);
        let mut covered = vec![false; fam.dim()];
        for m in 0..fam.num_members() {
            for i in fam.member_block(m) {
                assert!(!covered[i], "dimension {i} owned by two members");
                covered[i] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn ranking_preserved_per_member() {
        let fam = family(&["w1 * p1 + w2 * p2", "w1 * p1 * p2"]);
        let objects = [[0.2, 0.9], [0.8, 0.3], [0.5, 0.5]];
        for member in 0..2 {
            let weights = [0.7, 0.3];
            let aq = fam.augmented_query(member, &weights);
            let mut by_direct: Vec<usize> = (0..3).collect();
            by_direct.sort_by(|&a, &b| {
                fam.score(member, &objects[a], &weights)
                    .total_cmp(&fam.score(member, &objects[b], &weights))
            });
            let mut by_union: Vec<usize> = (0..3).collect();
            by_union.sort_by(|&a, &b| {
                let sa: f64 = fam
                    .augmented_object(&objects[a])
                    .iter()
                    .zip(&aq)
                    .map(|(x, y)| x * y)
                    .sum();
                let sb: f64 = fam
                    .augmented_object(&objects[b])
                    .iter()
                    .zip(&aq)
                    .map(|(x, y)| x * y)
                    .sum();
                sa.total_cmp(&sb)
            });
            assert_eq!(by_direct, by_union, "member {member}");
        }
    }

    #[test]
    fn single_member_family_degenerates_gracefully() {
        let fam = family(&["w1 * p1 + w2 * p2"]);
        assert_eq!(fam.dim(), 2);
        assert_eq!(fam.member_block(0), 0..2);
        let aq = fam.augmented_query(0, &[0.4, 0.6]);
        assert_eq!(aq, vec![0.4, 0.6]);
    }
}
