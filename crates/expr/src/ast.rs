//! Expression AST for utility and cost functions.
//!
//! A utility function scores an object for a query. Following §5.2 of the
//! paper, expressions mention two kinds of variables: object **attributes**
//! (`Attr`, the coefficients once the object is interpreted as a function)
//! and query **weights** (`Weight`, the function's input). The same AST
//! doubles as the cost-function language, where attributes refer to the
//! components of the improvement strategy.

use std::fmt;

/// A scalar expression over object attributes and query weights.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Const(f64),
    /// Object attribute `p^(i)` (0-based).
    Attr(usize),
    /// Query weight `w_i` (0-based).
    Weight(usize),
    /// Sum of two expressions.
    Add(Box<Expr>, Box<Expr>),
    /// Difference of two expressions.
    Sub(Box<Expr>, Box<Expr>),
    /// Product of two expressions.
    Mul(Box<Expr>, Box<Expr>),
    /// Quotient of two expressions.
    Div(Box<Expr>, Box<Expr>),
    /// Negation.
    Neg(Box<Expr>),
    /// Integer power (`n ≥ 0`).
    Pow(Box<Expr>, u32),
    /// Square root.
    Sqrt(Box<Expr>),
}

impl Expr {
    /// Convenience: literal constant.
    pub fn c(v: f64) -> Expr {
        Expr::Const(v)
    }

    /// Convenience: attribute variable.
    pub fn attr(i: usize) -> Expr {
        Expr::Attr(i)
    }

    /// Convenience: weight variable.
    pub fn weight(i: usize) -> Expr {
        Expr::Weight(i)
    }

    /// `self + rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }

    /// `self - rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }

    /// `self * rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }

    /// `self / rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::Div(Box::new(self), Box::new(rhs))
    }

    /// `self ^ n`.
    pub fn pow(self, n: u32) -> Expr {
        Expr::Pow(Box::new(self), n)
    }

    /// `sqrt(self)`.
    pub fn sqrt(self) -> Expr {
        Expr::Sqrt(Box::new(self))
    }

    /// `-self`.
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Expr {
        Expr::Neg(Box::new(self))
    }

    /// Evaluates the expression for concrete attribute and weight vectors.
    ///
    /// # Panics
    /// Panics when a variable index exceeds the supplied slices — callers
    /// validate arity with [`Expr::max_attr`] / [`Expr::max_weight`] first.
    pub fn eval(&self, attrs: &[f64], weights: &[f64]) -> f64 {
        match self {
            Expr::Const(v) => *v,
            Expr::Attr(i) => attrs[*i],
            Expr::Weight(i) => weights[*i],
            Expr::Add(a, b) => a.eval(attrs, weights) + b.eval(attrs, weights),
            Expr::Sub(a, b) => a.eval(attrs, weights) - b.eval(attrs, weights),
            Expr::Mul(a, b) => a.eval(attrs, weights) * b.eval(attrs, weights),
            Expr::Div(a, b) => a.eval(attrs, weights) / b.eval(attrs, weights),
            Expr::Neg(a) => -a.eval(attrs, weights),
            Expr::Pow(a, n) => a.eval(attrs, weights).powi(*n as i32),
            Expr::Sqrt(a) => a.eval(attrs, weights).sqrt(),
        }
    }

    /// Largest attribute index mentioned, or `None` when attribute-free.
    pub fn max_attr(&self) -> Option<usize> {
        self.fold_indices(&mut |attr, _| attr)
    }

    /// Largest weight index mentioned, or `None` when weight-free.
    pub fn max_weight(&self) -> Option<usize> {
        self.fold_indices(&mut |_, weight| weight)
    }

    fn fold_indices(
        &self,
        pick: &mut impl FnMut(Option<usize>, Option<usize>) -> Option<usize>,
    ) -> Option<usize> {
        match self {
            Expr::Const(_) => None,
            Expr::Attr(i) => pick(Some(*i), None),
            Expr::Weight(i) => pick(None, Some(*i)),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                opt_max(a.fold_indices(pick), b.fold_indices(pick))
            }
            Expr::Neg(a) | Expr::Sqrt(a) => a.fold_indices(pick),
            Expr::Pow(a, _) => a.fold_indices(pick),
        }
    }

    /// Whether the expression mentions any attribute.
    pub fn uses_attrs(&self) -> bool {
        self.max_attr().is_some()
    }

    /// Whether the expression mentions any weight.
    pub fn uses_weights(&self) -> bool {
        self.max_weight().is_some()
    }

    /// Whether the expression is a pure constant.
    pub fn is_constant(&self) -> bool {
        !self.uses_attrs() && !self.uses_weights()
    }

    /// Builds the linear utility `Σ w_i · p^(i)` over `d` dimensions — the
    /// common case of §3.2 (Eq. 1).
    pub fn linear(d: usize) -> Expr {
        assert!(d > 0, "linear utility needs at least one dimension");
        let mut e = Expr::weight(0).mul(Expr::attr(0));
        for i in 1..d {
            e = e.add(Expr::weight(i).mul(Expr::attr(i)));
        }
        e
    }
}

fn opt_max(a: Option<usize>, b: Option<usize>) -> Option<usize> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.max(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Attr(i) => write!(f, "p{}", i + 1),
            Expr::Weight(i) => write!(f, "w{}", i + 1),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::Div(a, b) => write!(f, "({a} / {b})"),
            Expr::Neg(a) => write!(f, "(-{a})"),
            Expr::Pow(a, n) => write!(f, "({a}^{n})"),
            Expr::Sqrt(a) => write!(f, "sqrt({a})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_arithmetic() {
        // 2 * p1 + w1 - 3
        let e = Expr::c(2.0)
            .mul(Expr::attr(0))
            .add(Expr::weight(0))
            .sub(Expr::c(3.0));
        assert_eq!(e.eval(&[5.0], &[7.0]), 14.0);
    }

    #[test]
    fn eval_pow_sqrt_div_neg() {
        let e = Expr::attr(0).pow(3);
        assert_eq!(e.eval(&[2.0], &[]), 8.0);
        let e = Expr::attr(0).sqrt();
        assert_eq!(e.eval(&[9.0], &[]), 3.0);
        let e = Expr::attr(0).div(Expr::attr(1));
        assert_eq!(e.eval(&[6.0, 3.0], &[]), 2.0);
        let e = Expr::attr(0).neg();
        assert_eq!(e.eval(&[6.0], &[]), -6.0);
    }

    #[test]
    fn linear_matches_dot_product() {
        let e = Expr::linear(3);
        let attrs = [1.0, 2.0, 3.0];
        let weights = [0.5, 0.25, 0.125];
        let want: f64 = attrs.iter().zip(&weights).map(|(a, w)| a * w).sum();
        assert_eq!(e.eval(&attrs, &weights), want);
    }

    #[test]
    fn index_analysis() {
        let e = Expr::weight(2).mul(Expr::attr(4)).add(Expr::attr(1));
        assert_eq!(e.max_attr(), Some(4));
        assert_eq!(e.max_weight(), Some(2));
        assert!(e.uses_attrs() && e.uses_weights());
        assert!(!Expr::c(1.0).uses_attrs());
        assert!(Expr::c(1.0).is_constant());
    }

    #[test]
    fn display_roundtrip_shape() {
        let e = Expr::weight(0).mul(Expr::attr(0).pow(3)).add(Expr::c(1.0));
        assert_eq!(format!("{e}"), "((w1 * (p1^3)) + 1)");
    }

    #[test]
    fn paper_car_utility_eq19() {
        // u(c) = sqrt(w1 * Price) + w2 * Capacity / MPG   (Eq. 19)
        // Car 1: Price 15000, MPG 30, Capacity 4.
        let u = Expr::weight(0)
            .mul(Expr::attr(0))
            .sqrt()
            .add(Expr::weight(1).mul(Expr::attr(2)).div(Expr::attr(1)));
        let got = u.eval(&[15000.0, 30.0, 4.0], &[1.0, 1.0]);
        let want = 15000f64.sqrt() + 4.0 / 30.0;
        assert!((got - want).abs() < 1e-9);
    }
}
