//! Variable-substitution linearization of complex utility functions (§5.2).
//!
//! A non-linear utility like Eq. 20,
//! `u(p) = w1·(p¹)³ + w2·(p²·p³) + w3·(p⁴)²`, becomes the linear function
//! `u*(p) = w1·p⁵ + w2·p⁶ + w3·p⁷` over *augmented attributes*
//! `p⁵ = (p¹)³`, `p⁶ = p²·p³`, `p⁷ = (p⁴)²` (Eq. 21). The augmented values
//! are never stored — "we simply store the conversion process as math
//! formulas, and compute their values on the fly".
//!
//! The algorithm: expand the expression into a sum of products, split each
//! product into a weights-only part and an attributes-only part, and emit
//! one augmented dimension per distinct attribute part. An outermost
//! `sqrt(·)` is stripped first (it is monotone increasing on the
//! non-negative scores utilities produce, so ranking is preserved — the
//! paper's Eq. 22→25 trick for Euclidean-distance utilities). Mixed factors
//! that cannot be separated, such as `sqrt(w1 + p1)`, are reported as
//! [`LinearizeError::Inseparable`].

use crate::ast::Expr;
use std::fmt;

/// One augmented dimension: the weight-side coefficient expression and the
/// attribute-side value expression.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearTerm {
    /// Expression over query weights only (the augmented query coordinate).
    pub weight_expr: Expr,
    /// Expression over object attributes only (the augmented attribute).
    pub attr_expr: Expr,
}

/// Why an expression could not be linearized.
#[derive(Debug, Clone, PartialEq)]
pub enum LinearizeError {
    /// A multiplicative factor mixes weights and attributes inseparably.
    Inseparable(String),
    /// A denominator was itself a sum; only single-product denominators are
    /// supported.
    SumDenominator(String),
    /// A power of a sum exceeded the expansion limit.
    PowerTooLarge(u32),
}

impl fmt::Display for LinearizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinearizeError::Inseparable(e) => {
                write!(f, "factor `{e}` mixes weights and attributes inseparably")
            }
            LinearizeError::SumDenominator(e) => {
                write!(
                    f,
                    "denominator `{e}` is a sum; divide by a single product instead"
                )
            }
            LinearizeError::PowerTooLarge(n) => {
                write!(f, "refusing to expand a sum raised to the {n}-th power")
            }
        }
    }
}

impl std::error::Error for LinearizeError {}

/// The linearized form of a utility function.
#[derive(Debug, Clone)]
pub struct LinearizedUtility {
    terms: Vec<LinearTerm>,
    monotone_stripped: u32,
    original: Expr,
}

/// Maximum exponent to which a *sum* will be expanded.
const MAX_SUM_POWER: u32 = 6;

impl LinearizedUtility {
    /// Linearizes `expr` by variable substitution.
    pub fn linearize(expr: &Expr) -> Result<Self, LinearizeError> {
        // Strip outermost monotone-increasing sqrt wrappers: ranking by
        // sqrt(u) equals ranking by u on non-negative scores (Eq. 22–25).
        let mut inner = expr;
        let mut stripped = 0;
        while let Expr::Sqrt(e) = inner {
            inner = e;
            stripped += 1;
        }
        let products = expand(inner)?;
        // Split each product and merge terms sharing an attribute part.
        let mut terms: Vec<LinearTerm> = Vec::new();
        let mut keys: Vec<String> = Vec::new();
        for product in products {
            let (w, a) = split_product(product)?;
            let key = format!("{a}");
            if let Some(pos) = keys.iter().position(|k| *k == key) {
                let old = terms[pos].weight_expr.clone();
                terms[pos].weight_expr = old.add(w);
            } else {
                keys.push(key);
                terms.push(LinearTerm {
                    weight_expr: w,
                    attr_expr: a,
                });
            }
        }
        Ok(LinearizedUtility {
            terms,
            monotone_stripped: stripped,
            original: expr.clone(),
        })
    }

    /// The augmented dimensionality (number of substitution terms).
    pub fn dim(&self) -> usize {
        self.terms.len()
    }

    /// The augmented terms.
    pub fn terms(&self) -> &[LinearTerm] {
        &self.terms
    }

    /// How many outermost `sqrt` wrappers were stripped. When non-zero, the
    /// linearized score is a monotone transform (repeated squaring) of the
    /// original — identical ranking, different magnitude.
    pub fn monotone_stripped(&self) -> u32 {
        self.monotone_stripped
    }

    /// The original expression.
    pub fn original(&self) -> &Expr {
        &self.original
    }

    /// Computes the augmented attribute vector of an object on the fly.
    pub fn augmented_object(&self, attrs: &[f64]) -> Vec<f64> {
        self.terms
            .iter()
            .map(|t| t.attr_expr.eval(attrs, &[]))
            .collect()
    }

    /// Computes the augmented weight vector of a query on the fly.
    pub fn augmented_query(&self, weights: &[f64]) -> Vec<f64> {
        self.terms
            .iter()
            .map(|t| t.weight_expr.eval(&[], weights))
            .collect()
    }

    /// The linearized score: the dot product of the augmented vectors.
    /// Equals the original utility raised to `2^monotone_stripped`.
    pub fn score(&self, attrs: &[f64], weights: &[f64]) -> f64 {
        self.terms
            .iter()
            .map(|t| t.weight_expr.eval(&[], weights) * t.attr_expr.eval(attrs, weights))
            .sum()
    }
}

/// A product of leaf factors (each factor is weights-only, attrs-only, or
/// constant once expansion succeeds).
type Product = Vec<Expr>;

/// Expands an expression into a sum of products.
fn expand(expr: &Expr) -> Result<Vec<Product>, LinearizeError> {
    match expr {
        Expr::Const(_) | Expr::Attr(_) | Expr::Weight(_) => Ok(vec![vec![expr.clone()]]),
        Expr::Neg(a) => {
            let mut out = expand(a)?;
            for p in &mut out {
                p.push(Expr::Const(-1.0));
            }
            Ok(out)
        }
        Expr::Add(a, b) => {
            let mut out = expand(a)?;
            out.extend(expand(b)?);
            Ok(out)
        }
        Expr::Sub(a, b) => {
            let mut out = expand(a)?;
            let mut rhs = expand(b)?;
            for p in &mut rhs {
                p.push(Expr::Const(-1.0));
            }
            out.extend(rhs);
            Ok(out)
        }
        Expr::Mul(a, b) => {
            let left = expand(a)?;
            let right = expand(b)?;
            let mut out = Vec::with_capacity(left.len() * right.len());
            for l in &left {
                for r in &right {
                    let mut p = l.clone();
                    p.extend(r.iter().cloned());
                    out.push(p);
                }
            }
            Ok(out)
        }
        Expr::Div(a, b) => {
            let num = expand(a)?;
            let den = expand(b)?;
            if den.len() != 1 {
                return Err(LinearizeError::SumDenominator(format!("{b}")));
            }
            let recip: Vec<Expr> = den[0]
                .iter()
                .map(|f| Expr::Const(1.0).div(f.clone()))
                .collect();
            let mut out = num;
            for p in &mut out {
                p.extend(recip.iter().cloned());
            }
            Ok(out)
        }
        Expr::Pow(a, n) => {
            if *n == 0 {
                return Ok(vec![vec![Expr::Const(1.0)]]);
            }
            let base = expand(a)?;
            if base.len() == 1 {
                // Power of a product distributes over the factors.
                Ok(vec![base[0].iter().map(|f| pow_factor(f, *n)).collect()])
            } else {
                if *n > MAX_SUM_POWER {
                    return Err(LinearizeError::PowerTooLarge(*n));
                }
                // (sum)^n by repeated multiplication.
                let mut acc = base.clone();
                for _ in 1..*n {
                    let mut next = Vec::with_capacity(acc.len() * base.len());
                    for l in &acc {
                        for r in &base {
                            let mut p = l.clone();
                            p.extend(r.iter().cloned());
                            next.push(p);
                        }
                    }
                    acc = next;
                }
                Ok(acc)
            }
        }
        Expr::Sqrt(a) => {
            let base = expand(a)?;
            if base.len() == 1 {
                // sqrt of a product distributes over factors (utilities
                // operate on non-negative attribute/weight domains).
                Ok(vec![base[0].iter().map(|f| f.clone().sqrt()).collect()])
            } else {
                // sqrt of a sum is fine iff the sum is single-sided.
                let sum = a.as_ref().clone();
                if !sum.uses_attrs() || !sum.uses_weights() {
                    Ok(vec![vec![sum.sqrt()]])
                } else {
                    Err(LinearizeError::Inseparable(format!("{expr}")))
                }
            }
        }
    }
}

fn pow_factor(f: &Expr, n: u32) -> Expr {
    match f {
        Expr::Const(v) => Expr::Const(v.powi(n as i32)),
        other => other.clone().pow(n),
    }
}

/// Splits a product's factors into (weights-only expr, attrs-only expr).
fn split_product(product: Product) -> Result<(Expr, Expr), LinearizeError> {
    let mut weight_factors: Vec<Expr> = Vec::new();
    let mut attr_factors: Vec<Expr> = Vec::new();
    let mut constant = 1.0f64;
    for f in product {
        let uses_a = f.uses_attrs();
        let uses_w = f.uses_weights();
        match (uses_a, uses_w) {
            (false, false) => {
                constant *= f.eval(&[], &[]);
            }
            (true, false) => attr_factors.push(f),
            (false, true) => weight_factors.push(f),
            (true, true) => return Err(LinearizeError::Inseparable(format!("{f}"))),
        }
    }
    // Deterministic factor order so structurally equal parts print equally.
    let sort_key = |e: &Expr| format!("{e}");
    weight_factors.sort_by_key(sort_key);
    attr_factors.sort_by_key(sort_key);

    let weight_expr = fold_product(weight_factors, constant);
    let attr_expr = fold_product(attr_factors, 1.0);
    Ok((weight_expr, attr_expr))
}

fn fold_product(factors: Vec<Expr>, constant: f64) -> Expr {
    let mut it = factors.into_iter();
    let mut acc = match it.next() {
        None => return Expr::Const(constant),
        Some(f) => f,
    };
    for f in it {
        acc = acc.mul(f);
    }
    // iq-lint: allow(raw-score-cmp, reason = "exact multiplicative-identity test on a folded constant")
    if constant == 1.0 {
        acc
    } else {
        Expr::Const(constant).mul(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, Schema};

    fn lin(input: &str) -> LinearizedUtility {
        let e = parse(input, &Schema::positional()).unwrap();
        LinearizedUtility::linearize(&e).unwrap()
    }

    fn check_score_equality(u: &LinearizedUtility, attrs: &[f64], weights: &[f64]) {
        let original = u.original().eval(attrs, weights);
        let mut lin_score = u.score(attrs, weights);
        // Undo the stripped monotone transforms.
        for _ in 0..u.monotone_stripped() {
            lin_score = lin_score.sqrt();
        }
        assert!(
            (original - lin_score).abs() < 1e-9 * (1.0 + original.abs()),
            "score mismatch: original {original}, linearized {lin_score}"
        );
        // Also check the augmented dot product equals score().
        let ao = u.augmented_object(attrs);
        let aq = u.augmented_query(weights);
        let dot: f64 = ao.iter().zip(&aq).map(|(a, b)| a * b).sum();
        let raw = u.score(attrs, weights);
        assert!((dot - raw).abs() < 1e-9 * (1.0 + raw.abs()));
    }

    #[test]
    fn plain_linear_is_identity_dimension() {
        let u = lin("w1 * p1 + w2 * p2 + w3 * p3");
        assert_eq!(u.dim(), 3);
        check_score_equality(&u, &[1.0, 2.0, 3.0], &[0.3, 0.5, 0.2]);
    }

    #[test]
    fn paper_eq20_to_eq21() {
        // u(p) = w1(p1)³ + w2(p2·p3) + w3(p4)² → 3 augmented dims.
        let u = lin("w1 * p1^3 + w2 * (p2 * p3) + w3 * p4^2");
        assert_eq!(u.dim(), 3);
        let attrs = [2.0, 3.0, 4.0, 5.0];
        let ao = u.augmented_object(&attrs);
        let mut sorted = ao.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        // p5 = 8, p6 = 12, p7 = 25.
        assert_eq!(sorted, vec![8.0, 12.0, 25.0]);
        check_score_equality(&u, &attrs, &[0.2, 0.5, 0.3]);
    }

    #[test]
    fn paper_eq22_euclidean_distance() {
        // u(p) = sqrt((w1 - p1)² + (w2 - p2)²): outer sqrt stripped, then
        // expansion gives terms {1 (const attr), p1, p2, p1², p2²}.
        let u = lin("sqrt((w1 - p1)^2 + (w2 - p2)^2)");
        assert_eq!(u.monotone_stripped(), 1);
        assert!(u.dim() <= 5, "dim {} unexpectedly large", u.dim());
        for (attrs, weights) in [
            ([1.0, 2.0], [3.0, 4.0]),
            ([0.5, 0.5], [0.25, 0.75]),
            ([2.0, -1.0], [0.0, 1.0]),
        ] {
            check_score_equality(&u, &attrs, &weights);
        }
        // Ranking equivalence: squared distance orders like distance.
        let w = [0.3, 0.6];
        let a1 = [0.1, 0.2];
        let a2 = [0.5, 0.9];
        let d1 = u.original().eval(&a1, &w);
        let d2 = u.original().eval(&a2, &w);
        let s1 = u.score(&a1, &w);
        let s2 = u.score(&a2, &w);
        assert_eq!(d1 < d2, s1 < s2);
    }

    #[test]
    fn sqrt_of_product_splits() {
        // Eq. 19 term: sqrt(w1 * p1) = sqrt(w1) * sqrt(p1).
        let u = lin("sqrt(w1 * p1) + w2 * p3 / p2");
        assert_eq!(u.dim(), 2);
        check_score_equality(&u, &[4.0, 2.0, 6.0], &[9.0, 0.5]);
    }

    #[test]
    fn division_by_attribute() {
        let u = lin("w1 * p1 / p2");
        assert_eq!(u.dim(), 1);
        check_score_equality(&u, &[6.0, 3.0], &[2.0]);
    }

    #[test]
    fn division_by_weight() {
        // v(c) = p2 / (w1 * p1) + w2 * p3²  (Eq. 26 shape).
        let u = lin("p2 / (w1 * p1) + w2 * p3^2");
        assert_eq!(u.dim(), 2);
        check_score_equality(&u, &[2.0, 10.0, 3.0], &[4.0, 0.5]);
    }

    #[test]
    fn pure_weight_terms_get_constant_attr() {
        let u = lin("w1^2 + w1 * p1");
        assert_eq!(u.dim(), 2);
        let ao = u.augmented_object(&[5.0]);
        assert!(
            ao.contains(&1.0),
            "constant attribute dimension missing: {ao:?}"
        );
        check_score_equality(&u, &[5.0], &[3.0]);
    }

    #[test]
    fn duplicate_attr_parts_merge() {
        // w1·p1 + w2·p1 shares the attribute part p1 → one dimension.
        let u = lin("w1 * p1 + w2 * p1");
        assert_eq!(u.dim(), 1);
        check_score_equality(&u, &[7.0], &[0.25, 0.5]);
    }

    #[test]
    fn inseparable_rejected() {
        // A mixed-variable sqrt that is not the outermost node cannot be
        // stripped or split.
        let e = parse("sqrt(w1 + p1) * p2", &Schema::positional()).unwrap();
        assert!(matches!(
            LinearizedUtility::linearize(&e),
            Err(LinearizeError::Inseparable(_))
        ));
    }

    #[test]
    fn outermost_mixed_sqrt_stripped_as_monotone() {
        // sqrt at the very top is monotone-increasing: ranking by sqrt(u)
        // equals ranking by u, so the wrapper is stripped rather than
        // rejected.
        let u = lin("sqrt(w1 + p1)");
        assert_eq!(u.monotone_stripped(), 1);
        check_score_equality(&u, &[2.0], &[7.0]);
    }

    #[test]
    fn sum_denominator_rejected() {
        let e = parse("w1 / (p1 + p2)", &Schema::positional()).unwrap();
        assert!(matches!(
            LinearizedUtility::linearize(&e),
            Err(LinearizeError::SumDenominator(_))
        ));
    }

    #[test]
    fn huge_power_rejected() {
        let e = parse("(w1 + p1)^30", &Schema::positional()).unwrap();
        assert!(matches!(
            LinearizedUtility::linearize(&e),
            Err(LinearizeError::PowerTooLarge(30))
        ));
    }

    #[test]
    fn sqrt_of_weight_only_sum_allowed() {
        let u = lin("sqrt(w1^2 + w2^2) * p1");
        assert_eq!(u.dim(), 1);
        check_score_equality(&u, &[3.0], &[0.6, 0.8]);
    }

    #[test]
    fn polynomial_degree_five() {
        let u = lin("w1 * p1^5 + w2 * p2^4 + w3 * p1 * p2");
        assert_eq!(u.dim(), 3);
        check_score_equality(&u, &[1.5, 0.5], &[1.0, 2.0, 3.0]);
    }
}
