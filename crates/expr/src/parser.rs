//! Recursive-descent parser for the utility/cost function language.
//!
//! Grammar (standard precedence, `^` binds tightest and right-associates
//! only with integer literals):
//!
//! ```text
//! expr   := term (("+" | "-") term)*
//! term   := unary (("*" | "/") unary)*
//! unary  := "-" unary | power
//! power  := atom ("^" integer)?
//! atom   := number | ident | ident "(" expr ")" | "(" expr ")"
//! ```
//!
//! Identifiers resolve through a [`Schema`]: `w1, w2, …` are query weights;
//! any other identifier must name an object attribute (e.g. `price`,
//! `resolution`), or match the positional fallbacks `p1…`/`x1…` when the
//! schema declares no names. The only built-in function is `sqrt`.

use crate::ast::Expr;
use std::fmt;

/// Attribute-name environment for identifier resolution.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    names: Vec<String>,
}

impl Schema {
    /// A schema with named attributes (index = position).
    pub fn new<S: Into<String>>(names: impl IntoIterator<Item = S>) -> Self {
        Schema {
            names: names.into_iter().map(Into::into).collect(),
        }
    }

    /// A schema resolving only positional names `p1…pd` / `x1…xd`.
    pub fn positional() -> Self {
        Schema::default()
    }

    /// Attribute names, in declaration order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    fn resolve(&self, ident: &str) -> Option<Expr> {
        // Weights: w<k>.
        if let Some(k) = parse_indexed(ident, "w") {
            return Some(Expr::Weight(k));
        }
        // Named attributes take priority over positional fallbacks.
        if let Some(i) = self
            .names
            .iter()
            .position(|n| n.eq_ignore_ascii_case(ident))
        {
            return Some(Expr::Attr(i));
        }
        if self.names.is_empty() {
            if let Some(k) = parse_indexed(ident, "p").or_else(|| parse_indexed(ident, "x")) {
                return Some(Expr::Attr(k));
            }
        }
        None
    }
}

fn parse_indexed(ident: &str, prefix: &str) -> Option<usize> {
    let rest = ident.strip_prefix(prefix)?;
    if rest.is_empty() || !rest.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let k: usize = rest.parse().ok()?;
    if k == 0 {
        None // variables are 1-based in the surface syntax
    } else {
        Some(k - 1)
    }
}

/// Parse error with position information.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input where the error was detected.
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Num(f64),
    Ident(String),
    Plus,
    Minus,
    Star,
    Slash,
    Caret,
    LParen,
    RParen,
}

fn lex(input: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let bytes = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '+' => {
                toks.push((Tok::Plus, i));
                i += 1;
            }
            '-' => {
                toks.push((Tok::Minus, i));
                i += 1;
            }
            '*' => {
                toks.push((Tok::Star, i));
                i += 1;
            }
            '/' => {
                toks.push((Tok::Slash, i));
                i += 1;
            }
            '^' => {
                toks.push((Tok::Caret, i));
                i += 1;
            }
            '(' => {
                toks.push((Tok::LParen, i));
                i += 1;
            }
            ')' => {
                toks.push((Tok::RParen, i));
                i += 1;
            }
            '0'..='9' | '.' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == b'.'
                        || ((bytes[i] == b'e' || bytes[i] == b'E')
                            && i + 1 < bytes.len()
                            && (bytes[i + 1].is_ascii_digit()
                                || bytes[i + 1] == b'+'
                                || bytes[i + 1] == b'-'))
                        || ((bytes[i] == b'+' || bytes[i] == b'-')
                            && i > start
                            && (bytes[i - 1] == b'e' || bytes[i - 1] == b'E')))
                {
                    i += 1;
                }
                let text = &input[start..i];
                let v: f64 = text.parse().map_err(|_| ParseError {
                    message: format!("invalid number literal `{text}`"),
                    position: start,
                })?;
                toks.push((Tok::Num(v), start));
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                toks.push((Tok::Ident(input[start..i].to_string()), start));
            }
            other => {
                return Err(ParseError {
                    message: format!("unexpected character `{other}`"),
                    position: i,
                })
            }
        }
    }
    Ok(toks)
}

struct Parser<'a> {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    schema: &'a Schema,
    input_len: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn here(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|&(_, p)| p)
            .unwrap_or(self.input_len)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(&tok) {
            self.pos += 1;
            Ok(())
        } else {
            Err(ParseError {
                message: format!("expected {what}"),
                position: self.here(),
            })
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.term()?;
        loop {
            match self.peek() {
                Some(Tok::Plus) => {
                    self.pos += 1;
                    e = e.add(self.term()?);
                }
                Some(Tok::Minus) => {
                    self.pos += 1;
                    e = e.sub(self.term()?);
                }
                _ => return Ok(e),
            }
        }
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.unary()?;
        loop {
            match self.peek() {
                Some(Tok::Star) => {
                    self.pos += 1;
                    e = e.mul(self.unary()?);
                }
                Some(Tok::Slash) => {
                    self.pos += 1;
                    e = e.div(self.unary()?);
                }
                _ => return Ok(e),
            }
        }
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.peek() == Some(&Tok::Minus) {
            self.pos += 1;
            Ok(self.unary()?.neg())
        } else {
            self.power()
        }
    }

    fn power(&mut self) -> Result<Expr, ParseError> {
        let base = self.atom()?;
        if self.peek() == Some(&Tok::Caret) {
            self.pos += 1;
            let at = self.here();
            match self.bump() {
                // iq-lint: allow(raw-score-cmp, reason = "integer-valuedness test on a parsed exponent literal")
                Some(Tok::Num(v)) if v.fract() == 0.0 && v >= 0.0 && v <= u32::MAX as f64 => {
                    Ok(base.pow(v as u32))
                }
                _ => Err(ParseError {
                    message: "exponent must be a non-negative integer literal".into(),
                    position: at,
                }),
            }
        } else {
            Ok(base)
        }
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        let at = self.here();
        match self.bump() {
            Some(Tok::Num(v)) => Ok(Expr::Const(v)),
            Some(Tok::LParen) => {
                let e = self.expr()?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                if self.peek() == Some(&Tok::LParen) {
                    // Function call.
                    self.pos += 1;
                    let arg = self.expr()?;
                    self.expect(Tok::RParen, "`)` after function argument")?;
                    if name.eq_ignore_ascii_case("sqrt") {
                        Ok(arg.sqrt())
                    } else {
                        Err(ParseError {
                            message: format!("unknown function `{name}` (only sqrt is built in)"),
                            position: at,
                        })
                    }
                } else {
                    self.schema.resolve(&name).ok_or_else(|| ParseError {
                        message: format!("unknown identifier `{name}`"),
                        position: at,
                    })
                }
            }
            _ => Err(ParseError {
                message: "expected expression".into(),
                position: at,
            }),
        }
    }
}

/// Parses `input` into an expression, resolving identifiers via `schema`.
pub fn parse(input: &str, schema: &Schema) -> Result<Expr, ParseError> {
    let toks = lex(input)?;
    let mut p = Parser {
        toks,
        pos: 0,
        schema,
        input_len: input.len(),
    };
    let e = p.expr()?;
    if p.pos != p.toks.len() {
        return Err(ParseError {
            message: "trailing input".into(),
            position: p.here(),
        });
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pos(input: &str) -> Expr {
        parse(input, &Schema::positional()).unwrap()
    }

    #[test]
    fn precedence() {
        let e = pos("1 + 2 * 3");
        assert_eq!(e.eval(&[], &[]), 7.0);
        let e = pos("(1 + 2) * 3");
        assert_eq!(e.eval(&[], &[]), 9.0);
        let e = pos("2 * p1^2");
        assert_eq!(e.eval(&[3.0], &[]), 18.0);
        let e = pos("-p1^2"); // -(p1^2)
        assert_eq!(e.eval(&[3.0], &[]), -9.0);
    }

    #[test]
    fn weights_and_positional_attrs() {
        let e = pos("w2 * x3 + p1");
        assert_eq!(e.eval(&[10.0, 0.0, 5.0], &[0.0, 2.0]), 20.0);
    }

    #[test]
    fn named_schema() {
        let schema = Schema::new(["resolution", "storage", "price"]);
        let e = parse("5.0*resolution + 3.5*storage - 0.05*price", &schema).unwrap();
        // Camera p1 of Figure 1: (10, 2, 250).
        assert!((e.eval(&[10.0, 2.0, 250.0], &[]) - 44.5).abs() < 1e-12);
    }

    #[test]
    fn paper_eq19_parses() {
        let schema = Schema::new(["Price", "MPG", "Capacity"]);
        let e = parse("sqrt(w1 * Price) + w2 * Capacity / MPG", &schema).unwrap();
        let got = e.eval(&[15000.0, 30.0, 4.0], &[1.0, 1.0]);
        assert!((got - (15000f64.sqrt() + 4.0 / 30.0)).abs() < 1e-9);
    }

    #[test]
    fn paper_eq20_parses() {
        let e = pos("w1 * p1^3 + w2 * (p2 * p3) + w3 * p4^2");
        let got = e.eval(&[2.0, 3.0, 4.0, 5.0], &[1.0, 1.0, 1.0]);
        assert_eq!(got, 8.0 + 12.0 + 25.0);
    }

    #[test]
    fn scientific_notation() {
        assert_eq!(pos("1e3 + 2.5e-1").eval(&[], &[]), 1000.25);
    }

    #[test]
    fn case_insensitive_names() {
        let schema = Schema::new(["Price"]);
        assert!(parse("price + PRICE", &schema).is_ok());
    }

    #[test]
    fn errors() {
        let s = Schema::positional();
        assert!(parse("", &s).is_err());
        assert!(parse("1 +", &s).is_err());
        assert!(parse("foo", &s).is_err());
        assert!(parse("sin(p1)", &s).is_err());
        assert!(parse("p1 ^ p2", &s).is_err());
        assert!(parse("p1 @ 2", &s).is_err());
        assert!(parse("(p1", &s).is_err());
        assert!(parse("p1 p2", &s).is_err());
        assert!(parse("w0", &s).is_err()); // 1-based surface syntax
        let err = parse("1 + $", &s).unwrap_err();
        assert_eq!(err.position, 4);
    }

    #[test]
    fn display_reparses_equal() {
        let inputs = [
            "w1 * p1^3 + w2 * (p2 * p3) + w3 * p4^2",
            "sqrt(w1 * p1) + w2 * p3 / p2",
            "-p1 + 2 * w1 - 3 / p2",
        ];
        let s = Schema::positional();
        for input in inputs {
            let e = parse(input, &s).unwrap();
            let text = format!("{e}");
            let e2 = parse(&text, &s).unwrap();
            // Structural equality after a print/parse roundtrip.
            assert_eq!(e, e2, "roundtrip failed for `{input}` -> `{text}`");
        }
    }
}
