//! # iq-expr
//!
//! The utility/cost function engine for the `improvement-queries`
//! workspace: an expression [AST](ast::Expr) and [parser](parser::parse)
//! for user-supplied utility and cost functions, the
//! [variable-substitution linearizer](linearize::LinearizedUtility) of
//! §5.2 (complex utilities become linear functions over on-the-fly
//! augmented attributes), and the [generic union
//! function](generic::GenericFamily) of §5.3 that unifies heterogeneous
//! utility functions into one function space.

#![warn(missing_docs)]

pub mod ast;
pub mod generic;
pub mod linearize;
pub mod parser;

pub use ast::Expr;
pub use generic::GenericFamily;
pub use linearize::{LinearTerm, LinearizeError, LinearizedUtility};
pub use parser::{parse, ParseError, Schema};
