//! Property-based tests for the expression engine: random polynomial
//! utilities must survive a print→parse roundtrip, and linearization must
//! preserve scores exactly (up to the stripped monotone transform).

use iq_expr::{parse, Expr, GenericFamily, LinearizedUtility, Schema};
use proptest::prelude::*;

/// Random polynomial utilities in the shape the paper's workloads use:
/// sums of `w_k · (attribute monomial)` with degrees in [1, 5].
fn poly_utility(d: usize, terms: usize) -> impl Strategy<Value = Expr> {
    prop::collection::vec((0..d, 1u32..5, prop::option::of(0..d)), 1..=terms).prop_map(
        move |spec| {
            let mut expr: Option<Expr> = None;
            for (k, (attr, deg, extra)) in spec.into_iter().enumerate() {
                let mut mono = Expr::attr(attr).pow(deg);
                if let Some(e2) = extra {
                    mono = mono.mul(Expr::attr(e2));
                }
                let term = Expr::weight(k).mul(mono);
                expr = Some(match expr {
                    None => term,
                    Some(acc) => acc.add(term),
                });
            }
            expr.unwrap()
        },
    )
}

fn pos_values(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.05f64..2.0, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn display_parse_roundtrip(e in poly_utility(4, 5),
                               attrs in pos_values(4), weights in pos_values(5)) {
        let text = format!("{e}");
        let parsed = parse(&text, &Schema::positional()).unwrap();
        let a = e.eval(&attrs, &weights);
        let b = parsed.eval(&attrs, &weights);
        prop_assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()));
    }

    #[test]
    fn linearization_preserves_scores(e in poly_utility(4, 5),
                                      attrs in pos_values(4), weights in pos_values(5)) {
        let u = LinearizedUtility::linearize(&e).unwrap();
        let original = e.eval(&attrs, &weights);
        let lin = u.score(&attrs, &weights);
        prop_assert!((original - lin).abs() < 1e-9 * (1.0 + original.abs()),
                     "original {} vs linearized {}", original, lin);
        // Augmented vectors reproduce the same dot product.
        let ao = u.augmented_object(&attrs);
        let aq = u.augmented_query(&weights);
        let dot: f64 = ao.iter().zip(&aq).map(|(a, b)| a * b).sum();
        prop_assert!((dot - lin).abs() < 1e-9 * (1.0 + lin.abs()));
    }

    #[test]
    fn linearization_preserves_ranking(e in poly_utility(3, 4),
                                       objs in prop::collection::vec(pos_values(3), 2..6),
                                       weights in pos_values(4)) {
        let u = LinearizedUtility::linearize(&e).unwrap();
        let aq = u.augmented_query(&weights);
        let direct: Vec<f64> = objs.iter().map(|o| e.eval(o, &weights)).collect();
        let lin: Vec<f64> = objs
            .iter()
            .map(|o| {
                u.augmented_object(o)
                    .iter()
                    .zip(&aq)
                    .map(|(a, b)| a * b)
                    .sum::<f64>()
            })
            .collect();
        for i in 0..objs.len() {
            for j in 0..objs.len() {
                // Strict order must be preserved (allowing fp slack on ties).
                if direct[i] + 1e-7 < direct[j] {
                    prop_assert!(lin[i] < lin[j] + 1e-7,
                                 "ranking flipped: {} vs {}", lin[i], lin[j]);
                }
            }
        }
    }

    #[test]
    fn generic_family_members_score_identically(
        e1 in poly_utility(3, 3),
        e2 in poly_utility(3, 3),
        attrs in pos_values(3),
        weights in pos_values(3),
    ) {
        let fam = GenericFamily::from_exprs(&[e1.clone(), e2.clone()]).unwrap();
        let ao = fam.augmented_object(&attrs);
        for (member, e) in [(0usize, &e1), (1usize, &e2)] {
            let aq = fam.augmented_query(member, &weights);
            let dot: f64 = ao.iter().zip(&aq).map(|(a, b)| a * b).sum();
            let direct = e.eval(&attrs, &weights);
            prop_assert!((dot - direct).abs() < 1e-9 * (1.0 + direct.abs()),
                         "member {}: {} vs {}", member, dot, direct);
        }
    }
}
