//! A dense two-phase primal simplex solver for linear programs.
//!
//! The paper solves its per-query minimum-cost subproblem (Eqs. 13–14) with
//! "standard math tools like \[12\]" (Khachiyan's polynomial LP algorithm).
//! This module is that substrate: a self-contained LP solver used for
//! linear/asymmetric cost functions and inside the exact branch-and-bound
//! search. Bland's anti-cycling rule keeps it terminating on degenerate
//! instances; the dense tableau is appropriate for the small systems
//! improvement queries generate (d variables, a handful of constraints).

/// Constraint relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `coeffs · x ≤ rhs`
    Le,
    /// `coeffs · x ≥ rhs`
    Ge,
    /// `coeffs · x = rhs`
    Eq,
}

/// One linear constraint `coeffs · x  <relation>  rhs`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Coefficients, one per variable.
    pub coeffs: Vec<f64>,
    /// The relation between the linear form and `rhs`.
    pub relation: Relation,
    /// Right-hand side.
    pub rhs: f64,
}

impl Constraint {
    /// Convenience constructor for a `≤` constraint.
    pub fn le(coeffs: Vec<f64>, rhs: f64) -> Self {
        Constraint {
            coeffs,
            relation: Relation::Le,
            rhs,
        }
    }

    /// Convenience constructor for a `≥` constraint.
    pub fn ge(coeffs: Vec<f64>, rhs: f64) -> Self {
        Constraint {
            coeffs,
            relation: Relation::Ge,
            rhs,
        }
    }

    /// Convenience constructor for an `=` constraint.
    pub fn eq(coeffs: Vec<f64>, rhs: f64) -> Self {
        Constraint {
            coeffs,
            relation: Relation::Eq,
            rhs,
        }
    }
}

/// Sign restriction of a decision variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarBound {
    /// `x ≥ 0`.
    NonNegative,
    /// `x` unrestricted in sign (internally split into `x⁺ − x⁻`).
    Free,
}

/// A linear program `minimize c · x` subject to constraints and sign bounds.
#[derive(Debug, Clone)]
pub struct LinearProgram {
    /// Objective coefficients (minimized).
    pub objective: Vec<f64>,
    /// Constraint rows.
    pub constraints: Vec<Constraint>,
    /// Per-variable sign restriction; must match `objective.len()`.
    pub bounds: Vec<VarBound>,
}

/// Result of solving an LP.
#[derive(Debug, Clone, PartialEq)]
pub enum LpResult {
    /// Optimal solution found: variable values and objective value.
    Optimal {
        /// Optimal assignment of the original variables.
        x: Vec<f64>,
        /// Objective value `c · x`.
        value: f64,
    },
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded below over the feasible region.
    Unbounded,
}

const EPS: f64 = 1e-9;

/// Solves the linear program with two-phase primal simplex.
pub fn solve(lp: &LinearProgram) -> LpResult {
    let n_orig = lp.objective.len();
    assert_eq!(lp.bounds.len(), n_orig, "bounds/objective length mismatch");
    for c in &lp.constraints {
        assert_eq!(c.coeffs.len(), n_orig, "constraint width mismatch");
    }

    // --- Convert to standard form: min c·y, A y = b, y ≥ 0. ---
    // Free variables split into (plus, minus) pairs; Le rows gain slacks,
    // Ge rows gain surpluses.
    // Column layout: [split original vars][slacks/surpluses].
    let mut col_of_var: Vec<(usize, Option<usize>)> = Vec::with_capacity(n_orig);
    let mut n_cols = 0usize;
    for b in &lp.bounds {
        match b {
            VarBound::NonNegative => {
                col_of_var.push((n_cols, None));
                n_cols += 1;
            }
            VarBound::Free => {
                col_of_var.push((n_cols, Some(n_cols + 1)));
                n_cols += 2;
            }
        }
    }
    let m = lp.constraints.len();
    let n_slack = lp
        .constraints
        .iter()
        .filter(|c| c.relation != Relation::Eq)
        .count();
    let n = n_cols + n_slack;

    // Rows of A and b.
    let mut a = vec![vec![0.0; n]; m];
    let mut b = vec![0.0; m];
    let mut slack_idx = n_cols;
    for (i, c) in lp.constraints.iter().enumerate() {
        for (j, &coef) in c.coeffs.iter().enumerate() {
            let (p, mneg) = col_of_var[j];
            a[i][p] = coef;
            if let Some(q) = mneg {
                a[i][q] = -coef;
            }
        }
        b[i] = c.rhs;
        match c.relation {
            Relation::Le => {
                a[i][slack_idx] = 1.0;
                slack_idx += 1;
            }
            Relation::Ge => {
                a[i][slack_idx] = -1.0;
                slack_idx += 1;
            }
            Relation::Eq => {}
        }
        // Normalize to b ≥ 0.
        if b[i] < 0.0 {
            b[i] = -b[i];
            for v in a[i].iter_mut() {
                *v = -*v;
            }
        }
    }

    // Objective over standard-form columns.
    let mut c_std = vec![0.0; n];
    for (j, &cj) in lp.objective.iter().enumerate() {
        let (p, mneg) = col_of_var[j];
        c_std[p] = cj;
        if let Some(q) = mneg {
            c_std[q] = -cj;
        }
    }

    // --- Phase 1: artificial variables, minimize their sum. ---
    // Tableau columns: n structural + m artificial + 1 rhs.
    let total = n + m;
    let mut t = vec![vec![0.0; total + 1]; m + 1];
    for i in 0..m {
        for j in 0..n {
            t[i][j] = a[i][j];
        }
        t[i][n + i] = 1.0;
        t[i][total] = b[i];
    }
    // Phase-1 objective row: minimize sum of artificials ⇒ row = −Σ rows.
    let mut basis: Vec<usize> = (n..n + m).collect();
    {
        let (rows, obj) = t.split_at_mut(m);
        for (j, oj) in obj[0].iter_mut().enumerate() {
            *oj = -rows.iter().map(|r| r[j]).sum::<f64>();
        }
    }
    t[m][n..n + m].fill(0.0);

    if !pivot_until_optimal(&mut t, &mut basis, total) {
        // Phase 1 of a bounded-below objective can't be unbounded.
        return LpResult::Infeasible;
    }
    if t[m][total].abs() > 1e-7 {
        return LpResult::Infeasible;
    }

    // Drive artificials out of the basis where possible.
    for i in 0..m {
        if basis[i] >= n {
            if let Some(j) = (0..n).find(|&j| t[i][j].abs() > EPS) {
                pivot(&mut t, &mut basis, i, j);
            }
            // If no structural column is available the row is redundant
            // (all-zero); the artificial stays basic at value 0, harmless.
        }
    }

    // --- Phase 2: original objective. ---
    // Rebuild the objective row in terms of the current basis.
    t[m].fill(0.0);
    t[m][..n].copy_from_slice(&c_std);
    // Zero out basic columns by row elimination.
    {
        let (rows, obj) = t.split_at_mut(m);
        let obj = &mut obj[0];
        for (row, &bj) in rows.iter().zip(basis.iter()) {
            let coef = obj[bj];
            if coef.abs() > EPS {
                for (oj, rj) in obj.iter_mut().zip(row.iter()) {
                    *oj -= coef * rj;
                }
            }
        }
    }
    // Forbid re-entry of artificial columns.
    let allowed = n;
    if !pivot_until_optimal_limited(&mut t, &mut basis, total, allowed) {
        return LpResult::Unbounded;
    }

    // Extract solution.
    let mut y = vec![0.0; n];
    for (i, &bj) in basis.iter().enumerate() {
        if bj < n {
            y[bj] = t[i][total];
        }
    }
    let mut x = vec![0.0; n_orig];
    for (j, &(p, mneg)) in col_of_var.iter().enumerate() {
        x[j] = y[p] - mneg.map_or(0.0, |q| y[q]);
    }
    let value: f64 = lp.objective.iter().zip(&x).map(|(c, v)| c * v).sum();
    LpResult::Optimal { x, value }
}

/// Runs simplex pivots until optimality; `false` means unbounded.
fn pivot_until_optimal(t: &mut [Vec<f64>], basis: &mut [usize], total: usize) -> bool {
    pivot_until_optimal_limited(t, basis, total, total)
}

fn pivot_until_optimal_limited(
    t: &mut [Vec<f64>],
    basis: &mut [usize],
    total: usize,
    allowed_cols: usize,
) -> bool {
    let m = basis.len();
    // Bland's rule: entering = lowest-index column with negative reduced
    // cost; leaving = lowest-index row among minimum ratios. Guarantees
    // termination; iteration cap is pure defense-in-depth.
    for _ in 0..100_000 {
        let Some(enter) = (0..allowed_cols).find(|&j| t[m][j] < -EPS) else {
            return true; // optimal
        };
        let mut leave: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for i in 0..m {
            if t[i][enter] > EPS {
                let ratio = t[i][total] / t[i][enter];
                if ratio < best_ratio - EPS
                    || (ratio < best_ratio + EPS && leave.is_some_and(|l| basis[i] < basis[l]))
                {
                    best_ratio = ratio;
                    leave = Some(i);
                }
            }
        }
        let Some(row) = leave else {
            return false; // unbounded
        };
        pivot(t, basis, row, enter);
    }
    // Shouldn't happen with Bland's rule; treat as numerically stuck.
    true
}

fn pivot(t: &mut [Vec<f64>], basis: &mut [usize], row: usize, col: usize) {
    let p = t[row][col];
    debug_assert!(p.abs() > 0.0, "pivot on zero element");
    for x in &mut t[row] {
        *x /= p;
    }
    let (before, rest) = t.split_at_mut(row);
    let (prow, after) = rest.split_first_mut().expect("pivot row in tableau");
    for r in before.iter_mut().chain(after.iter_mut()) {
        let f = r[col];
        if f.abs() > EPS {
            for (xj, pj) in r.iter_mut().zip(prow.iter()) {
                *xj -= f * pj;
            }
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_optimal(r: &LpResult, want_x: &[f64], want_v: f64) {
        match r {
            LpResult::Optimal { x, value } => {
                assert!((value - want_v).abs() < 1e-6, "value {value} != {want_v}");
                for (a, b) in x.iter().zip(want_x) {
                    assert!((a - b).abs() < 1e-6, "x {x:?} != {want_x:?}");
                }
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn textbook_maximization_as_min() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18, x,y ≥ 0
        // Optimum (2, 6), value 36 → minimize the negation.
        let lp = LinearProgram {
            objective: vec![-3.0, -5.0],
            constraints: vec![
                Constraint::le(vec![1.0, 0.0], 4.0),
                Constraint::le(vec![0.0, 2.0], 12.0),
                Constraint::le(vec![3.0, 2.0], 18.0),
            ],
            bounds: vec![VarBound::NonNegative; 2],
        };
        assert_optimal(&solve(&lp), &[2.0, 6.0], -36.0);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + y = 10, x - y = 2 → (6, 4), value 10.
        let lp = LinearProgram {
            objective: vec![1.0, 1.0],
            constraints: vec![
                Constraint::eq(vec![1.0, 1.0], 10.0),
                Constraint::eq(vec![1.0, -1.0], 2.0),
            ],
            bounds: vec![VarBound::NonNegative; 2],
        };
        assert_optimal(&solve(&lp), &[6.0, 4.0], 10.0);
    }

    #[test]
    fn ge_constraints_phase1_needed() {
        // min 2x + 3y s.t. x + y ≥ 4, x ≥ 1 → (4, 0)? x=4,y=0: cost 8.
        let lp = LinearProgram {
            objective: vec![2.0, 3.0],
            constraints: vec![
                Constraint::ge(vec![1.0, 1.0], 4.0),
                Constraint::ge(vec![1.0, 0.0], 1.0),
            ],
            bounds: vec![VarBound::NonNegative; 2],
        };
        assert_optimal(&solve(&lp), &[4.0, 0.0], 8.0);
    }

    #[test]
    fn free_variables() {
        // min |style| cost with free var: min x + y s.t. x + y ≥ -5 with
        // both free is unbounded; with objective x - y and x + y = 3,
        // x - y ≥ -1: optimum at x - y = -1 → value -1.
        let lp = LinearProgram {
            objective: vec![1.0, -1.0],
            constraints: vec![
                Constraint::eq(vec![1.0, 1.0], 3.0),
                Constraint::ge(vec![1.0, -1.0], -1.0),
            ],
            bounds: vec![VarBound::Free; 2],
        };
        match solve(&lp) {
            LpResult::Optimal { x, value } => {
                assert!((value - (-1.0)).abs() < 1e-6);
                assert!((x[0] + x[1] - 3.0).abs() < 1e-6);
                assert!((x[0] - x[1] + 1.0).abs() < 1e-6);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn infeasible_detected() {
        // x ≤ 1 and x ≥ 2.
        let lp = LinearProgram {
            objective: vec![1.0],
            constraints: vec![
                Constraint::le(vec![1.0], 1.0),
                Constraint::ge(vec![1.0], 2.0),
            ],
            bounds: vec![VarBound::NonNegative],
        };
        assert_eq!(solve(&lp), LpResult::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // min -x, x ≥ 0, no upper bound.
        let lp = LinearProgram {
            objective: vec![-1.0],
            constraints: vec![Constraint::ge(vec![1.0], 0.0)],
            bounds: vec![VarBound::NonNegative],
        };
        assert_eq!(solve(&lp), LpResult::Unbounded);
    }

    #[test]
    fn unbounded_free_variable() {
        let lp = LinearProgram {
            objective: vec![1.0],
            constraints: vec![],
            bounds: vec![VarBound::Free],
        };
        assert_eq!(solve(&lp), LpResult::Unbounded);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Multiple constraints through the same vertex (degenerate).
        let lp = LinearProgram {
            objective: vec![-1.0, -1.0],
            constraints: vec![
                Constraint::le(vec![1.0, 0.0], 1.0),
                Constraint::le(vec![0.0, 1.0], 1.0),
                Constraint::le(vec![1.0, 1.0], 2.0),
                Constraint::le(vec![2.0, 1.0], 3.0),
                Constraint::le(vec![1.0, 2.0], 3.0),
            ],
            bounds: vec![VarBound::NonNegative; 2],
        };
        assert_optimal(&solve(&lp), &[1.0, 1.0], -2.0);
    }

    #[test]
    fn negative_rhs_rows_normalized() {
        // min x s.t. -x ≤ -3 (i.e. x ≥ 3).
        let lp = LinearProgram {
            objective: vec![1.0],
            constraints: vec![Constraint::le(vec![-1.0], -3.0)],
            bounds: vec![VarBound::NonNegative],
        };
        assert_optimal(&solve(&lp), &[3.0], 3.0);
    }

    #[test]
    fn min_cost_strategy_shape() {
        // The improvement-query subproblem with an L1-style cost:
        // minimize u₁+v₁+u₂+v₂ (|s₁|+|s₂| via split) s.t. the score drop
        // q·s ≤ −g with q = (0.6, 0.8), g = 1.2. Cheapest: push the
        // coordinate with the largest |q| ⇒ s₂ = −1.5, cost 1.5.
        let lp = LinearProgram {
            objective: vec![1.0, 1.0, 1.0, 1.0],
            constraints: vec![Constraint::le(
                // s₁ = u₁ − v₁, s₂ = u₂ − v₂ written out.
                vec![0.6, -0.6, 0.8, -0.8],
                -1.2,
            )],
            bounds: vec![VarBound::NonNegative; 4],
        };
        match solve(&lp) {
            LpResult::Optimal { x, value } => {
                assert!((value - 1.5).abs() < 1e-6, "value {value}");
                let s2 = x[2] - x[3];
                assert!((s2 + 1.5).abs() < 1e-6, "s2 {s2}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn zero_constraint_lp() {
        let lp = LinearProgram {
            objective: vec![1.0, 2.0],
            constraints: vec![],
            bounds: vec![VarBound::NonNegative; 2],
        };
        assert_optimal(&solve(&lp), &[0.0, 0.0], 0.0);
    }
}
