//! Exact improvement-strategy search by branch-and-bound over query
//! subsets — the paper's "exhaustive search" option (§4.2.1: *"for query
//! issuers who indeed want the optimal strategy … only feasible for very
//! small datasets"*).
//!
//! Hitting query `j` with the improved object imposes the linear constraint
//! `a_j · s ≤ b_j` (the target's score must drop below the k-th competitor's,
//! Eq. 6 rearranged). Choosing which ≥ τ queries to hit is the combinatorial
//! part; once a subset is fixed, the cheapest strategy satisfying its
//! constraint system is a convex program delegated to a pluggable
//! [`SubsetSolver`]. Because adding a constraint can never *reduce* the
//! optimal cost, the cost of a partial subset lower-bounds all of its
//! supersets — the pruning rule that makes branch-and-bound beat the `2^m`
//! enumeration the paper mentions.

use crate::projection::{min_norm_dykstra, HalfSpace, QpResult};
use iq_geometry::Vector;

/// The linear condition for the target to hit one query: `a · s ≤ b`.
#[derive(Debug, Clone)]
pub struct HitCondition {
    /// Constraint normal (the query's weight vector).
    pub a: Vector,
    /// Right-hand side; `b ≥ 0` means the query is hit with no adjustment.
    pub b: f64,
}

/// Solves "minimum cost strategy satisfying all given constraints".
///
/// Returns `Some((strategy, cost))` or `None` when infeasible. Implementors
/// must guarantee monotonicity: a superset of constraints never yields a
/// smaller cost (true for any fixed cost function).
pub trait SubsetSolver {
    /// Computes the cheapest strategy satisfying every constraint.
    fn solve(&self, constraints: &[HalfSpace]) -> Option<(Vector, f64)>;
}

/// The default subset solver for the Euclidean cost of Eq. 30: minimum-norm
/// point of the constraint polyhedron via Dykstra projections.
#[derive(Debug, Clone, Default)]
pub struct L2SubsetSolver;

impl SubsetSolver for L2SubsetSolver {
    fn solve(&self, constraints: &[HalfSpace]) -> Option<(Vector, f64)> {
        if constraints.is_empty() {
            return Some((Vector::zeros(0), 0.0));
        }
        match min_norm_dykstra(constraints, 4000, 1e-11) {
            QpResult::Optimal(s) => {
                let c = s.norm();
                Some((s, c))
            }
            QpResult::Infeasible => None,
        }
    }
}

/// An exact search result.
#[derive(Debug, Clone)]
pub struct ExactSolution {
    /// The optimal strategy.
    pub strategy: Vector,
    /// Its cost.
    pub cost: f64,
    /// Indices (into the input conditions) of the queries chosen to hit.
    pub hit_set: Vec<usize>,
}

/// Exact **min-cost** improvement: the cheapest strategy hitting at least
/// `tau` of the given queries. Exponential in the worst case; intended for
/// small instances (≈ 20 queries) and as ground truth for the heuristics.
///
/// Returns `None` when no subset of size `tau` is jointly satisfiable.
pub fn exact_min_cost<S: SubsetSolver>(
    conditions: &[HitCondition],
    tau: usize,
    solver: &S,
) -> Option<ExactSolution> {
    if tau == 0 {
        return Some(ExactSolution {
            strategy: Vector::zeros(conditions.first().map_or(0, |c| c.a.dim())),
            cost: 0.0,
            hit_set: Vec::new(),
        });
    }
    if tau > conditions.len() {
        return None;
    }
    // Order queries by individual min cost (cheap first): good subsets are
    // found early, tightening the pruning bound.
    let mut order: Vec<usize> = (0..conditions.len()).collect();
    let indiv: Vec<f64> = conditions
        .iter()
        .map(|c| {
            solver
                .solve(&[HalfSpace::new(c.a.clone(), c.b)])
                .map_or(f64::INFINITY, |(_, cost)| cost)
        })
        .collect();
    order.sort_by(|&x, &y| indiv[x].total_cmp(&indiv[y]));

    struct Ctx<'a, S> {
        conditions: &'a [HitCondition],
        order: &'a [usize],
        tau: usize,
        solver: &'a S,
        best: Option<ExactSolution>,
    }

    fn dfs<S: SubsetSolver>(ctx: &mut Ctx<'_, S>, pos: usize, chosen: &mut Vec<usize>) {
        if chosen.len() == ctx.tau {
            let cs: Vec<HalfSpace> = chosen
                .iter()
                .map(|&i| HalfSpace::new(ctx.conditions[i].a.clone(), ctx.conditions[i].b))
                .collect();
            if let Some((s, cost)) = ctx.solver.solve(&cs) {
                if ctx.best.as_ref().is_none_or(|b| cost < b.cost) {
                    ctx.best = Some(ExactSolution {
                        strategy: s,
                        cost,
                        hit_set: chosen.clone(),
                    });
                }
            }
            return;
        }
        if pos >= ctx.order.len() || chosen.len() + (ctx.order.len() - pos) < ctx.tau {
            return;
        }
        // Lower bound: cost of the partial subset (monotone under growth).
        if !chosen.is_empty() {
            let cs: Vec<HalfSpace> = chosen
                .iter()
                .map(|&i| HalfSpace::new(ctx.conditions[i].a.clone(), ctx.conditions[i].b))
                .collect();
            match ctx.solver.solve(&cs) {
                None => return, // partial set already infeasible
                Some((_, lb)) => {
                    if ctx.best.as_ref().is_some_and(|b| lb >= b.cost) {
                        return;
                    }
                }
            }
        }
        // Branch: include order[pos], then exclude it.
        chosen.push(ctx.order[pos]);
        dfs(ctx, pos + 1, chosen);
        chosen.pop();
        dfs(ctx, pos + 1, chosen);
    }

    let mut ctx = Ctx {
        conditions,
        order: &order,
        tau,
        solver,
        best: None,
    };
    let mut chosen = Vec::with_capacity(tau);
    dfs(&mut ctx, 0, &mut chosen);
    ctx.best.map(|mut b| {
        b.hit_set.sort_unstable();
        b
    })
}

/// Exact **max-hit** improvement: the strategy hitting the most queries
/// subject to `cost ≤ budget`. Ties are broken toward lower cost.
pub fn exact_max_hit<S: SubsetSolver>(
    conditions: &[HitCondition],
    budget: f64,
    solver: &S,
) -> ExactSolution {
    struct Ctx<'a, S> {
        conditions: &'a [HitCondition],
        budget: f64,
        solver: &'a S,
        best: ExactSolution,
    }

    fn dfs<S: SubsetSolver>(ctx: &mut Ctx<'_, S>, pos: usize, chosen: &mut Vec<usize>) {
        // Bound: even taking everything left cannot beat the incumbent.
        let remaining = ctx.conditions.len() - pos;
        if chosen.len() + remaining < ctx.best.hit_set.len()
            || (chosen.len() + remaining == ctx.best.hit_set.len() && remaining == 0)
        {
            return;
        }
        // Feasibility/cost of the current subset.
        let cs: Vec<HalfSpace> = chosen
            .iter()
            .map(|&i| HalfSpace::new(ctx.conditions[i].a.clone(), ctx.conditions[i].b))
            .collect();
        let Some((s, cost)) = ctx.solver.solve(&cs) else {
            return;
        };
        if cost > ctx.budget + 1e-9 {
            return;
        }
        let strategy = if s.dim() == 0 && !ctx.conditions.is_empty() {
            Vector::zeros(ctx.conditions[0].a.dim())
        } else {
            s
        };
        if chosen.len() > ctx.best.hit_set.len()
            || (chosen.len() == ctx.best.hit_set.len() && cost < ctx.best.cost)
        {
            ctx.best = ExactSolution {
                strategy,
                cost,
                hit_set: chosen.clone(),
            };
        }
        if pos == ctx.conditions.len() {
            return;
        }
        chosen.push(pos);
        dfs(ctx, pos + 1, chosen);
        chosen.pop();
        dfs(ctx, pos + 1, chosen);
    }

    let dim = conditions.first().map_or(0, |c| c.a.dim());
    let mut ctx = Ctx {
        conditions,
        budget,
        solver,
        best: ExactSolution {
            strategy: Vector::zeros(dim),
            cost: 0.0,
            hit_set: Vec::new(),
        },
    };
    let mut chosen = Vec::new();
    dfs(&mut ctx, 0, &mut chosen);
    ctx.best.hit_set.sort_unstable();
    ctx.best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cond(a: &[f64], b: f64) -> HitCondition {
        HitCondition {
            a: Vector::from(a),
            b,
        }
    }

    /// Brute-force oracle: try all subsets of size ≥ tau (min-cost) or all
    /// subsets (max-hit).
    fn brute_min_cost(conds: &[HitCondition], tau: usize) -> Option<f64> {
        let n = conds.len();
        let solver = L2SubsetSolver;
        let mut best: Option<f64> = None;
        for mask in 0u32..(1 << n) {
            if (mask.count_ones() as usize) < tau {
                continue;
            }
            let cs: Vec<HalfSpace> = (0..n)
                .filter(|&i| mask & (1 << i) != 0)
                .map(|i| HalfSpace::new(conds[i].a.clone(), conds[i].b))
                .collect();
            if let Some((_, cost)) = solver.solve(&cs) {
                if best.is_none_or(|b| cost < b) {
                    best = Some(cost);
                }
            }
        }
        best
    }

    fn brute_max_hit(conds: &[HitCondition], budget: f64) -> usize {
        let n = conds.len();
        let solver = L2SubsetSolver;
        let mut best = 0usize;
        for mask in 0u32..(1 << n) {
            let cs: Vec<HalfSpace> = (0..n)
                .filter(|&i| mask & (1 << i) != 0)
                .map(|i| HalfSpace::new(conds[i].a.clone(), conds[i].b))
                .collect();
            if let Some((_, cost)) = solver.solve(&cs) {
                if cost <= budget + 1e-9 {
                    best = best.max(mask.count_ones() as usize);
                }
            }
        }
        best
    }

    #[test]
    fn min_cost_tau_zero() {
        let sol = exact_min_cost(&[cond(&[1.0], -1.0)], 0, &L2SubsetSolver).unwrap();
        assert_eq!(sol.cost, 0.0);
        assert!(sol.hit_set.is_empty());
    }

    #[test]
    fn min_cost_tau_too_large() {
        assert!(exact_min_cost(&[cond(&[1.0], -1.0)], 2, &L2SubsetSolver).is_none());
    }

    #[test]
    fn min_cost_picks_cheapest_single() {
        let conds = vec![
            cond(&[1.0, 0.0], -5.0), // cost 5 alone
            cond(&[0.0, 1.0], -1.0), // cost 1 alone
        ];
        let sol = exact_min_cost(&conds, 1, &L2SubsetSolver).unwrap();
        assert!((sol.cost - 1.0).abs() < 1e-6);
        assert_eq!(sol.hit_set, vec![1]);
    }

    #[test]
    fn min_cost_synergistic_pair() {
        // Two constraints in the same direction: hitting both costs the max,
        // not the sum.
        let conds = vec![cond(&[1.0, 0.0], -2.0), cond(&[1.0, 0.0], -3.0)];
        let sol = exact_min_cost(&conds, 2, &L2SubsetSolver).unwrap();
        assert!((sol.cost - 3.0).abs() < 1e-5, "cost {}", sol.cost);
    }

    #[test]
    fn min_cost_already_hit_queries_free() {
        // b ≥ 0 queries are satisfied by the zero strategy.
        let conds = vec![cond(&[1.0], 1.0), cond(&[1.0], 0.5)];
        let sol = exact_min_cost(&conds, 2, &L2SubsetSolver).unwrap();
        assert!(sol.cost < 1e-9);
    }

    #[test]
    fn min_cost_matches_brute_force() {
        let conds = vec![
            cond(&[0.7, 0.3], -1.0),
            cond(&[0.2, 0.8], -0.5),
            cond(&[0.5, 0.5], -2.0),
            cond(&[0.9, 0.1], -0.2),
            cond(&[0.4, 0.6], -1.5),
        ];
        for tau in 1..=5 {
            let got = exact_min_cost(&conds, tau, &L2SubsetSolver).map(|s| s.cost);
            let want = brute_min_cost(&conds, tau);
            match (got, want) {
                (Some(g), Some(w)) => assert!((g - w).abs() < 1e-5, "tau={tau}: {g} vs {w}"),
                (None, None) => {}
                other => panic!("tau={tau}: {other:?}"),
            }
        }
    }

    #[test]
    fn max_hit_zero_budget_counts_free_hits() {
        let conds = vec![cond(&[1.0], 1.0), cond(&[1.0], -1.0)];
        let sol = exact_max_hit(&conds, 0.0, &L2SubsetSolver);
        assert_eq!(sol.hit_set, vec![0]);
    }

    #[test]
    fn max_hit_matches_brute_force() {
        let conds = vec![
            cond(&[0.7, 0.3], -1.0),
            cond(&[0.2, 0.8], -0.5),
            cond(&[0.5, 0.5], -2.0),
            cond(&[0.9, 0.1], -0.2),
            cond(&[0.4, 0.6], -1.5),
        ];
        for budget in [0.1, 0.5, 1.0, 2.0, 5.0] {
            let got = exact_max_hit(&conds, budget, &L2SubsetSolver).hit_set.len();
            let want = brute_max_hit(&conds, budget);
            assert_eq!(got, want, "budget {budget}");
        }
    }

    #[test]
    fn max_hit_respects_budget() {
        let conds = vec![cond(&[1.0, 0.0], -3.0), cond(&[0.0, 1.0], -4.0)];
        // Hitting both costs ‖(-3, -4)‖ = 5; budget 4.5 allows only one.
        let sol = exact_max_hit(&conds, 4.5, &L2SubsetSolver);
        assert_eq!(sol.hit_set.len(), 1);
        assert!(sol.cost <= 4.5 + 1e-9);
        // Budget 5.1 allows both.
        let sol2 = exact_max_hit(&conds, 5.1, &L2SubsetSolver);
        assert_eq!(sol2.hit_set.len(), 2);
    }

    #[test]
    fn duality_binary_search_reduction() {
        // §4.2.2: min-cost is recoverable from max-hit by binary searching
        // the budget. Verify on a small instance.
        let conds = vec![
            cond(&[0.8, 0.2], -1.0),
            cond(&[0.3, 0.7], -0.8),
            cond(&[0.5, 0.5], -1.6),
        ];
        let tau = 2;
        let direct = exact_min_cost(&conds, tau, &L2SubsetSolver).unwrap().cost;
        // Binary search the smallest budget achieving tau hits.
        let (mut lo, mut hi) = (0.0f64, 10.0f64);
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if exact_max_hit(&conds, mid, &L2SubsetSolver).hit_set.len() >= tau {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        assert!(
            (hi - direct).abs() < 1e-4,
            "binary-search {hi} vs direct {direct}"
        );
    }
}
