//! # iq-solver
//!
//! Mathematical-optimization substrate for the `improvement-queries`
//! workspace — the stand-in for the "standard math tools" the paper invokes
//! for its optimization subproblems (citation \[12\], Khachiyan):
//!
//! * [`simplex`] — dense two-phase primal simplex for linear programs
//!   (linear and asymmetric cost functions);
//! * [`projection`] — closed-form and Dykstra-iterated minimum-norm points
//!   under half-space constraints (the Euclidean cost of Eq. 30);
//! * [`line_search`] — golden-section / bisection primitives for arbitrary
//!   user-defined cost functions;
//! * [`bnb`] — exact branch-and-bound improvement search, the paper's
//!   "exhaustive search" option and the ground truth for heuristics.

#![warn(missing_docs)]

pub mod bnb;
pub mod line_search;
pub mod projection;
pub mod simplex;

pub use bnb::{
    exact_max_hit, exact_min_cost, ExactSolution, HitCondition, L2SubsetSolver, SubsetSolver,
};
pub use projection::{min_norm, min_norm_single, HalfSpace, QpResult};
pub use simplex::{solve as solve_lp, Constraint, LinearProgram, LpResult, Relation, VarBound};
