//! One-dimensional search primitives for general (user-defined) cost
//! functions: golden-section minimization of a unimodal function and
//! bisection root finding of a monotone function.
//!
//! Improvement queries let the issuer supply an arbitrary cost function
//! (§3.1). When no closed form exists, the per-query min-cost strategy is
//! found by searching along the steepest feasible direction; these
//! primitives perform that search.

/// Minimizes a unimodal function over `[lo, hi]` by golden-section search.
///
/// Returns `(argmin, min_value)` with the argument located to within `tol`.
///
/// # Panics
/// Panics if `lo > hi` or `tol <= 0`.
pub fn golden_section_min(f: impl Fn(f64) -> f64, lo: f64, hi: f64, tol: f64) -> (f64, f64) {
    assert!(lo <= hi, "golden_section_min: inverted interval");
    assert!(tol > 0.0, "golden_section_min: non-positive tolerance");
    const INV_PHI: f64 = 0.618_033_988_749_894_9;
    let (mut a, mut b) = (lo, hi);
    let mut c = b - (b - a) * INV_PHI;
    let mut d = a + (b - a) * INV_PHI;
    let mut fc = f(c);
    let mut fd = f(d);
    while (b - a) > tol {
        if fc <= fd {
            b = d;
            d = c;
            fd = fc;
            c = b - (b - a) * INV_PHI;
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + (b - a) * INV_PHI;
            fd = f(d);
        }
    }
    let x = 0.5 * (a + b);
    (x, f(x))
}

/// Finds a root of a continuous function with `f(lo) · f(hi) ≤ 0` by
/// bisection, to within `tol` on the argument.
///
/// Returns `None` when the bracket does not straddle a sign change.
pub fn bisect_root(f: impl Fn(f64) -> f64, lo: f64, hi: f64, tol: f64) -> Option<f64> {
    assert!(lo <= hi, "bisect_root: inverted interval");
    let (mut a, mut b) = (lo, hi);
    let (mut fa, fb) = (f(a), f(b));
    // iq-lint: allow(raw-score-cmp, reason = "exact root hit short-circuits the bisection")
    if fa == 0.0 {
        return Some(a);
    }
    // iq-lint: allow(raw-score-cmp, reason = "exact root hit short-circuits the bisection")
    if fb == 0.0 {
        return Some(b);
    }
    if fa.signum() == fb.signum() {
        return None;
    }
    while (b - a) > tol {
        let m = 0.5 * (a + b);
        let fm = f(m);
        // iq-lint: allow(raw-score-cmp, reason = "exact root hit short-circuits the bisection")
        if fm == 0.0 {
            return Some(m);
        }
        if fm.signum() == fa.signum() {
            a = m;
            fa = fm;
        } else {
            b = m;
        }
    }
    Some(0.5 * (a + b))
}

/// Finds the smallest `t ≥ 0` with `pred(t)` true, assuming `pred` is
/// monotone (false below a threshold, true above). Doubles an upper bracket
/// from `t0` up to `t_max`, then bisects. Returns `None` when even `t_max`
/// fails the predicate.
pub fn monotone_threshold(
    pred: impl Fn(f64) -> bool,
    t0: f64,
    t_max: f64,
    tol: f64,
) -> Option<f64> {
    assert!(t0 > 0.0 && t_max >= t0, "monotone_threshold: bad bracket");
    if pred(0.0) {
        return Some(0.0);
    }
    let mut hi = t0;
    while !pred(hi) {
        hi *= 2.0;
        if hi > t_max {
            return if pred(t_max) { Some(t_max) } else { None };
        }
    }
    let mut lo = 0.0;
    while hi - lo > tol {
        let m = 0.5 * (lo + hi);
        if pred(m) {
            hi = m;
        } else {
            lo = m;
        }
    }
    Some(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_section_quadratic() {
        let (x, v) = golden_section_min(|x| (x - 3.0).powi(2) + 1.0, 0.0, 10.0, 1e-8);
        assert!((x - 3.0).abs() < 1e-6);
        assert!((v - 1.0).abs() < 1e-6);
    }

    #[test]
    fn golden_section_boundary_minimum() {
        let (x, _) = golden_section_min(|x| x, 2.0, 5.0, 1e-8);
        assert!((x - 2.0).abs() < 1e-6);
    }

    #[test]
    fn golden_section_degenerate_interval() {
        let (x, v) = golden_section_min(|x| x * x, 4.0, 4.0, 1e-8);
        assert_eq!(x, 4.0);
        assert_eq!(v, 16.0);
    }

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect_root(|x| x * x - 2.0, 0.0, 2.0, 1e-12).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-9);
    }

    #[test]
    fn bisect_rejects_non_bracketing() {
        assert!(bisect_root(|x| x * x + 1.0, -1.0, 1.0, 1e-9).is_none());
    }

    #[test]
    fn bisect_endpoint_roots() {
        assert_eq!(bisect_root(|x| x, 0.0, 1.0, 1e-9), Some(0.0));
        assert_eq!(bisect_root(|x| x - 1.0, 0.0, 1.0, 1e-9), Some(1.0));
    }

    #[test]
    fn threshold_basic() {
        let t = monotone_threshold(|t| t >= 7.3, 1.0, 1e6, 1e-9).unwrap();
        assert!((t - 7.3).abs() < 1e-6);
    }

    #[test]
    fn threshold_at_zero() {
        assert_eq!(monotone_threshold(|_| true, 1.0, 10.0, 1e-9), Some(0.0));
    }

    #[test]
    fn threshold_unreachable() {
        assert_eq!(monotone_threshold(|_| false, 1.0, 100.0, 1e-9), None);
    }
}
