//! Minimum-norm points under linear inequality constraints.
//!
//! The Euclidean cost function the paper uses throughout its evaluation
//! (Eq. 30, `Cost(s) = ‖s‖₂`) turns the per-query min-cost subproblem
//! (Eqs. 13–14) into *"find the smallest vector satisfying one linear
//! inequality"* — solved in closed form by [`min_norm_single`] — and turns
//! the exact multi-query problem into a min-norm QP over a polyhedron,
//! solved by Dykstra's alternating-projection algorithm ([`min_norm_dykstra`]).

use iq_geometry::vector::dot;
use iq_geometry::Vector;

/// A half-space constraint `a · s ≤ b`.
#[derive(Debug, Clone)]
pub struct HalfSpace {
    /// Constraint normal.
    pub a: Vector,
    /// Right-hand side.
    pub b: f64,
}

impl HalfSpace {
    /// Creates `a · s ≤ b`.
    pub fn new(a: Vector, b: f64) -> Self {
        HalfSpace { a, b }
    }

    /// Whether `s` satisfies the constraint (with tolerance `eps`).
    pub fn satisfied(&self, s: &Vector, eps: f64) -> bool {
        dot(self.a.as_slice(), s.as_slice()) <= self.b + eps
    }

    /// Euclidean projection of `s` onto the half-space.
    pub fn project(&self, s: &Vector) -> Vector {
        let v = dot(self.a.as_slice(), s.as_slice()) - self.b;
        if v <= 0.0 {
            s.clone()
        } else {
            s.axpy(-v / self.a.norm_sq(), &self.a)
        }
    }
}

/// Minimizes `‖s‖₂` subject to the single constraint `a · s ≤ b`.
///
/// Closed form: the origin when `b ≥ 0`, otherwise the projection of the
/// origin onto the boundary hyperplane, `s = a · (b / ‖a‖²)`.
///
/// Returns `None` when the constraint is unsatisfiable (`a = 0` with
/// `b < 0`).
pub fn min_norm_single(a: &Vector, b: f64) -> Option<Vector> {
    if b >= 0.0 {
        return Some(Vector::zeros(a.dim()));
    }
    let nsq = a.norm_sq();
    if nsq <= f64::EPSILON {
        return None;
    }
    Some(a.scaled(b / nsq))
}

/// Minimizes the *weighted* squared norm `Σ wᵢ sᵢ²` subject to `a · s ≤ b`.
///
/// Lagrangian stationarity gives `sᵢ = λ aᵢ / wᵢ` with
/// `λ = b / Σ aᵢ² / wᵢ` when `b < 0`. All weights must be positive.
pub fn min_weighted_norm_single(a: &Vector, b: f64, weights: &[f64]) -> Option<Vector> {
    assert_eq!(a.dim(), weights.len(), "weights length mismatch");
    assert!(
        weights.iter().all(|&w| w > 0.0),
        "weights must be strictly positive"
    );
    if b >= 0.0 {
        return Some(Vector::zeros(a.dim()));
    }
    let denom: f64 = a.iter().zip(weights).map(|(ai, wi)| ai * ai / wi).sum();
    if denom <= f64::EPSILON {
        return None;
    }
    let lambda = b / denom;
    Some(Vector::new(
        a.iter()
            .zip(weights)
            .map(|(ai, wi)| lambda * ai / wi)
            .collect(),
    ))
}

/// Outcome of the Dykstra iteration.
#[derive(Debug, Clone, PartialEq)]
pub enum QpResult {
    /// Converged to the min-norm feasible point.
    Optimal(Vector),
    /// No feasible point was found within the iteration budget — either the
    /// polyhedron is empty or pathologically thin.
    Infeasible,
}

/// Minimizes `‖s‖₂` over the intersection of half-spaces using Dykstra's
/// alternating projection algorithm.
///
/// Dykstra's method (unlike plain cyclic projection) converges to the actual
/// *projection of the starting point* onto the intersection, which for a
/// zero start is exactly the min-norm point. `max_iter` full sweeps are
/// attempted; convergence is declared when an entire sweep moves the iterate
/// by less than `tol` **and** every constraint holds to tolerance.
pub fn min_norm_dykstra(constraints: &[HalfSpace], max_iter: usize, tol: f64) -> QpResult {
    if constraints.is_empty() {
        // Unconstrained: the min-norm point is the origin. The dimension is
        // unknown without constraints; report an empty vector.
        return QpResult::Optimal(Vector::zeros(0));
    }
    let dim = constraints[0].a.dim();
    let mut x = Vector::zeros(dim);
    let mut corrections: Vec<Vector> = vec![Vector::zeros(dim); constraints.len()];

    for _ in 0..max_iter {
        let mut max_move = 0.0f64;
        for (i, hs) in constraints.iter().enumerate() {
            let y = &x + &corrections[i];
            let projected = hs.project(&y);
            let new_corr = &y - &projected;
            let step = (&projected - &x).norm();
            max_move = max_move.max((&new_corr - &corrections[i]).norm()).max(step);
            corrections[i] = new_corr;
            x = projected;
        }
        if max_move < tol {
            break;
        }
    }
    let feasible = constraints
        .iter()
        .all(|hs| hs.satisfied(&x, tol.max(1e-7) * 100.0));
    if feasible {
        QpResult::Optimal(x)
    } else {
        QpResult::Infeasible
    }
}

/// Convenience wrapper: min-norm point under a constraint system given as
/// `(normal, rhs)` pairs, with sane iteration defaults.
pub fn min_norm(constraints: &[(Vector, f64)]) -> QpResult {
    let hs: Vec<HalfSpace> = constraints
        .iter()
        .map(|(a, b)| HalfSpace::new(a.clone(), *b))
        .collect();
    min_norm_dykstra(&hs, 2000, 1e-10)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_inactive_constraint() {
        // b ≥ 0: origin already feasible.
        let s = min_norm_single(&Vector::from([1.0, 2.0]), 5.0).unwrap();
        assert!(s.is_zero(0.0));
    }

    #[test]
    fn single_active_constraint_closed_form() {
        // a = (3, 4), b = -5: s = a * (-5/25) = (-0.6, -0.8), ‖s‖ = 1.
        let a = Vector::from([3.0, 4.0]);
        let s = min_norm_single(&a, -5.0).unwrap();
        assert!((s[0] + 0.6).abs() < 1e-12);
        assert!((s[1] + 0.8).abs() < 1e-12);
        assert!((s.norm() - 1.0).abs() < 1e-12);
        // The constraint is tight.
        assert!((a.dot(&s) + 5.0).abs() < 1e-12);
    }

    #[test]
    fn single_unsatisfiable() {
        assert!(min_norm_single(&Vector::zeros(3), -1.0).is_none());
    }

    #[test]
    fn weighted_single_matches_unweighted_when_uniform() {
        let a = Vector::from([1.0, -2.0, 0.5]);
        let u = min_norm_single(&a, -3.0).unwrap();
        let w = min_weighted_norm_single(&a, -3.0, &[1.0, 1.0, 1.0]).unwrap();
        for i in 0..3 {
            assert!((u[i] - w[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn weighted_single_prefers_cheap_coordinates() {
        // Making coordinate 0 expensive shifts the adjustment to coord 1.
        let a = Vector::from([1.0, 1.0]);
        let s = min_weighted_norm_single(&a, -1.0, &[100.0, 1.0]).unwrap();
        assert!(s[1].abs() > s[0].abs() * 10.0, "{s:?}");
        // Constraint still tight.
        assert!((a.dot(&s) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn halfspace_projection() {
        let hs = HalfSpace::new(Vector::from([1.0, 0.0]), 2.0);
        // Feasible point unchanged.
        let inside = Vector::from([1.0, 5.0]);
        assert_eq!(hs.project(&inside).as_slice(), inside.as_slice());
        // Violating point lands on the boundary.
        let out = Vector::from([4.0, 1.0]);
        let p = hs.project(&out);
        assert!((p[0] - 2.0).abs() < 1e-12);
        assert!((p[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dykstra_single_constraint_matches_closed_form() {
        let a = Vector::from([3.0, 4.0]);
        let closed = min_norm_single(&a, -5.0).unwrap();
        match min_norm(&[(a, -5.0)]) {
            QpResult::Optimal(x) => {
                assert!((&x - &closed).norm() < 1e-6, "{x:?} vs {closed:?}");
            }
            r => panic!("{r:?}"),
        }
    }

    #[test]
    fn dykstra_two_constraints() {
        // s₁ ≤ -1 and s₂ ≤ -1: min-norm point is (-1, -1).
        let cs = vec![
            (Vector::from([1.0, 0.0]), -1.0),
            (Vector::from([0.0, 1.0]), -1.0),
        ];
        match min_norm(&cs) {
            QpResult::Optimal(x) => {
                assert!((x[0] + 1.0).abs() < 1e-6);
                assert!((x[1] + 1.0).abs() < 1e-6);
            }
            r => panic!("{r:?}"),
        }
    }

    #[test]
    fn dykstra_redundant_constraints() {
        // Same constraint thrice: answer unchanged.
        let a = Vector::from([1.0, 1.0]);
        let cs = vec![(a.clone(), -2.0), (a.clone(), -2.0), (a.clone(), -2.0)];
        match min_norm(&cs) {
            QpResult::Optimal(x) => {
                assert!((x[0] + 1.0).abs() < 1e-6);
                assert!((x[1] + 1.0).abs() < 1e-6);
            }
            r => panic!("{r:?}"),
        }
    }

    #[test]
    fn dykstra_kkt_optimality() {
        // min-norm point x* of a polyhedron satisfies: x* = −Σ λᵢ aᵢ with
        // λ ≥ 0 and complementary slackness. We verify optimality indirectly:
        // no feasible point in a small neighbourhood has smaller norm.
        let cs = vec![
            (Vector::from([1.0, 2.0]), -3.0),
            (Vector::from([2.0, 1.0]), -3.0),
        ];
        let QpResult::Optimal(x) = min_norm(&cs) else {
            panic!("expected optimal");
        };
        let base = x.norm();
        for dx in [-0.05, 0.0, 0.05] {
            for dy in [-0.05, 0.0, 0.05] {
                let cand = Vector::from([x[0] + dx, x[1] + dy]);
                let feas = cs.iter().all(|(a, b)| a.dot(&cand) <= b + 1e-9);
                if feas {
                    assert!(cand.norm() + 1e-9 >= base);
                }
            }
        }
    }

    #[test]
    fn dykstra_infeasible_detected() {
        // s₁ ≤ -1 and -s₁ ≤ -1 (s₁ ≥ 1): empty.
        let cs = vec![(Vector::from([1.0]), -1.0), (Vector::from([-1.0]), -1.0)];
        assert_eq!(min_norm(&cs), QpResult::Infeasible);
    }

    #[test]
    fn dykstra_empty_input() {
        match min_norm(&[]) {
            QpResult::Optimal(x) => assert_eq!(x.dim(), 0),
            r => panic!("{r:?}"),
        }
    }
}
