//! Textbook linear programs with known optima — a deterministic battery
//! exercising the simplex solver beyond the random property tests:
//! transportation, diet, blending, and degenerate/cycling-prone shapes.

use iq_solver::{solve_lp, Constraint, LinearProgram, LpResult, VarBound};

fn optimal(lp: &LinearProgram) -> (Vec<f64>, f64) {
    match solve_lp(lp) {
        LpResult::Optimal { x, value } => (x, value),
        other => panic!("expected optimal, got {other:?}"),
    }
}

#[test]
fn transportation_problem() {
    // Two plants (supply 20, 30) ship to three stores (demand 10, 25, 15);
    // unit costs:
    //          s1  s2  s3
    //   p1      8   6  10
    //   p2      9  12  13
    // Optimum 465: p1→s2 20; p2→s1 10, s2 5, s3 15
    // (8·0 + 6·20 + 9·10 + 12·5 + 13·15 = 465, verified by enumerating
    // basic feasible solutions).
    // Variables x11 x12 x13 x21 x22 x23.
    let lp = LinearProgram {
        objective: vec![8.0, 6.0, 10.0, 9.0, 12.0, 13.0],
        constraints: vec![
            // Supplies (exactly used; total supply == total demand).
            Constraint::eq(vec![1.0, 1.0, 1.0, 0.0, 0.0, 0.0], 20.0),
            Constraint::eq(vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0], 30.0),
            // Demands.
            Constraint::eq(vec![1.0, 0.0, 0.0, 1.0, 0.0, 0.0], 10.0),
            Constraint::eq(vec![0.0, 1.0, 0.0, 0.0, 1.0, 0.0], 25.0),
            Constraint::eq(vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0], 15.0),
        ],
        bounds: vec![VarBound::NonNegative; 6],
    };
    let (x, value) = optimal(&lp);
    assert!((value - 465.0).abs() < 1e-6, "value {value}");
    // Feasibility re-check.
    assert!((x[0] + x[1] + x[2] - 20.0).abs() < 1e-6);
    assert!((x[3] + x[4] + x[5] - 30.0).abs() < 1e-6);
    assert!(x.iter().all(|&v| v >= -1e-9));
}

#[test]
fn diet_problem() {
    // Minimize cost of foods A ($0.6/unit) and B ($1.0/unit) subject to
    // nutrient floors: 10a + 4b ≥ 20, 5a + 10b ≥ 20.
    // Optimum at intersection: a = 1.5, b = 1.25 → cost 2.15.
    let lp = LinearProgram {
        objective: vec![0.6, 1.0],
        constraints: vec![
            Constraint::ge(vec![10.0, 4.0], 20.0),
            Constraint::ge(vec![5.0, 10.0], 20.0),
        ],
        bounds: vec![VarBound::NonNegative; 2],
    };
    let (x, value) = optimal(&lp);
    assert!((x[0] - 1.5).abs() < 1e-6, "{x:?}");
    assert!((x[1] - 1.25).abs() < 1e-6, "{x:?}");
    assert!((value - 2.15).abs() < 1e-6);
}

#[test]
fn blending_with_equality_and_bounds() {
    // Blend three inputs to exactly one unit of product; quality floor
    // 0.5·x1 + 0.8·x2 + 0.3·x3 ≥ 0.6; minimize 2x1 + 5x2 + x3.
    let lp = LinearProgram {
        objective: vec![2.0, 5.0, 1.0],
        constraints: vec![
            Constraint::eq(vec![1.0, 1.0, 1.0], 1.0),
            Constraint::ge(vec![0.5, 0.8, 0.3], 0.6),
        ],
        bounds: vec![VarBound::NonNegative; 3],
    };
    let (x, value) = optimal(&lp);
    assert!((x.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    assert!(0.5 * x[0] + 0.8 * x[1] + 0.3 * x[2] >= 0.6 - 1e-6);
    // Optimal blend avoids the expensive input 2 as much as possible:
    // x1 = 1.5−... solve: minimize over the segment; known optimum mixes
    // inputs 1 and 3: with x2=0: x1+x3=1, 0.5x1+0.3x3 ≥ 0.6 → x1 ≥ 1.5 →
    // infeasible, so x2 > 0 is forced. Verify against a fine grid search.
    let mut best = f64::INFINITY;
    let n = 200;
    for i in 0..=n {
        for j in 0..=(n - i) {
            let (a, b) = (i as f64 / n as f64, j as f64 / n as f64);
            let c = 1.0 - a - b;
            if 0.5 * a + 0.8 * b + 0.3 * c >= 0.6 - 1e-9 {
                best = best.min(2.0 * a + 5.0 * b + c);
            }
        }
    }
    assert!(
        (value - best).abs() < 0.05,
        "simplex {value} vs grid {best}"
    );
}

#[test]
fn beale_cycling_example_terminates() {
    // Beale's classic cycling example for naive pivoting; Bland's rule
    // must terminate at the optimum (−0.05).
    let lp = LinearProgram {
        objective: vec![-0.75, 150.0, -0.02, 6.0],
        constraints: vec![
            Constraint::le(vec![0.25, -60.0, -1.0 / 25.0, 9.0], 0.0),
            Constraint::le(vec![0.5, -90.0, -1.0 / 50.0, 3.0], 0.0),
            Constraint::le(vec![0.0, 0.0, 1.0, 0.0], 1.0),
        ],
        bounds: vec![VarBound::NonNegative; 4],
    };
    let (_, value) = optimal(&lp);
    assert!((value + 0.05).abs() < 1e-6, "Beale optimum wrong: {value}");
}

#[test]
fn klee_minty_3d() {
    // The 3-D Klee–Minty cube — the worst case that forces greedy pivot
    // rules through exponentially many vertices:
    // max 100x1 + 10x2 + x3 s.t. x1 ≤ 1; 20x1 + x2 ≤ 100;
    // 200x1 + 20x2 + x3 ≤ 10000. Optimum 10000 at (0, 0, 10000).
    let lp = LinearProgram {
        objective: vec![-100.0, -10.0, -1.0],
        constraints: vec![
            Constraint::le(vec![1.0, 0.0, 0.0], 1.0),
            Constraint::le(vec![20.0, 1.0, 0.0], 100.0),
            Constraint::le(vec![200.0, 20.0, 1.0], 10_000.0),
        ],
        bounds: vec![VarBound::NonNegative; 3],
    };
    let (x, value) = optimal(&lp);
    assert!(
        (value + 10_000.0).abs() < 1e-6,
        "Klee–Minty optimum wrong: {value}"
    );
    assert!((x[2] - 10_000.0).abs() < 1e-5);
}

#[test]
fn redundant_constraints_do_not_confuse() {
    // The same halfspace stated five ways.
    let lp = LinearProgram {
        objective: vec![1.0],
        constraints: vec![
            Constraint::ge(vec![1.0], 3.0),
            Constraint::ge(vec![2.0], 6.0),
            Constraint::ge(vec![0.5], 1.5),
            Constraint::ge(vec![10.0], 30.0),
            Constraint::ge(vec![1.0], 2.0), // dominated
        ],
        bounds: vec![VarBound::NonNegative],
    };
    let (x, value) = optimal(&lp);
    assert!((x[0] - 3.0).abs() < 1e-6);
    assert!((value - 3.0).abs() < 1e-6);
}

#[test]
fn free_variable_equality_system() {
    // Solve a pure linear system through the LP: x + y = 2, x − y = 0,
    // any objective. Unique point (1, 1).
    let lp = LinearProgram {
        objective: vec![3.0, -7.0],
        constraints: vec![
            Constraint::eq(vec![1.0, 1.0], 2.0),
            Constraint::eq(vec![1.0, -1.0], 0.0),
        ],
        bounds: vec![VarBound::Free; 2],
    };
    let (x, _) = optimal(&lp);
    assert!((x[0] - 1.0).abs() < 1e-6 && (x[1] - 1.0).abs() < 1e-6);
}
