//! Property-based tests for the optimization substrate.

use iq_geometry::Vector;
use iq_solver::{
    exact_max_hit, exact_min_cost, min_norm, min_norm_single, solve_lp, Constraint, HalfSpace,
    HitCondition, L2SubsetSolver, LinearProgram, LpResult, QpResult, VarBound,
};
use proptest::prelude::*;

fn small() -> impl Strategy<Value = f64> {
    (-40i32..40).prop_map(|x| x as f64 * 0.25)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// 2-variable LPs with ≤ constraints and non-negative vars: the simplex
    /// optimum must match vertex enumeration.
    #[test]
    fn simplex_matches_vertex_enumeration(
        c in prop::collection::vec(small(), 2),
        rows in prop::collection::vec((small(), small(), small()), 1..6),
    ) {
        let cons: Vec<Constraint> = rows
            .iter()
            .map(|&(a, b, r)| Constraint::le(vec![a, b], r))
            .collect();
        let lp = LinearProgram {
            objective: c.clone(),
            constraints: cons.clone(),
            bounds: vec![VarBound::NonNegative; 2],
        };
        // Vertex enumeration: intersections of all constraint pairs
        // (including the axes x=0, y=0), filtered for feasibility.
        let mut lines: Vec<(f64, f64, f64)> = rows.clone();
        lines.push((1.0, 0.0, 0.0)); // x = 0 (as ≤ with equality at bound)
        lines.push((0.0, 1.0, 0.0)); // y = 0
        let feasible = |x: f64, y: f64| {
            x >= -1e-7
                && y >= -1e-7
                && rows.iter().all(|&(a, b, r)| a * x + b * y <= r + 1e-7)
        };
        let mut best: Option<f64> = None;
        for i in 0..lines.len() {
            for j in (i + 1)..lines.len() {
                let (a1, b1, r1) = lines[i];
                let (a2, b2, r2) = lines[j];
                let det = a1 * b2 - a2 * b1;
                if det.abs() < 1e-9 {
                    continue;
                }
                let x = (r1 * b2 - r2 * b1) / det;
                let y = (a1 * r2 - a2 * r1) / det;
                if feasible(x, y) {
                    let v = c[0] * x + c[1] * y;
                    best = Some(best.map_or(v, |b: f64| b.min(v)));
                }
            }
        }
        match solve_lp(&lp) {
            LpResult::Optimal { x, value } => {
                // Solution must be feasible and match the vertex optimum
                // when the region is bounded toward the objective.
                prop_assert!(feasible(x[0], x[1]), "infeasible LP answer {:?}", x);
                if let Some(b) = best {
                    prop_assert!(value <= b + 1e-5, "simplex {} worse than vertex {}", value, b);
                }
            }
            LpResult::Unbounded => {
                // Unbounded: walking far along -c must stay feasible in some
                // direction. Weak check: some ray from a feasible vertex
                // decreases the objective. We accept the claim when the
                // vertex optimum is None or the region is open; no assertion.
            }
            LpResult::Infeasible => {
                // Origin must then be infeasible.
                prop_assert!(!feasible(0.0, 0.0), "claims infeasible but origin works");
            }
        }
    }

    /// The closed-form single-constraint projection is optimal: any feasible
    /// perturbation has a norm at least as large.
    #[test]
    fn min_norm_single_is_optimal(
        a in prop::collection::vec(small(), 3),
        b in small(),
        perturb in prop::collection::vec(small(), 3),
    ) {
        let av = Vector::new(a);
        prop_assume!(av.norm() > 1e-6);
        let s = min_norm_single(&av, b).unwrap();
        prop_assert!(av.dot(&s) <= b + 1e-7, "constraint violated");
        let p = Vector::new(perturb);
        let cand = &s + &p.scaled(0.1);
        if av.dot(&cand) <= b {
            prop_assert!(cand.norm() + 1e-9 >= s.norm());
        }
    }

    /// Dykstra with several constraints: result feasible and no cheaper
    /// feasible point in a local neighbourhood.
    #[test]
    fn dykstra_feasible_and_locally_optimal(
        rows in prop::collection::vec((small(), small(), small()), 1..4),
    ) {
        let cs: Vec<(Vector, f64)> = rows
            .iter()
            .filter(|(a, b, _)| a.abs() + b.abs() > 1e-6)
            .map(|&(a, b, r)| (Vector::from([a, b]), r))
            .collect();
        prop_assume!(!cs.is_empty());
        match min_norm(&cs) {
            QpResult::Optimal(x) => {
                for (a, b) in &cs {
                    prop_assert!(a.dot(&x) <= b + 1e-5, "constraint violated");
                }
                let base = x.norm();
                for dx in [-0.02f64, 0.02] {
                    for dy in [-0.02f64, 0.02] {
                        let cand = Vector::from([x[0] + dx, x[1] + dy]);
                        if cs.iter().all(|(a, b)| a.dot(&cand) <= *b) {
                            prop_assert!(cand.norm() + 1e-6 >= base);
                        }
                    }
                }
            }
            QpResult::Infeasible => {
                // Accept: random systems can be genuinely empty.
            }
        }
    }

    /// Exact min-cost is monotone in tau, and max-hit monotone in budget.
    #[test]
    fn exact_search_monotonicity(
        rows in prop::collection::vec((0.05f64..1.0, 0.05f64..1.0, -3.0f64..0.5), 1..6),
    ) {
        let conds: Vec<HitCondition> = rows
            .iter()
            .map(|&(a, b, r)| HitCondition { a: Vector::from([a, b]), b: r })
            .collect();
        let solver = L2SubsetSolver;
        let mut prev = 0.0f64;
        for tau in 1..=conds.len() {
            if let Some(sol) = exact_min_cost(&conds, tau, &solver) {
                prop_assert!(sol.cost + 1e-6 >= prev, "cost decreased with larger tau");
                prev = sol.cost;
            }
        }
        let mut prev_hits = 0usize;
        for budget in [0.0, 0.5, 1.0, 2.0, 4.0] {
            let sol = exact_max_hit(&conds, budget, &solver);
            prop_assert!(sol.cost <= budget + 1e-6);
            prop_assert!(sol.hit_set.len() >= prev_hits, "hits decreased with larger budget");
            prev_hits = sol.hit_set.len();
        }
    }

    /// Every condition in the exact solution's hit set is actually satisfied
    /// by the returned strategy.
    #[test]
    fn exact_solution_hits_its_set(
        rows in prop::collection::vec((0.05f64..1.0, 0.05f64..1.0, -2.0f64..0.5), 1..6),
        tau in 1usize..4,
    ) {
        let conds: Vec<HitCondition> = rows
            .iter()
            .map(|&(a, b, r)| HitCondition { a: Vector::from([a, b]), b: r })
            .collect();
        prop_assume!(tau <= conds.len());
        if let Some(sol) = exact_min_cost(&conds, tau, &L2SubsetSolver) {
            prop_assert!(sol.hit_set.len() >= tau);
            for &i in &sol.hit_set {
                let hs = HalfSpace::new(conds[i].a.clone(), conds[i].b);
                prop_assert!(hs.satisfied(&sol.strategy, 1e-5));
            }
        }
    }
}
