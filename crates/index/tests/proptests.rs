//! Property-based tests: the R-tree and grouped index must behave exactly
//! like a naive list of points under arbitrary insert/remove interleavings.

use iq_geometry::{BoundingBox, Hyperplane, Slab, Vector};
use iq_index::{BloomFilter, GroupedQueryIndex, RTree};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn coord() -> impl Strategy<Value = f64> {
    // Small integer lattice: guarantees duplicates and boundary hits occur.
    (-8i32..8).prop_map(|x| x as f64 * 0.5)
}

fn point(d: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(coord(), d)
}

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<f64>),
    Remove(usize),
}

fn ops(d: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            3 => point(d).prop_map(Op::Insert),
            1 => (0usize..200).prop_map(Op::Remove),
        ],
        1..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rtree_matches_model_under_mutation(ops in ops(2), window in (point(2), point(2))) {
        let mut tree: RTree<usize> = RTree::with_capacity(2, 4);
        let mut model: Vec<(Vec<f64>, usize)> = Vec::new();
        let mut next_id = 0usize;
        for op in ops {
            match op {
                Op::Insert(p) => {
                    tree.insert(p.clone(), next_id);
                    model.push((p, next_id));
                    next_id += 1;
                }
                Op::Remove(i) => {
                    if !model.is_empty() {
                        let victim = model.swap_remove(i % model.len());
                        let removed = tree.remove(&victim.0, |&d| d == victim.1);
                        prop_assert_eq!(removed, Some(victim.1));
                    }
                }
            }
        }
        prop_assert_eq!(tree.len(), model.len());
        tree.check_invariants().map_err(TestCaseError::fail)?;

        // Window query equivalence.
        let lo: Vec<f64> = window.0.iter().zip(&window.1).map(|(a, b)| a.min(*b)).collect();
        let hi: Vec<f64> = window.0.iter().zip(&window.1).map(|(a, b)| a.max(*b)).collect();
        let w = BoundingBox::new(lo, hi);
        let mut got: Vec<usize> = tree.search_box(&w).iter().map(|e| e.data).collect();
        got.sort_unstable();
        let mut want: Vec<usize> = model
            .iter()
            .filter(|(p, _)| w.contains_point(p))
            .map(|(_, d)| *d)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn rtree_knn_matches_model(pts in prop::collection::vec(point(3), 1..80),
                               q in point(3), k in 1usize..10) {
        let mut tree = RTree::new(3);
        for (i, p) in pts.iter().enumerate() {
            tree.insert(p.clone(), i);
        }
        let got = tree.nearest_k(&q, k);
        let mut dists: Vec<f64> = pts.iter().map(|p| iq_geometry::vector::dist(&q, p)).collect();
        dists.sort_by(|a, b| a.total_cmp(b));
        prop_assert_eq!(got.len(), k.min(pts.len()));
        for (i, (_, d)) in got.iter().enumerate() {
            prop_assert!((d - dists[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn rtree_slab_matches_model(pts in prop::collection::vec(point(2), 1..80),
                                p in point(2), o in point(2), s in point(2)) {
        let pv = Vector::new(p);
        let ov = Vector::new(o);
        let sv = Vector::new(s);
        let Some(slab) = Slab::affected_subspace(&pv, &ov, &sv) else {
            return Ok(());
        };
        let mut tree = RTree::with_capacity(2, 4);
        for (i, q) in pts.iter().enumerate() {
            tree.insert(q.clone(), i);
        }
        let mut got: Vec<usize> = tree.search_slab(&slab).iter().map(|e| e.data).collect();
        got.sort_unstable();
        let mut want: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, q)| slab.contains(q))
            .map(|(i, _)| i)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn grouped_index_matches_model(
        items in prop::collection::vec((0usize..4, point(2)), 1..100),
        p in point(2), o in point(2), s in point(2),
    ) {
        let pv = Vector::new(p);
        let ov = Vector::new(o);
        let sv = Vector::new(s);
        let Some(slab) = Slab::affected_subspace(&pv, &ov, &sv) else {
            return Ok(());
        };
        let mut idx = GroupedQueryIndex::new(2);
        for (i, (g, q)) in items.iter().enumerate() {
            idx.insert(*g, q.clone(), i);
        }
        for g in 0..4 {
            let mut got = idx.search_slab(g, &slab);
            got.sort_unstable();
            let mut want: Vec<usize> = items
                .iter()
                .enumerate()
                .filter(|(_, (gg, q))| *gg == g && slab.contains(q))
                .map(|(i, _)| i)
                .collect();
            want.sort_unstable();
            prop_assert_eq!(got, want, "group {}", g);
        }
    }

    #[test]
    fn bloom_never_false_negative(keys in prop::collection::vec(any::<u64>(), 1..300)) {
        let mut f = BloomFilter::new(keys.len(), 0.01);
        for k in &keys {
            f.insert(k);
        }
        for k in &keys {
            prop_assert!(f.may_contain(k));
        }
    }

    /// The tolerance-widened slab scan must report a superset of the plain
    /// scan (every affected query plus every boundary-tied one), through
    /// both the pointer-chasing and the sealed arena read paths. The
    /// lattice coordinates make exact boundary ties common, so the widened
    /// set is regularly a *strict* superset here.
    #[test]
    fn slab_tol_is_superset_on_dynamic_and_arena(
        pts in prop::collection::vec(point(2), 1..100),
        p in point(2), o in point(2), s in point(2),
        tol_steps in 0usize..3,
    ) {
        let tol = tol_steps as f64 * 0.25;
        let pv = Vector::new(p);
        let ov = Vector::new(o);
        let sv = Vector::new(s);
        let Some(slab) = Slab::affected_subspace(&pv, &ov, &sv) else {
            return Ok(());
        };
        let mut dynamic: RTree<usize> = RTree::with_capacity(2, 4);
        for (i, q) in pts.iter().enumerate() {
            dynamic.insert(q.clone(), i);
        }
        let arena = RTree::bulk(2, pts.iter().cloned().zip(0..pts.len()));
        prop_assert!(arena.is_sealed() && !dynamic.is_sealed());
        let want_widened: BTreeSet<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, q)| slab.contains_tol(q, tol))
            .map(|(i, _)| i)
            .collect();
        for (name, tree) in [("dynamic", &dynamic), ("arena", &arena)] {
            let mut plain = BTreeSet::new();
            tree.visit_slab(&slab, &mut |e| {
                plain.insert(e.data);
            });
            let mut widened = BTreeSet::new();
            tree.visit_slab_tol(&slab, tol, &mut |e| {
                widened.insert(e.data);
            });
            prop_assert!(widened.is_superset(&plain), "{} repr lost entries", name);
            prop_assert_eq!(&widened, &want_widened, "{} repr vs naive tol filter", name);
        }
    }
}

/// Deterministic boundary-tie instance where the widened scan must be a
/// *strict* superset: one point inside the slab, one within `tol` outside
/// each boundary, one far away — on both tree representations.
#[test]
fn slab_tol_strictly_wider_on_engineered_boundary_ties() {
    let slab = Slab::new(
        Hyperplane::new(Vector::from([1.0, 0.0]), 0.0),
        Hyperplane::new(Vector::from([1.0, 0.0]), -1.0),
    );
    let pts = [
        vec![0.5, 0.0],  // inside: the form flips sign across the slab
        vec![1.2, 0.0],  // 0.2 past the `after` boundary
        vec![-0.2, 0.0], // 0.2 past the `before` boundary
        vec![3.0, 0.0],  // far outside: must stay excluded
    ];
    let mut dynamic: RTree<usize> = RTree::with_capacity(2, 4);
    for (i, q) in pts.iter().enumerate() {
        dynamic.insert(q.clone(), i);
    }
    let arena = RTree::bulk(2, pts.iter().cloned().zip(0..pts.len()));
    for (name, tree) in [("dynamic", &dynamic), ("arena", &arena)] {
        let mut plain = BTreeSet::new();
        tree.visit_slab(&slab, &mut |e| {
            plain.insert(e.data);
        });
        let mut widened = BTreeSet::new();
        tree.visit_slab_tol(&slab, 0.25, &mut |e| {
            widened.insert(e.data);
        });
        assert_eq!(plain, BTreeSet::from([0]), "{name}");
        assert_eq!(widened, BTreeSet::from([0, 1, 2]), "{name}");
        assert!(
            widened.is_superset(&plain) && widened.len() > plain.len(),
            "{name}: widened scan must be strictly wider"
        );
    }
}
