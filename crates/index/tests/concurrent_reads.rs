//! Concurrent-read audit for the index structures.
//!
//! The evaluation core (`iq-core::exec`) shares an [`RTree`] and a
//! [`GroupedQueryIndex`] read-only across worker threads while scoring
//! candidate strategies. Every query path takes `&self`; this test drives
//! those paths from many threads at once against a single shared instance
//! and checks each thread observes exactly the sequential results.

use iq_geometry::{BoundingBox, Hyperplane, Slab, Vector};
use iq_index::{GroupedQueryIndex, RTree};
use std::thread;

fn lcg(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed;
    move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64) / ((1u64 << 53) as f64)
    }
}

fn sample_slab(dim: usize, rnd: &mut impl FnMut() -> f64) -> Slab {
    let normal = Vector::new((0..dim).map(|_| rnd() - 0.5).collect::<Vec<_>>());
    let offset = rnd() * 0.5;
    Slab::new(
        Hyperplane::new(normal.clone(), offset),
        Hyperplane::new(normal, offset + 0.2),
    )
}

#[test]
fn rtree_queries_are_stable_under_concurrent_readers() {
    let dim = 3;
    let mut rnd = lcg(42);
    let mut tree = RTree::new(dim);
    for i in 0..500 {
        tree.insert((0..dim).map(|_| rnd()).collect(), i);
    }

    let window = BoundingBox::new(vec![0.2; dim], vec![0.7; dim]);
    let slabs: Vec<Slab> = (0..8).map(|_| sample_slab(dim, &mut rnd)).collect();

    let expect_box: Vec<usize> = tree.search_box(&window).iter().map(|e| e.data).collect();
    let expect_slabs: Vec<Vec<usize>> = slabs
        .iter()
        .map(|s| tree.search_slab(s).iter().map(|e| e.data).collect())
        .collect();
    let expect_knn: Vec<usize> = tree
        .nearest_k(&vec![0.5; dim], 7)
        .iter()
        .map(|(e, _)| e.data)
        .collect();

    thread::scope(|scope| {
        for t in 0..8 {
            let (tree, window, slabs) = (&tree, &window, &slabs);
            let (expect_box, expect_slabs, expect_knn) = (&expect_box, &expect_slabs, &expect_knn);
            scope.spawn(move || {
                for round in 0..20 {
                    let got: Vec<usize> = tree.search_box(window).iter().map(|e| e.data).collect();
                    assert_eq!(&got, expect_box, "thread {t} round {round}");
                    for (si, slab) in slabs.iter().enumerate() {
                        let got: Vec<usize> =
                            tree.search_slab(slab).iter().map(|e| e.data).collect();
                        assert_eq!(&got, &expect_slabs[si], "thread {t} slab {si}");
                    }
                    let got: Vec<usize> = tree
                        .nearest_k(&vec![0.5; dim], 7)
                        .iter()
                        .map(|(e, _)| e.data)
                        .collect();
                    assert_eq!(&got, expect_knn, "thread {t} round {round}");
                }
            });
        }
    });
}

#[test]
fn grouped_forest_is_stable_under_concurrent_readers() {
    let dim = 2;
    let mut rnd = lcg(7);
    let mut grouped = GroupedQueryIndex::new(dim);
    for qi in 0..400 {
        let group = (rnd() * 10.0) as usize;
        grouped.insert(group, (0..dim).map(|_| rnd()).collect(), qi);
    }

    let slab = sample_slab(dim, &mut rnd);
    let groups: Vec<usize> = grouped.group_keys().collect();
    let expect: Vec<Vec<usize>> = groups
        .iter()
        .map(|&g| grouped.search_slab(g, &slab))
        .collect();

    thread::scope(|scope| {
        for t in 0..8 {
            let (grouped, slab, groups, expect) = (&grouped, &slab, &groups, &expect);
            scope.spawn(move || {
                for round in 0..30 {
                    for (gi, &g) in groups.iter().enumerate() {
                        assert_eq!(
                            grouped.search_slab(g, slab),
                            expect[gi],
                            "thread {t} round {round} group {g}"
                        );
                        let mut tol_hits = Vec::new();
                        grouped.visit_slab_tol(g, slab, 1e-7, &mut |qi| tol_hits.push(qi));
                        // The tolerance-widened visit sees at least the
                        // exact members, in the same deterministic order
                        // every time.
                        assert!(expect[gi].iter().all(|qi| tol_hits.contains(qi)));
                    }
                }
            });
        }
    });
}
