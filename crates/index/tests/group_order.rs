//! Iteration-order regression test for `GroupedQueryIndex`.
//!
//! The per-group store map used to be a `HashMap`, whose per-instance
//! `RandomState` seed made `visit_all` / `group_keys` order differ between
//! two identically-built forests. The BTreeMap-backed store must visit in
//! ascending group order, identically, every build.

use iq_index::GroupedQueryIndex;

fn lcg(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed;
    move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / (u32::MAX as f64)
    }
}

fn build() -> GroupedQueryIndex {
    let mut rng = lcg(7);
    let mut idx = GroupedQueryIndex::new(3);
    // Spread entries over enough groups that a hash-ordered map would be
    // (overwhelmingly) unlikely to enumerate them in ascending order.
    for payload in 0..200 {
        let group = (rng() * 40.0) as usize;
        let point = vec![rng(), rng(), rng()];
        idx.insert(group, point, payload);
    }
    idx.seal();
    idx
}

#[test]
fn visit_order_is_build_independent_and_sorted() {
    let trace = |idx: &GroupedQueryIndex| {
        let mut seen: Vec<(usize, Vec<u64>, usize)> = Vec::new();
        idx.visit_all(&mut |g, p, d| {
            seen.push((g, p.iter().map(|v| v.to_bits()).collect(), d));
        });
        seen
    };
    let a = build();
    let b = build();
    let ta = trace(&a);
    assert_eq!(
        ta,
        trace(&b),
        "two identical builds visited in different orders"
    );

    let groups: Vec<usize> = ta.iter().map(|(g, _, _)| *g).collect();
    let mut sorted = groups.clone();
    sorted.sort();
    assert_eq!(
        groups, sorted,
        "visit_all must walk groups in ascending order"
    );

    let keys: Vec<usize> = a.group_keys().collect();
    let mut keys_sorted = keys.clone();
    keys_sorted.sort();
    assert_eq!(keys, keys_sorted, "group_keys must be ascending");
}
