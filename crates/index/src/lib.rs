//! # iq-index
//!
//! Indexing substrate for the `improvement-queries` workspace: a
//! from-scratch d-dimensional [R-tree](rtree::RTree) (Guttman 1984) with
//! window, affected-subspace (slab), and kNN search; a
//! [bloom filter](bloom::BloomFilter) over subdomain boundary keys (§4.3 of
//! the paper); and a [grouped query index](grouped::GroupedQueryIndex) — a
//! forest of per-threshold-object R-trees that routes the slab queries
//! issued by Efficient Strategy Evaluation.

#![warn(missing_docs)]

pub mod bloom;
pub mod grouped;
pub mod rtree;

pub use bloom::BloomFilter;
pub use grouped::GroupedQueryIndex;
pub use rtree::{Entry, RTree, SplitAlgorithm};

// Marker-trait audit: all query paths on these structures take `&self`
// and the evaluation core reads them from many threads concurrently
// (iq-core::exec). Interior mutability (caches, visit counters, etc.)
// added to any of them must fail this assertion, not corrupt searches.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<RTree<usize>>();
    assert_send_sync::<GroupedQueryIndex>();
    assert_send_sync::<BloomFilter<u32>>();
};
