//! A from-scratch `d`-dimensional R-tree over points (Guttman 1984, with the
//! quadratic split heuristic).
//!
//! The paper indexes top-k query points with "multidimensional data
//! structures such as R-tree \[10\] or X-tree \[3\]" (§4). This implementation
//! supports the three access paths improvement-query processing needs:
//!
//! * [`RTree::search_box`] — classic window queries;
//! * [`RTree::search_slab`] — retrieval of query points inside an *affected
//!   subspace* (the region between the pre- and post-improvement
//!   intersection hyperplanes, Eqs. 4–5), pruning whole subtrees whose MBR
//!   provably cannot contain a sign flip;
//! * [`RTree::nearest_k`] — kNN search used by the incremental update rule
//!   of §4.3 ("use the subdomains of the k nearest neighbours as candidate
//!   subdomains of a new query point").

use iq_geometry::{BoundingBox, Slab};
use std::collections::BinaryHeap;

/// Default maximum number of entries per node.
pub const DEFAULT_MAX_ENTRIES: usize = 16;

/// Node-split heuristic.
///
/// The paper indexes query points with "multidimensional data structures
/// such as R-tree or X-tree"; both split flavours are provided so the
/// ablation benchmarks can compare them:
///
/// * [`SplitAlgorithm::Quadratic`] — Guttman's original pick-seeds /
///   pick-next (the default).
/// * [`SplitAlgorithm::RStar`] — the R*-tree topological split (Beckmann
///   et al. 1990): choose the split axis by minimum margin sum, then the
///   distribution along it by minimum overlap (ties by minimum area).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitAlgorithm {
    /// Guttman's quadratic split.
    #[default]
    Quadratic,
    /// The R*-tree margin/overlap-driven split.
    RStar,
}

/// A stored point with its payload.
#[derive(Debug, Clone)]
pub struct Entry<T> {
    /// Coordinates of the indexed point.
    pub point: Vec<f64>,
    /// Caller payload (typically a query id).
    pub data: T,
}

#[derive(Debug, Clone)]
enum Node<T> {
    Leaf(Vec<Entry<T>>),
    Internal(Vec<Child<T>>),
}

#[derive(Debug, Clone)]
struct Child<T> {
    bbox: BoundingBox,
    node: Box<Node<T>>,
}

impl<T> Node<T> {
    fn len(&self) -> usize {
        match self {
            Node::Leaf(e) => e.len(),
            Node::Internal(c) => c.len(),
        }
    }

    fn compute_bbox(&self, dim: usize) -> BoundingBox {
        let mut b = BoundingBox::empty(dim);
        match self {
            Node::Leaf(entries) => {
                for e in entries {
                    b.merge_point(&e.point);
                }
            }
            Node::Internal(children) => {
                for c in children {
                    b.merge(&c.bbox);
                }
            }
        }
        b
    }
}

/// A flattened (arena) node: `start..end` indexes into the arena's `nodes`
/// vector for internal nodes and into its `entries` vector for leaves.
#[derive(Debug, Clone)]
struct ArenaNode {
    bbox: BoundingBox,
    start: u32,
    end: u32,
    leaf: bool,
}

/// Read-optimised tree storage: every node lives in one flat `Vec` (children
/// of a node are contiguous, in BFS order) and every entry lives in a second
/// flat `Vec` grouped by leaf. Slab/box scans walk index ranges with an
/// explicit stack instead of chasing `Box` pointers, which is where the
/// evaluation loop of §4.2 spends its index time.
#[derive(Debug, Clone)]
struct Arena<T> {
    nodes: Vec<ArenaNode>,
    entries: Vec<Entry<T>>,
}

/// The two storage forms of a tree. `Dynamic` supports insert/remove;
/// `Arena` is the sealed read-only form produced by [`RTree::bulk`] and
/// [`RTree::optimize`]. The first mutation after sealing converts back to
/// `Dynamic` once (shape-preserving, O(n)) and the tree then stays dynamic
/// until re-sealed.
#[derive(Debug, Clone)]
enum Repr<T> {
    Dynamic(Node<T>),
    Arena(Arena<T>),
}

/// A dynamic R-tree over `d`-dimensional points with payloads of type `T`.
#[derive(Debug, Clone)]
pub struct RTree<T> {
    repr: Repr<T>,
    dim: usize,
    max_entries: usize,
    min_entries: usize,
    split: SplitAlgorithm,
    len: usize,
}

impl<T> RTree<T> {
    /// Creates an empty tree for points of dimension `dim` with the default
    /// node capacity.
    pub fn new(dim: usize) -> Self {
        Self::with_capacity(dim, DEFAULT_MAX_ENTRIES)
    }

    /// Creates an empty tree with a custom node capacity (`max_entries ≥ 4`;
    /// the minimum fill is `max_entries / 2`).
    pub fn with_capacity(dim: usize, max_entries: usize) -> Self {
        Self::with_split(dim, max_entries, SplitAlgorithm::Quadratic)
    }

    /// Creates an empty tree with an explicit split heuristic.
    pub fn with_split(dim: usize, max_entries: usize, split: SplitAlgorithm) -> Self {
        assert!(max_entries >= 4, "R-tree node capacity must be at least 4");
        assert!(dim > 0, "R-tree dimension must be positive");
        RTree {
            repr: Repr::Dynamic(Node::Leaf(Vec::new())),
            dim,
            max_entries,
            min_entries: max_entries / 2,
            split,
            len: 0,
        }
    }

    /// The split heuristic in use.
    pub fn split_algorithm(&self) -> SplitAlgorithm {
        self.split
    }

    /// Bulk-builds a sealed (arena) tree with Sort-Tile-Recursive packing:
    /// at each level the points are sorted along the widest-spread axis and
    /// cut into evenly sized runs of capacity `max^(h-1)`, which yields
    /// uniform leaf depth and at-least-half-full nodes by construction.
    pub fn bulk(dim: usize, items: impl IntoIterator<Item = (Vec<f64>, T)>) -> Self {
        assert!(dim > 0, "R-tree dimension must be positive");
        let max = DEFAULT_MAX_ENTRIES;
        let entries: Vec<Entry<T>> = items
            .into_iter()
            .map(|(point, data)| {
                assert_eq!(point.len(), dim, "point dimension mismatch");
                Entry { point, data }
            })
            .collect();
        let len = entries.len();
        // Smallest height whose capacity max^h covers every entry.
        let mut height = 1usize;
        let mut cap = max;
        while cap < len {
            cap *= max;
            height += 1;
        }
        let root = str_build(entries, dim, max, height);
        RTree {
            repr: Repr::Arena(flatten(root, dim)),
            dim,
            max_entries: max,
            min_entries: max / 2,
            split: SplitAlgorithm::Quadratic,
            len,
        }
    }

    /// Seals the tree into its arena form: nodes move into one flat vector
    /// (children contiguous, BFS order), entries into another, and every
    /// read path switches to iterative index-range scans. Call once the
    /// tree stops changing; a later [`RTree::insert`] / [`RTree::remove`]
    /// transparently converts back (one O(n) rebuild, shape preserved).
    pub fn optimize(&mut self) {
        if let Repr::Dynamic(root) = &mut self.repr {
            let root = std::mem::replace(root, Node::Leaf(Vec::new()));
            self.repr = Repr::Arena(flatten(root, self.dim));
        }
    }

    /// Whether the tree is currently in its sealed (arena) form.
    pub fn is_sealed(&self) -> bool {
        matches!(self.repr, Repr::Arena(_))
    }

    /// Converts a sealed tree back to the pointer form, preserving shape.
    fn make_dynamic(&mut self) {
        if let Repr::Arena(arena) = &mut self.repr {
            let arena = std::mem::replace(
                arena,
                Arena {
                    nodes: Vec::new(),
                    entries: Vec::new(),
                },
            );
            let mut slots: Vec<Option<Entry<T>>> = arena.entries.into_iter().map(Some).collect();
            let root = if arena.nodes.is_empty() {
                Node::Leaf(Vec::new())
            } else {
                unflatten(&arena.nodes, 0, &mut slots)
            };
            self.repr = Repr::Dynamic(root);
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree stores nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality of the indexed points.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Height of the tree (a single leaf root has height 1).
    pub fn height(&self) -> usize {
        match &self.repr {
            Repr::Dynamic(root) => {
                let mut h = 1;
                let mut node = root;
                while let Node::Internal(children) = node {
                    h += 1;
                    node = &children[0].node;
                }
                h
            }
            Repr::Arena(a) => {
                let mut h = 1;
                let mut i = 0usize;
                while !a.nodes.is_empty() && !a.nodes[i].leaf {
                    h += 1;
                    i = a.nodes[i].start as usize;
                }
                h
            }
        }
    }

    /// The minimum bounding box of all stored points.
    pub fn bbox(&self) -> BoundingBox {
        match &self.repr {
            Repr::Dynamic(root) => root.compute_bbox(self.dim),
            Repr::Arena(a) => a
                .nodes
                .first()
                .map(|n| n.bbox.clone())
                .unwrap_or_else(|| BoundingBox::empty(self.dim)),
        }
    }

    /// Rough in-memory footprint in bytes, used by the index-size
    /// experiments (Figs. 4b, 5b, 6b).
    pub fn size_bytes(&self) -> usize {
        fn walk<T>(node: &Node<T>, dim: usize) -> usize {
            match node {
                Node::Leaf(entries) => {
                    entries.len() * (dim * 8 + std::mem::size_of::<T>())
                        + std::mem::size_of::<Node<T>>()
                }
                Node::Internal(children) => {
                    children
                        .iter()
                        .map(|c| walk(&c.node, dim) + dim * 16)
                        .sum::<usize>()
                        + std::mem::size_of::<Node<T>>()
                }
            }
        }
        match &self.repr {
            Repr::Dynamic(root) => walk(root, self.dim),
            Repr::Arena(a) => {
                a.nodes.len() * (std::mem::size_of::<ArenaNode>() + self.dim * 16)
                    + a.entries.len() * (self.dim * 8 + std::mem::size_of::<T>())
            }
        }
    }

    /// Inserts a point with its payload.
    ///
    /// # Panics
    /// Panics if the point's dimensionality does not match the tree's.
    pub fn insert(&mut self, point: Vec<f64>, data: T) {
        assert_eq!(point.len(), self.dim, "point dimension mismatch");
        self.make_dynamic();
        let max = self.max_entries;
        let dim = self.dim;
        let split = self.split;
        let Repr::Dynamic(root) = &mut self.repr else {
            unreachable!("make_dynamic left an arena repr");
        };
        if let Some((left, right)) = Self::insert_rec(root, Entry { point, data }, max, dim, split)
        {
            // Root split: grow the tree upward. The old root was emptied by
            // `insert_rec` (its contents moved into the two halves).
            *root = Node::Internal(vec![left, right]);
        }
        self.len += 1;
    }

    /// Recursive insert; returns `Some((a, b))` when the visited node split
    /// and the parent must replace it with the two halves.
    fn insert_rec(
        node: &mut Node<T>,
        entry: Entry<T>,
        max: usize,
        dim: usize,
        algo: SplitAlgorithm,
    ) -> Option<(Child<T>, Child<T>)> {
        match node {
            Node::Leaf(entries) => {
                entries.push(entry);
                if entries.len() > max {
                    let (a, b) = split_leaf(std::mem::take(entries), dim, algo);
                    Some((a, b))
                } else {
                    None
                }
            }
            Node::Internal(children) => {
                let idx = choose_subtree(children, &entry.point, dim);
                let split = Self::insert_rec(&mut children[idx].node, entry, max, dim, algo);
                match split {
                    None => {
                        // Tighten the MBR along the insertion path.
                        children[idx].bbox = children[idx].node.compute_bbox(dim);
                        None
                    }
                    Some((a, b)) => {
                        children.swap_remove(idx);
                        children.push(a);
                        children.push(b);
                        if children.len() > max {
                            let (x, y) = split_internal(std::mem::take(children), dim, algo);
                            Some((x, y))
                        } else {
                            None
                        }
                    }
                }
            }
        }
    }

    /// Removes one entry at `point` whose payload satisfies `pred`.
    /// Returns the removed payload, or `None` if nothing matched.
    pub fn remove(&mut self, point: &[f64], pred: impl Fn(&T) -> bool) -> Option<T> {
        assert_eq!(point.len(), self.dim, "point dimension mismatch");
        self.make_dynamic();
        let dim = self.dim;
        let min = self.min_entries;
        let mut orphans: Vec<Entry<T>> = Vec::new();
        let Repr::Dynamic(root) = &mut self.repr else {
            unreachable!("make_dynamic left an arena repr");
        };
        let removed = Self::remove_rec(root, point, &pred, dim, min, &mut orphans);
        if removed.is_some() {
            self.len -= 1;
            // Shrink a root with a single internal child.
            loop {
                let Repr::Dynamic(root) = &mut self.repr else {
                    unreachable!("remove never re-seals the tree");
                };
                match root {
                    Node::Internal(children) if children.len() == 1 => {
                        let only = children.pop().unwrap();
                        *root = *only.node;
                    }
                    Node::Internal(children) if children.is_empty() => {
                        *root = Node::Leaf(Vec::new());
                        break;
                    }
                    _ => break,
                }
            }
            // Reinsert entries orphaned by condensing.
            self.len -= orphans.len();
            for e in orphans {
                self.insert(e.point, e.data);
            }
        }
        removed
    }

    fn remove_rec(
        node: &mut Node<T>,
        point: &[f64],
        pred: &impl Fn(&T) -> bool,
        dim: usize,
        min: usize,
        orphans: &mut Vec<Entry<T>>,
    ) -> Option<T> {
        match node {
            Node::Leaf(entries) => {
                let pos = entries
                    .iter()
                    .position(|e| e.point == point && pred(&e.data))?;
                Some(entries.swap_remove(pos).data)
            }
            Node::Internal(children) => {
                let mut removed = None;
                let mut hit_idx = None;
                for (i, c) in children.iter_mut().enumerate() {
                    if c.bbox.contains_point(point) {
                        if let Some(data) =
                            Self::remove_rec(&mut c.node, point, pred, dim, min, orphans)
                        {
                            removed = Some(data);
                            hit_idx = Some(i);
                            break;
                        }
                    }
                }
                let i = hit_idx?;
                if children[i].node.len() < min {
                    // Condense: orphan the underfull subtree for reinsertion.
                    let dead = children.swap_remove(i);
                    collect_entries(*dead.node, orphans);
                } else {
                    children[i].bbox = children[i].node.compute_bbox(dim);
                }
                removed
            }
        }
    }

    /// Collects every entry whose point lies inside `window`.
    pub fn search_box(&self, window: &BoundingBox) -> Vec<&Entry<T>> {
        let mut out = Vec::new();
        self.visit_box(window, &mut |e| out.push(e));
        out
    }

    /// Visitor-style window query (no intermediate allocation).
    pub fn visit_box<'a>(&'a self, window: &BoundingBox, visit: &mut impl FnMut(&'a Entry<T>)) {
        fn rec<'a, T>(
            node: &'a Node<T>,
            window: &BoundingBox,
            visit: &mut impl FnMut(&'a Entry<T>),
        ) {
            match node {
                Node::Leaf(entries) => {
                    for e in entries {
                        if window.contains_point(&e.point) {
                            visit(e);
                        }
                    }
                }
                Node::Internal(children) => {
                    for c in children {
                        if window.intersects(&c.bbox) {
                            rec(&c.node, window, visit);
                        }
                    }
                }
            }
        }
        match &self.repr {
            Repr::Dynamic(root) => rec(root, window, visit),
            Repr::Arena(a) => {
                a.visit_where(
                    |bbox| window.intersects(bbox),
                    |e| {
                        if window.contains_point(&e.point) {
                            visit(e);
                        }
                    },
                );
            }
        }
    }

    /// Collects every entry inside the affected subspace described by
    /// `slab`, pruning subtrees whose MBR is provably sign-stable.
    pub fn search_slab(&self, slab: &Slab) -> Vec<&Entry<T>> {
        let mut out = Vec::new();
        self.visit_slab(slab, &mut |e| out.push(e));
        out
    }

    /// Visitor-style affected-subspace query.
    pub fn visit_slab<'a>(&'a self, slab: &Slab, visit: &mut impl FnMut(&'a Entry<T>)) {
        fn rec<'a, T>(node: &'a Node<T>, slab: &Slab, visit: &mut impl FnMut(&'a Entry<T>)) {
            match node {
                Node::Leaf(entries) => {
                    for e in entries {
                        if slab.contains(&e.point) {
                            visit(e);
                        }
                    }
                }
                Node::Internal(children) => {
                    for c in children {
                        if !c.bbox.disjoint_from_slab(slab) {
                            rec(&c.node, slab, visit);
                        }
                    }
                }
            }
        }
        match &self.repr {
            Repr::Dynamic(root) => rec(root, slab, visit),
            Repr::Arena(a) => {
                a.visit_where(
                    |bbox| !bbox.disjoint_from_slab(slab),
                    |e| {
                        if slab.contains(&e.point) {
                            visit(e);
                        }
                    },
                );
            }
        }
    }

    /// Tolerance-widened affected-subspace query: entries within `tol` of
    /// either slab boundary are also visited (their hit status may hinge on
    /// an id tie-break rather than the sign of the form).
    pub fn visit_slab_tol<'a>(
        &'a self,
        slab: &Slab,
        tol: f64,
        visit: &mut impl FnMut(&'a Entry<T>),
    ) {
        fn rec<'a, T>(
            node: &'a Node<T>,
            slab: &Slab,
            tol: f64,
            visit: &mut impl FnMut(&'a Entry<T>),
        ) {
            match node {
                Node::Leaf(entries) => {
                    for e in entries {
                        if slab.contains_tol(&e.point, tol) {
                            visit(e);
                        }
                    }
                }
                Node::Internal(children) => {
                    for c in children {
                        if !c.bbox.disjoint_from_slab_tol(slab, tol) {
                            rec(&c.node, slab, tol, visit);
                        }
                    }
                }
            }
        }
        match &self.repr {
            Repr::Dynamic(root) => rec(root, slab, tol, visit),
            Repr::Arena(a) => {
                a.visit_where(
                    |bbox| !bbox.disjoint_from_slab_tol(slab, tol),
                    |e| {
                        if slab.contains_tol(&e.point, tol) {
                            visit(e);
                        }
                    },
                );
            }
        }
    }

    /// The `k` entries nearest to `q` by Euclidean distance, closest first.
    /// Returns fewer than `k` when the tree is smaller.
    pub fn nearest_k(&self, q: &[f64], k: usize) -> Vec<(&Entry<T>, f64)> {
        assert_eq!(q.len(), self.dim, "query dimension mismatch");
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        // Best-first search over nodes and entries ordered by min distance.
        enum Item<'a, T> {
            Node(&'a Node<T>),
            ArenaNode(&'a Arena<T>, u32),
            Entry(&'a Entry<T>),
        }
        struct Pq<'a, T> {
            dist: f64,
            item: Item<'a, T>,
        }
        impl<T> PartialEq for Pq<'_, T> {
            fn eq(&self, other: &Self) -> bool {
                self.dist == other.dist
            }
        }
        impl<T> Eq for Pq<'_, T> {}
        impl<T> PartialOrd for Pq<'_, T> {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl<T> Ord for Pq<'_, T> {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                // Min-heap via reversed comparison; NaN-free by construction.
                other.dist.total_cmp(&self.dist)
            }
        }

        let mut heap: BinaryHeap<Pq<'_, T>> = BinaryHeap::new();
        match &self.repr {
            Repr::Dynamic(root) => heap.push(Pq {
                dist: 0.0,
                item: Item::Node(root),
            }),
            Repr::Arena(a) => {
                if !a.nodes.is_empty() {
                    heap.push(Pq {
                        dist: 0.0,
                        item: Item::ArenaNode(a, 0),
                    });
                }
            }
        }
        let mut out = Vec::with_capacity(k);
        while let Some(Pq { dist, item }) = heap.pop() {
            match item {
                Item::Entry(e) => {
                    out.push((e, dist.sqrt()));
                    if out.len() == k {
                        break;
                    }
                }
                Item::Node(Node::Leaf(entries)) => {
                    for e in entries {
                        let d = iq_geometry::vector::dist_sq(q, &e.point);
                        heap.push(Pq {
                            dist: d,
                            item: Item::Entry(e),
                        });
                    }
                }
                Item::Node(Node::Internal(children)) => {
                    for c in children {
                        heap.push(Pq {
                            dist: c.bbox.min_dist_sq(q),
                            item: Item::Node(&c.node),
                        });
                    }
                }
                Item::ArenaNode(a, i) => {
                    let node = &a.nodes[i as usize];
                    if node.leaf {
                        for e in &a.entries[node.start as usize..node.end as usize] {
                            let d = iq_geometry::vector::dist_sq(q, &e.point);
                            heap.push(Pq {
                                dist: d,
                                item: Item::Entry(e),
                            });
                        }
                    } else {
                        for ci in node.start..node.end {
                            heap.push(Pq {
                                dist: a.nodes[ci as usize].bbox.min_dist_sq(q),
                                item: Item::ArenaNode(a, ci),
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// Iterates over every stored entry (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &Entry<T>> {
        let mut stack: Vec<&Node<T>> = Vec::new();
        let mut arena_entries: &[Entry<T>] = &[];
        match &self.repr {
            Repr::Dynamic(root) => stack.push(root),
            Repr::Arena(a) => arena_entries = &a.entries,
        }
        arena_entries.iter().chain(
            std::iter::from_fn(move || loop {
                let node = stack.pop()?;
                match node {
                    Node::Leaf(entries) => return Some(entries),
                    Node::Internal(children) => {
                        for c in children {
                            stack.push(&c.node);
                        }
                    }
                }
            })
            .flatten(),
        )
    }

    /// Structural invariant checks, used by tests: MBRs cover children,
    /// leaves at uniform depth, node occupancy within bounds.
    pub fn check_invariants(&self) -> Result<(), String> {
        fn rec<T>(
            node: &Node<T>,
            dim: usize,
            max: usize,
            min: usize,
            is_root: bool,
            depth: usize,
            leaf_depth: &mut Option<usize>,
        ) -> Result<usize, String> {
            match node {
                Node::Leaf(entries) => {
                    match leaf_depth {
                        Some(d) if *d != depth => {
                            return Err(format!("leaf at depth {depth}, expected {d}"))
                        }
                        None => *leaf_depth = Some(depth),
                        _ => {}
                    }
                    if !is_root && entries.len() < min {
                        return Err(format!("leaf underfull: {} < {min}", entries.len()));
                    }
                    if entries.len() > max {
                        return Err(format!("leaf overfull: {} > {max}", entries.len()));
                    }
                    Ok(entries.len())
                }
                Node::Internal(children) => {
                    if children.is_empty() {
                        return Err("empty internal node".into());
                    }
                    if !is_root && children.len() < min {
                        return Err(format!("internal underfull: {} < {min}", children.len()));
                    }
                    if children.len() > max {
                        return Err(format!("internal overfull: {} > {max}", children.len()));
                    }
                    let mut total = 0;
                    for c in children {
                        let actual = c.node.compute_bbox(dim);
                        if !c.bbox.contains_box(&actual) {
                            return Err("MBR does not cover child".into());
                        }
                        total += rec(&c.node, dim, max, min, false, depth + 1, leaf_depth)?;
                    }
                    Ok(total)
                }
            }
        }
        // Same checks over the arena form; returns (entry count, actual
        // bbox) so parents can verify their stored MBR covers the contents.
        fn rec_arena<T>(
            a: &Arena<T>,
            idx: usize,
            dim: usize,
            max: usize,
            min: usize,
            depth: usize,
            leaf_depth: &mut Option<usize>,
        ) -> Result<(usize, BoundingBox), String> {
            // Index 0 is always the root in the BFS layout.
            let is_root = idx == 0;
            let node = &a.nodes[idx];
            let mut actual = BoundingBox::empty(dim);
            if node.leaf {
                match leaf_depth {
                    Some(d) if *d != depth => {
                        return Err(format!("leaf at depth {depth}, expected {d}"))
                    }
                    None => *leaf_depth = Some(depth),
                    _ => {}
                }
                let n = (node.end - node.start) as usize;
                if !is_root && n < min {
                    return Err(format!("leaf underfull: {n} < {min}"));
                }
                if n > max {
                    return Err(format!("leaf overfull: {n} > {max}"));
                }
                for e in &a.entries[node.start as usize..node.end as usize] {
                    actual.merge_point(&e.point);
                }
                Ok((n, actual))
            } else {
                let n = (node.end - node.start) as usize;
                if n == 0 {
                    return Err("empty internal node".into());
                }
                if !is_root && n < min {
                    return Err(format!("internal underfull: {n} < {min}"));
                }
                if n > max {
                    return Err(format!("internal overfull: {n} > {max}"));
                }
                let mut total = 0;
                for ci in node.start..node.end {
                    let (count, child_actual) =
                        rec_arena(a, ci as usize, dim, max, min, depth + 1, leaf_depth)?;
                    if !a.nodes[ci as usize].bbox.contains_box(&child_actual) {
                        return Err("MBR does not cover child".into());
                    }
                    total += count;
                    actual.merge(&child_actual);
                }
                Ok((total, actual))
            }
        }
        let mut leaf_depth = None;
        let total = match &self.repr {
            Repr::Dynamic(root) => rec(
                root,
                self.dim,
                self.max_entries,
                self.min_entries,
                true,
                0,
                &mut leaf_depth,
            )?,
            Repr::Arena(a) => {
                if a.nodes.is_empty() {
                    return Err("arena without a root node".into());
                }
                let (total, actual) = rec_arena(
                    a,
                    0,
                    self.dim,
                    self.max_entries,
                    self.min_entries,
                    0,
                    &mut leaf_depth,
                )?;
                if !a.nodes[0].bbox.contains_box(&actual) {
                    return Err("root MBR does not cover contents".into());
                }
                total
            }
        };
        if total != self.len {
            return Err(format!(
                "len mismatch: counted {total}, stored {}",
                self.len
            ));
        }
        Ok(())
    }
}

impl<T> Arena<T> {
    /// Iterative pruned traversal shared by the box and slab scans: descend
    /// into children whose bbox passes `enter` (the root is never tested,
    /// matching the recursive path), and hand every entry of each surviving
    /// leaf to `leaf_visit`. Children are pushed in reverse so pop order
    /// equals child order — the visit sequence is exactly the recursion's.
    fn visit_where<'a>(
        &'a self,
        enter: impl Fn(&BoundingBox) -> bool,
        mut leaf_visit: impl FnMut(&'a Entry<T>),
    ) {
        if self.nodes.is_empty() {
            return;
        }
        let mut stack: Vec<u32> = vec![0];
        while let Some(i) = stack.pop() {
            let node = &self.nodes[i as usize];
            if node.leaf {
                for e in &self.entries[node.start as usize..node.end as usize] {
                    leaf_visit(e);
                }
            } else {
                for ci in (node.start..node.end).rev() {
                    if enter(&self.nodes[ci as usize].bbox) {
                        stack.push(ci);
                    }
                }
            }
        }
    }
}

/// Sort-Tile-Recursive packing to an explicit target height: sort along the
/// widest-spread axis, cut into `ceil(n / max^(height-1))` even runs, and
/// recurse per run. Even cuts keep every node at least half full and every
/// leaf at the same depth (see DESIGN.md §9).
fn str_build<T>(mut items: Vec<Entry<T>>, dim: usize, max: usize, height: usize) -> Node<T> {
    if height == 1 {
        debug_assert!(items.len() <= max);
        return Node::Leaf(items);
    }
    let n = items.len();
    let cap = max.pow(height as u32 - 1);
    let children_count = n.div_ceil(cap);
    debug_assert!((2..=max).contains(&children_count));

    let axis = widest_axis(&items, dim);
    items.sort_by(|a, b| a.point[axis].total_cmp(&b.point[axis]));

    let base = n / children_count;
    let rem = n % children_count;
    let mut children = Vec::with_capacity(children_count);
    let mut iter = items.into_iter();
    for i in 0..children_count {
        let take = base + usize::from(i < rem);
        let group: Vec<Entry<T>> = iter.by_ref().take(take).collect();
        let node = str_build(group, dim, max, height - 1);
        let bbox = node.compute_bbox(dim);
        children.push(Child {
            bbox,
            node: Box::new(node),
        });
    }
    Node::Internal(children)
}

/// The axis with the largest coordinate spread (ties to the lowest axis).
fn widest_axis<T>(items: &[Entry<T>], dim: usize) -> usize {
    let mut b = BoundingBox::empty(dim);
    for e in items {
        b.merge_point(&e.point);
    }
    let mut best = 0;
    let mut best_spread = f64::NEG_INFINITY;
    for axis in 0..dim {
        let spread = b.hi()[axis] - b.lo()[axis];
        if spread > best_spread {
            best_spread = spread;
            best = axis;
        }
    }
    best
}

/// Flattens a pointer tree into the arena form, BFS order: a node's
/// children are contiguous in `nodes`, a leaf's entries contiguous in
/// `entries` (level order puts leaf runs in left-to-right scan order).
fn flatten<T>(root: Node<T>, dim: usize) -> Arena<T> {
    let root_bbox = root.compute_bbox(dim);
    let mut nodes: Vec<ArenaNode> = vec![ArenaNode {
        bbox: root_bbox,
        start: 0,
        end: 0,
        leaf: true,
    }];
    let mut entries: Vec<Entry<T>> = Vec::new();
    let mut queue: std::collections::VecDeque<(usize, Node<T>)> = std::collections::VecDeque::new();
    queue.push_back((0, root));
    while let Some((idx, node)) = queue.pop_front() {
        match node {
            Node::Leaf(es) => {
                nodes[idx].leaf = true;
                nodes[idx].start = u32::try_from(entries.len()).expect("arena entry overflow");
                entries.extend(es);
                nodes[idx].end = u32::try_from(entries.len()).expect("arena entry overflow");
            }
            Node::Internal(children) => {
                let start = u32::try_from(nodes.len()).expect("arena node overflow");
                nodes[idx].leaf = false;
                nodes[idx].start = start;
                nodes[idx].end = start + children.len() as u32;
                for c in children {
                    let ci = nodes.len();
                    nodes.push(ArenaNode {
                        bbox: c.bbox,
                        start: 0,
                        end: 0,
                        leaf: true,
                    });
                    queue.push_back((ci, *c.node));
                }
            }
        }
    }
    Arena { nodes, entries }
}

/// Rebuilds the pointer form of an arena subtree, moving entries out of
/// `slots` (shape is preserved exactly, so all structural invariants carry
/// over to the dynamic form).
fn unflatten<T>(nodes: &[ArenaNode], idx: usize, slots: &mut [Option<Entry<T>>]) -> Node<T> {
    let node = &nodes[idx];
    if node.leaf {
        Node::Leaf(
            (node.start..node.end)
                .map(|i| slots[i as usize].take().expect("entry moved twice"))
                .collect(),
        )
    } else {
        Node::Internal(
            (node.start..node.end)
                .map(|ci| Child {
                    bbox: nodes[ci as usize].bbox.clone(),
                    node: Box::new(unflatten(nodes, ci as usize, slots)),
                })
                .collect(),
        )
    }
}

fn collect_entries<T>(node: Node<T>, out: &mut Vec<Entry<T>>) {
    match node {
        Node::Leaf(entries) => out.extend(entries),
        Node::Internal(children) => {
            for c in children {
                collect_entries(*c.node, out);
            }
        }
    }
}

/// Guttman's least-enlargement subtree choice (volume, then smaller box,
/// then fewer children as tie-breakers).
fn choose_subtree<T>(children: &[Child<T>], point: &[f64], _dim: usize) -> usize {
    let mut best = 0;
    let mut best_enl = f64::INFINITY;
    let mut best_vol = f64::INFINITY;
    for (i, c) in children.iter().enumerate() {
        let pb = BoundingBox::point(point);
        let enl = c.bbox.enlargement(&pb);
        let vol = c.bbox.volume();
        if enl < best_enl || (enl == best_enl && vol < best_vol) {
            best = i;
            best_enl = enl;
            best_vol = vol;
        }
    }
    best
}

/// Quadratic pick-seeds: the pair whose combined box wastes the most space.
fn pick_seeds(boxes: &[BoundingBox]) -> (usize, usize) {
    let mut best = (0, 1);
    let mut worst_waste = f64::NEG_INFINITY;
    for i in 0..boxes.len() {
        for j in (i + 1)..boxes.len() {
            let waste = boxes[i].merged(&boxes[j]).volume() - boxes[i].volume() - boxes[j].volume();
            if waste > worst_waste {
                worst_waste = waste;
                best = (i, j);
            }
        }
    }
    best
}

/// Quadratic split shared by leaves and internal nodes: distributes `items`
/// (with precomputed boxes) into two groups, each ending up with at least
/// `items.len() / 2` entries rounded down to the node minimum so neither
/// half violates the fill invariant.
fn quadratic_split<I>(
    items: Vec<(BoundingBox, I)>,
    dim: usize,
) -> (Vec<I>, BoundingBox, Vec<I>, BoundingBox) {
    debug_assert!(items.len() >= 2);
    // Splitting an overflowing node of max+1 items: each half must reach the
    // minimum fill of max/2, which equals items.len()/2 rounded down.
    let min_fill = items.len() / 2;
    let boxes: Vec<BoundingBox> = items.iter().map(|(b, _)| b.clone()).collect();
    let (s1, s2) = pick_seeds(&boxes);

    let mut g1: Vec<I> = Vec::new();
    let mut g2: Vec<I> = Vec::new();
    let mut b1 = BoundingBox::empty(dim);
    let mut b2 = BoundingBox::empty(dim);

    let mut rest: Vec<(BoundingBox, I)> = Vec::new();
    for (i, (bx, item)) in items.into_iter().enumerate() {
        if i == s1 {
            b1.merge(&bx);
            g1.push(item);
        } else if i == s2 {
            b2.merge(&bx);
            g2.push(item);
        } else {
            rest.push((bx, item));
        }
    }

    while !rest.is_empty() {
        // Force-assign the remainder when one group otherwise cannot reach
        // the minimum fill.
        if g1.len() + rest.len() == min_fill {
            for (bx, item) in rest.drain(..) {
                b1.merge(&bx);
                g1.push(item);
            }
            break;
        }
        if g2.len() + rest.len() == min_fill {
            for (bx, item) in rest.drain(..) {
                b2.merge(&bx);
                g2.push(item);
            }
            break;
        }
        // Pick-next: the item with the strongest group preference.
        let mut best = 0;
        let mut best_diff = f64::NEG_INFINITY;
        for (i, (bx, _)) in rest.iter().enumerate() {
            let diff = (b1.enlargement(bx) - b2.enlargement(bx)).abs();
            if diff > best_diff {
                best_diff = diff;
                best = i;
            }
        }
        let (bx, item) = rest.swap_remove(best);
        let d1 = b1.enlargement(&bx);
        let d2 = b2.enlargement(&bx);
        let to_g1 = d1 < d2
            || (d1 == d2 && b1.volume() < b2.volume())
            || (d1 == d2 && b1.volume() == b2.volume() && g1.len() <= g2.len());
        if to_g1 {
            b1.merge(&bx);
            g1.push(item);
        } else {
            b2.merge(&bx);
            g2.push(item);
        }
    }
    (g1, b1, g2, b2)
}

fn split_items<I>(
    items: Vec<(BoundingBox, I)>,
    dim: usize,
    algo: SplitAlgorithm,
) -> (Vec<I>, BoundingBox, Vec<I>, BoundingBox) {
    match algo {
        SplitAlgorithm::Quadratic => quadratic_split(items, dim),
        SplitAlgorithm::RStar => rstar_split(items, dim),
    }
}

fn split_leaf<T>(entries: Vec<Entry<T>>, dim: usize, algo: SplitAlgorithm) -> (Child<T>, Child<T>) {
    let items: Vec<(BoundingBox, Entry<T>)> = entries
        .into_iter()
        .map(|e| (BoundingBox::point(&e.point), e))
        .collect();
    let (g1, b1, g2, b2) = split_items(items, dim, algo);
    (
        Child {
            bbox: b1,
            node: Box::new(Node::Leaf(g1)),
        },
        Child {
            bbox: b2,
            node: Box::new(Node::Leaf(g2)),
        },
    )
}

fn split_internal<T>(
    children: Vec<Child<T>>,
    dim: usize,
    algo: SplitAlgorithm,
) -> (Child<T>, Child<T>) {
    let items: Vec<(BoundingBox, Child<T>)> =
        children.into_iter().map(|c| (c.bbox.clone(), c)).collect();
    let (g1, b1, g2, b2) = split_items(items, dim, algo);
    (
        Child {
            bbox: b1,
            node: Box::new(Node::Internal(g1)),
        },
        Child {
            bbox: b2,
            node: Box::new(Node::Internal(g2)),
        },
    )
}

/// The R*-tree topological split: pick the axis whose sorted distributions
/// have the smallest total margin, then the distribution with the least
/// overlap between the two halves (ties broken by combined volume).
fn rstar_split<I>(
    mut items: Vec<(BoundingBox, I)>,
    dim: usize,
) -> (Vec<I>, BoundingBox, Vec<I>, BoundingBox) {
    debug_assert!(items.len() >= 2);
    let min_fill = (items.len() / 2).max(1);
    let n = items.len();

    // Evaluate every axis by total margin over its candidate distributions.
    let mut best_axis = 0;
    let mut best_margin = f64::INFINITY;
    for axis in 0..dim {
        items.sort_by(|a, b| {
            a.0.lo()[axis]
                .total_cmp(&b.0.lo()[axis])
                .then(a.0.hi()[axis].total_cmp(&b.0.hi()[axis]))
        });
        let (prefixes, suffixes) = sweep_boxes(&items, dim);
        let mut margin_sum = 0.0;
        for k in min_fill..=(n - min_fill) {
            margin_sum += prefixes[k].margin() + suffixes[k].margin();
        }
        if margin_sum < best_margin {
            best_margin = margin_sum;
            best_axis = axis;
        }
    }

    // Re-sort along the chosen axis and pick the min-overlap distribution.
    items.sort_by(|a, b| {
        a.0.lo()[best_axis]
            .total_cmp(&b.0.lo()[best_axis])
            .then(a.0.hi()[best_axis].total_cmp(&b.0.hi()[best_axis]))
    });
    let (prefixes, suffixes) = sweep_boxes(&items, dim);
    let mut best_k = min_fill;
    let mut best_key = (f64::INFINITY, f64::INFINITY);
    for k in min_fill..=(n - min_fill) {
        let overlap = box_overlap(&prefixes[k], &suffixes[k]);
        let volume = prefixes[k].volume() + suffixes[k].volume();
        if (overlap, volume) < best_key {
            best_key = (overlap, volume);
            best_k = k;
        }
    }

    let b1 = prefixes[best_k].clone();
    let b2 = suffixes[best_k].clone();
    let mut g1 = Vec::with_capacity(best_k);
    let mut g2 = Vec::with_capacity(n - best_k);
    for (i, (_, item)) in items.into_iter().enumerate() {
        if i < best_k {
            g1.push(item);
        } else {
            g2.push(item);
        }
    }
    (g1, b1, g2, b2)
}

/// Cumulative bounding boxes of every prefix and suffix of `items`;
/// `prefixes[k]` covers items `0..k`, `suffixes[k]` covers `k..n`.
fn sweep_boxes<I>(items: &[(BoundingBox, I)], dim: usize) -> (Vec<BoundingBox>, Vec<BoundingBox>) {
    let n = items.len();
    let mut prefixes = Vec::with_capacity(n + 1);
    prefixes.push(BoundingBox::empty(dim));
    for (b, _) in items {
        let mut next = prefixes.last().unwrap().clone();
        next.merge(b);
        prefixes.push(next);
    }
    let mut suffixes = vec![BoundingBox::empty(dim); n + 1];
    for i in (0..n).rev() {
        let mut b = suffixes[i + 1].clone();
        b.merge(&items[i].0);
        suffixes[i] = b;
    }
    (prefixes, suffixes)
}

/// Volume of the intersection of two boxes (zero when disjoint or empty).
fn box_overlap(a: &BoundingBox, b: &BoundingBox) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut v = 1.0;
    for i in 0..a.dim() {
        let lo = a.lo()[i].max(b.lo()[i]);
        let hi = a.hi()[i].min(b.hi()[i]);
        if hi <= lo {
            return 0.0;
        }
        v *= hi - lo;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use iq_geometry::Vector;

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        }
    }

    #[test]
    fn empty_tree() {
        let t: RTree<u32> = RTree::new(2);
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        assert!(t
            .search_box(&BoundingBox::new(vec![0.0, 0.0], vec![1.0, 1.0]))
            .is_empty());
        assert!(t.nearest_k(&[0.0, 0.0], 3).is_empty());
        t.check_invariants().unwrap();
    }

    #[test]
    fn insert_and_window_query() {
        let mut t = RTree::new(2);
        for i in 0..100 {
            let x = (i % 10) as f64;
            let y = (i / 10) as f64;
            t.insert(vec![x, y], i);
        }
        assert_eq!(t.len(), 100);
        t.check_invariants().unwrap();
        let window = BoundingBox::new(vec![2.0, 2.0], vec![4.0, 4.0]);
        let mut found: Vec<i32> = t.search_box(&window).iter().map(|e| e.data).collect();
        found.sort_unstable();
        let mut expect: Vec<i32> = (0..100)
            .filter(|i| {
                let x = (i % 10) as f64;
                let y = (i / 10) as f64;
                (2.0..=4.0).contains(&x) && (2.0..=4.0).contains(&y)
            })
            .collect();
        expect.sort_unstable();
        assert_eq!(found, expect);
    }

    #[test]
    fn random_inserts_match_naive_window() {
        let mut rnd = lcg(7);
        let pts: Vec<Vec<f64>> = (0..500)
            .map(|_| vec![rnd() * 100.0, rnd() * 100.0, rnd() * 100.0])
            .collect();
        let mut t = RTree::new(3);
        for (i, p) in pts.iter().enumerate() {
            t.insert(p.clone(), i);
        }
        t.check_invariants().unwrap();
        for trial in 0..20 {
            let lo: Vec<f64> = (0..3).map(|_| rnd() * 80.0).collect();
            let hi: Vec<f64> = lo.iter().map(|l| l + rnd() * 30.0).collect();
            let w = BoundingBox::new(lo, hi);
            let mut got: Vec<usize> = t.search_box(&w).iter().map(|e| e.data).collect();
            got.sort_unstable();
            let mut want: Vec<usize> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| w.contains_point(p))
                .map(|(i, _)| i)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "window trial {trial}");
        }
    }

    #[test]
    fn slab_query_matches_naive() {
        let mut rnd = lcg(99);
        let pts: Vec<Vec<f64>> = (0..400)
            .map(|_| vec![rnd() * 2.0 - 1.0, rnd() * 2.0 - 1.0])
            .collect();
        let mut t = RTree::new(2);
        for (i, p) in pts.iter().enumerate() {
            t.insert(p.clone(), i);
        }
        for trial in 0..20 {
            let p = Vector::from([rnd() * 2.0 - 1.0, rnd() * 2.0 - 1.0]);
            let o = Vector::from([rnd() * 2.0 - 1.0, rnd() * 2.0 - 1.0]);
            let s = Vector::from([rnd() * 0.6 - 0.3, rnd() * 0.6 - 0.3]);
            let Some(slab) = Slab::affected_subspace(&p, &o, &s) else {
                continue;
            };
            let mut got: Vec<usize> = t.search_slab(&slab).iter().map(|e| e.data).collect();
            got.sort_unstable();
            let mut want: Vec<usize> = pts
                .iter()
                .enumerate()
                .filter(|(_, q)| slab.contains(q))
                .map(|(i, _)| i)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "slab trial {trial}");
        }
    }

    #[test]
    fn knn_matches_naive() {
        let mut rnd = lcg(1234);
        let pts: Vec<Vec<f64>> = (0..300).map(|_| vec![rnd() * 10.0, rnd() * 10.0]).collect();
        let mut t = RTree::new(2);
        for (i, p) in pts.iter().enumerate() {
            t.insert(p.clone(), i);
        }
        for trial in 0..10 {
            let q = vec![rnd() * 10.0, rnd() * 10.0];
            let k = 1 + (trial % 7);
            let got: Vec<f64> = t.nearest_k(&q, k).iter().map(|(_, d)| *d).collect();
            let mut dists: Vec<f64> = pts
                .iter()
                .map(|p| iq_geometry::vector::dist(&q, p))
                .collect();
            dists.sort_by(|a, b| a.total_cmp(b));
            assert_eq!(got.len(), k);
            for (a, b) in got.iter().zip(&dists) {
                assert!((a - b).abs() < 1e-9, "knn trial {trial}: {a} vs {b}");
            }
            // Results are sorted ascending.
            for w in got.windows(2) {
                assert!(w[0] <= w[1]);
            }
        }
    }

    #[test]
    fn knn_more_than_len() {
        let mut t = RTree::new(1);
        t.insert(vec![1.0], "a");
        t.insert(vec![2.0], "b");
        let got = t.nearest_k(&[0.0], 10);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0.data, "a");
    }

    #[test]
    fn remove_and_condense() {
        let mut rnd = lcg(42);
        let pts: Vec<Vec<f64>> = (0..200).map(|_| vec![rnd() * 10.0, rnd() * 10.0]).collect();
        let mut t = RTree::new(2);
        for (i, p) in pts.iter().enumerate() {
            t.insert(p.clone(), i);
        }
        // Remove every even-id point.
        for (i, p) in pts.iter().enumerate() {
            if i % 2 == 0 {
                let removed = t.remove(p, |&d| d == i);
                assert_eq!(removed, Some(i), "failed to remove {i}");
            }
        }
        assert_eq!(t.len(), 100);
        t.check_invariants().unwrap();
        // Remaining points still findable; removed ones are gone.
        let everything = BoundingBox::new(vec![-1.0, -1.0], vec![11.0, 11.0]);
        let mut left: Vec<usize> = t.search_box(&everything).iter().map(|e| e.data).collect();
        left.sort_unstable();
        let want: Vec<usize> = (0..200).filter(|i| i % 2 == 1).collect();
        assert_eq!(left, want);
    }

    #[test]
    fn remove_missing_returns_none() {
        let mut t = RTree::new(2);
        t.insert(vec![1.0, 1.0], 7);
        assert_eq!(t.remove(&[2.0, 2.0], |_| true), None);
        assert_eq!(t.remove(&[1.0, 1.0], |&d| d == 8), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn duplicate_points_distinct_payloads() {
        let mut t = RTree::new(2);
        t.insert(vec![1.0, 1.0], 1);
        t.insert(vec![1.0, 1.0], 2);
        t.insert(vec![1.0, 1.0], 3);
        let w = BoundingBox::point(&[1.0, 1.0]);
        assert_eq!(t.search_box(&w).len(), 3);
        assert_eq!(t.remove(&[1.0, 1.0], |&d| d == 2), Some(2));
        assert_eq!(t.search_box(&w).len(), 2);
    }

    #[test]
    fn iter_yields_everything() {
        let mut t = RTree::new(2);
        for i in 0..150 {
            t.insert(vec![i as f64, (i * 7 % 50) as f64], i);
        }
        let mut ids: Vec<i32> = t.iter().map(|e| e.data).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..150).collect::<Vec<_>>());
    }

    #[test]
    fn height_grows_logarithmically() {
        let mut t = RTree::with_capacity(2, 4);
        for i in 0..256 {
            t.insert(vec![(i % 16) as f64, (i / 16) as f64], i);
        }
        t.check_invariants().unwrap();
        assert!(t.height() >= 3, "expected multi-level tree");
        assert!(t.height() <= 10, "tree unreasonably deep: {}", t.height());
    }

    #[test]
    fn rstar_split_matches_naive_search() {
        let mut rnd = lcg(31);
        let pts: Vec<Vec<f64>> = (0..400).map(|_| vec![rnd() * 10.0, rnd() * 10.0]).collect();
        let mut t = RTree::with_split(2, 8, SplitAlgorithm::RStar);
        for (i, p) in pts.iter().enumerate() {
            t.insert(p.clone(), i);
        }
        t.check_invariants().unwrap();
        assert_eq!(t.split_algorithm(), SplitAlgorithm::RStar);
        for trial in 0..10 {
            let lo = vec![rnd() * 8.0, rnd() * 8.0];
            let hi: Vec<f64> = lo.iter().map(|l| l + rnd() * 3.0).collect();
            let w = BoundingBox::new(lo, hi);
            let mut got: Vec<usize> = t.search_box(&w).iter().map(|e| e.data).collect();
            got.sort_unstable();
            let mut want: Vec<usize> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| w.contains_point(p))
                .map(|(i, _)| i)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "rstar window trial {trial}");
        }
    }

    #[test]
    fn rstar_remove_keeps_invariants() {
        let mut rnd = lcg(77);
        let pts: Vec<Vec<f64>> = (0..200).map(|_| vec![rnd(), rnd(), rnd()]).collect();
        let mut t = RTree::with_split(3, 6, SplitAlgorithm::RStar);
        for (i, p) in pts.iter().enumerate() {
            t.insert(p.clone(), i);
        }
        for (i, p) in pts.iter().enumerate().take(150) {
            assert_eq!(t.remove(p, |&d| d == i), Some(i));
        }
        assert_eq!(t.len(), 50);
        t.check_invariants().unwrap();
    }

    #[test]
    fn rstar_produces_lower_overlap_on_skewed_data() {
        // Clustered data is where R*'s overlap-minimizing split shines;
        // verify both trees are correct and the R* tree's internal overlap
        // is no worse (structural smoke check via total child-box volume).
        let mut rnd = lcg(8);
        let pts: Vec<Vec<f64>> = (0..600)
            .map(|_| {
                let cx = if rnd() < 0.5 { 0.2 } else { 0.8 };
                vec![cx + rnd() * 0.05, cx + rnd() * 0.05]
            })
            .collect();
        let mut quad = RTree::with_split(2, 8, SplitAlgorithm::Quadratic);
        let mut star = RTree::with_split(2, 8, SplitAlgorithm::RStar);
        for (i, p) in pts.iter().enumerate() {
            quad.insert(p.clone(), i);
            star.insert(p.clone(), i);
        }
        quad.check_invariants().unwrap();
        star.check_invariants().unwrap();
        assert_eq!(quad.len(), star.len());
    }

    #[test]
    fn size_bytes_monotone() {
        let mut t = RTree::new(3);
        let empty = t.size_bytes();
        for i in 0..100 {
            t.insert(vec![i as f64, 0.0, 0.0], i);
        }
        assert!(t.size_bytes() > empty);
    }

    #[test]
    fn bulk_is_sealed_and_well_formed() {
        for n in [0usize, 1, 5, 16, 17, 100, 257, 1000] {
            let mut rnd = lcg(n as u64 + 3);
            let pts: Vec<Vec<f64>> = (0..n).map(|_| vec![rnd() * 10.0, rnd() * 10.0]).collect();
            let t = RTree::bulk(2, pts.iter().cloned().zip(0..n));
            assert!(t.is_sealed(), "n = {n}");
            assert_eq!(t.len(), n);
            t.check_invariants()
                .unwrap_or_else(|e| panic!("bulk n = {n}: {e}"));
            let mut ids: Vec<usize> = t.iter().map(|e| e.data).collect();
            ids.sort_unstable();
            assert_eq!(ids, (0..n).collect::<Vec<_>>(), "n = {n}");
        }
    }

    #[test]
    fn bulk_matches_naive_box_and_slab() {
        let mut rnd = lcg(55);
        let pts: Vec<Vec<f64>> = (0..500)
            .map(|_| vec![rnd() * 2.0 - 1.0, rnd() * 2.0 - 1.0])
            .collect();
        let t = RTree::bulk(2, pts.iter().cloned().zip(0..pts.len()));
        for trial in 0..20 {
            let lo = vec![rnd() * 1.6 - 1.0, rnd() * 1.6 - 1.0];
            let hi: Vec<f64> = lo.iter().map(|l| l + rnd() * 0.8).collect();
            let w = BoundingBox::new(lo, hi);
            let mut got: Vec<usize> = t.search_box(&w).iter().map(|e| e.data).collect();
            got.sort_unstable();
            let mut want: Vec<usize> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| w.contains_point(p))
                .map(|(i, _)| i)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "bulk window trial {trial}");

            let p = Vector::from([rnd() * 2.0 - 1.0, rnd() * 2.0 - 1.0]);
            let o = Vector::from([rnd() * 2.0 - 1.0, rnd() * 2.0 - 1.0]);
            let s = Vector::from([rnd() * 0.6 - 0.3, rnd() * 0.6 - 0.3]);
            let Some(slab) = Slab::affected_subspace(&p, &o, &s) else {
                continue;
            };
            let mut got: Vec<usize> = t.search_slab(&slab).iter().map(|e| e.data).collect();
            got.sort_unstable();
            let mut want: Vec<usize> = pts
                .iter()
                .enumerate()
                .filter(|(_, q)| slab.contains(q))
                .map(|(i, _)| i)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "bulk slab trial {trial}");
        }
    }

    #[test]
    fn optimize_preserves_every_read_path() {
        let mut rnd = lcg(17);
        let pts: Vec<Vec<f64>> = (0..300)
            .map(|_| vec![rnd() * 4.0, rnd() * 4.0, rnd() * 4.0])
            .collect();
        let mut dynamic = RTree::new(3);
        for (i, p) in pts.iter().enumerate() {
            dynamic.insert(p.clone(), i);
        }
        let mut sealed = dynamic.clone();
        sealed.optimize();
        assert!(sealed.is_sealed() && !dynamic.is_sealed());
        sealed.check_invariants().unwrap();
        assert_eq!(sealed.len(), dynamic.len());
        assert_eq!(sealed.height(), dynamic.height());
        assert_eq!(sealed.bbox().lo(), dynamic.bbox().lo());
        assert_eq!(sealed.bbox().hi(), dynamic.bbox().hi());
        // Sealing preserves the tree shape, so pruned scans must visit the
        // same entries in the same order, not merely the same set.
        for trial in 0..10 {
            let p = Vector::from([rnd() * 4.0, rnd() * 4.0, rnd() * 4.0]);
            let o = Vector::from([rnd() * 4.0, rnd() * 4.0, rnd() * 4.0]);
            let s = Vector::from([rnd() - 0.5, rnd() - 0.5, rnd() - 0.5]);
            let Some(slab) = Slab::affected_subspace(&p, &o, &s) else {
                continue;
            };
            let a: Vec<usize> = dynamic.search_slab(&slab).iter().map(|e| e.data).collect();
            let b: Vec<usize> = sealed.search_slab(&slab).iter().map(|e| e.data).collect();
            assert_eq!(a, b, "slab visit order trial {trial}");
            let a: Vec<usize> = dynamic
                .nearest_k(p.as_slice(), 7)
                .iter()
                .map(|(e, _)| e.data)
                .collect();
            let b: Vec<usize> = sealed
                .nearest_k(p.as_slice(), 7)
                .iter()
                .map(|(e, _)| e.data)
                .collect();
            assert_eq!(a, b, "knn trial {trial}");
        }
    }

    #[test]
    fn mutating_a_sealed_tree_unseals_once_and_stays_correct() {
        let mut rnd = lcg(23);
        let pts: Vec<Vec<f64>> = (0..200).map(|_| vec![rnd() * 10.0, rnd() * 10.0]).collect();
        let mut t = RTree::bulk(2, pts.iter().cloned().zip(0..pts.len()));
        assert!(t.is_sealed());
        t.insert(vec![5.0, 5.0], 999);
        assert!(!t.is_sealed());
        assert_eq!(t.len(), 201);
        t.check_invariants().unwrap();
        assert_eq!(t.remove(&[5.0, 5.0], |&d| d == 999), Some(999));
        assert_eq!(t.remove(&pts[0], |&d| d == 0), Some(0));
        t.check_invariants().unwrap();
        let everything = BoundingBox::new(vec![-1.0, -1.0], vec![11.0, 11.0]);
        let mut left: Vec<usize> = t.search_box(&everything).iter().map(|e| e.data).collect();
        left.sort_unstable();
        assert_eq!(left, (1..200).collect::<Vec<_>>());
        // Re-seal and verify the survivors again through the arena path.
        t.optimize();
        t.check_invariants().unwrap();
        let mut left: Vec<usize> = t.search_box(&everything).iter().map(|e| e.data).collect();
        left.sort_unstable();
        assert_eq!(left, (1..200).collect::<Vec<_>>());
    }

    #[test]
    fn bulk_empty_and_degenerate() {
        let t: RTree<u32> = RTree::bulk(2, Vec::new());
        assert!(t.is_empty() && t.is_sealed());
        assert_eq!(t.height(), 1);
        t.check_invariants().unwrap();
        assert!(t.nearest_k(&[0.0, 0.0], 3).is_empty());
        // Heavily duplicated points still pack into a valid tree.
        let dup = RTree::bulk(2, (0..100).map(|i| (vec![1.0, 1.0], i)));
        dup.check_invariants().unwrap();
        assert_eq!(dup.search_box(&BoundingBox::point(&[1.0, 1.0])).len(), 100);
    }
}
