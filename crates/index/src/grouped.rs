//! A forest of per-group R-trees over query points.
//!
//! The fast ESE path (see `iq-core::ese`) groups query points by the object
//! whose score defines their top-k admission threshold. A strategy's
//! affected subspace is a *different slab per threshold object*, so slab
//! retrieval must be scoped to one group at a time: this structure keeps an
//! R-tree per group and routes slab/window queries accordingly.
//!
//! Groups are identified by a dense `usize` key supplied by the caller
//! (typically an object id). Small groups fall back to a plain vector scan —
//! below [`TREE_THRESHOLD`] points, walking an R-tree costs more than the
//! scan it would save.

use crate::rtree::RTree;
use iq_geometry::Slab;
use std::collections::BTreeMap;

/// Below this population a group stores its points in a flat list.
pub const TREE_THRESHOLD: usize = 32;

#[derive(Debug, Clone)]
enum GroupStore {
    Flat(Vec<(Vec<f64>, usize)>),
    Tree(RTree<usize>),
}

/// Per-group spatial index over `(point, payload)` pairs.
#[derive(Debug, Clone)]
pub struct GroupedQueryIndex {
    dim: usize,
    groups: BTreeMap<usize, GroupStore>,
    len: usize,
    /// Whether [`GroupedQueryIndex::seal`] has been called with no mutation
    /// since: the explicit read-only state the serving layer relies on.
    sealed: bool,
    /// How many times a mutation hit a sealed index (each one pays the
    /// slow unseal path of the affected group's R-tree).
    unseal_events: u64,
}

impl GroupedQueryIndex {
    /// Creates an empty index for `dim`-dimensional points.
    pub fn new(dim: usize) -> Self {
        GroupedQueryIndex {
            dim,
            groups: BTreeMap::new(),
            len: 0,
            sealed: false,
            unseal_events: 0,
        }
    }

    /// Builds the index from an iterator of `(group, point, payload)`.
    pub fn build(dim: usize, items: impl IntoIterator<Item = (usize, Vec<f64>, usize)>) -> Self {
        let mut idx = Self::new(dim);
        for (g, p, d) in items {
            idx.insert(g, p, d);
        }
        idx
    }

    /// Total number of indexed points across all groups.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Iterates over the group keys in ascending order.
    pub fn group_keys(&self) -> impl Iterator<Item = usize> + '_ {
        self.groups.keys().copied()
    }

    /// Records that a mutation is about to happen. A mutation against a
    /// sealed index is legal but slow (the affected group's arena R-tree
    /// converts back to pointer form), so the transition is counted rather
    /// than silent — callers that care (the serving layer's engine cache)
    /// surface [`GroupedQueryIndex::unseal_events`] as a metric.
    fn note_mutation(&mut self) {
        if self.sealed {
            self.sealed = false;
            self.unseal_events += 1;
        }
    }

    /// Inserts a point into `group`, upgrading the group to an R-tree when
    /// it crosses [`TREE_THRESHOLD`].
    pub fn insert(&mut self, group: usize, point: Vec<f64>, payload: usize) {
        assert_eq!(point.len(), self.dim, "point dimension mismatch");
        self.note_mutation();
        let dim = self.dim;
        let store = self
            .groups
            .entry(group)
            .or_insert_with(|| GroupStore::Flat(Vec::new()));
        match store {
            GroupStore::Flat(v) => {
                v.push((point, payload));
                if v.len() > TREE_THRESHOLD {
                    let items = std::mem::take(v);
                    *store = GroupStore::Tree(RTree::bulk(dim, items));
                }
            }
            GroupStore::Tree(t) => t.insert(point, payload),
        }
        self.len += 1;
    }

    /// Removes one point with the given payload from `group`.
    /// Returns `true` when something was removed.
    pub fn remove(&mut self, group: usize, point: &[f64], payload: usize) -> bool {
        if !self.groups.contains_key(&group) {
            return false;
        }
        self.note_mutation();
        let Some(store) = self.groups.get_mut(&group) else {
            return false;
        };
        let removed = match store {
            GroupStore::Flat(v) => {
                if let Some(pos) = v.iter().position(|(p, d)| p == point && *d == payload) {
                    v.swap_remove(pos);
                    true
                } else {
                    false
                }
            }
            GroupStore::Tree(t) => t.remove(point, |&d| d == payload).is_some(),
        };
        if removed {
            self.len -= 1;
            let empty = match store {
                GroupStore::Flat(v) => v.is_empty(),
                GroupStore::Tree(t) => t.is_empty(),
            };
            if empty {
                self.groups.remove(&group);
            }
        }
        removed
    }

    /// Visits the payloads of all points of `group` inside the slab.
    pub fn visit_slab(&self, group: usize, slab: &Slab, visit: &mut impl FnMut(usize)) {
        match self.groups.get(&group) {
            None => {}
            Some(GroupStore::Flat(v)) => {
                for (p, d) in v {
                    if slab.contains(p) {
                        visit(*d);
                    }
                }
            }
            Some(GroupStore::Tree(t)) => {
                t.visit_slab(slab, &mut |e| visit(e.data));
            }
        }
    }

    /// Collects payloads of all points of `group` inside the slab.
    pub fn search_slab(&self, group: usize, slab: &Slab) -> Vec<usize> {
        let mut out = Vec::new();
        self.visit_slab(group, slab, &mut |d| out.push(d));
        out
    }

    /// Tolerance-widened slab visit: points within `tol` of either boundary
    /// are also reported (see `RTree::visit_slab_tol`).
    pub fn visit_slab_tol(
        &self,
        group: usize,
        slab: &Slab,
        tol: f64,
        visit: &mut impl FnMut(usize),
    ) {
        match self.groups.get(&group) {
            None => {}
            Some(GroupStore::Flat(v)) => {
                for (p, d) in v {
                    if slab.contains_tol(p, tol) {
                        visit(*d);
                    }
                }
            }
            Some(GroupStore::Tree(t)) => {
                t.visit_slab_tol(slab, tol, &mut |e| visit(e.data));
            }
        }
    }

    /// Visits every `(group, payload)` pair in ascending group order
    /// (deterministic: the visit order feeds `evaluate_changes` output).
    pub fn visit_all(&self, visit: &mut impl FnMut(usize, &[f64], usize)) {
        for (&g, store) in &self.groups {
            match store {
                GroupStore::Flat(v) => {
                    for (p, d) in v {
                        visit(g, p, *d);
                    }
                }
                GroupStore::Tree(t) => {
                    for e in t.iter() {
                        visit(g, &e.point, e.data);
                    }
                }
            }
        }
    }

    /// Seals every tree-backed group into its arena form (see
    /// [`RTree::optimize`]) and enters the explicit sealed state. Call when
    /// the forest becomes read-only — e.g. once
    /// `iq-core::ese::EvalContext` finishes grouping — so slab scans run
    /// over flat node arrays. A later [`GroupedQueryIndex::insert`] /
    /// [`GroupedQueryIndex::remove`] still works, but leaves the sealed
    /// state and bumps [`GroupedQueryIndex::unseal_events`], so the slow
    /// path is observable instead of silent.
    pub fn seal(&mut self) {
        for store in self.groups.values_mut() {
            if let GroupStore::Tree(t) = store {
                t.optimize();
            }
        }
        self.sealed = true;
    }

    /// Alias of [`GroupedQueryIndex::seal`], kept for parity with
    /// [`RTree::optimize`].
    pub fn optimize(&mut self) {
        self.seal();
    }

    /// Whether the index is in the explicit sealed (read-only) state.
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    /// How many mutations have hit a sealed index over its lifetime.
    pub fn unseal_events(&self) -> u64 {
        self.unseal_events
    }

    /// Rough in-memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.groups
            .values()
            .map(|s| match s {
                GroupStore::Flat(v) => v.len() * (self.dim * 8 + 8) + 48,
                GroupStore::Tree(t) => t.size_bytes() + 48,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iq_geometry::Vector;

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        }
    }

    #[test]
    fn empty_index() {
        let idx = GroupedQueryIndex::new(2);
        assert!(idx.is_empty());
        assert_eq!(idx.num_groups(), 0);
    }

    #[test]
    fn insert_and_group_routing() {
        let mut idx = GroupedQueryIndex::new(2);
        idx.insert(0, vec![0.1, 0.2], 100);
        idx.insert(1, vec![0.3, 0.4], 101);
        idx.insert(0, vec![0.5, 0.6], 102);
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.num_groups(), 2);
        let mut seen = Vec::new();
        idx.visit_all(&mut |g, _, d| seen.push((g, d)));
        seen.sort_unstable();
        assert_eq!(seen, vec![(0, 100), (0, 102), (1, 101)]);
    }

    #[test]
    fn flat_to_tree_upgrade_preserves_search() {
        let mut rnd = lcg(5);
        let mut idx = GroupedQueryIndex::new(2);
        let pts: Vec<Vec<f64>> = (0..200).map(|_| vec![rnd(), rnd()]).collect();
        for (i, p) in pts.iter().enumerate() {
            idx.insert(7, p.clone(), i);
        }
        assert_eq!(idx.len(), 200);
        let p = Vector::from([0.8, 0.1]);
        let o = Vector::from([0.1, 0.8]);
        let s = Vector::from([-0.4, 0.2]);
        let slab = Slab::affected_subspace(&p, &o, &s).unwrap();
        let mut got = idx.search_slab(7, &slab);
        got.sort_unstable();
        let mut want: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, q)| slab.contains(q))
            .map(|(i, _)| i)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
        // Unknown group returns nothing.
        assert!(idx.search_slab(99, &slab).is_empty());
    }

    #[test]
    fn remove_shrinks_and_drops_groups() {
        let mut idx = GroupedQueryIndex::new(1);
        idx.insert(3, vec![1.0], 10);
        idx.insert(3, vec![2.0], 11);
        assert!(idx.remove(3, &[1.0], 10));
        assert!(!idx.remove(3, &[1.0], 10)); // already gone
        assert_eq!(idx.len(), 1);
        assert!(idx.remove(3, &[2.0], 11));
        assert_eq!(idx.num_groups(), 0);
        assert!(!idx.remove(99, &[0.0], 0));
    }

    #[test]
    fn seal_state_guard_counts_unseals() {
        let mut idx = GroupedQueryIndex::new(1);
        assert!(!idx.is_sealed());
        for i in 0..50 {
            idx.insert(0, vec![i as f64], i);
        }
        assert_eq!(idx.unseal_events(), 0, "building is not an unseal");
        idx.seal();
        assert!(idx.is_sealed());
        // Reads keep the seal.
        let slab = Slab::affected_subspace(
            &Vector::from([1.0]),
            &Vector::from([0.5]),
            &Vector::from([-0.2]),
        )
        .unwrap();
        let _ = idx.search_slab(0, &slab);
        assert!(idx.is_sealed());
        // A write against the sealed index is recorded, not silent.
        idx.insert(0, vec![99.0], 99);
        assert!(!idx.is_sealed());
        assert_eq!(idx.unseal_events(), 1);
        // Further writes while unsealed are free.
        idx.insert(0, vec![100.0], 100);
        assert_eq!(idx.unseal_events(), 1);
        // Re-seal, then a remove unseals again.
        idx.seal();
        assert!(idx.remove(0, &[99.0], 99));
        assert_eq!(idx.unseal_events(), 2);
        // A remove that misses every group does not count as a mutation.
        idx.seal();
        assert!(!idx.remove(42, &[0.0], 0));
        assert!(idx.is_sealed());
        assert_eq!(idx.unseal_events(), 2);
    }

    #[test]
    fn remove_from_upgraded_group() {
        let mut idx = GroupedQueryIndex::new(1);
        for i in 0..100 {
            idx.insert(0, vec![i as f64], i);
        }
        for i in 0..100 {
            assert!(idx.remove(0, &[i as f64], i), "remove {i}");
        }
        assert!(idx.is_empty());
        assert_eq!(idx.num_groups(), 0);
    }
}
