//! A bloom filter over arbitrary hashable keys.
//!
//! §4.3 of the paper: *"we implement a bloom filter to index the subdomains
//! based on their boundaries, allowing us to quickly check if a subdomain
//! uses an intersection as its boundary"*. The filter maps boundary keys
//! (intersection identifiers, or `(subdomain, intersection)` pairs) to a bit
//! array; membership tests never miss a stored key (no false negatives) and
//! rarely report an absent one (tunable false-positive rate).
//!
//! Hashing uses the standard double-hashing scheme `h_i = h1 + i·h2` over
//! two independent 64-bit hashes, which preserves the asymptotic
//! false-positive rate of `k` independent hash functions.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::marker::PhantomData;

/// A bloom filter for keys of type `K`.
#[derive(Debug, Clone)]
pub struct BloomFilter<K: Hash> {
    bits: Vec<u64>,
    num_bits: usize,
    num_hashes: u32,
    inserted: usize,
    _key: PhantomData<K>,
}

impl<K: Hash> BloomFilter<K> {
    /// Creates a filter sized for `expected_items` at the target
    /// `false_positive_rate` (clamped to `(1e-9, 0.5)`).
    pub fn new(expected_items: usize, false_positive_rate: f64) -> Self {
        let n = expected_items.max(1) as f64;
        let p = false_positive_rate.clamp(1e-9, 0.5);
        // Optimal sizing: m = -n ln p / (ln 2)^2, k = (m/n) ln 2.
        let m = (-(n * p.ln()) / (std::f64::consts::LN_2.powi(2))).ceil() as usize;
        let m = m.max(64);
        let k = ((m as f64 / n) * std::f64::consts::LN_2).round().max(1.0) as u32;
        BloomFilter {
            bits: vec![0u64; m.div_ceil(64)],
            num_bits: m,
            num_hashes: k,
            inserted: 0,
            _key: PhantomData,
        }
    }

    fn hashes(&self, key: &K) -> (u64, u64) {
        let mut h1 = DefaultHasher::new();
        key.hash(&mut h1);
        let a = h1.finish();
        let mut h2 = DefaultHasher::new();
        0xb10f_f11e_u64.hash(&mut h2);
        key.hash(&mut h2);
        let b = h2.finish() | 1; // odd stride avoids degenerate cycling
        (a, b)
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: &K) {
        let (a, b) = self.hashes(key);
        for i in 0..self.num_hashes {
            let bit = (a.wrapping_add(b.wrapping_mul(i as u64)) % self.num_bits as u64) as usize;
            self.bits[bit / 64] |= 1u64 << (bit % 64);
        }
        self.inserted += 1;
    }

    /// Probabilistic membership test: `false` means *definitely absent*;
    /// `true` means present with probability ≈ `1 − fp_rate`.
    pub fn may_contain(&self, key: &K) -> bool {
        let (a, b) = self.hashes(key);
        (0..self.num_hashes).all(|i| {
            let bit = (a.wrapping_add(b.wrapping_mul(i as u64)) % self.num_bits as u64) as usize;
            self.bits[bit / 64] & (1u64 << (bit % 64)) != 0
        })
    }

    /// Number of keys inserted so far.
    pub fn len(&self) -> usize {
        self.inserted
    }

    /// True when no keys have been inserted.
    pub fn is_empty(&self) -> bool {
        self.inserted == 0
    }

    /// Size of the bit array in bits.
    pub fn num_bits(&self) -> usize {
        self.num_bits
    }

    /// Number of hash probes per operation.
    pub fn num_hashes(&self) -> u32 {
        self.num_hashes
    }

    /// Clears all bits, forgetting every inserted key.
    pub fn clear(&mut self) {
        self.bits.iter_mut().for_each(|w| *w = 0);
        self.inserted = 0;
    }

    /// In-memory footprint in bytes (bit array only).
    pub fn size_bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::new(1000, 0.01);
        for i in 0..1000u32 {
            f.insert(&i);
        }
        for i in 0..1000u32 {
            assert!(f.may_contain(&i), "false negative for {i}");
        }
        assert_eq!(f.len(), 1000);
    }

    #[test]
    fn false_positive_rate_reasonable() {
        let mut f = BloomFilter::new(1000, 0.01);
        for i in 0..1000u32 {
            f.insert(&i);
        }
        let fps = (10_000..60_000u32).filter(|i| f.may_contain(i)).count();
        let rate = fps as f64 / 50_000.0;
        assert!(rate < 0.05, "false positive rate too high: {rate}");
    }

    #[test]
    fn empty_filter_rejects_everything_probable() {
        let f: BloomFilter<u64> = BloomFilter::new(100, 0.01);
        assert!(f.is_empty());
        assert!((0..1000u64).all(|i| !f.may_contain(&i)));
    }

    #[test]
    fn tuple_keys() {
        // The use-case from §4.3: (subdomain id, intersection id) pairs.
        let mut f: BloomFilter<(usize, usize)> = BloomFilter::new(100, 0.01);
        f.insert(&(3, 17));
        f.insert(&(5, 2));
        assert!(f.may_contain(&(3, 17)));
        assert!(f.may_contain(&(5, 2)));
        // Swapped pairs are distinct keys, but a bloom filter may report
        // false positives — querying them must merely not panic.
        let _ = f.may_contain(&(17, 3));
        let _ = f.may_contain(&(2, 5));
    }

    #[test]
    fn clear_resets() {
        let mut f = BloomFilter::new(10, 0.01);
        f.insert(&1u8);
        assert!(f.may_contain(&1u8));
        f.clear();
        assert!(!f.may_contain(&1u8));
        assert!(f.is_empty());
    }

    #[test]
    fn sizing_sane() {
        let f: BloomFilter<u32> = BloomFilter::new(10_000, 0.01);
        // ~9.6 bits/key at 1% and ~7 hashes.
        assert!(f.num_bits() > 80_000 && f.num_bits() < 120_000);
        assert!(f.num_hashes() >= 5 && f.num_hashes() <= 9);
        assert!(f.size_bytes() >= f.num_bits() / 8);
    }

    #[test]
    fn degenerate_params_clamped() {
        let f: BloomFilter<u32> = BloomFilter::new(0, 2.0);
        assert!(f.num_bits() >= 64);
        assert!(f.num_hashes() >= 1);
    }
}
