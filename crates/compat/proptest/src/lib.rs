//! Offline, dependency-free subset of the `proptest` 1.x API.
//!
//! Part of the workspace's hermetic-build compatibility layer (see
//! `crates/compat/README.md`). Implements the surface the workspace's
//! property tests use: the [`Strategy`] trait with `prop_map`, numeric
//! range and tuple strategies, `prop::collection::vec`, `prop::option::of`,
//! `prop::num::f64::NORMAL`, `any::<T>()`, the [`proptest!`] test macro
//! with `#![proptest_config]`, and the `prop_assert*` / `prop_assume!` /
//! `prop_oneof!` macros.
//!
//! Deliberate simplifications versus upstream: cases are generated from a
//! deterministic per-test seed (override with `PROPTEST_CASES` /
//! `PROPTEST_SEED`), there is **no shrinking** — a failing case reports its
//! inputs via the assertion message instead — and `prop_assume!` rejections
//! simply redraw, capped at 100× the case budget.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Errors a test-case body can raise (via the `prop_assert*` macros).
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the test fails.
    Fail(String),
    /// The case was rejected by `prop_assume!`; redraw and retry.
    Reject(String),
}

impl TestCaseError {
    /// Creates a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Creates a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Result type of a generated test-case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The random source handed to strategies.
pub type TestRng = StdRng;

/// A recipe for generating values of one type.
///
/// Upstream proptest separates strategies from value trees to support
/// shrinking; this subset generates values directly.
pub trait Strategy {
    /// The generated type.
    type Value: core::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: core::fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Chains a dependent strategy: `f` builds a second-stage strategy
    /// from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects generated values failing `f` (redraws, bounded).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f, whence }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: core::fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 1000 consecutive draws", self.whence);
    }
}

/// A type-erased strategy (cheaply cloneable).
#[derive(Clone)]
pub struct BoxedStrategy<T>(std::rc::Rc<dyn Fn(&mut TestRng) -> T>);

impl<T: core::fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + core::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Full-range uniform strategy for primitives, `any::<T>()`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`Arbitrary::arbitrary`].
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy behind `any::<T>()` for primitives.
#[derive(Debug, Clone, Copy)]
pub struct AnyPrimitive<T>(core::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen::<$t>()
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(core::marker::PhantomData)
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

macro_rules! impl_strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_strategy_for_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_strategy_for_tuple!(A: 0);
impl_strategy_for_tuple!(A: 0, B: 1);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Sizes accepted by [`vec`]: a fixed `usize` or a `usize` range.
    pub trait IntoSizeRange {
        /// Draws a concrete length.
        fn draw(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn draw(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn draw(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn draw(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for `Vec`s of `element` values with length drawn from
    /// `size`.
    pub fn vec<S: Strategy, Z: IntoSizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: IntoSizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! Option strategies (`prop::option::of`).

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// `None` one quarter of the time, `Some(inner)` otherwise (matching
    /// upstream's default weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod num {
    //! Numeric class strategies (`prop::num::f64::NORMAL`).

    pub mod f64 {
        //! Strategies over `f64` float classes.

        use crate::{Strategy, TestRng};
        use rand::Rng;

        /// Generates normal (non-zero, non-subnormal, finite) `f64`s of
        /// either sign across the full exponent range.
        #[derive(Debug, Clone, Copy)]
        pub struct NormalF64;

        /// The normal-class strategy instance.
        pub const NORMAL: NormalF64 = NormalF64;

        impl Strategy for NormalF64 {
            type Value = f64;
            fn generate(&self, rng: &mut TestRng) -> f64 {
                loop {
                    // Random sign/exponent/mantissa, rejecting non-normals.
                    let bits: u64 = rng.gen::<u64>();
                    let v = f64::from_bits(bits);
                    if v.is_normal() {
                        return v;
                    }
                }
            }
        }
    }
}

/// Deterministic per-test seed: FNV-1a over the test's module path and
/// name, XOR the optional `PROPTEST_SEED` override.
pub fn seed_for(test_path: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let env = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0);
    h ^ env
}

/// Number of cases to run: `PROPTEST_CASES` env override, else the config.
pub fn cases_for(config: &ProptestConfig) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse::<u32>().ok())
        .unwrap_or(config.cases)
}

/// Runs one property test: draws inputs, runs the body, retries
/// rejections, panics with the case description on failure.
pub fn run_property_test<F: FnMut(&mut TestRng) -> TestCaseResult>(
    test_path: &str,
    config: &ProptestConfig,
    mut body: F,
) {
    let cases = cases_for(config);
    let seed = seed_for(test_path);
    let mut accepted = 0u32;
    let mut rejected = 0u64;
    let max_rejects = (cases as u64) * 100;
    let mut case_idx = 0u64;
    while accepted < cases {
        // Decorrelated per-case stream: deterministic, independent of how
        // many draws previous cases consumed.
        let mut rng = TestRng::seed_from_u64(seed ^ case_idx.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        case_idx += 1;
        match body(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "{test_path}: too many prop_assume! rejections \
                         ({rejected} rejects for {accepted}/{cases} accepted cases)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "{test_path}: property failed at case #{accepted} \
                     (seed {seed}, case stream {}):\n{msg}",
                    case_idx - 1
                );
            }
        }
    }
}

/// The property-test macro: each `fn name(input in strategy, ..) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_body! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: `config` is bound outside the
/// per-function repetition so it may be referenced inside it.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                $crate::run_property_test(
                    concat!(module_path!(), "::", stringify!($name)),
                    &config,
                    |rng| {
                        $(let $pat = $crate::Strategy::generate(&($strat), rng);)+
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "msg {}", args..)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}: {}",
                stringify!($cond), file!(), line!(), format!($($fmt)+)
            )));
        }
    };
}

/// `prop_assert_eq!(a, b)` with optional message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "`{}` == `{}` failed: {:?} != {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "`{}` == `{}` failed: {:?} != {:?}: {}",
            stringify!($a), stringify!($b), a, b, format!($($fmt)+)
        );
    }};
}

/// `prop_assert_ne!(a, b)` with optional message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "`{}` != `{}` failed: both are {:?}",
            stringify!($a), stringify!($b), a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "`{}` != `{}` failed: both are {:?}: {}",
            stringify!($a), stringify!($b), a, format!($($fmt)+)
        );
    }};
}

/// `prop_assume!(cond)` — rejects the case (redraw) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(format!($($fmt)+)));
        }
    };
}

/// `prop_oneof![w1 => strat1, w2 => strat2, ..]` (or unweighted) — picks a
/// branch by weight, then draws from it. All branches must generate the
/// same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Weighted union of same-typed strategies (see [`prop_oneof!`]).
pub struct OneOf<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> OneOf<T> {
    /// Builds the union; weights must sum to a positive value.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        OneOf { arms, total }
    }
}

impl<T: core::fmt::Debug> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut roll = rng.gen_range(0..self.total);
        for (w, strat) in &self.arms {
            if roll < *w {
                return strat.generate(rng);
            }
            roll -= w;
        }
        unreachable!("weighted selection out of range")
    }
}

/// The `proptest::prelude` equivalent: everything tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };

    /// The `prop::` module path used by `prop::collection::vec` etc.
    pub mod prop {
        pub use crate::collection;
        pub use crate::num;
        pub use crate::option;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_tuples_and_vec_generate_in_bounds() {
        let mut rng = <crate::TestRng as rand::SeedableRng>::seed_from_u64(1);
        for _ in 0..200 {
            let v = crate::Strategy::generate(&(0i32..8), &mut rng);
            assert!((0..8).contains(&v));
            let (a, b) = crate::Strategy::generate(&((0usize..4), (0.5f64..1.0)), &mut rng);
            assert!(a < 4 && (0.5..1.0).contains(&b));
            let xs = crate::Strategy::generate(&prop::collection::vec(0u32..10, 3..6), &mut rng);
            assert!((3..6).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn normal_f64_is_normal() {
        let mut rng = <crate::TestRng as rand::SeedableRng>::seed_from_u64(2);
        for _ in 0..500 {
            let x = crate::Strategy::generate(&prop::num::f64::NORMAL, &mut rng);
            assert!(x.is_normal());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(x in 0u32..100, ys in prop::collection::vec(0i32..10, 0..5)) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_eq!(ys.len(), ys.iter().count());
            prop_assert_ne!(x, 13);
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![3 => (0i32..5).prop_map(|x| x * 2), 1 => 100i32..105]) {
            prop_assert!((v >= 100 && v < 105) || (v % 2 == 0 && v < 10));
        }
    }
}
