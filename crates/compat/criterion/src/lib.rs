//! Offline, dependency-free subset of the `criterion` 0.5 API.
//!
//! Part of the workspace's hermetic-build compatibility layer (see
//! `crates/compat/README.md`). Provides the benchmarking surface the
//! workspace's `benches/` use — [`Criterion`], benchmark groups,
//! [`BenchmarkId`], `iter` / `iter_batched`, [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — backed by a simple
//! wall-clock sampler: warm-up, auto-calibrated iteration batching, and a
//! median / mean ± stddev report per benchmark.
//!
//! No HTML reports, statistical regression, or plotting; each measurement
//! prints one line, which is all the workspace's EXPERIMENTS.md workflow
//! consumes.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost (accepted, not acted on: the
/// sampler always times the routine per batch, excluding setup).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter display value.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_id.into(), parameter) }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The timing harness handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    /// Collected per-iteration times from the most recent run.
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` repeatedly and records per-iteration samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch calibration: aim for ~2 ms per sample so cheap
        // routines aren't dominated by timer resolution.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed();
        let batch = if once < Duration::from_micros(100) {
            (Duration::from_millis(2).as_nanos() / once.as_nanos().max(1)).clamp(1, 100_000)
                as usize
        } else {
            1
        };
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t0.elapsed() / batch as u32);
        }
    }

    /// Times `routine` over inputs produced by `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        self.samples.clear();
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2];
    let mean_ns = samples.iter().map(|d| d.as_nanos() as f64).sum::<f64>() / samples.len() as f64;
    let var = samples
        .iter()
        .map(|d| {
            let x = d.as_nanos() as f64 - mean_ns;
            x * x
        })
        .sum::<f64>()
        / samples.len() as f64;
    let mean = Duration::from_nanos(mean_ns as u64);
    let sd = Duration::from_nanos(var.sqrt() as u64);
    println!(
        "{name:<50} time: [median {} | mean {} ± {}]  ({} samples)",
        fmt_duration(median),
        fmt_duration(mean),
        fmt_duration(sd),
        samples.len()
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        self.criterion.run_one(&full, self.sample_size, f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (report lines were already printed per benchmark).
    pub fn finish(&mut self) {}
}

/// The benchmark manager: filtering, sampling, and reporting.
pub struct Criterion {
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` / `cargo test --benches -- --test`:
        // keep name-looking args as a substring filter, ignore flags.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && !a.ends_with(".rs"));
        Criterion { filter, default_sample_size: 20 }
    }
}

impl Criterion {
    /// Overrides the default sample count.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = n.max(2);
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup { criterion: self, name: name.into(), sample_size }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let full = id.into_id();
        let n = self.default_sample_size;
        self.run_one(&full, n, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, sample_size: usize, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher { sample_size, samples: Vec::new() };
        f(&mut b);
        report(name, &b.samples);
    }

    /// Final summary hook (upstream prints a report here; samples were
    /// already reported per benchmark).
    pub fn final_summary(&mut self) {}
}

/// Declares a group of benchmark functions, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test --benches` passes `--test`: smoke-run quickly.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        let mut c = Criterion { filter: None, default_sample_size: 3 };
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        let mut ran = 0;
        group.bench_with_input(BenchmarkId::new("inc", 1), &1u64, |b, &x| {
            b.iter(|| x + 1);
            ran += 1;
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput)
        });
        group.finish();
        assert_eq!(ran, 1);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion { filter: Some("nomatch".into()), default_sample_size: 2 };
        let mut ran = false;
        c.bench_function("something_else", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(!ran);
    }
}
