//! Offline, dependency-free subset of the `rand` 0.8 API.
//!
//! This workspace pins its external dependencies behind `[patch.crates-io]`
//! so the build is hermetic (see `crates/compat/README.md`). Only the
//! surface the workspace actually uses is provided: the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits, [`rngs::StdRng`], uniform
//! `gen`/`gen_range`/`gen_bool`, and slice `choose`/`shuffle`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the
//! ChaCha-based `StdRng` of the real crate, so seeded sequences differ
//! from upstream `rand`. Workspace tests assert statistical properties and
//! contracts, never golden random values, so the swap is safe there.

#![warn(missing_docs)]

/// The core of a random number generator: a source of random words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-length byte array in the real crate).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Types that [`Rng::gen`] can produce uniformly.
pub trait Standard: Sized {
    /// Draws one uniform value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types drawable uniformly from a half-open or inclusive range.
///
/// The per-type sampling logic lives here; [`SampleRange`] has exactly one
/// blanket impl per range shape so type inference can flow from the call
/// site into integer literals (as with the real crate's design).
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_range_single<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range_single<R: RngCore + ?Sized>(
                lo: Self, hi: Self, inclusive: bool, rng: &mut R,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + (uniform_u64(rng, span + 1) as $t)
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                    let span = (hi - lo) as u64;
                    lo + (uniform_u64(rng, span) as $t)
                }
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range_single<R: RngCore + ?Sized>(
                lo: Self, hi: Self, inclusive: bool, rng: &mut R,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i64).wrapping_add(uniform_u64(rng, span + 1) as i64) as $t
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                    let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                    (lo as i64).wrapping_add(uniform_u64(rng, span) as i64) as $t
                }
            }
        }
    )*};
}
impl_sample_uniform_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range_single<R: RngCore + ?Sized>(
                lo: Self, hi: Self, inclusive: bool, rng: &mut R,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                }
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one uniform value inside the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_single(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range_single(lo, hi, true, rng)
    }
}

/// Rejection-free-enough uniform draw in `[0, span)` (`span > 0`).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Widening-multiply (Lemire) with one rejection round for exactness.
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// User-facing random value generation.
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T` (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform value inside `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the ChaCha `StdRng` of the real crate — seeded sequences differ
    /// from upstream, but pass the same statistical smoke tests.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    //! Sequence-related extensions (`choose`, `shuffle`).

    use super::{Rng, RngCore};

    /// Random selection and permutation over slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

/// `rand::prelude` — the common imports.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_sequences_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_f64_is_unit_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_covers_and_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.gen_range(0..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.gen_range(3..=7u32);
            assert!((3..=7).contains(&v));
            let f = rng.gen_range(-1.5..2.5f64);
            assert!((-1.5..2.5).contains(&f));
            let i = rng.gen_range(-10..-2i32);
            assert!((-10..-2).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn slice_choose_and_shuffle() {
        use super::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(5);
        let items = [1, 2, 3, 4];
        for _ in 0..50 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }
}
