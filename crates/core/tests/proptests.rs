//! Property-based tests for the improvement-query core: the indexed/ESE
//! fast paths must agree with exhaustive oracles on arbitrary instances,
//! and the searches must respect their contracts.

use iq_core::baselines::RtaEvaluator;
use iq_core::update::{add_object, add_query, remove_query, UpdateStats};
use iq_core::{
    max_hit_iq, min_cost_iq, EuclideanCost, ExecPolicy, HitEvaluator, Instance, IqReport,
    QueryIndex, SearchOptions, StrategyBounds, TargetEvaluator, TopKQuery,
};
use iq_geometry::Vector;
use proptest::prelude::*;

/// Byte-exact comparison key for an [`IqReport`]: every float is compared
/// by its bit pattern, so "parallel ≡ sequential" means identical down to
/// the last rounding, not merely approximately equal.
fn report_bits(r: &IqReport) -> (Vec<u64>, u64, usize, usize, usize, usize, bool) {
    (
        r.strategy.as_slice().iter().map(|v| v.to_bits()).collect(),
        r.cost.to_bits(),
        r.hits_before,
        r.hits_after,
        r.iterations,
        r.candidates_evaluated,
        r.achieved,
    )
}

fn coord() -> impl Strategy<Value = f64> {
    // Lattice coordinates: ties and boundary cases occur constantly.
    (0i32..8).prop_map(|x| x as f64 / 8.0)
}

fn instance() -> impl Strategy<Value = Instance> {
    (
        prop::collection::vec(prop::collection::vec(coord(), 3), 3..25),
        prop::collection::vec((prop::collection::vec(coord(), 3), 1usize..4), 1..30),
    )
        .prop_map(|(objects, qs)| {
            let queries = qs.into_iter().map(|(w, k)| TopKQuery::new(w, k)).collect();
            Instance::new(objects, queries).unwrap()
        })
}

fn strategy() -> impl Strategy<Value = Vector> {
    prop::collection::vec((-4i32..4).prop_map(|x| x as f64 / 8.0), 3).prop_map(Vector::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ese_fast_equals_ground_truth(inst in instance(), s in strategy(), tsel in any::<usize>()) {
        let target = tsel % inst.num_objects();
        let index = QueryIndex::build(&inst);
        let ev = TargetEvaluator::new(&inst, &index, target);
        prop_assert_eq!(ev.hit_count(), inst.hit_count_naive(target));
        let fast = ev.evaluate(&s);
        let improved = inst.with_strategy(target, &s);
        prop_assert_eq!(fast, improved.hit_count_naive(target));
        prop_assert_eq!(ev.evaluate_pairwise(&index, &s), fast);
    }

    #[test]
    fn ese_changes_report_is_exact(inst in instance(), s in strategy(), tsel in any::<usize>()) {
        let target = tsel % inst.num_objects();
        let index = QueryIndex::build(&inst);
        let ev = TargetEvaluator::new(&inst, &index, target);
        let changes = ev.evaluate_changes(&s);
        let improved = inst.with_strategy(target, &s);
        // Every reported change is real, and no real change is missed.
        let mut reported = vec![None; inst.num_queries()];
        for (q, was, now) in &changes {
            prop_assert!(was != now);
            reported[*q] = Some(*now);
        }
        for (q, &rep) in reported.iter().enumerate() {
            let was = iq_topk::naive::hits(inst.objects(), &inst.queries()[q], target);
            let now = iq_topk::naive::hits(improved.objects(), &improved.queries()[q], target);
            match rep {
                Some(r) => {
                    prop_assert_eq!(r, now, "query {} wrong direction", q);
                    prop_assert_ne!(was, now, "query {} reported but unchanged", q);
                }
                None => prop_assert_eq!(was, now, "query {} change missed", q),
            }
        }
    }

    #[test]
    fn rta_evaluator_agrees_with_ese(inst in instance(), s in strategy(), tsel in any::<usize>()) {
        let target = tsel % inst.num_objects();
        let index = QueryIndex::build(&inst);
        let ese = TargetEvaluator::new(&inst, &index, target);
        let mut rta = RtaEvaluator::new(&inst, target);
        prop_assert_eq!(ese.hit_count(), HitEvaluator::hit_count(&rta));
        prop_assert_eq!(ese.evaluate(&s), rta.evaluate(&s));
    }

    #[test]
    fn min_cost_contract(inst in instance(), tsel in any::<usize>(), extra in 1usize..6) {
        let target = tsel % inst.num_objects();
        let index = QueryIndex::build(&inst);
        let before = inst.hit_count_naive(target);
        let tau = (before + extra).min(inst.num_queries());
        let r = min_cost_iq(
            &inst, &index, target, tau,
            &EuclideanCost, &StrategyBounds::unbounded(3), &SearchOptions::default(),
        );
        // Reported hits must be truthful.
        let improved = inst.with_strategy(target, &r.strategy);
        prop_assert_eq!(improved.hit_count_naive(target), r.hits_after);
        prop_assert_eq!(r.hits_before, before);
        if r.achieved {
            prop_assert!(r.hits_after >= tau);
        }
        // Cost consistent with the strategy.
        prop_assert!((r.cost - r.strategy.norm()).abs() < 1e-9);
    }

    #[test]
    fn max_hit_contract(inst in instance(), tsel in any::<usize>(), budget in 0.0f64..1.0) {
        let target = tsel % inst.num_objects();
        let index = QueryIndex::build(&inst);
        let before = inst.hit_count_naive(target);
        let r = max_hit_iq(
            &inst, &index, target, budget,
            &EuclideanCost, &StrategyBounds::unbounded(3), &SearchOptions::default(),
        );
        let improved = inst.with_strategy(target, &r.strategy);
        prop_assert_eq!(improved.hit_count_naive(target), r.hits_after);
        prop_assert!(r.hits_after >= before, "max-hit lost hits");
        prop_assert!(r.cost <= budget + 1e-6, "cost {} over budget {}", r.cost, budget);
    }

    #[test]
    fn multi_target_union_reports_truthful(
        inst in instance(),
        t1 in any::<usize>(),
        t2 in any::<usize>(),
        extra in 1usize..5,
    ) {
        use iq_core::multi::{multi_min_cost_iq, TargetSpec};
        let n = inst.num_objects();
        let (a, b) = (t1 % n, t2 % n);
        prop_assume!(a != b);
        let index = QueryIndex::build(&inst);
        let cost = EuclideanCost;
        let specs = [
            TargetSpec { target: a, cost_fn: &cost, bounds: StrategyBounds::unbounded(3) },
            TargetSpec { target: b, cost_fn: &cost, bounds: StrategyBounds::unbounded(3) },
        ];
        let union_before = (0..inst.num_queries())
            .filter(|&q| {
                [a, b].iter().any(|&t| {
                    iq_topk::naive::hits(inst.objects(), &inst.queries()[q], t)
                })
            })
            .count();
        let tau = (union_before + extra).min(inst.num_queries());
        let r = multi_min_cost_iq(&inst, &index, &specs, tau, 1000);
        prop_assert_eq!(r.hits_before, union_before);
        // Ground-truth union after applying both strategies.
        let mut improved = inst.clone();
        improved.apply_strategy(a, &r.strategies[0]).unwrap();
        improved.apply_strategy(b, &r.strategies[1]).unwrap();
        let union_after = (0..improved.num_queries())
            .filter(|&q| {
                [a, b].iter().any(|&t| {
                    iq_topk::naive::hits(improved.objects(), &improved.queries()[q], t)
                })
            })
            .count();
        prop_assert_eq!(union_after, r.hits_after);
        // Total cost is the sum of the per-target costs.
        let sum: f64 = r.costs.iter().sum();
        prop_assert!((sum - r.total_cost).abs() < 1e-9);
        if r.achieved {
            prop_assert!(r.hits_after >= tau);
        }
    }

    #[test]
    fn parallel_search_equals_sequential(
        inst in instance(),
        tsel in any::<usize>(),
        extra in 1usize..6,
        budget in 0.0f64..1.0,
    ) {
        let target = tsel % inst.num_objects();
        let bounds = StrategyBounds::unbounded(3);
        let cost = EuclideanCost;

        // Sequential reference: one thread everywhere (index build, ESE
        // context construction, candidate scoring).
        let seq = SearchOptions {
            exec: ExecPolicy::sequential(),
            ..SearchOptions::default()
        };
        let index = QueryIndex::build_with(&inst, &seq.exec);
        let tau = (inst.hit_count_naive(target) + extra).min(inst.num_queries());
        let mc_ref = min_cost_iq(&inst, &index, target, tau, &cost, &bounds, &seq);
        let mh_ref = max_hit_iq(&inst, &index, target, budget, &cost, &bounds, &seq);

        for threads in [2usize, 3, 8] {
            let par = SearchOptions {
                exec: ExecPolicy::with_threads(threads),
                ..SearchOptions::default()
            };
            let pindex = QueryIndex::build_with(&inst, &par.exec);
            let mc = min_cost_iq(&inst, &pindex, target, tau, &cost, &bounds, &par);
            let mh = max_hit_iq(&inst, &pindex, target, budget, &cost, &bounds, &par);
            prop_assert_eq!(
                report_bits(&mc), report_bits(&mc_ref),
                "min-cost report drifted at {} threads", threads
            );
            prop_assert_eq!(
                report_bits(&mh), report_bits(&mh_ref),
                "max-hit report drifted at {} threads", threads
            );
        }
    }

    #[test]
    fn updates_equal_rebuild(
        inst in instance(),
        new_queries in prop::collection::vec((prop::collection::vec(coord(), 3), 1usize..4), 0..6),
        new_objects in prop::collection::vec(prop::collection::vec(coord(), 3), 0..4),
        removals in prop::collection::vec(any::<usize>(), 0..4),
    ) {
        let kprime = QueryIndex::build(&inst).kprime();
        let mut live = inst.clone();
        let mut index = QueryIndex::build(&live);
        let mut stats = UpdateStats::default();
        for (w, k) in new_queries {
            if k < kprime {
                add_query(&mut live, &mut index, TopKQuery::new(w, k), &mut stats).unwrap();
            }
        }
        for attrs in new_objects {
            add_object(&mut live, &mut index, attrs, &mut stats).unwrap();
        }
        for r in removals {
            if live.num_queries() > 1 {
                let qid = r % live.num_queries();
                remove_query(&mut live, &mut index, qid);
            }
        }
        index.check_invariants(&live).map_err(TestCaseError::fail)?;
        // A fresh rebuild may choose a smaller K' (removals can shrink the
        // max k); the maintained index is a refinement — compare prefixes.
        let fresh = QueryIndex::build(&live);
        let common = index.kprime().min(fresh.kprime());
        for q in 0..live.num_queries() {
            let a = &index.toplist_of(q)[..common.min(index.toplist_of(q).len())];
            let b = &fresh.toplist_of(q)[..common.min(fresh.toplist_of(q).len())];
            prop_assert_eq!(a, b, "query {} stale", q);
        }
    }
}
