//! Iteration-order regression tests for the BTreeMap-backed stores.
//!
//! The subdomain index and the grouped evaluation forest used to hold
//! their entries in `HashMap`s, whose per-instance `RandomState` seed made
//! the order of `evaluate_changes` output differ between two builds of the
//! *same* instance — even within one process. These tests pin the fix:
//! two independently constructed builds must produce byte-identical change
//! sequences, in the same order, every time.

use iq_core::{Instance, QueryIndex, TargetEvaluator, TopKQuery};
use iq_geometry::Vector;

fn lcg(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed;
    move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / (u32::MAX as f64)
    }
}

fn instance(dim: usize, objects: usize, queries: usize) -> Instance {
    let mut rng = lcg(42);
    let objs: Vec<Vec<f64>> = (0..objects)
        .map(|_| (0..dim).map(|_| rng()).collect())
        .collect();
    let qs: Vec<TopKQuery> = (0..queries)
        .map(|_| TopKQuery::new((0..dim).map(|_| rng()).collect(), 2))
        .collect();
    Instance::new(objs, qs).unwrap()
}

/// Two independent index builds over the same instance must emit the exact
/// same ordered change list for the same strategy. This is what the
/// `hash-iter-order` lint protects: the grouped forest's visit order flows
/// straight into `evaluate_changes` output (and from there into the greedy
/// search's tie-breaking).
#[test]
fn evaluate_changes_order_is_build_independent() {
    let inst = instance(3, 60, 40);
    let target = 7;
    // Ranking is ascending-score, so a strategy that lowers every attribute
    // improves the target's rank; pick the first probe that flips hits.
    let s = [-0.6, -0.3, -0.9, 0.5]
        .iter()
        .map(|&m| Vector::from([m, m, m]))
        .find(|s| {
            let index = QueryIndex::build(&inst);
            let ev = TargetEvaluator::new(&inst, &index, target);
            !ev.evaluate_changes(s).is_empty()
        })
        .expect("some probe strategy must flip hits");

    let reference: Vec<(usize, bool, bool)> = {
        let index = QueryIndex::build(&inst);
        let ev = TargetEvaluator::new(&inst, &index, target);
        ev.evaluate_changes(&s)
    };

    for _ in 0..5 {
        let index = QueryIndex::build(&inst);
        let ev = TargetEvaluator::new(&inst, &index, target);
        assert_eq!(
            ev.evaluate_changes(&s),
            reference,
            "two builds of the same instance disagreed on change order"
        );
    }
}

/// Subdomain assignment must be identical across independent builds: same
/// subdomain ids for every query, verified with the structural invariant
/// check run on both.
#[test]
fn subdomain_assignment_is_build_independent() {
    let inst = instance(3, 40, 60);
    let a = QueryIndex::build(&inst);
    let b = QueryIndex::build(&inst);
    a.check_invariants(&inst).unwrap();
    b.check_invariants(&inst).unwrap();
    assert_eq!(a.num_subdomains(), b.num_subdomains());
    for q in 0..inst.num_queries() {
        assert_eq!(
            a.subdomain_of(q),
            b.subdomain_of(q),
            "query {q} assigned differently across two builds"
        );
    }
    for (sa, sb) in a.subdomains().iter().zip(b.subdomains()) {
        assert_eq!(sa.queries, sb.queries);
        assert_eq!(sa.toplist, sb.toplist);
    }
}
