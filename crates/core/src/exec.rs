//! Deterministic parallel execution for the evaluation/search core.
//!
//! Everything in this crate that fans out across threads — subdomain
//! signature computation ([`crate::subdomain::QueryIndex::build_with`]),
//! evaluation-context construction
//! ([`crate::ese::EvalContext::new_with`]), and greedy candidate scoring
//! ([`crate::search`]) — routes through [`ExecPolicy::map`], which
//! guarantees **output order equals input order regardless of thread
//! count**. Combined with the read-only shared state / per-thread scratch
//! split (see [`crate::ese::EvalContext`] / [`crate::ese::EvalCursor`]),
//! this makes every search result byte-identical at any `IQ_THREADS`
//! setting: parallelism changes wall-clock time, never answers.
//!
//! The pool is `std::thread::scope`-based — no dependencies, no global
//! state, threads live only for the duration of one `map` call. Work is
//! handed out as contiguous chunks claimed from an atomic counter, so the
//! schedule adapts to load imbalance while the *merge* stays stable: each
//! chunk records its start offset and results are reassembled in offset
//! order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How many threads the evaluation/search core may use.
///
/// The default ([`ExecPolicy::from_env`]) honours the `IQ_THREADS`
/// environment variable and otherwise uses the machine's available
/// parallelism. `ExecPolicy { threads: 1 }` is exact sequential execution
/// (no threads are spawned at all).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecPolicy {
    /// Worker-thread count; clamped to at least 1.
    pub threads: usize,
}

impl Default for ExecPolicy {
    fn default() -> Self {
        ExecPolicy::from_env()
    }
}

impl ExecPolicy {
    /// `IQ_THREADS` if set (any unparsable / zero value falls back), else
    /// `std::thread::available_parallelism()`.
    pub fn from_env() -> Self {
        let threads = std::env::var("IQ_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        ExecPolicy { threads }
    }

    /// An explicit thread count (clamped to ≥ 1).
    pub fn with_threads(threads: usize) -> Self {
        ExecPolicy {
            threads: threads.max(1),
        }
    }

    /// Strictly sequential execution.
    pub fn sequential() -> Self {
        ExecPolicy { threads: 1 }
    }

    /// Divides the machine's parallelism across `concurrent` executors
    /// that each run their own searches side by side — the serving layer's
    /// worker pool hook. With `W` request workers on a `C`-core box, each
    /// worker gets `max(1, C / W)` threads, so the pool as a whole never
    /// oversubscribes the machine while a lone request still fans out.
    /// Results are byte-identical at any setting (see the module docs), so
    /// this only shapes latency/throughput, never answers. `IQ_THREADS`
    /// caps the numerator like everywhere else.
    pub fn share_across(concurrent: usize) -> Self {
        let total = Self::from_env().threads();
        ExecPolicy {
            threads: (total / concurrent.max(1)).max(1),
        }
    }

    /// The effective worker count.
    pub fn threads(&self) -> usize {
        self.threads.max(1)
    }

    /// Applies `f` to every item and returns the results **in input
    /// order**, whatever the thread count. `f` receives `(index, &item)`.
    ///
    /// Determinism: the only scheduling freedom is which worker claims
    /// which chunk; results are keyed by chunk offset and reassembled in
    /// offset order, so the output is identical to the sequential
    /// `items.iter().enumerate().map(f).collect()`.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.map_init(|| (), items, |(), i, t| f(i, t))
    }

    /// [`ExecPolicy::map`] with per-worker scratch state: `init()` runs
    /// once on each worker thread (once total in the sequential path) and
    /// the resulting value is passed mutably to every `f` call that worker
    /// executes. This is how the scoring paths reuse a scores buffer
    /// across items without per-call allocation and without sharing
    /// mutable state between threads.
    ///
    /// Determinism: the scratch is an accumulator-free workspace — `f`'s
    /// result must depend only on `(index, item)`, never on which worker
    /// ran it or what the scratch held before. Given that, the offset-
    /// ordered merge makes the output identical to the sequential
    /// `items.iter().enumerate().map(...)`, whatever the thread count.
    pub fn map_init<T, R, S, I, F>(&self, init: I, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &T) -> R + Sync,
    {
        let threads = self.threads().min(items.len().max(1));
        if threads <= 1 || items.len() <= 1 {
            let mut scratch = init();
            return items
                .iter()
                .enumerate()
                .map(|(i, t)| f(&mut scratch, i, t))
                .collect();
        }

        // Small chunks (≈4 per worker) absorb load imbalance; the atomic
        // counter hands them out first-come-first-served.
        let chunk = items.len().div_ceil(threads * 4).max(1);
        let next = AtomicUsize::new(0);
        let parts: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::new());

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut scratch = init();
                    loop {
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= items.len() {
                            break;
                        }
                        let end = (start + chunk).min(items.len());
                        let results: Vec<R> = items[start..end]
                            .iter()
                            .enumerate()
                            .map(|(off, t)| f(&mut scratch, start + off, t))
                            .collect();
                        parts.lock().unwrap().push((start, results));
                    }
                });
            }
        });

        let mut parts = parts.into_inner().unwrap();
        parts.sort_unstable_by_key(|&(start, _)| start);
        let mut out = Vec::with_capacity(items.len());
        for (_, mut chunk_results) in parts {
            out.append(&mut chunk_results);
        }
        debug_assert_eq!(out.len(), items.len());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order_at_any_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1usize, 2, 3, 8, 64] {
            let got = ExecPolicy::with_threads(threads).map(&items, |_, &x| x * x + 1);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn map_passes_global_indices() {
        let items = vec!["a"; 100];
        for threads in [1usize, 4] {
            let got = ExecPolicy::with_threads(threads).map(&items, |i, _| i);
            assert_eq!(got, (0..100).collect::<Vec<_>>(), "threads = {threads}");
        }
    }

    #[test]
    fn map_init_scratch_reuse_is_order_invariant() {
        // The scratch buffer is reused across items within a worker; the
        // output must still be input-ordered and value-identical at every
        // thread count.
        let items: Vec<usize> = (0..123).collect();
        let expect: Vec<f64> = items.iter().map(|&x| (x * 3) as f64).collect();
        for threads in [1usize, 2, 7, 16] {
            let got = ExecPolicy::with_threads(threads).map_init(
                Vec::new,
                &items,
                |buf: &mut Vec<f64>, i, &x| {
                    assert_eq!(i, x);
                    buf.clear();
                    buf.extend([x as f64; 3]);
                    buf.iter().sum::<f64>()
                },
            );
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn map_handles_empty_and_tiny_inputs() {
        let pol = ExecPolicy::with_threads(8);
        assert_eq!(pol.map(&[] as &[u8], |_, &x| x), Vec::<u8>::new());
        assert_eq!(pol.map(&[7u8], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn with_threads_clamps_zero() {
        assert_eq!(ExecPolicy::with_threads(0).threads(), 1);
    }

    #[test]
    fn from_env_reads_iq_threads() {
        // Env mutation is process-global: restore afterwards, and keep
        // every IQ_THREADS-dependent assertion inside this one test so
        // parallel test threads never race on the variable.
        let prev = std::env::var("IQ_THREADS").ok();
        std::env::set_var("IQ_THREADS", "3");
        assert_eq!(ExecPolicy::from_env().threads(), 3);
        std::env::set_var("IQ_THREADS", "not-a-number");
        assert!(ExecPolicy::from_env().threads() >= 1);
        // share_across divides the IQ_THREADS budget without oversubscribing.
        std::env::set_var("IQ_THREADS", "8");
        assert_eq!(ExecPolicy::share_across(1).threads(), 8);
        assert_eq!(ExecPolicy::share_across(2).threads(), 4);
        assert_eq!(ExecPolicy::share_across(3).threads(), 2);
        assert_eq!(ExecPolicy::share_across(8).threads(), 1);
        assert_eq!(ExecPolicy::share_across(100).threads(), 1);
        assert_eq!(ExecPolicy::share_across(0).threads(), 8);
        match prev {
            Some(v) => std::env::set_var("IQ_THREADS", v),
            None => std::env::remove_var("IQ_THREADS"),
        }
    }
}
