//! Greedy improvement-strategy search: Algorithm 3 (Min-Cost IQ) and
//! Algorithm 4 (Max-Hit IQ).
//!
//! Both algorithms iterate the same candidate-generation step: for every
//! query the target does not yet hit, solve the single-constraint
//! subproblem (Eqs. 13–14) for the cheapest strategy hitting *that* query,
//! score each candidate with ESE, and commit the candidate with the best
//! cost-per-hit ratio. Min-Cost stops at `τ` hits; Max-Hit stops when the
//! budget `β` is exhausted (with a final fill pass over the remaining
//! affordable candidates, Algorithm 4 lines 13–17).
//!
//! ## Deterministic parallel candidate scoring
//!
//! Scoring the candidate set is each iteration's hot loop, and every
//! candidate is scored against the *same* pre-commit state — it is
//! embarrassingly parallel. Evaluators whose scoring path is read-only
//! (ESE: [`crate::ese::EvalContext`] + a frozen [`crate::ese::EvalCursor`])
//! expose it via [`HitEvaluator::scorer`], and the search fans the
//! candidate set out across [`SearchOptions::exec`] threads. Results come
//! back **in candidate order** ([`crate::exec::ExecPolicy::map`]) and the
//! committed winner is chosen by the same first-strictly-better rule, so
//! reports are byte-identical at any thread count. Evaluators that need
//! `&mut self` to score (RTA's temporary object mutation) simply return
//! `None` and keep the sequential path — same candidates, same counters.
//!
//! Each score bottoms out in the flat evaluation core (DESIGN.md §9): the
//! ESE path re-scores slab hits through [`iq_geometry::FlatMatrix`] row
//! kernels over arena-sealed R-trees, bit-identical to the scalar path,
//! so the parallel fan-out and the kernel rewiring compose without
//! touching expected outputs.

use crate::cost::{CostFunction, StrategyBounds};
use crate::ese::TargetEvaluator;
use crate::exec::ExecPolicy;
use crate::model::{ImprovementStrategy, Instance};
use crate::subdomain::QueryIndex;
use iq_geometry::Vector;

/// Tuning knobs shared by both greedy searches.
#[derive(Debug, Clone)]
pub struct SearchOptions {
    /// Hard cap on greedy iterations (defense against oscillation).
    pub max_iterations: usize,
    /// Stop after this many consecutive iterations without a hit-count
    /// improvement (the local-optimum escape hatch the paper acknowledges).
    pub max_stalls: usize,
    /// When set, only the `cap` cheapest per-query candidates are scored
    /// with a full `H(p + s)` evaluation each iteration (the subproblem
    /// solutions themselves are still computed for every unhit query —
    /// they are closed-form and cheap). `None` is the literal Algorithm
    /// 3/4 behaviour; benchmarks set a uniform cap so the slow comparator
    /// evaluators stay tractable at large `|Q|` without changing the
    /// relative comparison.
    pub candidate_cap: Option<usize>,
    /// Thread policy for candidate scoring (and, via the library entry
    /// points, evaluator construction). Results are independent of the
    /// thread count — see the module docs. Defaults to `IQ_THREADS` /
    /// available parallelism.
    pub exec: ExecPolicy,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            max_iterations: 10_000,
            max_stalls: 3,
            candidate_cap: None,
            exec: ExecPolicy::from_env(),
        }
    }
}

/// The outcome of an improvement query.
#[derive(Debug, Clone)]
pub struct IqReport {
    /// The cumulative strategy found (`p' = p + strategy`).
    pub strategy: ImprovementStrategy,
    /// `Cost(strategy)` under the supplied cost function.
    pub cost: f64,
    /// Hit count before improvement.
    pub hits_before: usize,
    /// Hit count after applying the strategy.
    pub hits_after: usize,
    /// Greedy iterations executed.
    pub iterations: usize,
    /// Candidate strategies evaluated with ESE (work metric).
    pub candidates_evaluated: usize,
    /// Whether the improvement goal was met (`≥ τ` hits, or budget-bounded
    /// maximisation completed).
    pub achieved: bool,
}

impl IqReport {
    /// The paper's unified quality metric: cost per hit query (lower is
    /// better). Infinite when nothing is hit.
    pub fn cost_per_hit(&self) -> f64 {
        if self.hits_after == 0 {
            f64::INFINITY
        } else {
            self.cost / self.hits_after as f64
        }
    }
}

/// The evaluation interface the greedy searches run against. The paper's
/// Efficient-IQ scheme plugs in [`TargetEvaluator`] (subdomain-indexed ESE);
/// the RTA-IQ baseline plugs in an RTA-backed evaluator — the search is
/// byte-for-byte the same, which is why the two schemes return strategies
/// of identical quality (§6.3.2).
pub trait HitEvaluator {
    /// The instance being improved.
    fn instance(&self) -> &Instance;
    /// Current `H(p + applied)`.
    fn hit_count(&self) -> usize;
    /// Whether query `q` is currently hit.
    fn is_hit(&self, q: usize) -> bool;
    /// Right-hand side of the hit condition `w_q · s ≤ rhs` for query `q`,
    /// or `None` when trivially hit.
    fn required_rhs(&self, q: usize) -> Option<f64>;
    /// `H(p + applied + s)` without committing.
    fn evaluate(&mut self, s: &ImprovementStrategy) -> usize;
    /// Commits `s` on top of the already-applied strategy.
    fn apply(&mut self, s: &ImprovementStrategy);
    /// The cumulative committed strategy.
    fn applied(&self) -> &ImprovementStrategy;
    /// A thread-safe view for scoring candidates against the *current*
    /// (pre-commit) state, when the evaluator supports one. `Some` opts
    /// the evaluator into parallel candidate scoring; the default `None`
    /// keeps the sequential `evaluate` path (required by evaluators whose
    /// scoring mutates internal buffers, like RTA's).
    fn scorer(&self) -> Option<&dyn CandidateScorer> {
        None
    }
}

/// Read-only candidate scoring: `H(p + applied + s)` from `&self`, safe to
/// call from many threads at once. See [`HitEvaluator::scorer`].
pub trait CandidateScorer: Sync {
    /// `H(p + applied + s)` without committing.
    fn score(&self, s: &ImprovementStrategy) -> usize;
}

impl HitEvaluator for TargetEvaluator<'_> {
    fn instance(&self) -> &Instance {
        TargetEvaluator::instance(self)
    }
    fn hit_count(&self) -> usize {
        TargetEvaluator::hit_count(self)
    }
    fn is_hit(&self, q: usize) -> bool {
        TargetEvaluator::is_hit(self, q)
    }
    fn required_rhs(&self, q: usize) -> Option<f64> {
        TargetEvaluator::required_rhs(self, q)
    }
    fn evaluate(&mut self, s: &ImprovementStrategy) -> usize {
        TargetEvaluator::evaluate(self, s)
    }
    fn apply(&mut self, s: &ImprovementStrategy) {
        TargetEvaluator::apply(self, s)
    }
    fn applied(&self) -> &ImprovementStrategy {
        TargetEvaluator::applied(self)
    }
    fn scorer(&self) -> Option<&dyn CandidateScorer> {
        Some(self)
    }
}

impl CandidateScorer for TargetEvaluator<'_> {
    fn score(&self, s: &ImprovementStrategy) -> usize {
        // Fast ESE is `&self` against the shared EvalContext + the frozen
        // cursor: concurrent calls are safe and bit-identical.
        TargetEvaluator::evaluate(self, s)
    }
}

struct Candidate {
    query: usize,
    strategy: Vector,
    cost_inc: f64,
    hits_after: usize,
}

/// Generates the candidate set `S` of one greedy iteration: per unhit
/// query, the cheapest strategy that hits it, scored with the evaluator.
/// With `candidate_cap` set, only the cheapest `cap` subproblem solutions
/// receive a hit-count evaluation.
fn candidates<E: HitEvaluator>(
    ev: &mut E,
    cost_fn: &dyn CostFunction,
    rem_bounds: &StrategyBounds,
    opts: &SearchOptions,
    evaluated: &mut usize,
) -> Vec<Candidate> {
    let m = ev.instance().num_queries();
    let mut solved: Vec<(usize, Vector, f64)> = Vec::new();
    for q in 0..m {
        if ev.is_hit(q) {
            continue;
        }
        let Some(rhs) = ev.required_rhs(q) else {
            continue;
        };
        let weights = ev.instance().queries()[q].weights.clone();
        let Some((s, c)) = cost_fn.min_cost_to_satisfy(&weights, rhs, rem_bounds) else {
            continue;
        };
        solved.push((q, s, c));
    }
    if let Some(cap) = opts.candidate_cap {
        if solved.len() > cap {
            solved.sort_by(|a, b| a.2.total_cmp(&b.2));
            solved.truncate(cap);
        }
    }
    // Count work before scoring so the metric is identical under the
    // parallel and sequential paths (one evaluation per candidate, always).
    *evaluated += solved.len();
    let hits = score_all(ev, &solved, &opts.exec);
    solved
        .into_iter()
        .zip(hits)
        .map(|((query, strategy, cost_inc), hits_after)| Candidate {
            query,
            strategy,
            cost_inc,
            hits_after,
        })
        .collect()
}

/// Scores every solved candidate, in order. Fans out across
/// `exec` threads when the evaluator exposes a read-only scorer;
/// otherwise scores sequentially through `&mut` evaluate. Both paths
/// return hit counts positionally aligned with `solved`.
fn score_all<E: HitEvaluator>(
    ev: &mut E,
    solved: &[(usize, Vector, f64)],
    exec: &ExecPolicy,
) -> Vec<usize> {
    if let Some(scorer) = ev.scorer() {
        return exec.map(solved, |_, (_, s, _)| scorer.score(s));
    }
    solved.iter().map(|(_, s, _)| ev.evaluate(s)).collect()
}

fn best_ratio(cands: &[Candidate]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, c) in cands.iter().enumerate() {
        let ratio = if c.hits_after == 0 {
            f64::INFINITY
        } else {
            c.cost_inc / c.hits_after as f64
        };
        if best.is_none_or(|(_, b)| ratio < b) {
            best = Some((i, ratio));
        }
    }
    best.map(|(i, _)| i)
}

/// **Algorithm 3** — Min-Cost IQ: the cheapest strategy making the target
/// hit at least `tau` queries, via the subdomain-indexed ESE evaluator.
pub fn min_cost_iq(
    instance: &Instance,
    index: &QueryIndex,
    target: usize,
    tau: usize,
    cost_fn: &dyn CostFunction,
    bounds: &StrategyBounds,
    opts: &SearchOptions,
) -> IqReport {
    let mut ev = TargetEvaluator::new_with(instance, index, target, &opts.exec);
    run_min_cost(&mut ev, tau, cost_fn, bounds, opts)
}

/// Algorithm 3 over any [`HitEvaluator`] implementation.
pub fn run_min_cost<E: HitEvaluator>(
    ev: &mut E,
    tau: usize,
    cost_fn: &dyn CostFunction,
    bounds: &StrategyBounds,
    opts: &SearchOptions,
) -> IqReport {
    let hits_before = ev.hit_count();
    let mut iterations = 0;
    let mut evaluated = 0;
    let mut stalls = 0;

    while ev.hit_count() < tau && iterations < opts.max_iterations {
        iterations += 1;
        let rem = bounds.remaining(ev.applied());
        let cands = candidates(ev, cost_fn, &rem, opts, &mut evaluated);
        let Some(best) = best_ratio(&cands) else {
            break; // no query can be hit within the remaining bounds
        };
        if cands[best].hits_after <= tau {
            // Apply the best-ratio candidate and keep iterating
            // (Algorithm 3 lines 10–11).
            let before = ev.hit_count();
            let s = cands[best].strategy.clone();
            ev.apply(&s);
            if ev.hit_count() <= before {
                stalls += 1;
                if stalls >= opts.max_stalls {
                    break;
                }
            } else {
                stalls = 0;
            }
        } else {
            // Overshoot: take the cheapest candidate that reaches τ
            // (Algorithm 3 line 13) and stop.
            let winner = cands
                .iter()
                .filter(|c| c.hits_after >= tau)
                .min_by(|a, b| a.cost_inc.total_cmp(&b.cost_inc))
                .expect("best candidate exceeds tau, so the filter is non-empty");
            let s = winner.strategy.clone();
            ev.apply(&s);
            break;
        }
    }

    let strategy = ev.applied().clone();
    IqReport {
        cost: cost_fn.cost(&strategy),
        hits_before,
        hits_after: ev.hit_count(),
        iterations,
        candidates_evaluated: evaluated,
        achieved: ev.hit_count() >= tau,
        strategy,
    }
}

/// **Algorithm 4** — Max-Hit IQ: the strategy hitting the most queries with
/// total (incrementally charged) cost at most `budget`, via the
/// subdomain-indexed ESE evaluator.
pub fn max_hit_iq(
    instance: &Instance,
    index: &QueryIndex,
    target: usize,
    budget: f64,
    cost_fn: &dyn CostFunction,
    bounds: &StrategyBounds,
    opts: &SearchOptions,
) -> IqReport {
    let mut ev = TargetEvaluator::new_with(instance, index, target, &opts.exec);
    run_max_hit(&mut ev, budget, cost_fn, bounds, opts)
}

/// Algorithm 4 over any [`HitEvaluator`] implementation.
pub fn run_max_hit<E: HitEvaluator>(
    ev: &mut E,
    budget: f64,
    cost_fn: &dyn CostFunction,
    bounds: &StrategyBounds,
    opts: &SearchOptions,
) -> IqReport {
    let hits_before = ev.hit_count();
    let mut iterations = 0;
    let mut evaluated = 0;
    let mut spent = 0.0f64;
    let mut stalls = 0;

    while spent < budget && iterations < opts.max_iterations {
        iterations += 1;
        let rem = bounds.remaining(ev.applied());
        let mut cands = candidates(ev, cost_fn, &rem, opts, &mut evaluated);
        let Some(best) = best_ratio(&cands) else {
            break;
        };
        if spent + cands[best].cost_inc <= budget {
            let before = ev.hit_count();
            let s = cands[best].strategy.clone();
            spent += cands[best].cost_inc;
            ev.apply(&s);
            if ev.hit_count() <= before {
                stalls += 1;
                if stalls >= opts.max_stalls {
                    break;
                }
            } else {
                stalls = 0;
            }
        } else {
            // Budget cannot cover the best candidate: final fill pass over
            // the rest, cheapest first (Algorithm 4 lines 13–17).
            cands.sort_by(|a, b| a.cost_inc.total_cmp(&b.cost_inc));
            for c in cands {
                if spent + c.cost_inc <= budget && !ev.is_hit(c.query) {
                    spent += c.cost_inc;
                    ev.apply(&c.strategy);
                }
            }
            break;
        }
    }

    let strategy = ev.applied().clone();
    IqReport {
        cost: cost_fn.cost(&strategy),
        hits_before,
        hits_after: ev.hit_count(),
        iterations,
        candidates_evaluated: evaluated,
        achieved: true,
        strategy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::EuclideanCost;
    use crate::model::TopKQuery;

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        }
    }

    fn random_instance(n: usize, m: usize, d: usize, kmax: usize, seed: u64) -> Instance {
        let mut rnd = lcg(seed);
        let objects: Vec<Vec<f64>> = (0..n).map(|_| (0..d).map(|_| rnd()).collect()).collect();
        let queries: Vec<TopKQuery> = (0..m)
            .map(|_| {
                let w: Vec<f64> = (0..d).map(|_| rnd()).collect();
                TopKQuery::new(w, 1 + (rnd() * kmax as f64) as usize)
            })
            .collect();
        Instance::new(objects, queries).unwrap()
    }

    fn defaults() -> (EuclideanCost, SearchOptions) {
        (EuclideanCost, SearchOptions::default())
    }

    #[test]
    fn min_cost_reaches_tau_and_is_consistent() {
        let inst = random_instance(40, 60, 3, 4, 11);
        let idx = QueryIndex::build(&inst);
        let (cost, opts) = defaults();
        let target = 20;
        let bounds = StrategyBounds::unbounded(3);
        let before = inst.hit_count_naive(target);
        let tau = (before + 10).min(inst.num_queries());
        let report = min_cost_iq(&inst, &idx, target, tau, &cost, &bounds, &opts);
        assert!(report.achieved, "failed to reach tau: {report:?}");
        assert!(report.hits_after >= tau);
        assert_eq!(report.hits_before, before);
        // The reported hit count matches ground truth on a fresh instance.
        let improved = inst.with_strategy(target, &report.strategy);
        assert_eq!(improved.hit_count_naive(target), report.hits_after);
        assert!(report.cost > 0.0);
    }

    #[test]
    fn min_cost_tau_already_met_returns_zero() {
        let inst = random_instance(30, 40, 2, 5, 5);
        let idx = QueryIndex::build(&inst);
        let (cost, opts) = defaults();
        // Pick the most popular object; tau = its current hits.
        let target = (0..30).max_by_key(|&t| inst.hit_count_naive(t)).unwrap();
        let tau = inst.hit_count_naive(target);
        let bounds = StrategyBounds::unbounded(2);
        let report = min_cost_iq(&inst, &idx, target, tau, &cost, &bounds, &opts);
        assert!(report.achieved);
        assert_eq!(report.cost, 0.0);
        assert_eq!(report.iterations, 0);
        assert!(report.strategy.is_zero(0.0));
    }

    #[test]
    fn min_cost_monotone_in_tau() {
        let inst = random_instance(35, 50, 3, 3, 77);
        let idx = QueryIndex::build(&inst);
        let (cost, opts) = defaults();
        let target = 7;
        let bounds = StrategyBounds::unbounded(3);
        let base = inst.hit_count_naive(target);
        let mut prev = 0.0;
        for extra in [2usize, 5, 10, 20] {
            let tau = (base + extra).min(inst.num_queries());
            let r = min_cost_iq(&inst, &idx, target, tau, &cost, &bounds, &opts);
            if r.achieved {
                assert!(
                    r.cost + 1e-9 >= prev,
                    "cost decreased when tau grew: {} after {}",
                    r.cost,
                    prev
                );
                prev = r.cost;
            }
        }
    }

    #[test]
    fn min_cost_respects_frozen_attributes() {
        let inst = random_instance(30, 40, 3, 3, 31);
        let idx = QueryIndex::build(&inst);
        let (cost, opts) = defaults();
        let target = 3;
        let bounds = StrategyBounds::unbounded(3).freeze(0).freeze(2);
        let tau = (inst.hit_count_naive(target) + 5).min(inst.num_queries());
        let r = min_cost_iq(&inst, &idx, target, tau, &cost, &bounds, &opts);
        assert!(
            r.strategy[0].abs() < 1e-6,
            "frozen attr 0 moved: {:?}",
            r.strategy
        );
        assert!(
            r.strategy[2].abs() < 1e-6,
            "frozen attr 2 moved: {:?}",
            r.strategy
        );
        let improved = inst.with_strategy(target, &r.strategy);
        assert_eq!(improved.hit_count_naive(target), r.hits_after);
    }

    #[test]
    fn max_hit_respects_budget_and_improves() {
        let inst = random_instance(40, 60, 3, 4, 19);
        let idx = QueryIndex::build(&inst);
        let (cost, opts) = defaults();
        let target = 0;
        let bounds = StrategyBounds::unbounded(3);
        let before = inst.hit_count_naive(target);
        let r = max_hit_iq(&inst, &idx, target, 0.5, &cost, &bounds, &opts);
        assert!(r.hits_after >= before, "max-hit lost hits");
        // Cumulative cost is within budget (triangle inequality keeps the
        // final strategy's cost at or below the sum of increments charged).
        assert!(r.cost <= 0.5 + 1e-6, "over budget: {}", r.cost);
        let improved = inst.with_strategy(target, &r.strategy);
        assert_eq!(improved.hit_count_naive(target), r.hits_after);
    }

    #[test]
    fn max_hit_monotone_in_budget() {
        let inst = random_instance(35, 50, 3, 3, 23);
        let idx = QueryIndex::build(&inst);
        let (cost, opts) = defaults();
        let bounds = StrategyBounds::unbounded(3);
        let mut prev = 0usize;
        for budget in [0.0, 0.1, 0.3, 0.8, 2.0] {
            let r = max_hit_iq(&inst, &idx, 12, budget, &cost, &bounds, &opts);
            assert!(
                r.hits_after >= prev,
                "hits dropped as budget grew: {} after {}",
                r.hits_after,
                prev
            );
            prev = r.hits_after;
        }
    }

    #[test]
    fn max_hit_zero_budget_is_identity() {
        let inst = random_instance(20, 30, 2, 3, 41);
        let idx = QueryIndex::build(&inst);
        let (cost, opts) = defaults();
        let bounds = StrategyBounds::unbounded(2);
        let r = max_hit_iq(&inst, &idx, 5, 0.0, &cost, &bounds, &opts);
        assert_eq!(r.hits_after, r.hits_before);
        assert!(r.strategy.is_zero(1e-12));
    }

    #[test]
    fn binary_search_reduction_mincost_via_maxhit() {
        // §4.2.2: binary-searching the budget of Max-Hit recovers a cost
        // close to what Min-Cost finds directly.
        let inst = random_instance(25, 40, 2, 3, 53);
        let idx = QueryIndex::build(&inst);
        let (cost, opts) = defaults();
        let bounds = StrategyBounds::unbounded(2);
        let target = 2;
        let tau = (inst.hit_count_naive(target) + 6).min(inst.num_queries());
        let direct = min_cost_iq(&inst, &idx, target, tau, &cost, &bounds, &opts);
        assert!(direct.achieved);

        let (mut lo, mut hi) = (0.0f64, direct.cost * 4.0 + 1.0);
        for _ in 0..30 {
            let mid = 0.5 * (lo + hi);
            let r = max_hit_iq(&inst, &idx, target, mid, &cost, &bounds, &opts);
            if r.hits_after >= tau {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        // Both are heuristics; the reduction should land in the same
        // ballpark (within 3× here), not exactly equal.
        assert!(
            hi <= direct.cost * 3.0 + 1e-6,
            "binary search budget {hi} far above direct cost {}",
            direct.cost
        );
    }

    #[test]
    fn candidate_cap_preserves_goal_achievement() {
        let inst = random_instance(40, 60, 3, 4, 67);
        let idx = QueryIndex::build(&inst);
        let cost = EuclideanCost;
        let bounds = StrategyBounds::unbounded(3);
        let target = 9;
        let tau = (inst.hit_count_naive(target) + 8).min(inst.num_queries());
        let uncapped = min_cost_iq(
            &inst,
            &idx,
            target,
            tau,
            &cost,
            &bounds,
            &SearchOptions::default(),
        );
        let capped_opts = SearchOptions {
            candidate_cap: Some(4),
            ..Default::default()
        };
        let capped = min_cost_iq(&inst, &idx, target, tau, &cost, &bounds, &capped_opts);
        assert!(uncapped.achieved && capped.achieved);
        // The cap trades a little quality for a lot of work.
        assert!(capped.candidates_evaluated <= uncapped.candidates_evaluated);
        assert!(
            capped.cost <= uncapped.cost * 3.0 + 1e-9,
            "cap degraded cost too far"
        );
        let improved = inst.with_strategy(target, &capped.strategy);
        assert_eq!(improved.hit_count_naive(target), capped.hits_after);
    }

    #[test]
    fn min_cost_with_l1_cost_function() {
        use crate::cost::L1Cost;
        let inst = random_instance(30, 40, 3, 3, 81);
        let idx = QueryIndex::build(&inst);
        let bounds = StrategyBounds::unbounded(3);
        let target = 6;
        let tau = (inst.hit_count_naive(target) + 5).min(inst.num_queries());
        let r = min_cost_iq(
            &inst,
            &idx,
            target,
            tau,
            &L1Cost,
            &bounds,
            &SearchOptions::default(),
        );
        assert!(r.achieved, "{r:?}");
        assert!((r.cost - r.strategy.norm_l1()).abs() < 1e-9);
        let improved = inst.with_strategy(target, &r.strategy);
        assert_eq!(improved.hit_count_naive(target), r.hits_after);
    }

    #[test]
    fn max_hit_with_asymmetric_cost() {
        use crate::cost::AsymmetricLinearCost;
        let inst = random_instance(30, 40, 2, 3, 87);
        let idx = QueryIndex::build(&inst);
        // Decreasing attributes is cheap, increasing expensive: the search
        // should only ever decrease.
        let cost = AsymmetricLinearCost::new(vec![50.0, 50.0], vec![1.0, 1.0]);
        let bounds = StrategyBounds::unbounded(2);
        let r = max_hit_iq(
            &inst,
            &idx,
            4,
            0.5,
            &cost,
            &bounds,
            &SearchOptions::default(),
        );
        assert!(r.cost <= 0.5 + 1e-6);
        assert!(
            r.strategy.iter().all(|&v| v <= 1e-9),
            "increased: {:?}",
            r.strategy
        );
        let improved = inst.with_strategy(4, &r.strategy);
        assert_eq!(improved.hit_count_naive(4), r.hits_after);
    }

    #[test]
    fn candidates_evaluated_is_thread_count_invariant() {
        // The work metric counts one evaluation per solved candidate,
        // charged before scoring — so the parallel scorer path and the
        // sequential fallback must report the same number.
        let inst = random_instance(60, 80, 3, 4, 23);
        let (cost, _) = defaults();
        let bounds = StrategyBounds::unbounded(3);
        let target = 31;
        let tau = (inst.hit_count_naive(target) + 8).min(inst.num_queries());

        let seq = SearchOptions {
            exec: ExecPolicy::sequential(),
            ..SearchOptions::default()
        };
        let idx = QueryIndex::build_with(&inst, &seq.exec);
        let reference = min_cost_iq(&inst, &idx, target, tau, &cost, &bounds, &seq);
        assert!(reference.candidates_evaluated > 0);

        for threads in [2usize, 4, 8] {
            let par = SearchOptions {
                exec: ExecPolicy::with_threads(threads),
                ..SearchOptions::default()
            };
            let r = min_cost_iq(&inst, &idx, target, tau, &cost, &bounds, &par);
            assert_eq!(
                r.candidates_evaluated, reference.candidates_evaluated,
                "work metric drifted at {threads} threads"
            );
            let mh = max_hit_iq(&inst, &idx, target, 0.8, &cost, &bounds, &par);
            let mh_ref = max_hit_iq(&inst, &idx, target, 0.8, &cost, &bounds, &seq);
            assert_eq!(mh.candidates_evaluated, mh_ref.candidates_evaluated);
        }
    }

    #[test]
    fn cost_per_hit_metric() {
        let r = IqReport {
            strategy: Vector::zeros(2),
            cost: 4.0,
            hits_before: 0,
            hits_after: 8,
            iterations: 1,
            candidates_evaluated: 10,
            achieved: true,
        };
        assert_eq!(r.cost_per_hit(), 0.5);
        let r0 = IqReport { hits_after: 0, ..r };
        assert_eq!(r0.cost_per_hit(), f64::INFINITY);
    }
}
