//! Incremental data updating (§4.3): adding/removing queries and objects
//! without rebuilding the subdomain index.
//!
//! * **Add query** — the paper's heuristic: probe the subdomains of the new
//!   point's k nearest neighbours before falling back to a full
//!   computation. Our probe is *exact*: a candidate subdomain is accepted
//!   only if (a) its candidate list is correctly ordered under the new
//!   query (the paper's boundary-intersection check) and (b) no outside
//!   object beats the list's tail — together these pin the new query's
//!   top-`K'` exactly, so a fast-accept never mis-assigns.
//! * **Remove query** — O(1) swap-removal with id patching.
//! * **Add object** — every query whose candidate list the newcomer
//!   penetrates (score better than the list tail) is recomputed and
//!   regrouped; everyone else is untouched.
//! * **Remove object** — only the highest-id object can be removed (ids
//!   stay stable). The §4.3 bloom filter gives a fast *definitely
//!   unaffected* answer; otherwise the subdomains whose candidate list
//!   mentions the object are rebuilt.

use crate::model::{Instance, ModelError, TopKQuery};
use crate::subdomain::{QueryIndex, SubdomainEntry};
use iq_topk::naive::{self, rank_cmp, score};

/// Statistics about how much work an update operation did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Queries whose candidate list was recomputed from scratch.
    pub toplists_recomputed: usize,
    /// Queries assigned via the kNN fast path (no full recomputation).
    pub fast_assignments: usize,
    /// Whether the bloom filter short-circuited an object removal.
    pub bloom_short_circuit: bool,
}

/// How many nearest neighbours to probe for candidate subdomains.
const KNN_CANDIDATES: usize = 4;

/// With `--features debug-invariants`, re-checks the full structural
/// invariants of the `QueryIndex` (assignment consistency, exact toplists,
/// same-subdomain identity) after a mutation. Compiled out otherwise: the
/// check is a full naive re-evaluation per call.
#[inline]
fn debug_check(instance: &Instance, index: &QueryIndex) {
    #[cfg(feature = "debug-invariants")]
    index
        .check_invariants(instance)
        .expect("debug-invariants: QueryIndex invariant broken after update");
    #[cfg(not(feature = "debug-invariants"))]
    let _ = (instance, index);
}

fn compute_toplist(instance: &Instance, weights: &[f64], kprime: usize) -> Vec<u32> {
    naive::top_k(instance.objects(), weights, kprime)
        .into_iter()
        .map(|i| i as u32)
        .collect()
}

/// Exact membership probe: is `toplist` the correct ordered top-`K'` for
/// `weights`? Checks (a) internal order and (b) that no outside object
/// penetrates the tail. `O(K'·d + n·d)` without sorting.
fn toplist_matches(instance: &Instance, weights: &[f64], toplist: &[u32]) -> bool {
    // (a) ordered under this query, with the id tie-break.
    let scores: Vec<f64> = toplist
        .iter()
        .map(|&o| score(instance.object(o as usize), weights))
        .collect();
    for w in 0..toplist.len().saturating_sub(1) {
        if rank_cmp(
            scores[w],
            toplist[w] as usize,
            scores[w + 1],
            toplist[w + 1] as usize,
        ) != std::cmp::Ordering::Less
        {
            return false;
        }
    }
    // (b) no outsider beats the tail.
    let Some((&tail, &tail_score)) = toplist.last().zip(scores.last()) else {
        return instance.num_objects() == 0;
    };
    let member: std::collections::HashSet<u32> = toplist.iter().copied().collect();
    for (o, attrs) in instance.objects().iter().enumerate() {
        if member.contains(&(o as u32)) {
            continue;
        }
        let s = score(attrs, weights);
        if rank_cmp(s, o, tail_score, tail as usize) == std::cmp::Ordering::Less {
            return false;
        }
    }
    true
}

fn assign_to_subdomain(index: &mut QueryIndex, qid: usize, toplist: Vec<u32>) {
    let sd = match index.by_toplist.get(&toplist) {
        Some(&sd) => sd,
        None => {
            let sd = index.subdomains.len() as u32;
            for &o in &toplist {
                index.boundary_filter.insert(&o);
            }
            index.subdomains.push(SubdomainEntry {
                queries: Vec::new(),
                toplist: toplist.clone(),
            });
            index.by_toplist.insert(toplist, sd);
            sd
        }
    };
    index.subdomains[sd as usize].queries.push(qid as u32);
    if qid == index.subdomain_of.len() {
        index.subdomain_of.push(sd);
    } else {
        index.subdomain_of[qid] = sd;
    }
}

fn detach_from_subdomain(index: &mut QueryIndex, qid: usize) {
    let sd = index.subdomain_of[qid] as usize;
    let members = &mut index.subdomains[sd].queries;
    if let Some(pos) = members.iter().position(|&q| q == qid as u32) {
        members.swap_remove(pos);
    }
    if members.is_empty() {
        // Keep the entry (ids are stable) but drop the lookup so a future
        // identical toplist re-uses it cleanly.
        let toplist = index.subdomains[sd].toplist.clone();
        index.by_toplist.remove(&toplist);
        // Re-adding the same toplist later creates a fresh entry; the empty
        // one stays as a tombstone.
    }
}

/// **Add a query** (§4.3): kNN-candidate fast path with exact verification,
/// falling back to a full top-`K'` computation. Returns the new query id.
pub fn add_query(
    instance: &mut Instance,
    index: &mut QueryIndex,
    query: TopKQuery,
    stats: &mut UpdateStats,
) -> Result<usize, ModelError> {
    assert!(
        query.k < index.kprime,
        "query k = {} exceeds the index's K' = {}; rebuild with a larger max k",
        query.k,
        index.kprime
    );
    let weights = query.weights.clone();
    let qid = instance.push_query(query)?;

    // Candidate subdomains from the nearest indexed query points.
    let mut assigned = false;
    let mut probed: Vec<u32> = Vec::new();
    for (entry, _) in index.rtree.nearest_k(&weights, KNN_CANDIDATES) {
        let sd = index.subdomain_of[entry.data];
        if probed.contains(&sd) {
            continue;
        }
        probed.push(sd);
        let toplist = index.subdomains[sd as usize].toplist.clone();
        if toplist_matches(instance, &weights, &toplist) {
            assign_to_subdomain(index, qid, toplist);
            stats.fast_assignments += 1;
            assigned = true;
            break;
        }
    }
    if !assigned {
        let toplist = compute_toplist(instance, &weights, index.kprime);
        stats.toplists_recomputed += 1;
        assign_to_subdomain(index, qid, toplist);
    }
    index.rtree.insert(weights, qid);
    debug_check(instance, index);
    Ok(qid)
}

/// **Remove a query** (§4.3): O(1) swap-removal. The previously-last query
/// takes over the removed id; all index structures are patched.
pub fn remove_query(
    instance: &mut Instance,
    index: &mut QueryIndex,
    qid: usize,
) -> Option<TopKQuery> {
    let last = instance.num_queries().checked_sub(1)?;
    if qid > last {
        return None;
    }
    let removed = instance.swap_remove_query(qid)?;
    // Drop the removed query from its structures. The instance has already
    // been mutated, so an R-tree miss here would mean the index was
    // corrupt before this call — fail loudly rather than desynchronize.
    index
        .rtree
        .remove(&removed.weights, |&d| d == qid)
        .expect("query index out of sync: point missing from R-tree");
    detach_from_subdomain(index, qid);

    if qid != last {
        // The old last query now lives at `qid`; patch its id everywhere.
        let moved_weights = instance.queries()[qid].weights.clone();
        index.rtree.remove(&moved_weights, |&d| d == last);
        index.rtree.insert(moved_weights, qid);
        let sd = index.subdomain_of[last] as usize;
        if let Some(pos) = index.subdomains[sd]
            .queries
            .iter()
            .position(|&q| q == last as u32)
        {
            index.subdomains[sd].queries[pos] = qid as u32;
        }
        index.subdomain_of[qid] = index.subdomain_of[last];
    }
    index.subdomain_of.pop();
    debug_check(instance, index);
    Some(removed)
}

/// **Add an object** (§4.3): recompute only the queries whose candidate
/// list the newcomer penetrates. Returns the new object id.
pub fn add_object(
    instance: &mut Instance,
    index: &mut QueryIndex,
    attrs: Vec<f64>,
    stats: &mut UpdateStats,
) -> Result<usize, ModelError> {
    let oid = instance.push_object(attrs)?;
    // Collect affected queries per subdomain (penetration is per query:
    // the newcomer's score varies inside a subdomain).
    let mut reassign: Vec<(usize, Vec<u32>)> = Vec::new();
    for sd in 0..index.subdomains.len() {
        let entry = &index.subdomains[sd];
        let Some(&tail) = entry.toplist.last() else {
            continue;
        };
        for &q in &entry.queries {
            let weights = &instance.queries()[q as usize].weights;
            let new_score = score(instance.object(oid), weights);
            let tail_score = score(instance.object(tail as usize), weights);
            let penetrates = rank_cmp(new_score, oid, tail_score, tail as usize)
                == std::cmp::Ordering::Less
                || entry.toplist.len() < index.kprime;
            if penetrates {
                let toplist = compute_toplist(instance, weights, index.kprime);
                stats.toplists_recomputed += 1;
                reassign.push((q as usize, toplist));
            }
        }
    }
    for (q, toplist) in reassign {
        detach_from_subdomain(index, q);
        assign_to_subdomain(index, q, toplist);
    }
    debug_check(instance, index);
    Ok(oid)
}

/// **Remove the last object** (§4.3): the bloom filter answers "definitely
/// not a boundary object" without touching any subdomain; otherwise every
/// subdomain mentioning the object rebuilds its members' candidate lists.
pub fn remove_last_object(
    instance: &mut Instance,
    index: &mut QueryIndex,
    stats: &mut UpdateStats,
) -> Option<Vec<f64>> {
    let oid = instance.num_objects().checked_sub(1)?;
    let removed = instance.pop_object()?;

    if !index.may_be_boundary_object(oid) {
        // The object never appeared in any candidate list — no query's
        // ranking prefix can change (§4.3's fast path).
        stats.bloom_short_circuit = true;
        // Under debug-invariants this also witnesses the bloom filter's
        // "definitely not a boundary object" claim: the untouched toplists
        // must still be exact over the shrunk object set.
        debug_check(instance, index);
        return Some(removed);
    }
    let mut reassign: Vec<(usize, Vec<u32>)> = Vec::new();
    for sd in 0..index.subdomains.len() {
        let entry = &index.subdomains[sd];
        if !entry.toplist.contains(&(oid as u32)) {
            continue;
        }
        for &q in &entry.queries {
            let weights = &instance.queries()[q as usize].weights;
            let toplist = compute_toplist(instance, weights, index.kprime);
            stats.toplists_recomputed += 1;
            reassign.push((q as usize, toplist));
        }
    }
    for (q, toplist) in reassign {
        detach_from_subdomain(index, q);
        assign_to_subdomain(index, q, toplist);
    }
    debug_check(instance, index);
    Some(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subdomain::QueryIndex;

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        }
    }

    fn random_instance(n: usize, m: usize, d: usize, kmax: usize, seed: u64) -> Instance {
        let mut rnd = lcg(seed);
        let objects: Vec<Vec<f64>> = (0..n).map(|_| (0..d).map(|_| rnd()).collect()).collect();
        let queries: Vec<TopKQuery> = (0..m)
            .map(|_| {
                let w: Vec<f64> = (0..d).map(|_| rnd()).collect();
                TopKQuery::new(w, 1 + (rnd() * kmax as f64) as usize)
            })
            .collect();
        Instance::new(objects, queries).unwrap()
    }

    /// The maintained index must be indistinguishable from a rebuild:
    /// identical toplists and identical query partition.
    fn assert_equivalent_to_rebuild(instance: &Instance, index: &QueryIndex) {
        index.check_invariants(instance).unwrap();
        // The maintained index keeps its original K'; a fresh rebuild may
        // pick a smaller one after max-k queries were removed. Compare the
        // common prefix (the rankings must agree there).
        let fresh = QueryIndex::build(instance);
        let common = index.kprime().min(fresh.kprime());
        for q in 0..instance.num_queries() {
            assert_eq!(
                &index.toplist_of(q)[..common.min(index.toplist_of(q).len())],
                &fresh.toplist_of(q)[..common.min(fresh.toplist_of(q).len())],
                "query {q} toplist differs from rebuild"
            );
        }
        // Partition consistency: the maintained grouping must refine the
        // rebuild's (equal when K' matches; a larger K' may only split).
        for a in 0..instance.num_queries() {
            for b in (a + 1)..instance.num_queries() {
                let together = index.subdomain_of(a) == index.subdomain_of(b);
                let fresh_together = fresh.subdomain_of(a) == fresh.subdomain_of(b);
                if together {
                    assert!(fresh_together, "maintained grouping coarser for {a},{b}");
                }
                if index.kprime() == fresh.kprime() {
                    assert_eq!(together, fresh_together, "partition differs for {a},{b}");
                }
            }
        }
    }

    #[test]
    fn add_queries_incrementally() {
        let mut inst = random_instance(30, 20, 3, 4, 5);
        let mut index = QueryIndex::build(&inst);
        let mut rnd = lcg(88);
        let mut stats = UpdateStats::default();
        for _ in 0..25 {
            let w: Vec<f64> = (0..3).map(|_| rnd()).collect();
            let k = 1 + (rnd() * 4.0) as usize;
            add_query(&mut inst, &mut index, TopKQuery::new(w, k), &mut stats).unwrap();
        }
        assert_equivalent_to_rebuild(&inst, &index);
    }

    #[test]
    fn knn_fast_path_fires_for_clustered_queries() {
        let mut rnd = lcg(12);
        let objects: Vec<Vec<f64>> = (0..40).map(|_| vec![rnd(), rnd()]).collect();
        let queries: Vec<TopKQuery> = (0..30)
            .map(|_| TopKQuery::new(vec![0.5 + rnd() * 0.01, 0.5 + rnd() * 0.01], 3))
            .collect();
        let mut inst = Instance::new(objects, queries).unwrap();
        let mut index = QueryIndex::build(&inst);
        let mut stats = UpdateStats::default();
        for _ in 0..20 {
            let q = TopKQuery::new(vec![0.5 + rnd() * 0.01, 0.5 + rnd() * 0.01], 3);
            add_query(&mut inst, &mut index, q, &mut stats).unwrap();
        }
        assert!(
            stats.fast_assignments >= 15,
            "kNN fast path barely fired: {stats:?}"
        );
        assert_equivalent_to_rebuild(&inst, &index);
    }

    #[test]
    fn remove_queries_with_id_patching() {
        let mut inst = random_instance(25, 30, 3, 3, 9);
        let mut index = QueryIndex::build(&inst);
        // Remove from the middle, the front, and the back.
        for qid in [15usize, 0, 20, 5, 11] {
            let removed = remove_query(&mut inst, &mut index, qid);
            assert!(removed.is_some(), "removal of {qid} failed");
            assert_equivalent_to_rebuild(&inst, &index);
        }
        assert_eq!(inst.num_queries(), 25);
        assert!(remove_query(&mut inst, &mut index, 999).is_none());
    }

    #[test]
    fn add_objects_incrementally() {
        let mut inst = random_instance(20, 30, 3, 3, 31);
        let mut index = QueryIndex::build(&inst);
        let mut rnd = lcg(77);
        let mut stats = UpdateStats::default();
        for round in 0..10 {
            // Alternate between dominated newcomers (no effect) and strong
            // ones (penetrate many lists).
            let attrs: Vec<f64> = if round % 2 == 0 {
                (0..3).map(|_| 0.9 + rnd() * 0.1).collect()
            } else {
                (0..3).map(|_| rnd() * 0.2).collect()
            };
            add_object(&mut inst, &mut index, attrs, &mut stats).unwrap();
            assert_equivalent_to_rebuild(&inst, &index);
        }
        assert!(
            stats.toplists_recomputed > 0,
            "strong objects must disturb lists"
        );
    }

    #[test]
    fn remove_last_object_rebuilds_affected() {
        let mut inst = random_instance(20, 30, 3, 3, 41);
        let mut index = QueryIndex::build(&inst);
        let mut stats = UpdateStats::default();
        for _ in 0..5 {
            remove_last_object(&mut inst, &mut index, &mut stats).unwrap();
            assert_equivalent_to_rebuild(&inst, &index);
        }
    }

    #[test]
    fn bloom_short_circuits_irrelevant_object() {
        // An object dominated by everything never enters any toplist.
        let mut inst = random_instance(15, 20, 2, 2, 51);
        let mut index = QueryIndex::build(&inst);
        let mut stats = UpdateStats::default();
        add_object(&mut inst, &mut index, vec![50.0, 50.0], &mut stats).unwrap();
        let before = stats.toplists_recomputed;
        let mut rm_stats = UpdateStats::default();
        remove_last_object(&mut inst, &mut index, &mut rm_stats).unwrap();
        assert_eq!(stats.toplists_recomputed, before);
        // Usually the filter short-circuits (false positives allowed).
        if !rm_stats.bloom_short_circuit {
            assert_eq!(rm_stats.toplists_recomputed, 0);
        }
        assert_equivalent_to_rebuild(&inst, &index);
    }

    #[test]
    fn mixed_update_storm() {
        let mut inst = random_instance(25, 25, 2, 3, 61);
        let mut index = QueryIndex::build(&inst);
        let mut rnd = lcg(3);
        let mut stats = UpdateStats::default();
        for step in 0..40 {
            match step % 4 {
                0 => {
                    let w: Vec<f64> = (0..2).map(|_| rnd()).collect();
                    add_query(
                        &mut inst,
                        &mut index,
                        TopKQuery::new(w, 1 + step % 3),
                        &mut stats,
                    )
                    .unwrap();
                }
                1 => {
                    let qid =
                        ((rnd() * inst.num_queries() as f64) as usize).min(inst.num_queries() - 1);
                    remove_query(&mut inst, &mut index, qid);
                }
                2 => {
                    let attrs: Vec<f64> = (0..2).map(|_| rnd()).collect();
                    add_object(&mut inst, &mut index, attrs, &mut stats).unwrap();
                }
                _ => {
                    if inst.num_objects() > 10 {
                        remove_last_object(&mut inst, &mut index, &mut stats);
                    }
                }
            }
        }
        assert_equivalent_to_rebuild(&inst, &index);
    }
}
