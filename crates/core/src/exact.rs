//! The exact "exhaustive search" option (§4.2.1/§4.2.2): optimal
//! improvement strategies by branch-and-bound over query subsets, plus the
//! budget binary-search reduction between the two query types.
//!
//! Exact search is exponential (the problems are NP-hard, §4.2.1's
//! set-cover reduction) and only feasible on small instances — the paper
//! reports 4+ hours per query at its experiment scales. It exists here as
//! ground truth: integration tests compare the greedy heuristics against
//! these optima on instances small enough to finish.

use crate::ese::TargetEvaluator;
use crate::model::{ImprovementStrategy, Instance};
use crate::subdomain::QueryIndex;
use iq_geometry::Vector;
use iq_solver::{exact_max_hit, exact_min_cost, HitCondition, L2SubsetSolver};

/// An exact optimum (Euclidean cost only — the cost of Eq. 30).
#[derive(Debug, Clone)]
pub struct ExactReport {
    /// The optimal strategy.
    pub strategy: ImprovementStrategy,
    /// Its Euclidean cost.
    pub cost: f64,
    /// `H(p + strategy)`.
    pub hits_after: usize,
}

/// Builds the per-query hit conditions `w_q · s ≤ rhs_q` for a target.
fn hit_conditions(ev: &TargetEvaluator<'_>) -> Vec<HitCondition> {
    let inst = ev.instance();
    (0..inst.num_queries())
        .map(|q| {
            let a = Vector::from(inst.queries()[q].weights.as_slice());
            // Trivially-hit queries (no threshold) are satisfied by any
            // strategy; encode them with a constraint on the zero normal...
            // which HitCondition cannot express, so use rhs = +∞-ish via a
            // huge positive slack on the actual weights.
            let b = ev.required_rhs(q).unwrap_or(f64::MAX / 4.0);
            HitCondition { a, b }
        })
        .collect()
}

/// Exact **Min-Cost IQ** under the Euclidean cost. `None` when no strategy
/// can reach `tau` hits (e.g. `tau > m`).
pub fn exact_min_cost_iq(
    instance: &Instance,
    index: &QueryIndex,
    target: usize,
    tau: usize,
) -> Option<ExactReport> {
    let ev = TargetEvaluator::new(instance, index, target);
    let conds = hit_conditions(&ev);
    let sol = exact_min_cost(&conds, tau, &L2SubsetSolver)?;
    let strategy = fix_dim(sol.strategy, instance.dim());
    let hits_after = ev.evaluate_naive(&strategy);
    Some(ExactReport {
        cost: sol.cost,
        strategy,
        hits_after,
    })
}

/// Exact **Max-Hit IQ** under the Euclidean cost.
pub fn exact_max_hit_iq(
    instance: &Instance,
    index: &QueryIndex,
    target: usize,
    budget: f64,
) -> ExactReport {
    let ev = TargetEvaluator::new(instance, index, target);
    let conds = hit_conditions(&ev);
    let sol = exact_max_hit(&conds, budget, &L2SubsetSolver);
    let strategy = fix_dim(sol.strategy, instance.dim());
    let hits_after = ev.evaluate_naive(&strategy);
    ExactReport {
        cost: sol.cost,
        strategy,
        hits_after,
    }
}

/// Exact Min-Cost via the §4.2.2 reduction: binary-search the smallest
/// budget whose exact Max-Hit reaches `tau` hits. Returns the budget found
/// and the final report; used to validate the reduction proof.
pub fn exact_min_cost_via_max_hit(
    instance: &Instance,
    index: &QueryIndex,
    target: usize,
    tau: usize,
    budget_hi: f64,
    iterations: usize,
) -> Option<(f64, ExactReport)> {
    let top = exact_max_hit_iq(instance, index, target, budget_hi);
    if top.hits_after < tau {
        return None;
    }
    let (mut lo, mut hi) = (0.0f64, budget_hi);
    let mut best = top;
    for _ in 0..iterations {
        let mid = 0.5 * (lo + hi);
        let r = exact_max_hit_iq(instance, index, target, mid);
        if r.hits_after >= tau {
            hi = mid;
            best = r;
        } else {
            lo = mid;
        }
    }
    Some((hi, best))
}

fn fix_dim(s: Vector, dim: usize) -> Vector {
    if s.dim() == dim {
        s
    } else {
        Vector::zeros(dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{EuclideanCost, StrategyBounds};
    use crate::model::TopKQuery;
    use crate::search::{min_cost_iq, SearchOptions};

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        }
    }

    fn small_instance(seed: u64) -> Instance {
        let mut rnd = lcg(seed);
        let objects: Vec<Vec<f64>> = (0..8).map(|_| vec![rnd(), rnd()]).collect();
        let queries: Vec<TopKQuery> = (0..8)
            .map(|_| {
                TopKQuery::new(
                    vec![0.2 + rnd() * 0.8, 0.2 + rnd() * 0.8],
                    1 + (rnd() * 2.0) as usize,
                )
            })
            .collect();
        Instance::new(objects, queries).unwrap()
    }

    #[test]
    fn exact_strategy_achieves_reported_hits() {
        let inst = small_instance(5);
        let idx = QueryIndex::build(&inst);
        let r = exact_min_cost_iq(&inst, &idx, 0, 4).unwrap();
        assert!(r.hits_after >= 4, "{r:?}");
        let improved = inst.with_strategy(0, &r.strategy);
        assert_eq!(improved.hit_count_naive(0), r.hits_after);
    }

    #[test]
    fn greedy_never_beats_exact() {
        // The heuristic's cost is lower-bounded by the optimum.
        for seed in [1u64, 9, 23] {
            let inst = small_instance(seed);
            let idx = QueryIndex::build(&inst);
            let target = 3;
            let before = inst.hit_count_naive(target);
            let tau = (before + 3).min(inst.num_queries());
            let Some(exact) = exact_min_cost_iq(&inst, &idx, target, tau) else {
                continue;
            };
            let greedy = min_cost_iq(
                &inst,
                &idx,
                target,
                tau,
                &EuclideanCost,
                &StrategyBounds::unbounded(2),
                &SearchOptions::default(),
            );
            if greedy.achieved {
                assert!(
                    greedy.cost + 1e-6 >= exact.cost,
                    "seed {seed}: greedy {} beat exact {}",
                    greedy.cost,
                    exact.cost
                );
            }
        }
    }

    #[test]
    fn exact_max_hit_budget_zero_and_large() {
        let inst = small_instance(7);
        let idx = QueryIndex::build(&inst);
        let target = 1;
        let r0 = exact_max_hit_iq(&inst, &idx, target, 0.0);
        assert_eq!(r0.hits_after, inst.hit_count_naive(target));
        let rbig = exact_max_hit_iq(&inst, &idx, target, 100.0);
        assert_eq!(rbig.hits_after, inst.num_queries());
    }

    #[test]
    fn reduction_recovers_direct_min_cost() {
        let inst = small_instance(13);
        let idx = QueryIndex::build(&inst);
        let target = 2;
        let tau = (inst.hit_count_naive(target) + 3).min(inst.num_queries());
        let direct = exact_min_cost_iq(&inst, &idx, target, tau).unwrap();
        let (budget, via) =
            exact_min_cost_via_max_hit(&inst, &idx, target, tau, direct.cost * 2.0 + 1.0, 40)
                .unwrap();
        assert!(via.hits_after >= tau);
        assert!(
            (budget - direct.cost).abs() < 1e-3 * (1.0 + direct.cost),
            "reduction budget {budget} vs direct optimum {}",
            direct.cost
        );
    }

    #[test]
    fn impossible_tau_returns_none() {
        let inst = small_instance(3);
        let idx = QueryIndex::build(&inst);
        assert!(exact_min_cost_iq(&inst, &idx, 0, inst.num_queries() + 1).is_none());
    }
}
