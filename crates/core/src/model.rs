//! The objects-as-functions data model (§3).
//!
//! An [`Instance`] bundles a dataset of `d`-dimensional objects with a set
//! of top-k queries over them. Objects double as linear functions of the
//! query point (Eq. 1): `f_i(q) = p_i · q`, ranked **ascending** (Eq. 6),
//! ties broken by object id. An [`ImprovementStrategy`] is the adjustment
//! vector of Definition 1; applying it replaces the target object with
//! `p + s`.

use iq_geometry::{FlatMatrix, Vector};
use iq_topk::naive;
pub use iq_topk::TopKQuery;

/// An improvement strategy: the per-attribute adjustment vector `s` of
/// Definition 1.
pub type ImprovementStrategy = Vector;

/// Errors raised while constructing or mutating an instance.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// An object or query had the wrong dimensionality.
    DimensionMismatch {
        /// Expected dimensionality.
        expected: usize,
        /// Found dimensionality.
        found: usize,
    },
    /// An object/query index was out of range.
    IndexOutOfRange(usize),
    /// A value was non-finite.
    NonFinite,
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            ModelError::IndexOutOfRange(i) => write!(f, "index {i} out of range"),
            ModelError::NonFinite => write!(f, "non-finite coordinate"),
        }
    }
}

impl std::error::Error for ModelError {}

/// A dataset of objects plus the top-k query workload over them.
///
/// Coordinates are materialised twice: the nested `Vec<Vec<f64>>` /
/// `Vec<TopKQuery>` views that the construction and update APIs expose,
/// and flat row-major mirrors ([`Instance::objects_flat`],
/// [`Instance::weights_flat`]) that the batched scoring kernels stream
/// through (DESIGN.md §9). Every mutator keeps the mirrors coherent; the
/// flat rows are bit-for-bit copies of the nested rows, never derived
/// data.
#[derive(Debug, Clone)]
pub struct Instance {
    dim: usize,
    objects: Vec<Vec<f64>>,
    queries: Vec<TopKQuery>,
    objects_flat: FlatMatrix,
    weights_flat: FlatMatrix,
}

impl Instance {
    /// Creates an instance, validating dimensions and finiteness.
    pub fn new(objects: Vec<Vec<f64>>, queries: Vec<TopKQuery>) -> Result<Self, ModelError> {
        let dim = objects
            .first()
            .map(|o| o.len())
            .or_else(|| queries.first().map(|q| q.weights.len()))
            .unwrap_or(0);
        for o in &objects {
            if o.len() != dim {
                return Err(ModelError::DimensionMismatch {
                    expected: dim,
                    found: o.len(),
                });
            }
            if o.iter().any(|v| !v.is_finite()) {
                return Err(ModelError::NonFinite);
            }
        }
        for q in &queries {
            if q.weights.len() != dim {
                return Err(ModelError::DimensionMismatch {
                    expected: dim,
                    found: q.weights.len(),
                });
            }
            if q.weights.iter().any(|v| !v.is_finite()) {
                return Err(ModelError::NonFinite);
            }
        }
        let objects_flat = FlatMatrix::from_rows(dim, &objects);
        let mut weights_flat = FlatMatrix::new(dim);
        for q in &queries {
            weights_flat.push_row(&q.weights);
        }
        Ok(Instance {
            dim,
            objects,
            queries,
            objects_flat,
            weights_flat,
        })
    }

    /// Attribute-space dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The objects.
    pub fn objects(&self) -> &[Vec<f64>] {
        &self.objects
    }

    /// The queries.
    pub fn queries(&self) -> &[TopKQuery] {
        &self.queries
    }

    /// Number of objects.
    pub fn num_objects(&self) -> usize {
        self.objects.len()
    }

    /// Number of queries.
    pub fn num_queries(&self) -> usize {
        self.queries.len()
    }

    /// The largest `k` over all queries (0 when there are no queries).
    pub fn max_k(&self) -> usize {
        self.queries.iter().map(|q| q.k).max().unwrap_or(0)
    }

    /// One object's attribute vector.
    pub fn object(&self, i: usize) -> &[f64] {
        &self.objects[i]
    }

    /// The objects as one contiguous row-major matrix (row `i` ≡
    /// [`Instance::object`]`(i)`, bit-for-bit).
    pub fn objects_flat(&self) -> &FlatMatrix {
        &self.objects_flat
    }

    /// The query weight vectors as one contiguous row-major matrix (row
    /// `q` ≡ `queries()[q].weights`, bit-for-bit).
    pub fn weights_flat(&self) -> &FlatMatrix {
        &self.weights_flat
    }

    /// The linear score of object `i` under query `q` (Eq. 1).
    pub fn score(&self, object: usize, query: usize) -> f64 {
        naive::score(&self.objects[object], &self.queries[query].weights)
    }

    /// Applies an improvement strategy to an object in place
    /// (`p ← p + s`, Definition 1).
    pub fn apply_strategy(
        &mut self,
        target: usize,
        s: &ImprovementStrategy,
    ) -> Result<(), ModelError> {
        if target >= self.objects.len() {
            return Err(ModelError::IndexOutOfRange(target));
        }
        if s.dim() != self.dim {
            return Err(ModelError::DimensionMismatch {
                expected: self.dim,
                found: s.dim(),
            });
        }
        if !s.is_finite() {
            return Err(ModelError::NonFinite);
        }
        for (attr, delta) in self.objects[target].iter_mut().zip(s.iter()) {
            *attr += delta;
        }
        // Copy, don't re-add: the mirror must stay bit-identical to the
        // nested row, and `+=` on each side independently would be, too,
        // but copying makes the coherence self-evident.
        self.objects_flat.set_row(target, &self.objects[target]);
        Ok(())
    }

    /// A copy of the instance with the strategy applied — used by oracles
    /// that must not disturb the original.
    pub fn with_strategy(&self, target: usize, s: &ImprovementStrategy) -> Instance {
        let mut copy = self.clone();
        copy.apply_strategy(target, s)
            .expect("with_strategy: invalid strategy");
        copy
    }

    /// `H(p_target)` by exhaustive evaluation — the ground-truth hit count
    /// every index-accelerated path is validated against.
    pub fn hit_count_naive(&self, target: usize) -> usize {
        self.queries
            .iter()
            .filter(|q| naive::hits(&self.objects, q, target))
            .count()
    }

    /// The set `TP(p_target)` of query indices hit by the target (naive).
    pub fn hit_set_naive(&self, target: usize) -> Vec<usize> {
        self.queries
            .iter()
            .enumerate()
            .filter(|(_, q)| naive::hits(&self.objects, q, target))
            .map(|(i, _)| i)
            .collect()
    }

    /// Appends an object, returning its id.
    pub fn push_object(&mut self, attrs: Vec<f64>) -> Result<usize, ModelError> {
        if attrs.len() != self.dim {
            return Err(ModelError::DimensionMismatch {
                expected: self.dim,
                found: attrs.len(),
            });
        }
        if attrs.iter().any(|v| !v.is_finite()) {
            return Err(ModelError::NonFinite);
        }
        self.objects_flat.push_row(&attrs);
        self.objects.push(attrs);
        Ok(self.objects.len() - 1)
    }

    /// Appends a query, returning its id.
    pub fn push_query(&mut self, query: TopKQuery) -> Result<usize, ModelError> {
        if query.weights.len() != self.dim {
            return Err(ModelError::DimensionMismatch {
                expected: self.dim,
                found: query.weights.len(),
            });
        }
        self.weights_flat.push_row(&query.weights);
        self.queries.push(query);
        Ok(self.queries.len() - 1)
    }

    /// Removes the last object (swap-free, preserving other ids).
    /// Intended for the §4.3 update tests; removing interior objects would
    /// invalidate target ids held elsewhere.
    pub fn pop_object(&mut self) -> Option<Vec<f64>> {
        let popped = self.objects.pop();
        if popped.is_some() {
            self.objects_flat.pop_row();
        }
        popped
    }

    /// Removes a query by id, shifting later ids down.
    pub fn remove_query(&mut self, query: usize) -> Option<TopKQuery> {
        if query < self.queries.len() {
            self.weights_flat.remove_row(query);
            Some(self.queries.remove(query))
        } else {
            None
        }
    }

    /// Removes a query by id in O(1): the last query takes over the removed
    /// id. Used by the incremental index-update path (§4.3), which patches
    /// the moved query's id in its own structures.
    pub fn swap_remove_query(&mut self, query: usize) -> Option<TopKQuery> {
        if query < self.queries.len() {
            self.weights_flat.swap_remove_row(query);
            Some(self.queries.swap_remove(query))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn camera_instance() -> Instance {
        // Figure 1 of the paper (scores negated so "better" = lower, per
        // the workspace convention; the utility weights' signs flip).
        let objects = vec![
            vec![10.0, 2.0, 250.0], // p1
            vec![12.0, 4.0, 340.0], // p2
        ];
        let queries = vec![
            TopKQuery::new(vec![-5.0, -3.5, 0.05], 1), // q1 (negated)
            TopKQuery::new(vec![-2.5, -7.0, 0.08], 1), // q2 (negated)
        ];
        Instance::new(objects, queries).unwrap()
    }

    #[test]
    fn paper_figure1_improvement() {
        let mut inst = camera_instance();
        // Before improvement p2 wins both queries.
        assert_eq!(inst.hit_count_naive(0), 0);
        assert_eq!(inst.hit_count_naive(1), 2);
        // Apply s = {5, 2, -50} to p1 → p1' = (15, 4, 200).
        let s = Vector::from([5.0, 2.0, -50.0]);
        inst.apply_strategy(0, &s).unwrap();
        assert_eq!(inst.object(0), &[15.0, 4.0, 200.0]);
        // After improvement p1 wins both queries (paper: "p1's rank becomes
        // higher than that of p2 for both queries").
        assert_eq!(inst.hit_count_naive(0), 2);
        assert_eq!(inst.hit_count_naive(1), 0);
    }

    #[test]
    fn with_strategy_leaves_original() {
        let inst = camera_instance();
        let s = Vector::from([5.0, 2.0, -50.0]);
        let improved = inst.with_strategy(0, &s);
        assert_eq!(inst.object(0), &[10.0, 2.0, 250.0]);
        assert_eq!(improved.object(0), &[15.0, 4.0, 200.0]);
    }

    #[test]
    fn validation() {
        assert!(matches!(
            Instance::new(vec![vec![1.0], vec![1.0, 2.0]], vec![]),
            Err(ModelError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            Instance::new(vec![vec![f64::NAN]], vec![]),
            Err(ModelError::NonFinite)
        ));
        assert!(matches!(
            Instance::new(vec![vec![1.0]], vec![TopKQuery::new(vec![1.0, 2.0], 1)]),
            Err(ModelError::DimensionMismatch { .. })
        ));
        let mut inst = camera_instance();
        assert!(matches!(
            inst.apply_strategy(9, &Vector::zeros(3)),
            Err(ModelError::IndexOutOfRange(9))
        ));
        assert!(matches!(
            inst.apply_strategy(0, &Vector::zeros(2)),
            Err(ModelError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn mutation_helpers() {
        let mut inst = camera_instance();
        let id = inst.push_object(vec![11.0, 3.0, 300.0]).unwrap();
        assert_eq!(id, 2);
        assert_eq!(inst.num_objects(), 3);
        let qid = inst
            .push_query(TopKQuery::new(vec![-1.0, -1.0, 0.01], 2))
            .unwrap();
        assert_eq!(qid, 2);
        assert_eq!(inst.max_k(), 2);
        assert!(inst.pop_object().is_some());
        assert!(inst.remove_query(2).is_some());
        assert!(inst.remove_query(99).is_none());
        assert_eq!(inst.num_queries(), 2);
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::new(vec![], vec![]).unwrap();
        assert_eq!(inst.dim(), 0);
        assert_eq!(inst.max_k(), 0);
    }

    fn assert_mirrors_coherent(inst: &Instance) {
        assert_eq!(inst.objects_flat().rows(), inst.num_objects());
        assert_eq!(inst.weights_flat().rows(), inst.num_queries());
        for i in 0..inst.num_objects() {
            assert_eq!(inst.objects_flat().row(i), inst.object(i), "object {i}");
        }
        for (q, query) in inst.queries().iter().enumerate() {
            assert_eq!(
                inst.weights_flat().row(q),
                query.weights.as_slice(),
                "query {q}"
            );
        }
    }

    #[test]
    fn flat_mirrors_track_every_mutation() {
        let mut inst = camera_instance();
        assert_mirrors_coherent(&inst);
        inst.apply_strategy(0, &Vector::from([5.0, 2.0, -50.0]))
            .unwrap();
        assert_mirrors_coherent(&inst);
        inst.push_object(vec![11.0, 3.0, 300.0]).unwrap();
        inst.push_query(TopKQuery::new(vec![-1.0, -1.0, 0.01], 2))
            .unwrap();
        assert_mirrors_coherent(&inst);
        inst.pop_object();
        assert_mirrors_coherent(&inst);
        inst.swap_remove_query(0);
        assert_mirrors_coherent(&inst);
        inst.remove_query(0);
        assert_mirrors_coherent(&inst);
        inst.pop_object();
        inst.pop_object();
        assert!(inst.pop_object().is_none());
        assert_mirrors_coherent(&inst);
    }

    #[test]
    fn hit_set_matches_hit_count() {
        let inst = camera_instance();
        assert_eq!(inst.hit_set_naive(1).len(), inst.hit_count_naive(1));
        assert_eq!(inst.hit_set_naive(1), vec![0, 1]);
    }
}
