//! The comparator IQ-processing schemes of §6.1: **RTA-IQ**, **Greedy**,
//! and **Random**. Efficient-IQ (the paper's contribution) lives in
//! [`crate::search`]; these baselines exist so the evaluation figures can
//! reproduce the paper's four-way comparison.

use crate::cost::{CostFunction, StrategyBounds};
use crate::model::{ImprovementStrategy, Instance};
use crate::search::{run_max_hit, run_min_cost, HitEvaluator, IqReport, SearchOptions};
use iq_geometry::{FlatMatrix, Vector};
use iq_topk::naive::kth_best_excluding_flat;
use iq_topk::rta;
use rand::Rng;

/// Safety margin for strict score inequalities (mirrors the ESE path).
fn strict_eps(scale: f64) -> f64 {
    1e-9 * (1.0 + scale.abs())
}

/// A [`HitEvaluator`] that computes hit counts with the Reverse top-k
/// Threshold Algorithm instead of the subdomain/ESE index. Strategy
/// *search* is identical to Efficient-IQ (same candidates, same greedy
/// rule), so strategies come out the same — only evaluation time differs,
/// which is exactly the comparison of Figs. 7–12.
pub struct RtaEvaluator<'a> {
    instance: &'a Instance,
    /// Private flat copy of the objects with the improved target written
    /// in; every RTA pass streams through this one contiguous buffer.
    objects: FlatMatrix,
    target: usize,
    applied: Vector,
    hit: Vec<bool>,
    hit_count: usize,
    /// Per query: the Eq. 6 admission threshold. The k-th best *non-target*
    /// object never moves during a search (only the target does), so this
    /// is computed once up front — mirroring what Efficient-IQ reads from
    /// its subdomain index.
    thresh: Vec<Option<(usize, f64)>>,
}

impl<'a> RtaEvaluator<'a> {
    /// Creates the evaluator; `O(m)` RTA passes establish the initial hits
    /// and one `O(m·n log k)` sweep fixes the admission thresholds.
    pub fn new(instance: &'a Instance, target: usize) -> Self {
        let thresh = instance
            .queries()
            .iter()
            .map(|q| kth_best_excluding_flat(instance.objects_flat(), &q.weights, q.k, target))
            .collect();
        let mut ev = RtaEvaluator {
            instance,
            objects: instance.objects_flat().clone(),
            target,
            applied: Vector::zeros(instance.dim()),
            hit: vec![false; instance.num_queries()],
            hit_count: 0,
            thresh,
        };
        ev.refresh_hits();
        ev
    }

    fn refresh_hits(&mut self) {
        let res = rta::reverse_top_k_flat(&self.objects, self.instance.queries(), self.target);
        self.hit.iter_mut().for_each(|h| *h = false);
        for &q in &res.hits {
            self.hit[q] = true;
        }
        self.hit_count = res.hits.len();
    }
}

impl HitEvaluator for RtaEvaluator<'_> {
    fn instance(&self) -> &Instance {
        self.instance
    }

    fn hit_count(&self) -> usize {
        self.hit_count
    }

    fn is_hit(&self, q: usize) -> bool {
        self.hit[q]
    }

    fn required_rhs(&self, q: usize) -> Option<f64> {
        let (_, thresh) = self.thresh[q]?;
        let ts = self
            .objects
            .dot_row(self.target, &self.instance.queries()[q].weights);
        Some(thresh - ts - strict_eps(thresh))
    }

    fn evaluate(&mut self, s: &ImprovementStrategy) -> usize {
        // Temporarily improve the private copy, run RTA, restore.
        let saved = self.objects.row(self.target).to_vec();
        self.objects.add_to_row(self.target, s.as_slice());
        let count = rta::hit_count_flat(&self.objects, self.instance.queries(), self.target);
        self.objects.set_row(self.target, &saved);
        count
    }

    fn apply(&mut self, s: &ImprovementStrategy) {
        self.objects.add_to_row(self.target, s.as_slice());
        self.applied += s;
        self.refresh_hits();
    }

    fn applied(&self) -> &ImprovementStrategy {
        &self.applied
    }
}

/// RTA-IQ Min-Cost: Algorithm 3 driven by RTA evaluation.
pub fn rta_min_cost_iq(
    instance: &Instance,
    target: usize,
    tau: usize,
    cost_fn: &dyn CostFunction,
    bounds: &StrategyBounds,
    opts: &SearchOptions,
) -> IqReport {
    let mut ev = RtaEvaluator::new(instance, target);
    run_min_cost(&mut ev, tau, cost_fn, bounds, opts)
}

/// RTA-IQ Max-Hit: Algorithm 4 driven by RTA evaluation.
pub fn rta_max_hit_iq(
    instance: &Instance,
    target: usize,
    budget: f64,
    cost_fn: &dyn CostFunction,
    bounds: &StrategyBounds,
    opts: &SearchOptions,
) -> IqReport {
    let mut ev = RtaEvaluator::new(instance, target);
    run_max_hit(&mut ev, budget, cost_fn, bounds, opts)
}

/// The **Greedy** scheme of §6.1: repeatedly hit whichever query is
/// cheapest to hit next (no cost-per-hit ratio, no ESE scoring of side
/// effects), until `τ` hits (min-cost mode) or the budget runs out
/// (max-hit mode, `budget = Some(β)`).
pub fn greedy_iq<E: HitEvaluator>(
    ev: &mut E,
    tau: Option<usize>,
    budget: Option<f64>,
    cost_fn: &dyn CostFunction,
    bounds: &StrategyBounds,
    opts: &SearchOptions,
) -> IqReport {
    let hits_before = ev.hit_count();
    let mut iterations = 0usize;
    let mut evaluated = 0usize;
    let mut spent = 0.0f64;
    let mut stalls = 0usize;

    loop {
        if let Some(t) = tau {
            if ev.hit_count() >= t {
                break;
            }
        }
        if let Some(b) = budget {
            if spent >= b {
                break;
            }
        }
        if iterations >= opts.max_iterations {
            break;
        }
        iterations += 1;

        // Cheapest single query to hit next.
        let rem = bounds.remaining(ev.applied());
        let m = ev.instance().num_queries();
        let mut best: Option<(f64, Vector)> = None;
        for q in 0..m {
            if ev.is_hit(q) {
                continue;
            }
            let Some(rhs) = ev.required_rhs(q) else {
                continue;
            };
            let weights = ev.instance().queries()[q].weights.clone();
            if let Some((s, c)) = cost_fn.min_cost_to_satisfy(&weights, rhs, &rem) {
                evaluated += 1;
                if best.as_ref().is_none_or(|(bc, _)| c < *bc) {
                    best = Some((c, s));
                }
            }
        }
        let Some((c, s)) = best else {
            break;
        };
        if let Some(b) = budget {
            if spent + c > b {
                break;
            }
        }
        let before = ev.hit_count();
        spent += c;
        ev.apply(&s);
        if ev.hit_count() <= before {
            stalls += 1;
            if stalls >= opts.max_stalls {
                break;
            }
        } else {
            stalls = 0;
        }
    }

    let strategy = ev.applied().clone();
    let achieved = tau.is_none_or(|t| ev.hit_count() >= t);
    IqReport {
        cost: cost_fn.cost(&strategy),
        hits_before,
        hits_after: ev.hit_count(),
        iterations,
        candidates_evaluated: evaluated,
        achieved,
        strategy,
    }
}

/// The **Random** scheme of §6.1: generate random strategies until one
/// satisfies the improvement goal (≥ `tau` hits within `max_attempts`
/// tries for min-cost; best hit count under the budget for max-hit).
pub fn random_min_cost_iq<E: HitEvaluator, R: Rng>(
    ev: &mut E,
    tau: usize,
    cost_fn: &dyn CostFunction,
    bounds: &StrategyBounds,
    rng: &mut R,
    max_attempts: usize,
) -> IqReport {
    let hits_before = ev.hit_count();
    let d = ev.instance().dim();
    let mut evaluated = 0usize;
    if hits_before >= tau {
        return IqReport {
            strategy: Vector::zeros(d),
            cost: 0.0,
            hits_before,
            hits_after: hits_before,
            iterations: 0,
            candidates_evaluated: 0,
            achieved: true,
        };
    }
    // §6.1: "randomly generates improvement strategies until it finds one
    // that satisfies the improvement goal". Magnitudes are drawn blindly
    // across the data diameter — that is what makes Random's cost-per-hit
    // the worst of the four schemes in the paper's figures.
    let diameter = (d as f64).sqrt();
    for attempt in 1..=max_attempts {
        let scale = rng.gen::<f64>() * diameter;
        let s = random_strategy(d, scale.max(1e-6), bounds, rng);
        evaluated += 1;
        let h = ev.evaluate(&s);
        if h >= tau {
            ev.apply(&s);
            return IqReport {
                cost: cost_fn.cost(&s),
                hits_before,
                hits_after: h,
                iterations: attempt,
                candidates_evaluated: evaluated,
                achieved: true,
                strategy: s,
            };
        }
    }
    IqReport {
        strategy: Vector::zeros(d),
        cost: 0.0,
        hits_before,
        hits_after: hits_before,
        iterations: max_attempts,
        candidates_evaluated: evaluated,
        achieved: false,
    }
}

/// Random Max-Hit: sample strategies whose cost fits the budget, keep the
/// best hit count seen.
pub fn random_max_hit_iq<E: HitEvaluator, R: Rng>(
    ev: &mut E,
    budget: f64,
    cost_fn: &dyn CostFunction,
    bounds: &StrategyBounds,
    rng: &mut R,
    max_attempts: usize,
) -> IqReport {
    let hits_before = ev.hit_count();
    let d = ev.instance().dim();
    let mut evaluated = 0usize;
    let mut best: Option<(usize, Vector, f64)> = None;
    for _ in 0..max_attempts {
        let scale = budget * rng.gen::<f64>();
        let s = random_strategy(d, scale.max(1e-6), bounds, rng);
        let c = cost_fn.cost(&s);
        if c > budget {
            continue;
        }
        evaluated += 1;
        let h = ev.evaluate(&s);
        if best.as_ref().is_none_or(|(bh, _, _)| h > *bh) {
            best = Some((h, s, c));
        }
    }
    match best {
        Some((h, s, c)) if h > hits_before => {
            ev.apply(&s);
            IqReport {
                cost: c,
                hits_before,
                hits_after: h,
                iterations: max_attempts,
                candidates_evaluated: evaluated,
                achieved: true,
                strategy: s,
            }
        }
        _ => IqReport {
            strategy: Vector::zeros(d),
            cost: 0.0,
            hits_before,
            hits_after: hits_before,
            iterations: max_attempts,
            candidates_evaluated: evaluated,
            achieved: true,
        },
    }
}

/// A random direction scaled by `scale`, clipped into the bounds.
fn random_strategy<R: Rng>(d: usize, scale: f64, bounds: &StrategyBounds, rng: &mut R) -> Vector {
    let raw: Vec<f64> = (0..d).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
    let v = Vector::new(raw);
    let v = v
        .normalized()
        .unwrap_or_else(|| Vector::basis(d.max(1), 0, 1.0));
    v.scaled(scale).clamped(bounds.lo(), bounds.hi())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::EuclideanCost;
    use crate::ese::TargetEvaluator;
    use crate::model::TopKQuery;
    use crate::search::min_cost_iq;
    use crate::subdomain::QueryIndex;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        }
    }

    fn random_instance(n: usize, m: usize, d: usize, kmax: usize, seed: u64) -> Instance {
        let mut rnd = lcg(seed);
        let objects: Vec<Vec<f64>> = (0..n).map(|_| (0..d).map(|_| rnd()).collect()).collect();
        let queries: Vec<TopKQuery> = (0..m)
            .map(|_| {
                let w: Vec<f64> = (0..d).map(|_| rnd()).collect();
                TopKQuery::new(w, 1 + (rnd() * kmax as f64) as usize)
            })
            .collect();
        Instance::new(objects, queries).unwrap()
    }

    #[test]
    fn rta_evaluator_agrees_with_ese() {
        let inst = random_instance(30, 50, 3, 4, 61);
        let idx = QueryIndex::build(&inst);
        let target = 9;
        let ese = TargetEvaluator::new(&inst, &idx, target);
        let mut rtae = RtaEvaluator::new(&inst, target);
        assert_eq!(ese.hit_count(), HitEvaluator::hit_count(&rtae));
        for q in 0..inst.num_queries() {
            assert_eq!(ese.is_hit(q), rtae.is_hit(q), "query {q}");
            match (ese.required_rhs(q), rtae.required_rhs(q)) {
                (Some(a), Some(b)) => assert!((a - b).abs() < 1e-9, "query {q}"),
                (None, None) => {}
                other => panic!("query {q}: {other:?}"),
            }
        }
        let mut rnd = lcg(9);
        for _ in 0..10 {
            let s = Vector::new((0..3).map(|_| (rnd() - 0.5) * 0.4).collect::<Vec<_>>());
            let a = ese.evaluate_naive(&s);
            let b = rtae.evaluate(&s);
            assert_eq!(a, b, "s {s:?}");
        }
    }

    #[test]
    fn rta_iq_produces_same_quality_as_efficient_iq() {
        // "RTA-IQ uses the same strategy-searching approach as Efficient-IQ,
        // thus the quality of the strategies found is the same" (§6.3.2).
        let inst = random_instance(25, 40, 3, 3, 71);
        let idx = QueryIndex::build(&inst);
        let cost = EuclideanCost;
        let opts = SearchOptions::default();
        let bounds = StrategyBounds::unbounded(3);
        let target = 4;
        let tau = (inst.hit_count_naive(target) + 6).min(inst.num_queries());
        let eff = min_cost_iq(&inst, &idx, target, tau, &cost, &bounds, &opts);
        let rta = rta_min_cost_iq(&inst, target, tau, &cost, &bounds, &opts);
        assert_eq!(eff.hits_after, rta.hits_after);
        assert!(
            (eff.cost - rta.cost).abs() < 1e-6,
            "{} vs {}",
            eff.cost,
            rta.cost
        );
    }

    #[test]
    fn greedy_reaches_tau_but_costs_at_least_efficient() {
        let inst = random_instance(30, 50, 3, 3, 13);
        let idx = QueryIndex::build(&inst);
        let cost = EuclideanCost;
        let opts = SearchOptions::default();
        let bounds = StrategyBounds::unbounded(3);
        let target = 11;
        let tau = (inst.hit_count_naive(target) + 8).min(inst.num_queries());
        let eff = min_cost_iq(&inst, &idx, target, tau, &cost, &bounds, &opts);
        let mut ev = TargetEvaluator::new(&inst, &idx, target);
        let greedy = greedy_iq(&mut ev, Some(tau), None, &cost, &bounds, &opts);
        assert!(greedy.achieved);
        assert!(greedy.hits_after >= tau);
        // Verified against ground truth.
        let improved = inst.with_strategy(target, &greedy.strategy);
        assert_eq!(improved.hit_count_naive(target), greedy.hits_after);
        // Efficient-IQ should not be beaten on cost-per-hit (allowing fp
        // slack; both are heuristics but the ratio rule dominates here).
        assert!(eff.cost_per_hit() <= greedy.cost_per_hit() * 1.25 + 1e-9);
    }

    #[test]
    fn greedy_max_hit_respects_budget() {
        let inst = random_instance(30, 50, 3, 3, 29);
        let idx = QueryIndex::build(&inst);
        let cost = EuclideanCost;
        let opts = SearchOptions::default();
        let bounds = StrategyBounds::unbounded(3);
        let mut ev = TargetEvaluator::new(&inst, &idx, 3);
        let r = greedy_iq(&mut ev, None, Some(0.4), &cost, &bounds, &opts);
        assert!(r.cost <= 0.4 + 1e-6);
        let improved = inst.with_strategy(3, &r.strategy);
        assert_eq!(improved.hit_count_naive(3), r.hits_after);
    }

    #[test]
    fn random_min_cost_eventually_achieves_small_tau() {
        let inst = random_instance(20, 40, 2, 4, 37);
        let idx = QueryIndex::build(&inst);
        let cost = EuclideanCost;
        let bounds = StrategyBounds::unbounded(2);
        let target = 6;
        let tau = inst.hit_count_naive(target) + 1;
        let mut ev = TargetEvaluator::new(&inst, &idx, target);
        let mut rng = StdRng::seed_from_u64(4);
        let r = random_min_cost_iq(&mut ev, tau, &cost, &bounds, &mut rng, 5000);
        if r.achieved {
            assert!(r.hits_after >= tau);
            let improved = inst.with_strategy(target, &r.strategy);
            assert_eq!(improved.hit_count_naive(target), r.hits_after);
        }
    }

    #[test]
    fn random_max_hit_never_exceeds_budget_or_loses_hits() {
        let inst = random_instance(20, 40, 2, 4, 43);
        let idx = QueryIndex::build(&inst);
        let cost = EuclideanCost;
        let bounds = StrategyBounds::unbounded(2);
        let mut ev = TargetEvaluator::new(&inst, &idx, 2);
        let before = ev.hit_count();
        let mut rng = StdRng::seed_from_u64(8);
        let r = random_max_hit_iq(&mut ev, 0.3, &cost, &bounds, &mut rng, 300);
        assert!(r.cost <= 0.3 + 1e-9);
        assert!(r.hits_after >= before);
    }

    #[test]
    fn random_strategy_respects_bounds() {
        let bounds = StrategyBounds::new(vec![-0.1, 0.0], vec![0.1, 0.0]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let s = random_strategy(2, 5.0, &bounds, &mut rng);
            assert!(bounds.valid(&s), "{s:?}");
            assert_eq!(s[1], 0.0);
        }
    }
}
