//! The subdomain query index (§4.1, Algorithm 1).
//!
//! Queries are grouped into *subdomains* — cells of the arrangement of
//! object-function intersections, inside which the object ranking is
//! constant — and indexed spatially with an R-tree.
//!
//! Two construction paths are provided (see DESIGN.md §3 for the full
//! rationale):
//!
//! * [`QueryIndex::build`] — the scalable default. Each query's ordered
//!   top-`K'` candidate list (`K' = max k + 1`) is computed once; queries
//!   sharing the list share a subdomain. This is precisely the non-empty
//!   cells of the arrangement restricted to intersections between
//!   candidate objects — the cells Algorithm 1 would keep after
//!   discarding empty ones — at `O(m·n log K')` instead of the printed
//!   `O(n²)` hyperplane enumeration, which is infeasible at the paper's
//!   own scales.
//! * [`QueryIndex::build_bsp`] — the literal Algorithm 1 over an explicit
//!   intersection list, used for small instances and validation.
//!
//! A bloom filter keyed by `(object id)` → *appears in some candidate
//! list* accelerates the §4.3 object-update path.

use crate::exec::ExecPolicy;
use crate::model::Instance;
use iq_geometry::bsp;
use iq_geometry::{Hyperplane, Vector};
use iq_index::{BloomFilter, RTree};
use iq_topk::naive;
use std::collections::BTreeMap;

/// One subdomain: a set of queries sharing the full candidate ranking.
#[derive(Debug, Clone)]
pub struct SubdomainEntry {
    /// Member query indices.
    pub queries: Vec<u32>,
    /// The shared ordered candidate list (top-`K'` object ids, best first).
    pub toplist: Vec<u32>,
}

/// The subdomain-grouped spatial index over the query workload.
#[derive(Debug, Clone)]
pub struct QueryIndex {
    pub(crate) dim: usize,
    pub(crate) kprime: usize,
    /// Per query: subdomain id.
    pub(crate) subdomain_of: Vec<u32>,
    /// Subdomains in creation order (entries may become empty after
    /// incremental removals; ids stay stable).
    pub(crate) subdomains: Vec<SubdomainEntry>,
    /// Toplist → subdomain id, for incremental query assignment (§4.3).
    pub(crate) by_toplist: BTreeMap<Vec<u32>, u32>,
    /// R-tree over query points; payload = query index.
    pub(crate) rtree: RTree<usize>,
    /// Bloom filter: object id → appears in some subdomain's toplist.
    pub(crate) boundary_filter: BloomFilter<u32>,
}

impl QueryIndex {
    /// Builds the index from an instance (signature construction), under
    /// the environment's default [`ExecPolicy`] (`IQ_THREADS`).
    ///
    /// `K' = max_k + 1` candidates are kept per query: enough to know, for
    /// any target `t`, the k-th best object *excluding* `t` — the admission
    /// threshold of Eq. 6.
    pub fn build(instance: &Instance) -> Self {
        Self::build_with(instance, &ExecPolicy::from_env())
    }

    /// [`Self::build`] with an explicit thread policy. The per-query
    /// signatures (ordered top-`K'` candidate lists) are computed in
    /// parallel — the dominant `O(m·n log K')` term — then merged into
    /// subdomains **sequentially in query order**, so the resulting index
    /// (subdomain ids, member order, R-tree insertion order) is identical
    /// at any thread count.
    pub fn build_with(instance: &Instance, exec: &ExecPolicy) -> Self {
        let kprime = instance.max_k() + 1;
        let m = instance.num_queries();
        let mut subdomain_of = vec![0u32; m];
        let mut subdomains: Vec<SubdomainEntry> = Vec::new();
        let mut by_toplist: BTreeMap<Vec<u32>, u32> = BTreeMap::new();

        // Signatures stream through the batched kernel over the flat
        // object matrix; each worker reuses one scores buffer across its
        // whole share of the queries (no per-query allocation).
        let objects = instance.objects_flat();
        let toplists: Vec<Vec<u32>> = exec.map_init(Vec::new, instance.queries(), |buf, _, q| {
            naive::top_k_flat(objects, &q.weights, kprime, buf)
                .into_iter()
                .map(|i| i as u32)
                .collect()
        });

        for (qi, toplist) in toplists.into_iter().enumerate() {
            let sd = *by_toplist.entry(toplist.clone()).or_insert_with(|| {
                subdomains.push(SubdomainEntry {
                    queries: Vec::new(),
                    toplist,
                });
                (subdomains.len() - 1) as u32
            });
            subdomains[sd as usize].queries.push(qi as u32);
            subdomain_of[qi] = sd;
        }

        // The workload is known up front: STR bulk-load straight into the
        // arena layout instead of one insert per query.
        let rtree = RTree::bulk(
            instance.dim().max(1),
            instance
                .queries()
                .iter()
                .enumerate()
                .map(|(qi, q)| (q.weights.clone(), qi)),
        );

        let mut boundary_filter = BloomFilter::new((subdomains.len() * kprime).max(16), 0.01);
        for sd in &subdomains {
            for &o in &sd.toplist {
                boundary_filter.insert(&o);
            }
        }

        QueryIndex {
            dim: instance.dim(),
            kprime,
            subdomain_of,
            subdomains,
            by_toplist,
            rtree,
            boundary_filter,
        }
    }

    /// Builds the partition with the literal Algorithm 1 (BSP over the
    /// pairwise intersection hyperplanes of every object), then attaches
    /// the same toplist metadata. Exponential in spirit — use only on small
    /// instances; exists to validate that the signature construction
    /// produces a refinement-equivalent grouping.
    pub fn build_bsp(instance: &Instance) -> (Self, bsp::Partition) {
        let n = instance.num_objects();
        let mut hyperplanes = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if let Some(h) = Hyperplane::object_intersection(
                    &Vector::from(instance.object(i)),
                    &Vector::from(instance.object(j)),
                ) {
                    hyperplanes.push(h);
                }
            }
        }
        let points: Vec<Vec<f64>> = instance
            .queries()
            .iter()
            .map(|q| q.weights.clone())
            .collect();
        let partition = bsp::find_subdomains(&hyperplanes, &points);

        // Attach toplists per BSP cell (all members share the ranking, so
        // one representative suffices; debug builds verify).
        let kprime = instance.max_k() + 1;
        let mut subdomains = Vec::with_capacity(partition.len());
        let mut subdomain_of = vec![0u32; instance.num_queries()];
        for (sd_id, cell) in partition.subdomains.iter().enumerate() {
            let rep = cell.queries[0];
            let toplist: Vec<u32> =
                naive::top_k(instance.objects(), &instance.queries()[rep].weights, kprime)
                    .into_iter()
                    .map(|i| i as u32)
                    .collect();
            for &qi in &cell.queries {
                subdomain_of[qi] = sd_id as u32;
                debug_assert_eq!(
                    naive::top_k(instance.objects(), &instance.queries()[qi].weights, kprime)
                        .into_iter()
                        .map(|i| i as u32)
                        .collect::<Vec<_>>(),
                    toplist,
                    "BSP cell members disagree on ranking"
                );
            }
            subdomains.push(SubdomainEntry {
                queries: cell.queries.iter().map(|&q| q as u32).collect(),
                toplist,
            });
        }
        let rtree = RTree::bulk(
            instance.dim().max(1),
            instance
                .queries()
                .iter()
                .enumerate()
                .map(|(qi, q)| (q.weights.clone(), qi)),
        );
        let mut boundary_filter = BloomFilter::new((subdomains.len() * kprime).max(16), 0.01);
        for sd in &subdomains {
            for &o in &sd.toplist {
                boundary_filter.insert(&o);
            }
        }
        let by_toplist = subdomains
            .iter()
            .enumerate()
            .map(|(i, sd)| (sd.toplist.clone(), i as u32))
            .collect();
        (
            QueryIndex {
                dim: instance.dim(),
                kprime,
                subdomain_of,
                subdomains,
                by_toplist,
                rtree,
                boundary_filter,
            },
            partition,
        )
    }

    /// Seals the query R-tree into its arena read form (a no-op when
    /// already sealed). Build does this implicitly via the STR bulk-load;
    /// call again after incremental updates to restore the fast read path.
    pub fn seal(&mut self) {
        self.rtree.optimize();
    }

    /// Whether the query R-tree is in its sealed (arena) read form. The
    /// incremental update paths (§4.3) insert into the R-tree and thereby
    /// leave the sealed state; long-lived holders (the serving layer's
    /// engine cache) re-seal after a write batch and record the event.
    pub fn is_sealed(&self) -> bool {
        self.rtree.is_sealed()
    }

    /// Dimensionality of the indexed query points.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The candidate-list length `K'`.
    pub fn kprime(&self) -> usize {
        self.kprime
    }

    /// Number of subdomains.
    pub fn num_subdomains(&self) -> usize {
        self.subdomains.len()
    }

    /// The subdomains.
    pub fn subdomains(&self) -> &[SubdomainEntry] {
        &self.subdomains
    }

    /// The subdomain id of a query.
    pub fn subdomain_of(&self, query: usize) -> usize {
        self.subdomain_of[query] as usize
    }

    /// The ordered candidate list shared by a query's subdomain.
    pub fn toplist_of(&self, query: usize) -> &[u32] {
        &self.subdomains[self.subdomain_of[query] as usize].toplist
    }

    /// The R-tree over query points.
    pub fn rtree(&self) -> &RTree<usize> {
        &self.rtree
    }

    /// Fast *definitely-not* test: does object `o` appear in any
    /// subdomain's candidate list? (§4.3's bloom filter.)
    pub fn may_be_boundary_object(&self, o: usize) -> bool {
        self.boundary_filter.may_contain(&(o as u32))
    }

    /// The k-th best object **excluding** `target` for a query, with its
    /// id — the Eq. 6 admission threshold. `None` when fewer than `k`
    /// non-target candidates exist (then the target trivially hits).
    pub fn threshold_for(
        &self,
        instance: &Instance,
        query: usize,
        target: usize,
    ) -> Option<(usize, f64)> {
        let q = &instance.queries()[query];
        let toplist = self.toplist_of(query);
        let mut seen = 0usize;
        for &o in toplist {
            let o = o as usize;
            if o == target {
                continue;
            }
            seen += 1;
            if seen == q.k {
                return Some((o, instance.objects_flat().dot_row(o, &q.weights)));
            }
        }
        // Candidate list exhausted: fewer than k other objects exist in
        // the whole dataset iff n - 1 < k.
        if instance.num_objects() > 0 && instance.num_objects() - 1 < q.k {
            None
        } else {
            // K' was sized as max_k + 1 so this cannot happen: the list
            // holds k+1 entries, at most one of which is the target.
            unreachable!("toplist shorter than K' invariant violated")
        }
    }

    /// Rough in-memory footprint in bytes — the index-size metric of
    /// Figs. 4b/5b/6b (R-tree + subdomain metadata + bloom filter).
    pub fn size_bytes(&self) -> usize {
        let subdomain_bytes: usize = self
            .subdomains
            .iter()
            .map(|s| s.queries.len() * 4 + s.toplist.len() * 4 + 48)
            .sum();
        self.rtree.size_bytes()
            + subdomain_bytes
            + self.subdomain_of.len() * 4
            + self.boundary_filter.size_bytes()
    }

    /// Structural invariants, used by tests and the §4.3 update paths.
    pub fn check_invariants(&self, instance: &Instance) -> Result<(), String> {
        if self.subdomain_of.len() != instance.num_queries() {
            return Err("assignment length mismatch".into());
        }
        let mut scratch = Vec::new();
        for (qi, &sd) in self.subdomain_of.iter().enumerate() {
            let entry = self
                .subdomains
                .get(sd as usize)
                .ok_or_else(|| format!("query {qi} assigned to missing subdomain {sd}"))?;
            if !entry.queries.contains(&(qi as u32)) {
                return Err(format!("query {qi} missing from its subdomain member list"));
            }
            // The stored toplist must equal the query's actual ranking.
            let actual: Vec<u32> = naive::top_k_flat(
                instance.objects_flat(),
                &instance.queries()[qi].weights,
                self.kprime,
                &mut scratch,
            )
            .into_iter()
            .map(|i| i as u32)
            .collect();
            if actual != entry.toplist {
                return Err(format!("query {qi} toplist stale"));
            }
        }
        if self.rtree.len() != instance.num_queries() {
            return Err("R-tree population mismatch".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TopKQuery;

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        }
    }

    fn random_instance(n: usize, m: usize, d: usize, kmax: usize, seed: u64) -> Instance {
        let mut rnd = lcg(seed);
        let objects: Vec<Vec<f64>> = (0..n).map(|_| (0..d).map(|_| rnd()).collect()).collect();
        let queries: Vec<TopKQuery> = (0..m)
            .map(|_| {
                let w: Vec<f64> = (0..d).map(|_| rnd()).collect();
                let k = 1 + (rnd() * kmax as f64) as usize;
                TopKQuery::new(w, k)
            })
            .collect();
        Instance::new(objects, queries).unwrap()
    }

    #[test]
    fn same_subdomain_same_ranking() {
        let inst = random_instance(30, 60, 3, 5, 42);
        let idx = QueryIndex::build(&inst);
        idx.check_invariants(&inst).unwrap();
        for sd in idx.subdomains() {
            let rep = sd.queries[0] as usize;
            let want = naive::top_k(inst.objects(), &inst.queries()[rep].weights, idx.kprime());
            for &qi in &sd.queries {
                let got = naive::top_k(
                    inst.objects(),
                    &inst.queries()[qi as usize].weights,
                    idx.kprime(),
                );
                assert_eq!(got, want);
            }
        }
    }

    #[test]
    fn build_identical_at_any_thread_count() {
        let inst = random_instance(40, 120, 3, 5, 61);
        let base = QueryIndex::build_with(&inst, &ExecPolicy::sequential());
        for threads in [2usize, 3, 8] {
            let idx = QueryIndex::build_with(&inst, &ExecPolicy::with_threads(threads));
            idx.check_invariants(&inst).unwrap();
            assert_eq!(idx.subdomain_of, base.subdomain_of, "threads = {threads}");
            assert_eq!(idx.subdomains.len(), base.subdomains.len());
            for (a, b) in idx.subdomains.iter().zip(&base.subdomains) {
                assert_eq!(a.queries, b.queries, "threads = {threads}");
                assert_eq!(a.toplist, b.toplist, "threads = {threads}");
            }
            assert_eq!(idx.by_toplist, base.by_toplist, "threads = {threads}");
        }
    }

    #[test]
    fn bsp_partition_refines_signature_grouping() {
        // Every BSP cell must map into exactly one signature subdomain
        // (the arrangement over *all* intersections refines the one over
        // candidate intersections).
        let inst = random_instance(8, 40, 2, 3, 7);
        let sig_idx = QueryIndex::build(&inst);
        let (_, partition) = QueryIndex::build_bsp(&inst);
        for cell in &partition.subdomains {
            let sig_ids: std::collections::HashSet<usize> = cell
                .queries
                .iter()
                .map(|&q| sig_idx.subdomain_of(q))
                .collect();
            assert_eq!(
                sig_ids.len(),
                1,
                "BSP cell spans {} signature subdomains",
                sig_ids.len()
            );
        }
    }

    #[test]
    fn threshold_matches_naive_kth_excluding() {
        let inst = random_instance(25, 40, 3, 4, 99);
        let idx = QueryIndex::build(&inst);
        for qi in 0..inst.num_queries() {
            for target in [0usize, 7, 24] {
                let got = idx.threshold_for(&inst, qi, target);
                let want = naive::kth_best_excluding(
                    inst.objects(),
                    &inst.queries()[qi].weights,
                    inst.queries()[qi].k,
                    target,
                );
                match (got, want) {
                    (Some((go, gs)), Some((wo, ws))) => {
                        assert_eq!(go, wo, "query {qi}, target {target}");
                        assert!((gs - ws).abs() < 1e-12);
                    }
                    (None, None) => {}
                    other => panic!("query {qi}, target {target}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn threshold_none_when_dataset_tiny() {
        let inst = Instance::new(
            vec![vec![0.5, 0.5], vec![0.2, 0.8]],
            vec![TopKQuery::new(vec![0.6, 0.4], 2)],
        )
        .unwrap();
        let idx = QueryIndex::build(&inst);
        // k = 2 but only one non-target object exists.
        assert!(idx.threshold_for(&inst, 0, 0).is_none());
    }

    #[test]
    fn boundary_filter_covers_toplist_objects() {
        let inst = random_instance(30, 40, 2, 3, 5);
        let idx = QueryIndex::build(&inst);
        for sd in idx.subdomains() {
            for &o in &sd.toplist {
                assert!(idx.may_be_boundary_object(o as usize));
            }
        }
    }

    #[test]
    fn empty_query_set() {
        let inst = Instance::new(vec![vec![0.1, 0.2]], vec![]).unwrap();
        let idx = QueryIndex::build(&inst);
        assert_eq!(idx.num_subdomains(), 0);
        idx.check_invariants(&inst).unwrap();
    }

    #[test]
    fn clustered_queries_share_subdomains() {
        // Tightly clustered queries should collapse to far fewer
        // subdomains than queries.
        let mut rnd = lcg(123);
        let objects: Vec<Vec<f64>> = (0..50).map(|_| vec![rnd(), rnd()]).collect();
        let queries: Vec<TopKQuery> = (0..100)
            .map(|_| TopKQuery::new(vec![0.5 + rnd() * 0.001, 0.5 + rnd() * 0.001], 3))
            .collect();
        let inst = Instance::new(objects, queries).unwrap();
        let idx = QueryIndex::build(&inst);
        assert!(
            idx.num_subdomains() < 20,
            "expected heavy sharing, got {} subdomains",
            idx.num_subdomains()
        );
    }
}
